//! Quickstart: map DCGAN onto LerGAN, simulate ten training iterations,
//! and compare against the paper's three baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lergan::baselines::{FpgaGan, GpuPlatform, Prime};
use lergan::core::{LerGan, ReplicaDegree};
use lergan::gan::benchmarks;

fn main() {
    let gan = benchmarks::dcgan();
    println!(
        "Benchmark: {} ({} generator layers, {} discriminator layers, batch {})",
        gan.name,
        gan.generator.layers.len(),
        gan.discriminator.layers.len(),
        gan.batch_size
    );

    // Build the accelerator: ZFDR reshaping + 3D-connected PIM.
    let accel = LerGan::builder(&gan)
        .replica_degree(ReplicaDegree::Low)
        .build()
        .expect("DCGAN maps onto the default 3DCU pair");
    let report = accel.train_iterations(10);

    println!("\nLerGAN (ZFDR + 3D connection, low duplication):");
    println!(
        "  one iteration: {:.3} ms,  energy {:.2} mJ",
        report.iteration_latency_ns / 1e6,
        report.total_energy_pj / report.iterations as f64 / 1e9
    );
    println!("  energy distribution:");
    for (k, v) in report.energy_breakdown.iter() {
        println!(
            "    {k:<14} {:6.2}%",
            v / report.energy_breakdown.total() * 100.0
        );
    }
    println!(
        "  ReRAM tile: ADC {:.1}%, cell switching {:.1}%, other {:.1}%",
        report.tile_breakdown.adc_share() * 100.0,
        report.tile_breakdown.cell_switching_share() * 100.0,
        report.tile_breakdown.other_share() * 100.0
    );

    println!("\nBaselines (one iteration):");
    let lergan_e = report.total_energy_pj / report.iterations as f64;
    for (name, latency, energy) in [
        {
            let r = Prime::new().train_iteration(&gan);
            (
                "PRIME (ReRAM, normal reshape, H-tree)",
                r.iteration_latency_ns,
                r.iteration_energy_pj,
            )
        },
        {
            let r = GpuPlatform::new().train_iteration(&gan);
            (
                "GPU (Titan X class)",
                r.iteration_latency_ns,
                r.iteration_energy_pj,
            )
        },
        {
            let r = FpgaGan::new().train_iteration(&gan);
            (
                "FPGA GAN accelerator (VCU118 class)",
                r.iteration_latency_ns,
                r.iteration_energy_pj,
            )
        },
    ] {
        println!(
            "  {name:<40} {:9.2} ms   speedup {:5.1}x   energy saving {:5.2}x",
            latency / 1e6,
            latency / report.iteration_latency_ns,
            energy / lergan_e
        );
    }
}
