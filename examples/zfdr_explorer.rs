//! ZFDR explorer: walks through Zero-Free Data Reshaping on the paper's
//! worked example (CONV1 of the DCGAN generator, Sec. III-A/IV-A) and
//! verifies every published number — zeros, efficiency, class counts,
//! cycles, storage — plus the functional bit-level equivalence.
//!
//! ```text
//! cargo run --release --example zfdr_explorer
//! ```

use lergan::core::replica::ReplicaPlan;
use lergan::core::zfdr::closed_form;
use lergan::core::zfdr::exec::execute_tconv;
use lergan::core::zfdr::plan::ClassKind;
use lergan::core::ZfdrPlan;
use lergan::tensor::conv::tconv_forward_zero_insert;
use lergan::tensor::{assert_tensors_close, TconvGeometry, Tensor};

fn main() {
    // CONV1 of the DCGAN generator: a 4x4x1024 input transposed-convolved
    // with 512 kernels of 5x5x1024 at stride 1/2 into an 8x8x512 output.
    let geom = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
    println!("CONV1 geometry: {geom:#?}\n");

    println!("--- Zero insertion (Fig. 4) ---");
    println!(
        "expanded plane: {0}x{0} (insert {1} zero(s) between elements, {2} at \
         the end, pad {3})",
        geom.expanded(),
        geom.converse_stride - 1,
        geom.remainder,
        geom.insertion_pad
    );
    println!(
        "stored values per 1024-channel input: {} total, {} useful",
        geom.expanded() * geom.expanded() * 1024,
        geom.input * geom.input * 1024
    );
    let total = geom.total_multiplications_per_channel() * 1024;
    let useful = geom.useful_multiplications_per_channel() * 1024;
    println!(
        "multiplications: {total} total, {useful} useful -> {:.2}% efficiency \
         (paper: 18.06%)\n",
        useful as f64 / total as f64 * 100.0
    );

    println!("--- ZFDR reshape classes (Sec. IV-A) ---");
    let plan = ZfdrPlan::for_tconv(&geom);
    println!(
        "distinct reshaped matrices: {} (paper: 25)",
        plan.distinct_classes(2)
    );
    for kind in ClassKind::ALL {
        let s = plan.kind(kind, 2);
        println!(
            "  {kind:?}: {} classes, max reuse {}, covering {} output positions",
            s.classes, s.max_reuse, s.total_positions
        );
    }
    println!(
        "closed form: LL={} R1={} R2={} cases={:?} (matches enumeration)",
        closed_form::loop_length(&geom),
        closed_form::r1(&geom),
        closed_form::r2(&geom),
        closed_form::tconv_cases(&geom)
    );
    println!(
        "cycles without duplication: {} (paper: 9; normal reshape: 64)\n",
        plan.cycles(2, &ReplicaPlan::unity())
    );

    println!("--- storage (the 75% claim) ---");
    println!(
        "ZFDR stores {} kernel positions per channel pair (plain kernel: 25);",
        plan.pattern_volume_total(2)
    );
    println!(
        "7-copy plain duplication for the same 9-cycle latency stores {} -> \
         {:.0}% more than ZFDR (paper: 75%)\n",
        7 * 25,
        (7.0 * 25.0 / plan.pattern_volume_total(2) as f64 - 1.0) * 100.0
    );

    println!("--- functional equivalence ---");
    // Scaled-down channels: the algebra is identical.
    let mut seed = 0x2337u32;
    let mut rnd = move || {
        seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((seed >> 16) as f32 / 65536.0) - 0.5
    };
    let input = Tensor::from_fn(&[16, 4, 4], |_| rnd());
    let weights = Tensor::from_fn(&[8, 16, 5, 5], |_| rnd());
    let (zero_free, stats) = execute_tconv(&input, &weights, &geom);
    let naive = tconv_forward_zero_insert(&input, &weights, &geom);
    assert_tensors_close(&zero_free, &naive, 1e-4);
    println!(
        "zero-free execution == naive zero-insertion (64 MMVs over {} reshaped \
         matrices, {} multiplications, all on useful values)",
        stats.reshaped_matrices, stats.multiplications
    );

    println!("\n--- future-GAN stride 3 (Sec. IV-A's generality claim) ---");
    let g3 = TconvGeometry::for_upsampling(5, 5, 3).unwrap();
    let p3 = ZfdrPlan::for_tconv(&g3);
    let input = Tensor::from_fn(&[4, 5, 5], |_| rnd());
    let weights = Tensor::from_fn(&[2, 4, 5, 5], |_| rnd());
    let (zf, _) = execute_tconv(&input, &weights, &g3);
    let nv = tconv_forward_zero_insert(&input, &weights, &g3);
    assert_tensors_close(&zf, &nv, 1e-4);
    println!(
        "stride-3 T-CONV: {} classes (inside {} = S'^2), equivalence holds",
        p3.distinct_classes(2),
        p3.kind(ClassKind::Inside, 2).classes
    );
}
