//! Full evaluation: regenerates the headline numbers of every figure in
//! Sec. VI in one run. For the detailed per-figure tables use the
//! dedicated binaries (`cargo run -p lergan-bench --bin fig19` etc.).
//!
//! ```text
//! cargo run --release --example full_evaluation
//! ```

use lergan_bench::figures;

fn main() {
    println!("LerGAN evaluation — headline reproduction (paper value in parentheses)\n");

    let (dcgan, avg) = figures::fig16_space_savings();
    println!("Fig. 16  DCGAN G→ SArray saving        {dcgan:6.2}x  (5.2x)");
    println!("Fig. 16  average SArray saving          {avg:6.2}x  (3.86x)");

    let (dup, nodup, nr) = figures::fig18_averages();
    println!("Fig. 18  ZFDR+dup speedup over NR+2D    {dup:6.2}x  (5.11x)");
    println!("Fig. 18  ZFDR speedup over NR+2D        {nodup:6.2}x  (2.77x)");
    println!("Fig. 18  NR+3D speedup over NR+2D       {nr:6.2}x  (1.31x)");

    let rows = figures::fig19_20();
    let n = rows.len() as f64;
    let prime_speedup: f64 = rows
        .iter()
        .flat_map(|r| r.speedup.iter().chain(r.speedup_ns.iter()))
        .sum::<f64>()
        / (6.0 * n);
    let prime_energy: f64 = rows
        .iter()
        .flat_map(|r| r.energy_saving.iter().chain(r.energy_saving_ns.iter()))
        .sum::<f64>()
        / (6.0 * n);
    println!("Fig. 19  average speedup over PRIME     {prime_speedup:6.2}x  (7.46x)");
    println!("Fig. 20  average energy saving, PRIME   {prime_energy:6.2}x  (7.68x)");

    let (sf, sg, eg, ef) = figures::headline_averages();
    println!("Fig. 21  average speedup over FPGA      {sf:6.1}x  (47.2x)");
    println!("Fig. 21  average speedup over GPU       {sg:6.1}x  (21.42x)");
    println!("Fig. 22  average energy saving, GPU     {eg:6.2}x  (9.75x)");
    println!("Fig. 22  LerGAN/FPGA energy ratio       {ef:6.2}x  (1.04x)");

    let (compute, comm, other) = figures::fig23();
    println!(
        "Fig. 23  energy: compute/comm/other     {:.1}%/{:.1}%/{:.1}%  (70.4/16.0/13.6)",
        compute * 100.0,
        comm * 100.0,
        other * 100.0
    );

    let (adc, switch, _, reduction) = figures::fig24();
    println!(
        "Fig. 24  tile: ADC / cell switching     {:.1}%/{:.1}%  (45.14/40.16)",
        adc * 100.0,
        switch * 100.0
    );
    println!("Fig. 24  what-if power reduction        {reduction:6.2}x  (~3x)");

    let o = figures::overhead();
    println!(
        "VI-E     area overhead                  {:+5.1}%  (+13.3%)",
        o.area_overhead * 100.0
    );
    println!(
        "VI-E     compile overhead               {:+5.1}%  (+32.52%)",
        o.compile_overhead * 100.0
    );
    println!(
        "VI-E     same-space speedup over PRIME  {:6.2}x  (2.1x)",
        o.same_space_speedup
    );
}
