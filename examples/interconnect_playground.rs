//! Interconnect playground: explores the routing and bandwidth behaviour
//! of the H-tree and the 3D-connected PIM (Sec. III-B / IV-B).
//!
//! ```text
//! cargo run --release --example interconnect_playground
//! ```

use lergan::noc::reduction::{gather_reduction, tree_reduction};
use lergan::noc::{DcuPair, Endpoint, Flow, FlowSchedule, Mode, NocConfig, ThreeDcu};

fn main() {
    let cfg = NocConfig::default();
    let dcu = ThreeDcu::new(&cfg);
    let pair = DcuPair::new(&cfg);

    println!("--- Fig. 9's pathology: adjacent tiles, distant in the tree ---");
    for (a, b) in [(0usize, 1usize), (3, 4), (7, 8)] {
        let smode = dcu
            .route(Endpoint::tile(0, a), Endpoint::tile(0, b), Mode::Smode)
            .unwrap();
        let cmode = dcu
            .route(Endpoint::tile(0, a), Endpoint::tile(0, b), Mode::Cmode)
            .unwrap();
        println!(
            "tiles {a:>2} -> {b:<2}: H-tree {} hops ({:.1} ns); Cmode {} hops ({:.1} ns)",
            smode.hops(),
            smode.latency_ns,
            cmode.hops(),
            cmode.latency_ns
        );
    }

    println!("\n--- vertical alignment: forward bank to ∇weight bank ---");
    let vertical = dcu
        .route(
            Endpoint::tile(0, 5),
            Endpoint::pair_tile(0, 1, 5),
            Mode::Cmode,
        )
        .unwrap();
    let smode_fallback = dcu
        .route(
            Endpoint::tile(0, 5),
            Endpoint::pair_tile(0, 1, 5),
            Mode::Smode,
        )
        .unwrap();
    println!(
        "Cmode: {} hops, {:.1} ns (vertical wire); Smode memory path: {} hops, \
         {:.1} ns (through the bus)",
        vertical.hops(),
        vertical.latency_ns,
        smode_fallback.hops(),
        smode_fallback.latency_ns
    );

    println!("\n--- the generator->discriminator bypass (Fig. 13) ---");
    let bypass = pair
        .route(
            Endpoint::pair_tile(0, 0, 0),
            Endpoint::pair_tile(1, 0, 0),
            Mode::Cmode,
        )
        .unwrap();
    let bus = pair
        .route(
            Endpoint::pair_tile(0, 0, 0),
            Endpoint::pair_tile(1, 0, 0),
            Mode::Smode,
        )
        .unwrap();
    let batch_samples = 64 * 64 * 64 * 3; // one DCGAN minibatch of images
    let (t_bypass, e_bypass) = bypass.transfer(batch_samples, &cfg);
    let (t_bus, e_bus) = bus.transfer(batch_samples, &cfg);
    println!(
        "moving one minibatch of 64x64x3 images x64:\n  bypass: {:.1} us, {:.1} nJ\n  bus:    {:.1} us, {:.1} nJ",
        t_bypass / 1e3,
        e_bypass / 1e3,
        t_bus / 1e3,
        e_bus / 1e3
    );

    println!("\n--- switch contention ---");
    // Sixteen vertical flows through distinct switches: no serialisation.
    let mut disjoint = FlowSchedule::new();
    for t in 0..16 {
        let r = dcu
            .route(
                Endpoint::tile(0, t),
                Endpoint::pair_tile(0, 1, t),
                Mode::Cmode,
            )
            .unwrap();
        disjoint.push(Flow::new(r, 4096));
    }
    let out = disjoint.resolve(&cfg);
    println!(
        "16 vertically-aligned flows: contention {}x, makespan {:.1} us",
        out.worst_contention,
        out.makespan_ns / 1e3
    );
    // Partial-sum reduction: in-network adders vs H-tree gather.
    println!("\n--- bypassable adders: merging 32 row-tile partial sums ---");
    let t = tree_reduction(32, 512, &cfg);
    let g = gather_reduction(32, 512, &cfg);
    println!(
        "in-network (Cmode adders): {:.1} ns, {:.2} nJ, {} adders engaged",
        t.latency_ns,
        t.energy_pj / 1e3,
        t.adders_used
    );
    println!(
        "H-tree gather (no adders): {:.1} ns, {:.2} nJ",
        g.latency_ns,
        g.energy_pj / 1e3
    );

    // Sixteen flows through the same tile's switches: serialised.
    let mut clashing = FlowSchedule::new();
    let r = dcu
        .route(
            Endpoint::tile(0, 0),
            Endpoint::pair_tile(0, 1, 0),
            Mode::Cmode,
        )
        .unwrap();
    for _ in 0..16 {
        clashing.push(Flow::new(r.clone(), 4096));
    }
    let out = clashing.resolve(&cfg);
    println!(
        "16 flows through one switch:   contention {}x, makespan {:.1} us",
        out.worst_contention,
        out.makespan_ns / 1e3
    );
}
