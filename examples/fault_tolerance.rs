//! Fault tolerance walkthrough: inject stuck-at cells, dead tiles and
//! broken interconnect into a DCGAN mapping and quantify the damage.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Three escalating scenes:
//!
//! 1. **Write-and-verify programming** — program a weight matrix through
//!    a transiently-failing write path and watch the retry controller
//!    quarantine cells whose retries run out.
//! 2. **Remap around a dead tile** — kill tiles in the G→ bank and show
//!    the allocator routing every layer slice onto survivors.
//! 3. **Full degradation report** — stuck cells + dead tiles + severed
//!    wires, rebuilt and compared side by side with the fault-free twin.

use lergan::core::{LerGan, SystemFaults};
use lergan::gan::{benchmarks, Phase};
use lergan::reram::{FaultMap, ReramConfig, WritePolicy};

fn main() {
    let cfg = ReramConfig::default();

    // --- Scene 1: write-and-verify -----------------------------------
    println!("=== Write-and-verify programming (64x64 weight block) ===");
    let weights: Vec<i32> = (0..64 * 64).map(|i| (i % 15) - 7).collect();
    for fail_rate in [0.0, 0.05, 0.30] {
        let mut map = FaultMap::pristine();
        let policy = WritePolicy::with_fail_rate(fail_rate, 0x5EED);
        let report = map.program_matrix(&weights, &cfg, &policy);
        println!(
            "  transient fail rate {:>4.0}%: {:>5} pulses for {} weights, \
             {} cell(s) quarantined, {} unprogrammable",
            fail_rate * 100.0,
            report.attempts,
            weights.len(),
            report.newly_stuck,
            report.failed_cells.len()
        );
    }

    // --- Scene 2: remap around dead tiles ----------------------------
    println!("\n=== Remapping around dead tiles (DCGAN, G-forward bank) ===");
    let spec = benchmarks::dcgan();
    let mut faults = SystemFaults::none();
    faults.bank_mut(Phase::GForward).kill_tile(2).kill_tile(9);
    let accel = LerGan::builder(&spec)
        .faults(faults)
        .build()
        .expect("two dead tiles of sixteen are absorbable");
    let alloc = accel.allocation(Phase::GForward);
    println!(
        "  {} of 16 tiles survive; layer 0 slice 0 now lives on tile {}",
        alloc.healthy_tiles(),
        alloc.tile_for(0, 0).expect("layer 0 exists")
    );

    // --- Scene 3: the full degradation report ------------------------
    println!("\n=== Degradation report (cells + tiles + interconnect) ===");
    let mut faults = SystemFaults::none();
    *faults.bank_mut(Phase::GForward) = FaultMap::seeded(0xFA17, 0.001, 200_000);
    faults.bank_mut(Phase::GForward).kill_tile(5);
    *faults.bank_mut(Phase::DForward) = FaultMap::seeded(0xD15C, 0.001, 200_000);
    faults.links_mut().break_horizontal(0, 0, 2);
    faults.links_mut().break_vertical(1, 1, 4);
    faults.links_mut().stick_switch(0, 2, 6);

    let degraded = LerGan::builder(&spec)
        .faults(faults)
        .build()
        .expect("the scenario stays within surviving capacity");
    let report = degraded
        .degradation_report()
        .expect("non-empty scenario yields a report");

    println!(
        "  injected: {} stuck cell(s), {} dead tile(s), {} broken wire(s), {} stuck switch(es)",
        report.stuck_cells, report.dead_tiles, report.broken_wires, report.stuck_switches
    );
    println!(
        "  latency  : {:>10.3} us fault-free  ->  {:>10.3} us degraded  ({:.4}x)",
        report.fault_free_latency_ns / 1e3,
        report.degraded_latency_ns / 1e3,
        report.slowdown()
    );
    println!(
        "  energy   : {:>10.3} uJ fault-free  ->  {:>10.3} uJ degraded  ({:.4}x)",
        report.fault_free_energy_pj / 1e6,
        report.degraded_energy_pj / 1e6,
        report.energy_overhead()
    );
    println!(
        "  capacity : {} stored values fault-free, {} degraded ({} replica values shed)",
        report.fault_free_stored_values,
        report.degraded_stored_values,
        report.shed_stored_values()
    );
    println!(
        "  throughput loss vs fault-free plan: {:.2}%",
        report.throughput_loss() * 100.0
    );
}
