//! Functional GAN training on synthetic data: proves the substrate the
//! accelerator model reasons about is a *real* GAN — Fig. 3's full
//! dataflow (G→, D→, D←, D-w, G←, G-w) with minibatch SGD on the
//! minimax objective of Eq. 1–2.
//!
//! Real data: 12×12 single-channel "stripe" images. The DCGAN-miniature
//! generator (FC + two stride-1/2 T-CONVs) must learn to produce them
//! from 8-dimensional noise.
//!
//! ```text
//! cargo run --release --example train_synthetic_gan
//! ```

use lergan::gan::topology::parse_network;
use lergan::gan::train::{build_trainable, Gan};
use lergan::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A horizontal-stripe image: rows alternate between ~0.8 and ~-0.8 with
/// small noise.
fn stripe_sample(rng: &mut StdRng) -> Tensor {
    let jitter = (rng.gen::<f32>() - 0.5) * 0.1;
    Tensor::from_fn(&[1, 12, 12], |idx| {
        let base = if idx[1] % 2 == 0 { 0.8 } else { -0.8 };
        base + jitter
    })
}

/// Row-alternation score: high for stripe-like images, ~0 for noise.
fn stripeness(img: &Tensor) -> f32 {
    let mut score = 0.0;
    for y in 0..11 {
        for x in 0..12 {
            score += (img[&[0, y, x]] - img[&[0, y + 1, x]]).abs();
        }
    }
    score / (11.0 * 12.0)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);

    // Parse miniature Table V-style topologies and build trainable stacks.
    let gen_spec = parse_network("mini generator", "8f-(8t-4t)(3k2s)-t1", 2, 12).unwrap();
    let disc_spec = parse_network("mini discriminator", "(1c-8c)(3k2s)-f1", 2, 12).unwrap();
    let generator = build_trainable(&gen_spec, true, &mut rng);
    let discriminator = build_trainable(&disc_spec, false, &mut rng);
    let mut gan = Gan::new(generator, discriminator, 8, 0.03, 7);

    let initial = {
        let mut s = 0.0;
        for _ in 0..8 {
            s += stripeness(&gan.generate());
        }
        s / 8.0
    };
    let real_score = {
        let mut s = 0.0;
        for _ in 0..8 {
            s += stripeness(&stripe_sample(&mut rng));
        }
        s / 8.0
    };
    println!("stripeness: real data {real_score:.3}, untrained generator {initial:.3}");

    for step in 0..400 {
        let reals: Vec<Tensor> = (0..4).map(|_| stripe_sample(&mut rng)).collect();
        let stats = gan.train_step(&reals);
        if step % 80 == 0 {
            println!(
                "step {step:>4}: D loss {:.3}, G loss {:.3}, generator stripeness {:.3}",
                stats.d_loss,
                stats.g_loss,
                stripeness(&gan.generate())
            );
        }
    }

    let trained = {
        let mut s = 0.0;
        for _ in 0..8 {
            s += stripeness(&gan.generate());
        }
        s / 8.0
    };
    println!("\nstripeness after training: {trained:.3} (target ~{real_score:.3})");
    assert!(
        trained > initial,
        "training should increase stripe structure ({initial:.3} -> {trained:.3})"
    );
    println!("the generator learned the stripe structure ✓");

    // Render one generated sample as ASCII art.
    let sample = gan.generate();
    println!("\na generated 12x12 sample:");
    for y in 0..12 {
        let row: String = (0..12)
            .map(|x| {
                let v = sample[&[0, y, x]];
                if v > 0.33 {
                    '#'
                } else if v < -0.33 {
                    '.'
                } else {
                    '-'
                }
            })
            .collect();
        println!("  {row}");
    }
}
