//! Hardware data-path study: 16-bit fixed point, 4-bit cell slicing, and
//! cell-conductance variation — does the analog pipeline still compute the
//! right convolutions?
//!
//! ```text
//! cargo run --release --example precision_and_variation
//! ```

use lergan::core::zfdr::exec::execute_tconv;
use lergan::reram::bitslice::{slice_weight, sliced_dot, unslice_weight};
use lergan::reram::variation::VariationModel;
use lergan::reram::{EnergyModel, ReramConfig};
use lergan::tensor::conv::tconv_forward_zero_insert;
use lergan::tensor::quant::FixedPoint;
use lergan::tensor::{TconvGeometry, Tensor};

fn main() {
    let reram = ReramConfig::default();
    let q = FixedPoint::paper_default();

    println!("--- 16-bit fixed point (the PipeLayer-style data path) ---");
    println!(
        "format: {} bits, {} fraction bits, step {:.2e}, range ±{:.2}",
        q.total_bits(),
        q.frac_bits(),
        q.step(),
        q.max_value()
    );
    for v in [0.75f32, -0.001, std::f32::consts::PI] {
        let code = q.quantize(v);
        println!(
            "  {v:>9.5} -> code {code:>6} -> {:>9.5}",
            q.dequantize(code)
        );
    }

    println!("\n--- 4-bit cell slicing (4 cells per 16-bit weight) ---");
    for code in [12345i32, -12345] {
        let slices = slice_weight(code, &reram);
        println!(
            "  code {code:>6} -> cells {:?} -> {}",
            slices,
            unslice_weight(&slices, &reram)
        );
    }
    let w = [1234i32, -5678, 30000, -7];
    let x = [3i32, -2, 1, 9];
    let direct: i64 = w
        .iter()
        .zip(x.iter())
        .map(|(&a, &b)| a as i64 * b as i64)
        .sum();
    println!(
        "  sliced dot == direct dot: {} == {}",
        sliced_dot(&w, &x, &reram),
        direct
    );

    println!("\n--- quantisation error through ZFDR on a real T-CONV ---");
    let geom = TconvGeometry::for_upsampling(8, 4, 2).unwrap();
    let mut seed = 77u32;
    let mut rnd = move || {
        seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
        ((seed >> 16) as f32 / 65536.0) - 0.5
    };
    let input = Tensor::from_fn(&[4, 8, 8], |_| rnd());
    let weights = Tensor::from_fn(&[4, 4, 4, 4], |_| rnd());
    let exact = tconv_forward_zero_insert(&input, &weights, &geom);
    let (zfdr_q, _) = execute_tconv(&q.round_trip(&input), &q.round_trip(&weights), &geom);
    let max_err = exact
        .data()
        .iter()
        .zip(zfdr_q.data().iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  max output deviation after quantising both operands: {max_err:.2e}");

    println!("\n--- cell-conductance variation (the [66] tolerance question) ---");
    for level in [0.05f64, 0.15, 0.25, 0.5, 1.0] {
        let rms = VariationModel::new(level, 5).relative_rms_error(128, 30, &reram);
        println!(
            "  ±{level:.2} cell levels -> {:.2}% aggregate dot-product error",
            rms * 100.0
        );
    }

    println!("\n--- the Sec. VI-D energy what-if replayed on this data path ---");
    let base = EnergyModel::default();
    let opt = base.optimistic_whatif();
    println!(
        "  ADC energy {:.1} -> {:.1} pJ/op; cell switching {:.1} -> {:.1} pJ/cell",
        base.adc_pj_per_op,
        opt.adc_pj_per_op,
        base.cell_switch_pj_per_cell,
        opt.cell_switch_pj_per_cell
    );
}
