//! Heterogeneous acceleration levels (Sec. V): give different training
//! phases different duplication degrees according to demand, instead of
//! one global setting — the programmer-facing flexibility LerGAN's
//! compiler exposes.
//!
//! ```text
//! cargo run --release --example heterogeneous_degrees
//! ```

use lergan::core::{LerGan, ReplicaDegree};
use lergan::gan::benchmarks;
use lergan::gan::Phase;

fn main() {
    let gan = benchmarks::dcgan();
    println!("DCGAN under heterogeneous duplication degrees\n");
    println!(
        "{:<44} {:>12} {:>12} {:>16}",
        "configuration", "iter (ms)", "energy (mJ)", "CArray values"
    );

    let show = |label: &str, builder: lergan::core::LerGanBuilder| {
        let accel = builder.build().expect("DCGAN maps");
        let r = accel.train_iterations(1);
        println!(
            "{label:<44} {:>12.3} {:>12.2} {:>16}",
            r.iteration_latency_ns / 1e6,
            r.total_energy_pj / 1e9,
            accel.compiled().total_stored_values()
        );
    };

    show(
        "uniform low",
        LerGan::builder(&gan).replica_degree(ReplicaDegree::Low),
    );
    show(
        "uniform high",
        LerGan::builder(&gan).replica_degree(ReplicaDegree::High),
    );
    // Spend space on the forward phases only: they run twice per
    // iteration (both training halves), so they repay duplication best.
    show(
        "forward high, backward low",
        LerGan::builder(&gan)
            .replica_degree(ReplicaDegree::Low)
            .phase_degree(Phase::GForward, ReplicaDegree::High)
            .phase_degree(Phase::DForward, ReplicaDegree::High),
    );
    // The opposite split: lean forward, rich gradients.
    show(
        "forward low, gradients high",
        LerGan::builder(&gan)
            .replica_degree(ReplicaDegree::Low)
            .phase_degree(Phase::DWeightGrad, ReplicaDegree::High)
            .phase_degree(Phase::GWeightGrad, ReplicaDegree::High),
    );
    // Space-constrained: no duplication except the hottest phase.
    show(
        "no-dup except D-backward middle",
        LerGan::builder(&gan)
            .replica_degree(ReplicaDegree::NoDuplication)
            .phase_degree(Phase::DBackward, ReplicaDegree::Middle),
    );

    println!(
        "\nThe forward phases run twice per iteration (Fig. 13's two halves), so\n\
         boosting them buys more latency per byte of CArray than boosting the\n\
         gradient phases — the space/performance dial Sec. V hands programmers."
    );
}
