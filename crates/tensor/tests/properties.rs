//! Property-based tests for the reference kernels and geometry algebra.

use lergan_tensor::conv::{
    tconv_forward_direct, tconv_forward_zero_insert, wconv_weight_grad_zero_insert,
};
use lergan_tensor::zero_insert::expand_tconv_input;
use lergan_tensor::{
    assert_tensors_close, Conv2d, SconvGeometry, TconvGeometry, Tensor, WconvGeometry,
};
use proptest::prelude::*;

fn small_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

/// Valid T-CONV upsampling configs: (input, kernel, converse stride).
fn tconv_config() -> impl Strategy<Value = TconvGeometry> {
    (2usize..8, 2usize..6, 2usize..4).prop_filter_map("geometry must exist", |(i, w, s)| {
        TconvGeometry::for_upsampling(i, w, s)
    })
}

/// Valid S-CONV configs: (input, kernel, stride, pad) with an output.
fn sconv_config() -> impl Strategy<Value = SconvGeometry> {
    (4usize..12, 2usize..6, 1usize..4, 0usize..3)
        .prop_filter_map("geometry must exist", |(i, w, s, p)| {
            SconvGeometry::new(i, w, s, p).filter(|g| g.output >= 1)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tconv_zero_insert_agrees_with_direct(geom in tconv_config(), seed in 0u64..1000) {
        let ic = 1 + (seed % 3) as usize;
        let oc = 1 + (seed % 2) as usize;
        let input = Tensor::from_fn(&[ic, geom.input, geom.input], |idx| {
            ((idx[0] * 31 + idx[1] * 7 + idx[2] * 3 + seed as usize) % 13) as f32 - 6.0
        });
        let weights = Tensor::from_fn(&[oc, ic, geom.kernel, geom.kernel], |idx| {
            ((idx[0] * 17 + idx[1] * 5 + idx[2] * 11 + idx[3] + seed as usize) % 7) as f32 - 3.0
        });
        let a = tconv_forward_zero_insert(&input, &weights, &geom);
        let b = tconv_forward_direct(&input, &weights, &geom);
        assert_tensors_close(&a, &b, 1e-4);
    }

    #[test]
    fn expanded_zero_count_matches_eq7(geom in tconv_config()) {
        // Use strictly non-zero inputs so every zero in the expansion is an
        // inserted/padding zero.
        let input = Tensor::from_fn(&[1, geom.input, geom.input], |idx| {
            1.0 + (idx[1] * geom.input + idx[2]) as f32
        });
        let e = expand_tconv_input(&input, &geom);
        prop_assert_eq!(e.count_zeros(), geom.zeros_per_plane());
        prop_assert_eq!(e.shape()[1] - geom.kernel + 1, geom.output);
    }

    #[test]
    fn conv_forward_is_linear(geom in sconv_config(), a in small_tensor(vec![2usize, 6, 6]), b in small_tensor(vec![2usize, 6, 6])) {
        // Restrict to a fixed 6x6 input so tensors can be generated eagerly.
        prop_assume!(geom.input == 6 || SconvGeometry::new(6, geom.kernel, geom.stride, geom.pad).is_some());
        let g = SconvGeometry::new(6, geom.kernel, geom.stride, geom.pad).unwrap();
        let conv = Conv2d::new(2, 3, g.kernel, g.stride, g.pad).unwrap();
        let w = Tensor::from_fn(&[3, 2, g.kernel, g.kernel], |idx| {
            ((idx[0] + idx[1] * 2 + idx[2] * 3 + idx[3] * 5) % 9) as f32 * 0.25 - 1.0
        });
        let sum = a.zip_with(&b, |x, y| x + y);
        let lhs = conv.forward(&sum, &w);
        let rhs = conv.forward(&a, &w).zip_with(&conv.forward(&b, &w), |x, y| x + y);
        assert_tensors_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn wconv_zero_insert_agrees_with_defining_sum(geom in sconv_config(), seed in 0u64..1000) {
        let wg = WconvGeometry::new(geom.input, geom.kernel, geom.stride, geom.pad).unwrap();
        let conv = Conv2d::new(2, 2, geom.kernel, geom.stride, geom.pad).unwrap();
        let input = Tensor::from_fn(&[2, geom.input, geom.input], |idx| {
            ((idx[0] * 13 + idx[1] * 3 + idx[2] + seed as usize) % 11) as f32 * 0.5 - 2.5
        });
        let dout = Tensor::from_fn(&[2, geom.output, geom.output], |idx| {
            ((idx[0] * 7 + idx[1] * 5 + idx[2] * 2 + seed as usize) % 9) as f32 * 0.5 - 2.0
        });
        let a = conv.weight_grad(&input, &dout);
        let b = wconv_weight_grad_zero_insert(&input, &dout, &wg);
        assert_tensors_close(&a, &b, 1e-3);
    }

    #[test]
    fn sconv_geometry_window_fits(geom in sconv_config()) {
        // The last window must fit inside the padded input.
        let span = geom.input + 2 * geom.pad;
        prop_assert!((geom.output - 1) * geom.stride + geom.kernel <= span);
        prop_assert_eq!((span - geom.kernel) % geom.stride, geom.remainder);
    }

    #[test]
    fn tconv_useful_mults_never_exceed_total(geom in tconv_config()) {
        prop_assert!(geom.useful_multiplications_per_channel()
            <= geom.total_multiplications_per_channel());
        // At least the windows anchored on true inputs do useful work. (When
        // the kernel is smaller than the converse stride some interior
        // windows cover only inserted zeros, so not *every* window counts.)
        prop_assert!(geom.useful_multiplications_per_channel() >= geom.input * geom.input);
    }
}
