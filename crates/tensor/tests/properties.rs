//! Property-based tests for the reference kernels and geometry algebra.

use lergan_tensor::conv::{
    tconv_forward_direct, tconv_forward_zero_insert, wconv_weight_grad_zero_insert,
};
use lergan_tensor::zero_insert::expand_tconv_input;
use lergan_tensor::{
    assert_tensors_close, Conv2d, SconvGeometry, TconvGeometry, Tensor, WconvGeometry,
};
use proptest::prelude::*;

fn small_tensor(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

/// Valid T-CONV upsampling configs: (input, kernel, converse stride).
fn tconv_config() -> impl Strategy<Value = TconvGeometry> {
    (2usize..8, 2usize..6, 2usize..4).prop_filter_map("geometry must exist", |(i, w, s)| {
        TconvGeometry::for_upsampling(i, w, s)
    })
}

/// Valid S-CONV configs: (input, kernel, stride, pad) with an output.
fn sconv_config() -> impl Strategy<Value = SconvGeometry> {
    (4usize..12, 2usize..6, 1usize..4, 0usize..3)
        .prop_filter_map("geometry must exist", |(i, w, s, p)| {
            SconvGeometry::new(i, w, s, p).filter(|g| g.output >= 1)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tconv_zero_insert_agrees_with_direct(geom in tconv_config(), seed in 0u64..1000) {
        let ic = 1 + (seed % 3) as usize;
        let oc = 1 + (seed % 2) as usize;
        let input = Tensor::from_fn(&[ic, geom.input, geom.input], |idx| {
            ((idx[0] * 31 + idx[1] * 7 + idx[2] * 3 + seed as usize) % 13) as f32 - 6.0
        });
        let weights = Tensor::from_fn(&[oc, ic, geom.kernel, geom.kernel], |idx| {
            ((idx[0] * 17 + idx[1] * 5 + idx[2] * 11 + idx[3] + seed as usize) % 7) as f32 - 3.0
        });
        let a = tconv_forward_zero_insert(&input, &weights, &geom);
        let b = tconv_forward_direct(&input, &weights, &geom);
        assert_tensors_close(&a, &b, 1e-4);
    }

    #[test]
    fn expanded_zero_count_matches_eq7(geom in tconv_config()) {
        // Use strictly non-zero inputs so every zero in the expansion is an
        // inserted/padding zero.
        let input = Tensor::from_fn(&[1, geom.input, geom.input], |idx| {
            1.0 + (idx[1] * geom.input + idx[2]) as f32
        });
        let e = expand_tconv_input(&input, &geom);
        prop_assert_eq!(e.count_zeros(), geom.zeros_per_plane());
        prop_assert_eq!(e.shape()[1] - geom.kernel + 1, geom.output);
    }

    #[test]
    fn conv_forward_is_linear(geom in sconv_config(), a in small_tensor(vec![2usize, 6, 6]), b in small_tensor(vec![2usize, 6, 6])) {
        // Restrict to a fixed 6x6 input so tensors can be generated eagerly.
        prop_assume!(geom.input == 6 || SconvGeometry::new(6, geom.kernel, geom.stride, geom.pad).is_some());
        let g = SconvGeometry::new(6, geom.kernel, geom.stride, geom.pad).unwrap();
        let conv = Conv2d::new(2, 3, g.kernel, g.stride, g.pad).unwrap();
        let w = Tensor::from_fn(&[3, 2, g.kernel, g.kernel], |idx| {
            ((idx[0] + idx[1] * 2 + idx[2] * 3 + idx[3] * 5) % 9) as f32 * 0.25 - 1.0
        });
        let sum = a.zip_with(&b, |x, y| x + y);
        let lhs = conv.forward(&sum, &w);
        let rhs = conv.forward(&a, &w).zip_with(&conv.forward(&b, &w), |x, y| x + y);
        assert_tensors_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn wconv_zero_insert_agrees_with_defining_sum(geom in sconv_config(), seed in 0u64..1000) {
        let wg = WconvGeometry::new(geom.input, geom.kernel, geom.stride, geom.pad).unwrap();
        let conv = Conv2d::new(2, 2, geom.kernel, geom.stride, geom.pad).unwrap();
        let input = Tensor::from_fn(&[2, geom.input, geom.input], |idx| {
            ((idx[0] * 13 + idx[1] * 3 + idx[2] + seed as usize) % 11) as f32 * 0.5 - 2.5
        });
        let dout = Tensor::from_fn(&[2, geom.output, geom.output], |idx| {
            ((idx[0] * 7 + idx[1] * 5 + idx[2] * 2 + seed as usize) % 9) as f32 * 0.5 - 2.0
        });
        let a = conv.weight_grad(&input, &dout);
        let b = wconv_weight_grad_zero_insert(&input, &dout, &wg);
        assert_tensors_close(&a, &b, 1e-3);
    }

    #[test]
    fn sconv_geometry_window_fits(geom in sconv_config()) {
        // The last window must fit inside the padded input.
        let span = geom.input + 2 * geom.pad;
        prop_assert!((geom.output - 1) * geom.stride + geom.kernel <= span);
        prop_assert_eq!((span - geom.kernel) % geom.stride, geom.remainder);
    }

    #[test]
    fn tconv_useful_mults_never_exceed_total(geom in tconv_config()) {
        prop_assert!(geom.useful_multiplications_per_channel()
            <= geom.total_multiplications_per_channel());
        // At least the windows anchored on true inputs do useful work. (When
        // the kernel is smaller than the converse stride some interior
        // windows cover only inserted zeros, so not *every* window counts.)
        prop_assert!(geom.useful_multiplications_per_channel() >= geom.input * geom.input);
    }
}

/// Triple-loop oracle with the kernels' contract order: each element sums
/// its `k` products ascending from `0.0`. For degenerate shapes (any
/// dimension zero) the oracle is the empty sum — exactly `0.0` — over an
/// `m·n`-element (possibly empty) output.
fn oracle_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Degenerate and tiny GEMM shapes — `m`, `k`, or `n` of 0, and the
    /// 1×1×1 product — must be well-defined (no panic, no stale output)
    /// through every kernel entry point: the allocating wrappers, the
    /// `_into` variants, and the raw `_buf` kernels. All must agree with
    /// the triple-loop oracle bit-for-bit.
    #[test]
    fn degenerate_gemm_shapes_through_all_entry_points(
        m in 0usize..3,
        k in 0usize..3,
        n in 0usize..3,
        seed in 0u64..100,
    ) {
        use lergan_tensor::kernel::{gemm_buf, gemm_nt_buf, mmv_buf};
        use lergan_tensor::tensor::{gemm, gemm_nt, mmv};
        use lergan_tensor::{gemm_into, gemm_nt_into, mmv_into};

        let val = |i: usize| ((i as u64 * 37 + seed * 11) % 13) as f32 * 0.5 - 3.0;
        let a = Tensor::from_fn(&[m, k], |idx| val(idx[0] * k + idx[1]));
        let b = Tensor::from_fn(&[k, n], |idx| val(100 + idx[0] * n + idx[1]));
        let bt = Tensor::from_fn(&[n, k], |idx| {
            // bt is b transposed, so gemm and gemm_nt share one oracle.
            b.data()[idx[1] * n + idx[0]]
        });
        let v: Vec<f32> = (0..k).map(|i| val(200 + i)).collect();
        let want = oracle_gemm(m, k, n, a.data(), b.data());
        let want_v = oracle_gemm(m, k, 1, a.data(), &v);

        // Allocating wrappers.
        let g = gemm(&a, &b);
        prop_assert_eq!(g.shape(), &[m, n]);
        prop_assert_eq!(g.data(), &want[..]);
        let gnt = gemm_nt(&a, &bt);
        prop_assert_eq!(gnt.data(), &want[..]);
        let gv = mmv(&a, &v);
        prop_assert_eq!(&gv[..], &want_v[..]);

        // `_into` variants over a poisoned buffer: every element must be
        // overwritten (a surviving NaN fails the comparison).
        let mut out = vec![f32::NAN; m * n];
        gemm_into(&a, &b, &mut out);
        prop_assert_eq!(&out[..], &want[..]);
        out.fill(f32::NAN);
        gemm_nt_into(&a, &bt, &mut out);
        prop_assert_eq!(&out[..], &want[..]);
        let mut vout = vec![f32::NAN; m];
        mmv_into(&a, &v, &mut vout);
        prop_assert_eq!(&vout[..], &want_v[..]);

        // Raw slice kernels.
        out.fill(f32::NAN);
        gemm_buf(m, k, n, a.data(), b.data(), &mut out);
        prop_assert_eq!(&out[..], &want[..]);
        out.fill(f32::NAN);
        gemm_nt_buf(m, k, n, a.data(), bt.data(), &mut out);
        prop_assert_eq!(&out[..], &want[..]);
        vout.fill(f32::NAN);
        mmv_buf(m, k, a.data(), &v, &mut vout);
        prop_assert_eq!(&vout[..], &want_v[..]);
    }
}

/// GEMM shapes straddling the committed dispatch thresholds by ±1 on each
/// deciding axis, for both the `gemm` and `gemm_nt` threshold pairs: the
/// shapes where shape-adaptive dispatch flips between the direct and
/// packed strategies. Derived from `dispatch::thresholds()` at test time,
/// so regenerating `dispatch_thresholds.json` moves the sweep with it.
fn threshold_straddling_shapes() -> Vec<(usize, usize, usize)> {
    let t = lergan_tensor::dispatch::thresholds();
    let mut shapes = Vec::new();
    for &(max_m, max_kn) in &[
        (t.gemm_direct_max_m, t.gemm_direct_max_kn),
        (t.gemm_nt_direct_max_m, t.gemm_nt_direct_max_kn),
    ] {
        // Straddle the m threshold with k·n pinned above the kn threshold,
        // so m alone decides the strategy.
        let k = 16;
        let n_over = max_kn / k + 2;
        for m in [max_m.saturating_sub(1), max_m, max_m + 1, max_m + 2] {
            if m >= 1 {
                shapes.push((m, k, n_over));
            }
        }
        // Straddle the kn threshold by ±1 in n (then in k) with m pinned
        // above the m threshold, so k·n alone decides.
        let m = max_m + 2;
        let base_n = (max_kn / 8).max(1);
        for d in [-1isize, 0, 1] {
            let n_var = (base_n as isize + d).max(1) as usize;
            shapes.push((m, 8, n_var));
        }
        let base_k = (max_kn / 8).max(1);
        for d in [-1isize, 0, 1] {
            let k_var = (base_k as isize + d).max(1) as usize;
            shapes.push((m, k_var, 8));
        }
    }
    shapes.sort_unstable();
    shapes.dedup();
    shapes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// At every threshold-straddling shape, all strategies — the shapes on
    /// both sides of each dispatch flip — must agree bit-for-bit with the
    /// forced direct kernel, at 1, 2, and 8 threads. This pins the
    /// dispatch seams: a strategy that diverged only beyond (or below) a
    /// committed threshold would escape a fixed-shape suite.
    #[test]
    fn strategies_bit_agree_across_dispatch_thresholds(seed in 0u64..1000) {
        use lergan_tensor::dispatch::{with_strategy, ForcedStrategy};
        use lergan_tensor::parallel;
        use lergan_tensor::tensor::{gemm, gemm_nt};

        for (m, k, n) in threshold_straddling_shapes() {
            let val = |i: usize| ((i as u64 * 29 + seed * 17) % 23) as f32 * 0.25 - 2.75;
            let a = Tensor::from_fn(&[m, k], |idx| val(idx[0] * k + idx[1]));
            let b = Tensor::from_fn(&[k, n], |idx| val(300 + idx[0] * n + idx[1]));
            let bt = Tensor::from_fn(&[n, k], |idx| b.data()[idx[1] * n + idx[0]]);
            let (want_g, want_nt) = parallel::with_threads(1, || {
                with_strategy(ForcedStrategy::Direct, || (gemm(&a, &b), gemm_nt(&a, &bt)))
            });
            for threads in [1usize, 2, 8] {
                parallel::with_threads(threads, || {
                    for forced in [
                        ForcedStrategy::Auto,
                        ForcedStrategy::Direct,
                        ForcedStrategy::Packed,
                        ForcedStrategy::Simd,
                    ] {
                        with_strategy(forced, || {
                            let g = gemm(&a, &b);
                            let gnt = gemm_nt(&a, &bt);
                            for (i, (x, w)) in
                                g.data().iter().zip(want_g.data()).enumerate()
                            {
                                assert_eq!(
                                    x.to_bits(),
                                    w.to_bits(),
                                    "gemm[{forced:?}, {threads}t] {m}x{k}x{n} elem {i}"
                                );
                            }
                            for (i, (x, w)) in
                                gnt.data().iter().zip(want_nt.data()).enumerate()
                            {
                                assert_eq!(
                                    x.to_bits(),
                                    w.to_bits(),
                                    "gemm_nt[{forced:?}, {threads}t] {m}x{k}x{n} elem {i}"
                                );
                            }
                        });
                    }
                });
            }
        }
    }
}
