//! Shape-adaptive GEMM: SIMD microkernels, a no-pack direct path, and the
//! packed, cache-blocked BLIS-style driver.
//!
//! This module is the dense-compute core of the workspace. Every product
//! enters through [`gemm_buf`], [`gemm_nt_buf`] or [`mmv_buf`] (the
//! `_into` variants and the allocating wrappers in [`crate::tensor`] are
//! thin shells over them) and is routed by [`crate::dispatch`] to one of
//! three strategies:
//!
//! * **Direct** — no packing: register tiles accumulate straight out of
//!   the row-major right operand. This wins on the small `m = 16–64`
//!   products the benchmark GANs issue, where packing the right operand
//!   costs more than it saves. `mmv` (`n = 1`) always takes this path.
//! * **Packed** — the classic `jc → pc → ic → ir → jr` blocked driver:
//!   columns in panels of `NC`, the reduction in panels of `KC` packed
//!   into contiguous [`NR`]-wide strips, rows in blocks of `MC` and
//!   register tiles of [`MR`], with the scalar microkernel.
//! * **Packed + SIMD** — the same driver with the explicit AVX
//!   microkernel ([`NR`] = 8 = one 256-bit register of f32 lanes),
//!   runtime-detected. The direct path also uses the AVX kernel on its
//!   full-width column tiles when the host has it.
//!
//! # Bit-exactness
//!
//! Every output element of every strategy is accumulated as the scalar
//! chain `((0 + a_0·b_0) + a_1·b_1) + …` with the reduction index strictly
//! ascending — the same chain the pre-packing kernels produced. The SIMD
//! kernel preserves it because its vectors run across *output columns*:
//! lane `j` performs exactly the scalar column-`j` chain (separate IEEE-754
//! multiply and add per step, never FMA-contracted), and lanes never mix.
//! Blocking only ever stores the running value to and reloads it from
//! `f32` between panels, which is exact, and parallelism only splits
//! output *rows* across workers, so the chain per element is independent
//! of strategy, blocking, SIMD width, and thread count alike. Golden tests
//! in the workspace root pin all three strategies bit-for-bit against
//! verbatim copies of the pre-packing kernels across all benchmark GAN
//! shapes.

use crate::dispatch::{self, OpKind, Strategy};
use crate::parallel;
use crate::tensor::{Tensor, MIN_PARALLEL_FLOPS};
use crate::workspace;

/// Register-tile height: output rows accumulated at once.
pub const MR: usize = 4;
/// Register-tile width: output columns per packed strip, and the f32 lane
/// count of one AVX register.
pub const NR: usize = 8;
/// Row-block size: output rows that stream over one packed panel.
const MC: usize = 64;
/// Reduction-panel depth: one packed `[KC × NR]` strip stays in L1.
const KC: usize = 256;
/// Column-panel width: one packed `[KC × NC]` panel stays in L2.
const NC: usize = 1024;

/// The scalar accumulation-order-defining loop of the crate.
///
/// Accumulates `acc[i][j] += a[abase + i·lda + l] · b[bbase + l·ldb + j]`
/// for `l` ascending over one reduction panel. `ldb` is the row stride of
/// the right operand: [`NR`] for packed strips, the full matrix width `n`
/// for the direct path, and 1 for the blocked `mmv` (`NRW = 1`).
///
/// The loops are iterator-free with fixed trip counts over the register
/// tile, which LLVM unrolls and autovectorizes at the build's baseline
/// SIMD width; there is no FMA contraction (separate multiply and add), so
/// the result is the exact IEEE-754 chain the naive kernels compute. The
/// AVX twin (`microkernel_avx`) computes the same chain eight lanes at a
/// time; [`microkernel`] picks between them.
#[allow(clippy::needless_range_loop)] // fixed-width indexed loops vectorize as written
#[allow(clippy::too_many_arguments)] // mirrors the BLIS microkernel signature
#[inline(always)]
fn microkernel_scalar<const NRW: usize>(
    acc: &mut [[f32; NRW]; MR],
    mr: usize,
    a: &[f32],
    abase: usize,
    lda: usize,
    b: &[f32],
    bbase: usize,
    ldb: usize,
    kc: usize,
) {
    for l in 0..kc {
        let bv = &b[bbase + l * ldb..bbase + l * ldb + NRW];
        for i in 0..mr {
            let av = a[abase + i * lda + l];
            let row = &mut acc[i];
            for j in 0..NRW {
                row[j] += av * bv[j];
            }
        }
    }
}

/// Variable-width tail of the direct path: like [`microkernel_scalar`]
/// but over `jw < NR` live columns, for the right edge of an un-packed
/// (and therefore un-padded) right operand.
#[allow(clippy::too_many_arguments)]
fn microkernel_tail(
    acc: &mut [[f32; NR]; MR],
    mr: usize,
    jw: usize,
    a: &[f32],
    abase: usize,
    lda: usize,
    b: &[f32],
    bbase: usize,
    ldb: usize,
    kc: usize,
) {
    for l in 0..kc {
        let bv = &b[bbase + l * ldb..bbase + l * ldb + jw];
        for (i, row) in acc.iter_mut().enumerate().take(mr) {
            let av = a[abase + i * lda + l];
            for (j, &bj) in bv.iter().enumerate() {
                row[j] += av * bj;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    #[allow(clippy::wildcard_imports)] // the intrinsics module is designed for this
    use std::arch::x86_64::*;

    /// AVX twin of the scalar microkernel: one 256-bit register of eight
    /// f32 lanes per accumulator row, separate `_mm256_mul_ps` and
    /// `_mm256_add_ps` per step (never FMA), `l` strictly ascending — so
    /// lane `j`'s value is exactly the scalar kernel's column-`j` chain.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX support at runtime, `mr` must be
    /// at most [`MR`], `a` must cover the `mr × kc` tile rooted at `abase`
    /// with leading dimension `lda`, and `b` must hold [`NR`] readable
    /// values at `bbase + l·ldb` for every `l < kc`.
    #[target_feature(enable = "avx")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn microkernel_avx(
        acc: &mut [[f32; NR]; MR],
        mr: usize,
        a: &[f32],
        abase: usize,
        lda: usize,
        b: &[f32],
        bbase: usize,
        ldb: usize,
        kc: usize,
    ) {
        debug_assert!(mr <= MR);
        debug_assert!(kc == 0 || bbase + (kc - 1) * ldb + NR <= b.len());
        debug_assert!(mr == 0 || kc == 0 || abase + (mr - 1) * lda + kc <= a.len());
        let mut va = [_mm256_setzero_ps(); MR];
        for (i, row) in acc.iter().enumerate().take(mr) {
            va[i] = _mm256_loadu_ps(row.as_ptr());
        }
        let ap = a.as_ptr();
        let bp = b.as_ptr().add(bbase);
        for l in 0..kc {
            let bv = _mm256_loadu_ps(bp.add(l * ldb));
            for (i, v) in va.iter_mut().enumerate().take(mr) {
                let av = _mm256_set1_ps(*ap.add(abase + i * lda + l));
                *v = _mm256_add_ps(*v, _mm256_mul_ps(av, bv));
            }
        }
        for (i, row) in acc.iter_mut().enumerate().take(mr) {
            _mm256_storeu_ps(row.as_mut_ptr(), va[i]);
        }
    }
}

/// Full-width microkernel step: the AVX kernel when `use_simd` (the caller
/// pairs it with runtime detection), the scalar kernel otherwise. Both
/// compute the identical accumulation chain.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel(
    acc: &mut [[f32; NR]; MR],
    mr: usize,
    a: &[f32],
    abase: usize,
    lda: usize,
    b: &[f32],
    bbase: usize,
    ldb: usize,
    kc: usize,
    use_simd: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        // SAFETY: callers set `use_simd` only when `dispatch::simd_available`
        // confirmed AVX, and the drivers uphold the tile bounds.
        unsafe { x86::microkernel_avx(acc, mr, a, abase, lda, b, bbase, ldb, kc) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    microkernel_scalar::<NR>(acc, mr, a, abase, lda, b, bbase, ldb, kc);
}

/// Where packed strips gather their values from.
enum PackSrc<'a> {
    /// Row-major `[k, n]` right operand (`b` of [`gemm_into`]).
    Rows(&'a [f32], usize),
    /// Row-major `[n, k]` pre-transposed right operand (`bt` of
    /// [`gemm_nt_into`]): column `j` of the product is row `j` here.
    Cols(&'a [f32], usize),
}

/// Packs the `kc × nc` panel rooted at `(pc, jc)` into `NR`-wide strips:
/// strip `s` covers product columns `jc + s·NR ..`, laid out as `kc` rows
/// of `NR` contiguous values, zero-padded past the matrix edge so the
/// microkernel never branches on the column tail. Padding lanes multiply
/// finite left-operand values by `+0.0` and are never stored, so they
/// cannot perturb any real output element.
fn pack_panel(src: &PackSrc<'_>, pc: usize, kc: usize, jc: usize, nc: usize, buf: &mut [f32]) {
    let nstrips = nc.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = jc + s * NR;
        let jw = NR.min(jc + nc - j0);
        let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
        match *src {
            PackSrc::Rows(b, n) => {
                for l in 0..kc {
                    let brow = &b[(pc + l) * n + j0..(pc + l) * n + j0 + jw];
                    let dst = &mut strip[l * NR..l * NR + NR];
                    dst[..jw].copy_from_slice(brow);
                    dst[jw..].fill(0.0);
                }
            }
            PackSrc::Cols(bt, k) => {
                for jj in 0..jw {
                    let brow = &bt[(j0 + jj) * k + pc..(j0 + jj) * k + pc + kc];
                    for (l, &v) in brow.iter().enumerate() {
                        strip[l * NR + jj] = v;
                    }
                }
                for jj in jw..NR {
                    for l in 0..kc {
                        strip[l * NR + jj] = 0.0;
                    }
                }
            }
        }
    }
}

/// Serial blocked driver over one worker's contiguous row range.
///
/// `orows` is the worker's slab of the output (`mw` full rows of width
/// `n`), `row0` its first absolute row. Each worker packs into its own
/// thread-local buffer, so no packing state is shared across threads.
#[allow(clippy::too_many_arguments)]
fn gemm_rows_packed(
    orows: &mut [f32],
    row0: usize,
    a: &[f32],
    k: usize,
    n: usize,
    src: &PackSrc<'_>,
    pack: &mut [f32],
    use_simd: bool,
) {
    let mw = orows.len() / n;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nstrips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panel = &mut pack[..nstrips * kc * NR];
            pack_panel(src, pc, kc, jc, nc, panel);
            for ic in (0..mw).step_by(MC) {
                let mc = MC.min(mw - ic);
                for ir in (0..mc).step_by(MR) {
                    let i0 = ic + ir;
                    let mr = MR.min(mc - ir);
                    for s in 0..nstrips {
                        let j0 = jc + s * NR;
                        let jw = NR.min(jc + nc - j0);
                        let mut acc = [[0.0f32; NR]; MR];
                        for (i, row) in acc.iter_mut().enumerate().take(mr) {
                            let base = (i0 + i) * n + j0;
                            row[..jw].copy_from_slice(&orows[base..base + jw]);
                        }
                        microkernel(
                            &mut acc,
                            mr,
                            a,
                            (row0 + i0) * k + pc,
                            k,
                            panel,
                            s * kc * NR,
                            NR,
                            kc,
                            use_simd,
                        );
                        for (i, row) in acc.iter().enumerate().take(mr) {
                            let base = (i0 + i) * n + j0;
                            orows[base..base + jw].copy_from_slice(&row[..jw]);
                        }
                    }
                }
            }
        }
    }
}

/// Serial direct (no-pack) driver over one worker's contiguous row range:
/// register tiles accumulate straight out of the row-major `[k, n]` right
/// operand, the whole reduction held in registers. For the small shapes
/// dispatch routes here, `b` is cache-resident anyway and the packed
/// driver's copy of it is pure overhead.
fn gemm_rows_direct(orows: &mut [f32], row0: usize, a: &[f32], k: usize, n: usize, b: &[f32]) {
    let mw = orows.len() / n;
    let use_simd = dispatch::simd_available();
    let full = n - n % NR;
    for i0 in (0..mw).step_by(MR) {
        let mr = MR.min(mw - i0);
        let abase = (row0 + i0) * k;
        let mut j0 = 0;
        while j0 < full {
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(&mut acc, mr, a, abase, k, b, j0, n, k, use_simd);
            for (i, row) in acc.iter().enumerate().take(mr) {
                let base = (i0 + i) * n + j0;
                orows[base..base + NR].copy_from_slice(row);
            }
            j0 += NR;
        }
        if j0 < n {
            let jw = n - j0;
            let mut acc = [[0.0f32; NR]; MR];
            microkernel_tail(&mut acc, mr, jw, a, abase, k, b, j0, n, k);
            for (i, row) in acc.iter().enumerate().take(mr) {
                let base = (i0 + i) * n + j0;
                orows[base..base + jw].copy_from_slice(&row[..jw]);
            }
        }
    }
}

/// Serial direct driver for the pre-transposed right operand: each output
/// element is one contiguous ascending dot product over `a` row `i` and
/// `bt` row `j` — the exact chain, with no pack and no padding lanes.
fn gemm_nt_rows_direct(orows: &mut [f32], row0: usize, a: &[f32], k: usize, n: usize, bt: &[f32]) {
    let mw = orows.len() / n;
    for i in 0..mw {
        let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
        let orow = &mut orows[i * n..(i + 1) * n];
        for (j, slot) in orow.iter_mut().enumerate() {
            let brow = &bt[j * k..j * k + k];
            *slot = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
        }
    }
}

/// Shared parallel dispatch of the packed strategies: splits output rows
/// across workers (disjoint rows, full reduction per element —
/// bit-identical for every thread count) and runs the blocked driver on
/// each range.
fn run_packed(m: usize, k: usize, n: usize, a: &[f32], src: PackSrc<'_>, out: &mut [f32], strategy: Strategy) {
    debug_assert!(m > 0 && k > 0 && n > 0);
    let use_simd = strategy == Strategy::PackedSimd && dispatch::simd_available();
    let min_rows = (MIN_PARALLEL_FLOPS / (k * n)).max(1);
    let pack_len = n.min(NC).div_ceil(NR) * NR * k.min(KC);
    parallel::for_each_unit_chunk_mut(out, n, min_rows, |row0, orows| {
        workspace::with_pack_buffer(pack_len, |pack| {
            gemm_rows_packed(orows, row0, a, k, n, &src, pack, use_simd);
        });
    });
}

/// Slice-level shape-dispatched GEMM: `out[m, n] = a[m, k] × b[k, n]`,
/// all row-major.
///
/// `out` is fully overwritten (zeroed first), so stale contents of a pooled
/// buffer are fine. Degenerate shapes are well-defined: any zero dimension
/// yields an all-zero (possibly empty) output. The strategy is chosen by
/// [`dispatch::select`] from the shape alone and never affects the result.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_buf(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm left operand length mismatch");
    assert_eq!(b.len(), k * n, "gemm right operand length mismatch");
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    match dispatch::select(OpKind::Gemm, m, k, n) {
        Strategy::Direct => {
            let min_rows = (MIN_PARALLEL_FLOPS / (k * n)).max(1);
            parallel::for_each_unit_chunk_mut(out, n, min_rows, |row0, orows| {
                gemm_rows_direct(orows, row0, a, k, n, b);
            });
        }
        s => run_packed(m, k, n, a, PackSrc::Rows(b, n), out, s),
    }
}

/// Slice-level shape-dispatched GEMM with a pre-transposed right operand:
/// `out[m, n] = a[m, k] × (bt[n, k])ᵀ`. Same conventions as [`gemm_buf`].
///
/// # Panics
///
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_nt_buf(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt left operand length mismatch");
    assert_eq!(bt.len(), n * k, "gemm_nt right operand length mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt output length mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    match dispatch::select(OpKind::GemmNt, m, k, n) {
        Strategy::Direct => {
            let min_rows = (MIN_PARALLEL_FLOPS / (k * n)).max(1);
            parallel::for_each_unit_chunk_mut(out, n, min_rows, |row0, orows| {
                gemm_nt_rows_direct(orows, row0, a, k, n, bt);
            });
        }
        s => run_packed(m, k, n, a, PackSrc::Cols(bt, k), out, s),
    }
}

/// Slice-level matrix-vector product: `out[rows] = mdata[rows, cols] · v`.
///
/// With one output column, packing can never amortise, so shape-based
/// selection always takes the direct path: one contiguous ascending dot
/// product per row. (A pinned packed strategy still exercises the blocked
/// `NRW = 1` driver — the bit-identity suite and the `mmv` bench entry use
/// that to prove the two agree and the direct path wins.) Same conventions
/// as [`gemm_buf`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `rows`/`cols`.
pub fn mmv_buf(rows: usize, cols: usize, mdata: &[f32], v: &[f32], out: &mut [f32]) {
    assert_eq!(mdata.len(), rows * cols, "mmv matrix length mismatch");
    assert_eq!(v.len(), cols, "mmv vector length mismatch");
    assert_eq!(out.len(), rows, "mmv output length mismatch");
    out.fill(0.0);
    if rows == 0 || cols == 0 {
        return;
    }
    let min_rows = (MIN_PARALLEL_FLOPS / cols).max(1);
    match dispatch::select(OpKind::Mmv, rows, cols, 1) {
        Strategy::Direct => {
            parallel::for_each_chunk_mut(out, min_rows, |row0, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let row = &mdata[(row0 + i) * cols..(row0 + i + 1) * cols];
                    *slot = row.iter().zip(v).map(|(&a, &b)| a * b).sum();
                }
            });
        }
        _ => {
            parallel::for_each_unit_chunk_mut(out, 1, min_rows, |row0, orows| {
                let mw = orows.len();
                for pc in (0..cols).step_by(KC) {
                    let kc = KC.min(cols - pc);
                    for i0 in (0..mw).step_by(MR) {
                        let mr = MR.min(mw - i0);
                        let mut acc = [[0.0f32; 1]; MR];
                        for (i, row) in acc.iter_mut().enumerate().take(mr) {
                            row[0] = orows[i0 + i];
                        }
                        microkernel_scalar::<1>(
                            &mut acc,
                            mr,
                            mdata,
                            (row0 + i0) * cols + pc,
                            cols,
                            v,
                            pc,
                            1,
                            kc,
                        );
                        for (i, row) in acc.iter().enumerate().take(mr) {
                            orows[i0 + i] = row[0];
                        }
                    }
                }
            });
        }
    }
}

/// Shape-dispatched GEMM into a caller-owned buffer: `a` is `[m, k]`, `b`
/// is `[k, n]`, `out` receives the row-major `[m, n]` product.
///
/// # Panics
///
/// Panics if either operand is not rank-2, the inner dimensions differ, or
/// `out` is not exactly `m · n` long.
pub fn gemm_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().len(), 2, "gemm expects rank-2 operands");
    assert_eq!(b.shape().len(), 2, "gemm expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "gemm inner dimensions disagree");
    gemm_buf(m, k, n, a.data(), b.data(), out);
}

/// Shape-dispatched GEMM with pre-transposed right operand into a
/// caller-owned buffer: `a` is `[m, k]`, `bt` is `[n, k]`, `out` receives
/// `[m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank-2, the inner dimensions (the
/// *second* extent of both operands) differ, or `out` is not `m · n` long.
pub fn gemm_nt_into(a: &Tensor, bt: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().len(), 2, "gemm_nt expects rank-2 operands");
    assert_eq!(bt.shape().len(), 2, "gemm_nt expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (bt.shape()[0], bt.shape()[1]);
    assert_eq!(k, kb, "gemm_nt inner dimensions disagree");
    gemm_nt_buf(m, k, n, a.data(), bt.data(), out);
}

/// Matrix-vector product into a caller-owned buffer: `m` is `[rows,
/// cols]`, `out` receives the `rows` results.
///
/// # Panics
///
/// Panics if `m` is not rank-2 or either slice length mismatches.
pub fn mmv_into(m: &Tensor, v: &[f32], out: &mut [f32]) {
    assert_eq!(m.shape().len(), 2, "mmv expects a rank-2 matrix");
    let (rows, cols) = (m.shape()[0], m.shape()[1]);
    mmv_buf(rows, cols, m.data(), v, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{with_strategy, ForcedStrategy};
    use crate::parallel::with_threads;
    use crate::tensor::{gemm, gemm_nt, mmv};

    const ALL_FORCED: [ForcedStrategy; 4] = [
        ForcedStrategy::Auto,
        ForcedStrategy::Direct,
        ForcedStrategy::Packed,
        ForcedStrategy::Simd,
    ];

    fn det(shape: &[usize]) -> Tensor {
        let mut state = 0x9e3779b97f4a7c15u64;
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f64 / (1u64 << 24) as f64) as f32 - 0.5
        })
    }

    /// Reference chain: one ascending dot product per element, exactly the
    /// pre-packing kernels' order.
    fn gemm_ref(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = a.data()[i * k + l];
                for j in 0..n {
                    out[i * n + j] += av * b.data()[l * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn every_strategy_matches_reference_chain_bitwise() {
        // Shapes straddling every blocking boundary: MR/NR tails, multiple
        // KC panels, single-element edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 8),
            (5, 300, 17),
            (13, 520, 33),
            (64, 64, 64),
        ] {
            let a = det(&[m, k]);
            let b = det(&[k, n]);
            let r = gemm_ref(&a, &b);
            for forced in ALL_FORCED {
                for threads in [1, 2, 8] {
                    let got =
                        with_strategy(forced, || with_threads(threads, || gemm(&a, &b)));
                    assert_eq!(
                        got.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "gemm {m}x{k}x{n} {forced:?} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_nt_column_matches_mmv_bitwise_per_strategy() {
        // The documented contract: gemm_nt(a, bt) column j == mmv(a, bt
        // row j), bit for bit, whatever strategies the two dispatch to.
        let a = det(&[6, 37]);
        let bt = det(&[9, 37]);
        for forced in ALL_FORCED {
            let full = with_strategy(forced, || gemm_nt(&a, &bt));
            for j in 0..9 {
                let row = &bt.data()[j * 37..(j + 1) * 37];
                let col = mmv(&a, row);
                for (i, &v) in col.iter().enumerate() {
                    assert_eq!(full.data()[i * 9 + j].to_bits(), v.to_bits(), "{forced:?}");
                }
            }
        }
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let a = det(&[3, 5]);
        let b = det(&[5, 4]);
        let mut out = vec![f32::NAN; 12];
        gemm_into(&a, &b, &mut out);
        assert_eq!(out, gemm(&a, &b).data());
        let bt = det(&[4, 5]);
        let mut out = vec![f32::NAN; 12];
        gemm_nt_into(&a, &bt, &mut out);
        assert_eq!(out, gemm_nt(&a, &bt).data());
        let mut out = vec![f32::NAN; 3];
        mmv_into(&a, &b.data()[..5], &mut out);
        assert_eq!(out, mmv(&a, &b.data()[..5]));
    }

    #[test]
    fn degenerate_shapes_are_well_defined_per_strategy() {
        for forced in ALL_FORCED {
            with_strategy(forced, || {
                for &(m, k, n) in &[(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 1, 1)] {
                    let a = det(&[m, k]);
                    let b = det(&[k, n]);
                    let out = gemm(&a, &b);
                    assert_eq!(out.shape(), &[m, n]);
                    if k == 0 {
                        assert!(out.data().iter().all(|&x| x == 0.0));
                    }
                    let bt = det(&[n, k]);
                    assert_eq!(gemm_nt(&a, &bt).shape(), &[m, n]);
                    let v = vec![1.0; k];
                    assert_eq!(mmv(&a, &v).len(), m);
                }
            });
        }
    }

    #[test]
    fn mmv_blocked_and_direct_agree_bitwise() {
        // The satellite contract behind `mmv` always dispatching direct:
        // the retired blocked path and the direct dot agree exactly, so
        // the change is pure speed.
        let m = det(&[37, 520]);
        let v: Vec<f32> = (0..520).map(|i| (i as f32 * 0.37).sin()).collect();
        let direct = with_strategy(ForcedStrategy::Direct, || mmv(&m, &v));
        let blocked = with_strategy(ForcedStrategy::Packed, || mmv(&m, &v));
        let auto = mmv(&m, &v);
        for ((d, b), x) in direct.iter().zip(&blocked).zip(&auto) {
            assert_eq!(d.to_bits(), b.to_bits());
            assert_eq!(d.to_bits(), x.to_bits());
        }
    }
}
