//! Packed, cache-blocked GEMM microkernels.
//!
//! This module is the dense-compute core of the workspace: a BLIS-style
//! blocked GEMM with an explicit B-panel packing step and a register-tiled
//! `MR × NR` microkernel. [`gemm_into`], [`gemm_nt_into`] and [`mmv_into`]
//! write into caller-owned buffers (no allocation on the serial path); the
//! `gemm`/`gemm_nt`/`mmv` functions in [`crate::tensor`] are thin
//! allocating wrappers over them.
//!
//! # Blocking scheme
//!
//! The driver walks the output in the classic `jc → pc → ic → ir → jr`
//! order: columns in panels of `NC`, the reduction in panels of `KC`
//! (packed into contiguous [`NR`]-wide strips so the microkernel streams
//! one cache line per step), rows in blocks of `MC` and register tiles of
//! [`MR`]. The left operand is row-major and read in place — its rows are
//! already contiguous along the reduction, so only B is packed.
//!
//! # Bit-exactness
//!
//! Every output element is accumulated by the `microkernel` as the scalar
//! chain `((0 + a_0·b_0) + a_1·b_1) + …` with the reduction index strictly
//! ascending — the same chain the pre-packing kernels produced, and the
//! same chain for every blocking parameter choice (the running value is
//! stored to and reloaded from `f32` between `KC` panels, which is exact).
//! Parallelism only ever splits output *rows* across workers, so the chain
//! per element is independent of the thread count. Golden tests in the
//! workspace root pin the packed kernels bit-for-bit against verbatim
//! copies of the pre-packing kernels across all benchmark GAN shapes.

use crate::parallel;
use crate::tensor::{Tensor, MIN_PARALLEL_FLOPS};
use crate::workspace;

/// Register-tile height: output rows accumulated at once.
pub const MR: usize = 4;
/// Register-tile width: output columns per packed strip.
pub const NR: usize = 8;
/// Row-block size: output rows that stream over one packed panel.
const MC: usize = 64;
/// Reduction-panel depth: one packed `[KC × NR]` strip stays in L1.
const KC: usize = 256;
/// Column-panel width: one packed `[KC × NC]` panel stays in L2.
const NC: usize = 1024;

/// The single accumulation-order-defining loop of the crate.
///
/// Accumulates `acc[i][j] += a[abase + i·lda + l] · strip[l·NRW + j]` for
/// `l` ascending over one packed reduction panel. Every output element of
/// every dense kernel in this crate — [`gemm_into`], [`gemm_nt_into`] and
/// [`mmv_into`] (`NRW = 1`) alike — is produced by this chain, so the
/// accumulation order is defined in exactly one place.
///
/// The loops are iterator-free with fixed trip counts over the register
/// tile, which LLVM unrolls and autovectorizes; there is no FMA contraction
/// (separate multiply and add), so the result is the exact IEEE-754 chain
/// the naive kernels compute.
#[allow(clippy::needless_range_loop)] // fixed-width indexed loops vectorize as written
#[inline(always)]
fn microkernel<const NRW: usize>(
    acc: &mut [[f32; NRW]; MR],
    mr: usize,
    a: &[f32],
    abase: usize,
    lda: usize,
    strip: &[f32],
    kc: usize,
) {
    for l in 0..kc {
        let b = &strip[l * NRW..l * NRW + NRW];
        for i in 0..mr {
            let av = a[abase + i * lda + l];
            let row = &mut acc[i];
            for j in 0..NRW {
                row[j] += av * b[j];
            }
        }
    }
}

/// Where packed strips gather their values from.
enum PackSrc<'a> {
    /// Row-major `[k, n]` right operand (`b` of [`gemm_into`]).
    Rows(&'a [f32], usize),
    /// Row-major `[n, k]` pre-transposed right operand (`bt` of
    /// [`gemm_nt_into`]): column `j` of the product is row `j` here.
    Cols(&'a [f32], usize),
}

/// Packs the `kc × nc` panel rooted at `(pc, jc)` into `NR`-wide strips:
/// strip `s` covers product columns `jc + s·NR ..`, laid out as `kc` rows
/// of `NR` contiguous values, zero-padded past the matrix edge so the
/// microkernel never branches on the column tail. Padding lanes multiply
/// finite left-operand values by `+0.0` and are never stored, so they
/// cannot perturb any real output element.
fn pack_panel(src: &PackSrc<'_>, pc: usize, kc: usize, jc: usize, nc: usize, buf: &mut [f32]) {
    let nstrips = nc.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = jc + s * NR;
        let jw = NR.min(jc + nc - j0);
        let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
        match *src {
            PackSrc::Rows(b, n) => {
                for l in 0..kc {
                    let brow = &b[(pc + l) * n + j0..(pc + l) * n + j0 + jw];
                    let dst = &mut strip[l * NR..l * NR + NR];
                    dst[..jw].copy_from_slice(brow);
                    dst[jw..].fill(0.0);
                }
            }
            PackSrc::Cols(bt, k) => {
                for jj in 0..jw {
                    let brow = &bt[(j0 + jj) * k + pc..(j0 + jj) * k + pc + kc];
                    for (l, &v) in brow.iter().enumerate() {
                        strip[l * NR + jj] = v;
                    }
                }
                for jj in jw..NR {
                    for l in 0..kc {
                        strip[l * NR + jj] = 0.0;
                    }
                }
            }
        }
    }
}

/// Serial blocked driver over one worker's contiguous row range.
///
/// `orows` is the worker's slab of the output (`mw` full rows of width
/// `n`), `row0` its first absolute row. Each worker packs into its own
/// thread-local buffer, so no packing state is shared across threads.
fn gemm_rows_packed(
    orows: &mut [f32],
    row0: usize,
    a: &[f32],
    k: usize,
    n: usize,
    src: &PackSrc<'_>,
    pack: &mut [f32],
) {
    let mw = orows.len() / n;
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nstrips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let panel = &mut pack[..nstrips * kc * NR];
            pack_panel(src, pc, kc, jc, nc, panel);
            for ic in (0..mw).step_by(MC) {
                let mc = MC.min(mw - ic);
                for ir in (0..mc).step_by(MR) {
                    let i0 = ic + ir;
                    let mr = MR.min(mc - ir);
                    for s in 0..nstrips {
                        let j0 = jc + s * NR;
                        let jw = NR.min(jc + nc - j0);
                        let strip = &panel[s * kc * NR..(s + 1) * kc * NR];
                        let mut acc = [[0.0f32; NR]; MR];
                        for (i, row) in acc.iter_mut().enumerate().take(mr) {
                            let base = (i0 + i) * n + j0;
                            row[..jw].copy_from_slice(&orows[base..base + jw]);
                        }
                        microkernel(&mut acc, mr, a, (row0 + i0) * k + pc, k, strip, kc);
                        for (i, row) in acc.iter().enumerate().take(mr) {
                            let base = (i0 + i) * n + j0;
                            orows[base..base + jw].copy_from_slice(&row[..jw]);
                        }
                    }
                }
            }
        }
    }
}

/// Shared parallel dispatch: splits output rows across workers (disjoint
/// rows, full reduction per element — bit-identical for every thread
/// count) and runs the blocked driver on each range.
fn run(m: usize, k: usize, n: usize, a: &[f32], src: PackSrc<'_>, out: &mut [f32]) {
    debug_assert!(m > 0 && k > 0 && n > 0);
    let min_rows = (MIN_PARALLEL_FLOPS / (k * n)).max(1);
    let pack_len = n.min(NC).div_ceil(NR) * NR * k.min(KC);
    parallel::for_each_unit_chunk_mut(out, n, min_rows, |row0, orows| {
        workspace::with_pack_buffer(pack_len, |pack| {
            gemm_rows_packed(orows, row0, a, k, n, &src, pack);
        });
    });
}

/// Slice-level packed GEMM: `out[m, n] = a[m, k] × b[k, n]`, all row-major.
///
/// `out` is fully overwritten (zeroed first), so stale contents of a pooled
/// buffer are fine. Degenerate shapes are well-defined: any zero dimension
/// yields an all-zero (possibly empty) output.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_buf(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm left operand length mismatch");
    assert_eq!(b.len(), k * n, "gemm right operand length mismatch");
    assert_eq!(out.len(), m * n, "gemm output length mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    run(m, k, n, a, PackSrc::Rows(b, n), out);
}

/// Slice-level packed GEMM with a pre-transposed right operand:
/// `out[m, n] = a[m, k] × (bt[n, k])ᵀ`. Same conventions as [`gemm_buf`].
///
/// # Panics
///
/// Panics if any slice length disagrees with its `m`/`k`/`n` dimensions.
pub fn gemm_nt_buf(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt left operand length mismatch");
    assert_eq!(bt.len(), n * k, "gemm_nt right operand length mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt output length mismatch");
    out.fill(0.0);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    run(m, k, n, a, PackSrc::Cols(bt, k), out);
}

/// Slice-level matrix-vector product: `out[rows] = mdata[rows, cols] · v`.
///
/// The vector is its own packed strip (`NRW = 1`), so this path never
/// touches the packing buffer. Same conventions as [`gemm_buf`].
///
/// # Panics
///
/// Panics if any slice length disagrees with `rows`/`cols`.
pub fn mmv_buf(rows: usize, cols: usize, mdata: &[f32], v: &[f32], out: &mut [f32]) {
    assert_eq!(mdata.len(), rows * cols, "mmv matrix length mismatch");
    assert_eq!(v.len(), cols, "mmv vector length mismatch");
    assert_eq!(out.len(), rows, "mmv output length mismatch");
    out.fill(0.0);
    if rows == 0 || cols == 0 {
        return;
    }
    let min_rows = (MIN_PARALLEL_FLOPS / cols).max(1);
    parallel::for_each_unit_chunk_mut(out, 1, min_rows, |row0, orows| {
        let mw = orows.len();
        for pc in (0..cols).step_by(KC) {
            let kc = KC.min(cols - pc);
            let strip = &v[pc..pc + kc];
            for i0 in (0..mw).step_by(MR) {
                let mr = MR.min(mw - i0);
                let mut acc = [[0.0f32; 1]; MR];
                for (i, row) in acc.iter_mut().enumerate().take(mr) {
                    row[0] = orows[i0 + i];
                }
                microkernel(&mut acc, mr, mdata, (row0 + i0) * cols + pc, cols, strip, kc);
                for (i, row) in acc.iter().enumerate().take(mr) {
                    orows[i0 + i] = row[0];
                }
            }
        }
    });
}

/// Packed GEMM into a caller-owned buffer: `a` is `[m, k]`, `b` is
/// `[k, n]`, `out` receives the row-major `[m, n]` product.
///
/// # Panics
///
/// Panics if either operand is not rank-2, the inner dimensions differ, or
/// `out` is not exactly `m · n` long.
pub fn gemm_into(a: &Tensor, b: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().len(), 2, "gemm expects rank-2 operands");
    assert_eq!(b.shape().len(), 2, "gemm expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "gemm inner dimensions disagree");
    gemm_buf(m, k, n, a.data(), b.data(), out);
}

/// Packed GEMM with pre-transposed right operand into a caller-owned
/// buffer: `a` is `[m, k]`, `bt` is `[n, k]`, `out` receives `[m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank-2, the inner dimensions (the
/// *second* extent of both operands) differ, or `out` is not `m · n` long.
pub fn gemm_nt_into(a: &Tensor, bt: &Tensor, out: &mut [f32]) {
    assert_eq!(a.shape().len(), 2, "gemm_nt expects rank-2 operands");
    assert_eq!(bt.shape().len(), 2, "gemm_nt expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (bt.shape()[0], bt.shape()[1]);
    assert_eq!(k, kb, "gemm_nt inner dimensions disagree");
    gemm_nt_buf(m, k, n, a.data(), bt.data(), out);
}

/// Matrix-vector product into a caller-owned buffer: `m` is `[rows,
/// cols]`, `out` receives the `rows` results.
///
/// # Panics
///
/// Panics if `m` is not rank-2 or either slice length mismatches.
pub fn mmv_into(m: &Tensor, v: &[f32], out: &mut [f32]) {
    assert_eq!(m.shape().len(), 2, "mmv expects a rank-2 matrix");
    let (rows, cols) = (m.shape()[0], m.shape()[1]);
    mmv_buf(rows, cols, m.data(), v, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_threads;
    use crate::tensor::{gemm, gemm_nt, mmv};

    fn det(shape: &[usize]) -> Tensor {
        let mut state = 0x9e3779b97f4a7c15u64;
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f64 / (1u64 << 24) as f64) as f32 - 0.5
        })
    }

    /// Reference chain: one ascending dot product per element, exactly the
    /// pre-packing kernels' order.
    fn gemm_ref(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for l in 0..k {
                let av = a.data()[i * k + l];
                for j in 0..n {
                    out[i * n + j] += av * b.data()[l * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn packed_gemm_matches_reference_chain_bitwise() {
        // Shapes straddling every blocking boundary: MR/NR tails, multiple
        // KC panels, single-element edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 8, 8),
            (5, 300, 17),
            (13, 520, 33),
            (64, 64, 64),
        ] {
            let a = det(&[m, k]);
            let b = det(&[k, n]);
            let r = gemm_ref(&a, &b);
            for threads in [1, 2, 8] {
                let got = with_threads(threads, || gemm(&a, &b));
                assert_eq!(
                    got.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "gemm {m}x{k}x{n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn gemm_nt_column_matches_mmv_bitwise() {
        // The documented contract: gemm_nt(a, bt) column j == mmv(a, bt
        // row j), bit for bit.
        let a = det(&[6, 37]);
        let bt = det(&[9, 37]);
        let full = gemm_nt(&a, &bt);
        for j in 0..9 {
            let row = &bt.data()[j * 37..(j + 1) * 37];
            let col = mmv(&a, row);
            for (i, &v) in col.iter().enumerate() {
                assert_eq!(full.data()[i * 9 + j].to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let a = det(&[3, 5]);
        let b = det(&[5, 4]);
        let mut out = vec![f32::NAN; 12];
        gemm_into(&a, &b, &mut out);
        assert_eq!(out, gemm(&a, &b).data());
        let bt = det(&[4, 5]);
        let mut out = vec![f32::NAN; 12];
        gemm_nt_into(&a, &bt, &mut out);
        assert_eq!(out, gemm_nt(&a, &bt).data());
        let mut out = vec![f32::NAN; 3];
        mmv_into(&a, &b.data()[..5], &mut out);
        assert_eq!(out, mmv(&a, &b.data()[..5]));
    }

    #[test]
    fn degenerate_shapes_are_well_defined() {
        for &(m, k, n) in &[(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0), (1, 1, 1)] {
            let a = det(&[m, k]);
            let b = det(&[k, n]);
            let out = gemm(&a, &b);
            assert_eq!(out.shape(), &[m, n]);
            if k == 0 {
                assert!(out.data().iter().all(|&x| x == 0.0));
            }
            let bt = det(&[n, k]);
            assert_eq!(gemm_nt(&a, &bt).shape(), &[m, n]);
            let v = vec![1.0; k];
            assert_eq!(mmv(&a, &v).len(), m);
        }
    }
}
