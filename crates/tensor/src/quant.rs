//! Fixed-point quantisation for the 16-bit PIM data path.
//!
//! LerGAN (like PipeLayer) trains with 16-bit inputs, weights and
//! outputs. This module models that data path: symmetric two's-complement
//! fixed point with a configurable fraction width, integer MMV with wide
//! accumulation, and error bounds that the hardware-facing tests lean on.

use crate::tensor::Tensor;

/// A signed fixed-point format: `total_bits` two's-complement bits with
/// `frac_bits` of fraction.
///
/// # Example
///
/// ```
/// use lergan_tensor::quant::FixedPoint;
/// let q = FixedPoint::new(16, 12).unwrap();
/// let code = q.quantize(0.7512);
/// assert!((q.dequantize(code) - 0.7512).abs() <= q.step());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedPoint {
    total_bits: u32,
    frac_bits: u32,
}

impl FixedPoint {
    /// Creates a format. Returns `None` unless
    /// `0 < total_bits ≤ 32` and `frac_bits < total_bits`.
    pub fn new(total_bits: u32, frac_bits: u32) -> Option<Self> {
        if total_bits == 0 || total_bits > 32 || frac_bits >= total_bits {
            return None;
        }
        Some(FixedPoint {
            total_bits,
            frac_bits,
        })
    }

    /// The paper's 16-bit activation/weight format with 12 fraction bits
    /// (range ±8, resolution ~2.4e-4) — a common training fixed point.
    pub fn paper_default() -> Self {
        FixedPoint {
            total_bits: 16,
            frac_bits: 12,
        }
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Fraction bit width.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Quantisation step (the value of one LSB).
    pub fn step(&self) -> f32 {
        (2.0f32).powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f32 {
        (self.max_code() as f32) * self.step()
    }

    /// Largest representable code.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.total_bits - 1)) - 1
    }

    /// Smallest representable code.
    pub fn min_code(&self) -> i32 {
        -(1i32 << (self.total_bits - 1))
    }

    /// Quantises a value (round-to-nearest, saturating).
    pub fn quantize(&self, v: f32) -> i32 {
        let scaled = (v / self.step()).round();
        scaled.clamp(self.min_code() as f32, self.max_code() as f32) as i32
    }

    /// Dequantises a code.
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Quantises a whole tensor into codes.
    pub fn quantize_tensor(&self, t: &Tensor) -> Vec<i32> {
        t.data().iter().map(|&v| self.quantize(v)).collect()
    }

    /// Dequantises codes back into a tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the code count does not match the shape.
    pub fn dequantize_tensor(&self, shape: &[usize], codes: &[i32]) -> Tensor {
        Tensor::from_vec(shape, codes.iter().map(|&c| self.dequantize(c)).collect())
    }

    /// Round-trip quantisation of a tensor (what the PIM data path does to
    /// every operand).
    pub fn round_trip(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.dequantize(self.quantize(v)))
    }
}

/// Integer MMV over quantised operands with 64-bit accumulation, exactly
/// as the crossbar + shift-and-add pipeline computes it. The result codes
/// are in the *product* format (`w.frac + x.frac` fraction bits).
///
/// # Panics
///
/// Panics if the matrix row width and vector length disagree.
pub fn quantized_mmv(
    matrix_codes: &[i32],
    rows: usize,
    cols: usize,
    vector_codes: &[i32],
) -> Vec<i64> {
    assert_eq!(matrix_codes.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(vector_codes.len(), cols, "vector length mismatch");
    let mut out = vec![0i64; rows];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &matrix_codes[r * cols..(r + 1) * cols];
        *o = row
            .iter()
            .zip(vector_codes.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
    }
    out
}

/// Dequantises product-format accumulator codes (from [`quantized_mmv`])
/// given the operand formats.
pub fn dequantize_products(products: &[i64], weights: FixedPoint, inputs: FixedPoint) -> Vec<f32> {
    let scale = (2.0f64).powi(-((weights.frac_bits + inputs.frac_bits) as i32));
    products
        .iter()
        .map(|&p| (p as f64 * scale) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_validation() {
        assert!(FixedPoint::new(16, 12).is_some());
        assert!(FixedPoint::new(0, 0).is_none());
        assert!(FixedPoint::new(16, 16).is_none());
        assert!(FixedPoint::new(40, 8).is_none());
    }

    #[test]
    fn round_trip_error_is_bounded_by_one_step() {
        let q = FixedPoint::paper_default();
        for v in [-0.9, -0.1234, 0.0, 0.001, 0.5, 3.99] {
            let rt = q.dequantize(q.quantize(v));
            assert!(
                (rt - v).abs() <= q.step() / 2.0 + 1e-7,
                "value {v}: round trip {rt}"
            );
        }
    }

    #[test]
    fn saturation_at_the_rails() {
        let q = FixedPoint::paper_default();
        assert_eq!(q.quantize(1e9), q.max_code());
        assert_eq!(q.quantize(-1e9), q.min_code());
        assert!(q.max_value() > 7.99);
    }

    #[test]
    fn quantized_mmv_matches_float_within_accumulated_error() {
        let q = FixedPoint::paper_default();
        let m = Tensor::from_fn(&[4, 8], |i| ((i[0] * 8 + i[1]) as f32).sin() * 0.5);
        let v = Tensor::from_fn(&[8], |i| ((i[0] + 3) as f32).cos() * 0.5);
        let mc = q.quantize_tensor(&m);
        let vc = q.quantize_tensor(&v);
        let products = quantized_mmv(&mc, 4, 8, &vc);
        let approx = dequantize_products(&products, q, q);
        let exact = crate::tensor::mmv(&m, v.data());
        for (a, e) in approx.iter().zip(exact.iter()) {
            // Worst case: 8 products each off by ~(|a|+|b|)*step/2.
            assert!((a - e).abs() < 8.0 * q.step(), "quantised {a} vs exact {e}");
        }
    }

    #[test]
    fn tensor_round_trip_preserves_shape_and_bounds() {
        let q = FixedPoint::new(8, 4).unwrap();
        let t = Tensor::from_fn(&[3, 3], |i| i[0] as f32 - i[1] as f32 * 0.3);
        let rt = q.round_trip(&t);
        assert_eq!(rt.shape(), t.shape());
        for (&a, &b) in rt.data().iter().zip(t.data().iter()) {
            assert!((a - b).abs() <= q.step() / 2.0 + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn mmv_rejects_bad_vector() {
        let _ = quantized_mmv(&[1, 2, 3, 4], 2, 2, &[1]);
    }
}
