//! Reference convolution kernels: S-CONV, T-CONV and W-CONV.
//!
//! Every kernel here is a direct loop-nest transcription of the defining
//! sums — slow, but unambiguous. The zero-insertion forms are built from
//! [`crate::zero_insert`] plus a stride-1 convolution, exactly as Fig. 4–6
//! describe, and the direct (scatter) T-CONV form cross-checks them.
//!
//! Weight layout is `[out_channels, in_channels, k, k]` throughout, matching
//! the paper's "512 kernels whose width and length are 5 and height is 1024"
//! description of DCGAN CONV1.

use crate::geometry::{SconvGeometry, TconvGeometry, WconvGeometry};
use crate::tensor::Tensor;
use crate::zero_insert::{expand_tconv_input, insert_wconv_kernel, pad_planes};

/// A strided 2-D convolution operator (S-CONV).
///
/// # Example
///
/// ```
/// use lergan_tensor::{Tensor, Conv2d};
/// let conv = Conv2d::new(1, 2, 3, 1, 1).unwrap();
/// let input = Tensor::ones(&[1, 4, 4]);
/// let weights = Tensor::ones(&[2, 1, 3, 3]);
/// let out = conv.forward(&input, &weights);
/// assert_eq!(out.shape(), &[2, 4, 4]);
/// assert_eq!(out[&[0, 1, 1]], 9.0); // interior window sums 9 ones
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geometry_kernel: usize,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates the operator. Returns `None` for zero-sized channels, kernel,
    /// or stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Option<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return None;
        }
        Some(Conv2d {
            in_channels,
            out_channels,
            geometry_kernel: kernel,
            stride,
            pad,
        })
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel spatial extent.
    pub fn kernel(&self) -> usize {
        self.geometry_kernel
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// The spatial geometry induced by an input of extent `input`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn geometry(&self, input: usize) -> SconvGeometry {
        SconvGeometry::new(input, self.geometry_kernel, self.stride, self.pad)
            .expect("invalid conv geometry for this input extent")
    }

    fn check_operands(&self, input: &Tensor, weights: &Tensor) -> (usize, SconvGeometry) {
        assert_eq!(input.shape().len(), 3, "input must be [C, H, W]");
        assert_eq!(input.shape()[0], self.in_channels, "input channel mismatch");
        assert_eq!(input.shape()[1], input.shape()[2], "input must be square");
        assert_eq!(
            weights.shape(),
            &[
                self.out_channels,
                self.in_channels,
                self.geometry_kernel,
                self.geometry_kernel
            ],
            "weight shape mismatch"
        );
        let extent = input.shape()[1];
        (extent, self.geometry(extent))
    }

    /// Forward S-CONV: `out[oc, oy, ox] = Σ input_pad[ic, oy·S+ky, ox·S+kx] · w[oc, ic, ky, kx]`.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn forward(&self, input: &Tensor, weights: &Tensor) -> Tensor {
        let (_, geom) = self.check_operands(input, weights);
        let padded = pad_planes(input, self.pad);
        conv_stride(&padded, weights, self.stride, geom.output)
    }

    /// Gradient of the loss w.r.t. the convolution input, given `∇output`.
    ///
    /// This is the "error transferring" direction: for a strided forward
    /// conv it is mathematically a T-CONV (the paper's `D-backward` uses
    /// T-CONV dataflow).
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn input_grad(&self, dout: &Tensor, weights: &Tensor, input_extent: usize) -> Tensor {
        let mut ws = crate::workspace::Workspace::new();
        self.input_grad_with(dout, weights, input_extent, &mut ws)
    }

    /// [`input_grad`](Self::input_grad) drawing its scratch plane and the
    /// result buffer from a [`Workspace`](crate::workspace::Workspace) —
    /// the form the trainer's steady-state loop calls, so the backward pass
    /// performs no heap allocation.
    ///
    /// The loop nest is the flat-indexed form of the defining scatter sum:
    /// for a fixed `∇input` element the additions arrive in ascending
    /// `(oc, oy, ox, ky, kx)` order — exactly the order of the original
    /// multi-index kernel and independent of the thread count (workers own
    /// disjoint input-channel planes) — so results are bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn input_grad_with(
        &self,
        dout: &Tensor,
        weights: &Tensor,
        input_extent: usize,
        ws: &mut crate::workspace::Workspace,
    ) -> Tensor {
        let geom = self.geometry(input_extent);
        assert_eq!(
            dout.shape(),
            &[self.out_channels, geom.output, geom.output],
            "∇output shape mismatch"
        );
        let ie = input_extent;
        let mut din = ws.take(self.in_channels * ie * ie);
        self.input_grad_buf(dout.data(), weights, input_extent, ws, &mut din);
        Tensor::from_vec(&[self.in_channels, ie, ie], din)
    }

    /// [`input_grad_with`](Self::input_grad_with) over raw slices: reads
    /// `∇output` from a `OC·O·O` slice and fully overwrites the
    /// `IC·H·W` `∇input` slice, drawing only the padded scratch plane from
    /// the workspace. This is the form the batched trainer calls per
    /// sample, handing each worker a disjoint slice pair of the batch
    /// buffers. Accumulation order per `∇input` element is identical to
    /// the tensor-returning form — the two are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn input_grad_buf(
        &self,
        dout: &[f32],
        weights: &Tensor,
        input_extent: usize,
        ws: &mut crate::workspace::Workspace,
        din: &mut [f32],
    ) {
        let geom = self.geometry(input_extent);
        assert_eq!(
            dout.len(),
            self.out_channels * geom.output * geom.output,
            "∇output length mismatch"
        );
        assert_eq!(
            weights.shape(),
            &[
                self.out_channels,
                self.in_channels,
                self.geometry_kernel,
                self.geometry_kernel
            ],
            "weight shape mismatch"
        );
        assert_eq!(
            din.len(),
            self.in_channels * input_extent * input_extent,
            "∇input length mismatch"
        );
        let pe = input_extent + 2 * self.pad;
        let k = self.geometry_kernel;
        let o = geom.output;
        let s = self.stride;
        let plane = pe * pe;
        let mut dpad = ws.take_zeroed(self.in_channels * plane);
        let wdata = weights.data();
        let ddata = dout;
        let flops_per_plane = self.out_channels * o * o * k * k;
        let min_planes = (crate::tensor::MIN_PARALLEL_FLOPS / flops_per_plane.max(1)).max(1);
        // Workers own disjoint blocks of ∇pad planes; see the doc comment
        // for why this cannot change any accumulation order.
        crate::parallel::for_each_unit_chunk_mut(&mut dpad, plane, min_planes, |ic0, planes| {
            for (d, pbuf) in planes.chunks_mut(plane).enumerate() {
                let ic = ic0 + d;
                for oc in 0..self.out_channels {
                    let wbase = (oc * self.in_channels + ic) * k * k;
                    for oy in 0..o {
                        let dbase = (oc * o + oy) * o;
                        for ox in 0..o {
                            let g = ddata[dbase + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for ky in 0..k {
                                let wrow = &wdata[wbase + ky * k..wbase + (ky + 1) * k];
                                let pbase = (oy * s + ky) * pe + ox * s;
                                let prow = &mut pbuf[pbase..pbase + k];
                                for (p, &wv) in prow.iter_mut().zip(wrow.iter()) {
                                    *p += g * wv;
                                }
                            }
                        }
                    }
                }
            }
        });
        // Crop the padding back off, row by row.
        let ie = input_extent;
        for ic in 0..self.in_channels {
            for y in 0..ie {
                let src = ic * plane + (y + self.pad) * pe + self.pad;
                let dst = (ic * ie + y) * ie;
                din[dst..dst + ie].copy_from_slice(&dpad[src..src + ie]);
            }
        }
        ws.give(dpad);
    }

    /// Vectorization-friendly form of [`input_grad_buf`](Self::input_grad_buf):
    /// the same scatter with the kernel offsets hoisted out of the output
    /// loop, iterated *descending* — `(oc, ky↓, kx↓, oy, ox)` instead of
    /// `(oc, oy, ox, ky, kx)`. For a fixed `∇input` element, `ky ↔ oy` and
    /// `kx ↔ ox` are bijections with descending `k` equal to ascending `o`,
    /// so every element's additions arrive in exactly the reference order
    /// and the two forms are bit-identical (pinned by
    /// `input_grad_vectorized_matches_reference_bitwise`). The reference's
    /// zero-gradient skip becomes a per-lane select, keeping the inner loop
    /// a branch-free shifted AXPY the compiler can run across SIMD lanes —
    /// this is the form the batched trainer calls per sample; the
    /// single-sample path keeps the unambiguous reference nest.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn input_grad_buf_vec(
        &self,
        dout: &[f32],
        weights: &Tensor,
        input_extent: usize,
        ws: &mut crate::workspace::Workspace,
        din: &mut [f32],
    ) {
        let geom = self.geometry(input_extent);
        assert_eq!(
            dout.len(),
            self.out_channels * geom.output * geom.output,
            "∇output length mismatch"
        );
        assert_eq!(
            weights.shape(),
            &[
                self.out_channels,
                self.in_channels,
                self.geometry_kernel,
                self.geometry_kernel
            ],
            "weight shape mismatch"
        );
        assert_eq!(
            din.len(),
            self.in_channels * input_extent * input_extent,
            "∇input length mismatch"
        );
        let pe = input_extent + 2 * self.pad;
        let k = self.geometry_kernel;
        let o = geom.output;
        let s = self.stride;
        let plane = pe * pe;
        let mut dpad = ws.take_zeroed(self.in_channels * plane);
        let wdata = weights.data();
        let flops_per_plane = self.out_channels * o * o * k * k;
        let min_planes = (crate::tensor::MIN_PARALLEL_FLOPS / flops_per_plane.max(1)).max(1);
        crate::parallel::for_each_unit_chunk_mut(&mut dpad, plane, min_planes, |ic0, planes| {
            for (d, pbuf) in planes.chunks_mut(plane).enumerate() {
                let ic = ic0 + d;
                for oc in 0..self.out_channels {
                    let wbase = (oc * self.in_channels + ic) * k * k;
                    for ky in (0..k).rev() {
                        let wrow = &wdata[wbase + ky * k..wbase + (ky + 1) * k];
                        if s == 1 {
                            for kx in (0..k).rev() {
                                let wv = wrow[kx];
                                for oy in 0..o {
                                    let grow = &dout[(oc * o + oy) * o..(oc * o + oy + 1) * o];
                                    let pbase = (oy + ky) * pe + kx;
                                    let prow = &mut pbuf[pbase..pbase + o];
                                    for (slot, &g) in prow.iter_mut().zip(grow) {
                                        let upd = *slot + g * wv;
                                        *slot = if g != 0.0 { upd } else { *slot };
                                    }
                                }
                            }
                        } else if s == 2 {
                            // Descending kx *pairs*: the two offsets write
                            // interleaved even/odd lanes of one contiguous
                            // span — distinct ∇input elements, so pairing
                            // adds no ordering between them, and each
                            // parity class still sees its kx descending.
                            let mut kx = k;
                            while kx >= 2 {
                                let (lo, hi) = (kx - 2, kx - 1);
                                let (wlo, whi) = (wrow[lo], wrow[hi]);
                                for oy in 0..o {
                                    let grow = &dout[(oc * o + oy) * o..(oc * o + oy + 1) * o];
                                    let pbase = (oy * 2 + ky) * pe + lo;
                                    let span = &mut pbuf[pbase..pbase + 2 * o];
                                    for (pair, &g) in span.chunks_exact_mut(2).zip(grow) {
                                        let u0 = pair[0] + g * wlo;
                                        let u1 = pair[1] + g * whi;
                                        pair[0] = if g != 0.0 { u0 } else { pair[0] };
                                        pair[1] = if g != 0.0 { u1 } else { pair[1] };
                                    }
                                }
                                kx -= 2;
                            }
                            if kx == 1 {
                                let wv = wrow[0];
                                for oy in 0..o {
                                    let grow = &dout[(oc * o + oy) * o..(oc * o + oy + 1) * o];
                                    let pbase = (oy * 2 + ky) * pe;
                                    for (ox, &g) in grow.iter().enumerate() {
                                        let slot = &mut pbuf[pbase + ox * 2];
                                        let upd = *slot + g * wv;
                                        *slot = if g != 0.0 { upd } else { *slot };
                                    }
                                }
                            }
                        } else {
                            for kx in (0..k).rev() {
                                let wv = wrow[kx];
                                for oy in 0..o {
                                    let grow = &dout[(oc * o + oy) * o..(oc * o + oy + 1) * o];
                                    let pbase = (oy * s + ky) * pe + kx;
                                    for (ox, &g) in grow.iter().enumerate() {
                                        let slot = &mut pbuf[pbase + ox * s];
                                        let upd = *slot + g * wv;
                                        *slot = if g != 0.0 { upd } else { *slot };
                                    }
                                }
                            }
                        }
                    }
                }
            }
        });
        // Crop the padding back off, row by row.
        let ie = input_extent;
        for ic in 0..self.in_channels {
            for y in 0..ie {
                let src = ic * plane + (y + self.pad) * pe + self.pad;
                let dst = (ic * ie + y) * ie;
                din[dst..dst + ie].copy_from_slice(&dpad[src..src + ie]);
            }
        }
        ws.give(dpad);
    }

    /// Gradient of the loss w.r.t. the weights (Eq. 4), computed by the
    /// defining sum. [`wconv_weight_grad_zero_insert`] computes the same
    /// thing through the paper's zero-inserted-kernel formulation.
    ///
    /// # Panics
    ///
    /// Panics on operand shape mismatches.
    pub fn weight_grad(&self, input: &Tensor, dout: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 3, "input must be [C, H, W]");
        let extent = input.shape()[1];
        let geom = self.geometry(extent);
        assert_eq!(
            dout.shape(),
            &[self.out_channels, geom.output, geom.output],
            "∇output shape mismatch"
        );
        let padded = pad_planes(input, self.pad);
        let mut dw = Tensor::zeros(&[
            self.out_channels,
            self.in_channels,
            self.geometry_kernel,
            self.geometry_kernel,
        ]);
        // Each worker owns a block of out-channel gradient slabs; the inner
        // accumulation per ∇W element is untouched, so the split cannot
        // change any floating-point result.
        let k = self.geometry_kernel;
        let slab = self.in_channels * k * k;
        let flops_per_slab = slab * geom.output * geom.output;
        let min_slabs = (crate::tensor::MIN_PARALLEL_FLOPS / flops_per_slab.max(1)).max(1);
        let mut slabs: Vec<&mut [f32]> = dw.data_mut().chunks_mut(slab).collect();
        crate::parallel::for_each_chunk_mut(&mut slabs, min_slabs, |oc0, slabs| {
            for (d, slab) in slabs.iter_mut().enumerate() {
                let oc = oc0 + d;
                for ic in 0..self.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let mut acc = 0.0;
                            for oy in 0..geom.output {
                                for ox in 0..geom.output {
                                    acc += dout[&[oc, oy, ox]]
                                        * padded
                                            [&[ic, oy * self.stride + ky, ox * self.stride + kx]];
                                }
                            }
                            slab[ic * k * k + ky * k + kx] = acc;
                        }
                    }
                }
            }
        });
        dw
    }
}

/// Stride-`s` valid convolution of a pre-padded `[C, H, W]` input with
/// `[OC, C, K, K]` weights, producing `[OC, out, out]`.
fn conv_stride(padded: &Tensor, weights: &Tensor, stride: usize, out: usize) -> Tensor {
    let (c, k) = (weights.shape()[1], weights.shape()[2]);
    let oc = weights.shape()[0];
    assert_eq!(padded.shape()[0], c, "channel mismatch in conv_stride");
    let mut result = Tensor::zeros(&[oc, out, out]);
    // Out-channel planes are independent, so workers own disjoint planes
    // and the per-element accumulation order is exactly the serial one.
    let plane = out * out;
    let flops_per_plane = plane * c * k * k;
    let min_planes = (crate::tensor::MIN_PARALLEL_FLOPS / flops_per_plane.max(1)).max(1);
    let mut planes: Vec<&mut [f32]> = result.data_mut().chunks_mut(plane).collect();
    crate::parallel::for_each_chunk_mut(&mut planes, min_planes, |o0, planes| {
        for (d, plane) in planes.iter_mut().enumerate() {
            let o = o0 + d;
            for oy in 0..out {
                for ox in 0..out {
                    let mut acc = 0.0;
                    for ci in 0..c {
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += padded[&[ci, oy * stride + ky, ox * stride + kx]]
                                    * weights[&[o, ci, ky, kx]];
                            }
                        }
                    }
                    plane[oy * out + ox] = acc;
                }
            }
        }
    });
    result
}

/// T-CONV forward through the zero-insertion path of Fig. 4: expand the
/// input, then convolve at stride 1 with no extra padding.
///
/// This is the *naive* realisation whose wasted work ZFDR eliminates.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn tconv_forward_zero_insert(input: &Tensor, weights: &Tensor, geom: &TconvGeometry) -> Tensor {
    assert_eq!(
        weights.shape()[2],
        geom.kernel,
        "kernel extent mismatch with geometry"
    );
    assert_eq!(
        weights.shape()[1],
        input.shape()[0],
        "in-channel mismatch between input and weights"
    );
    let expanded = expand_tconv_input(input, geom);
    conv_stride(&expanded, weights, 1, geom.output)
}

/// T-CONV forward through the direct scatter definition: each input pixel
/// scatters `w` into the output at `input·S′ − P′` offsets. Used to
/// cross-check the zero-insertion path.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn tconv_forward_direct(input: &Tensor, weights: &Tensor, geom: &TconvGeometry) -> Tensor {
    let (oc, ic, k) = (weights.shape()[0], weights.shape()[1], weights.shape()[2]);
    assert_eq!(k, geom.kernel, "kernel extent mismatch with geometry");
    assert_eq!(input.shape()[0], ic, "in-channel mismatch");
    assert_eq!(input.shape()[1], geom.input, "input extent mismatch");
    let o = geom.output;
    let mut out = Tensor::zeros(&[oc, o, o]);
    // out[oy] receives input[y] * w[ky] where oy = y*S' + P - ... : in the
    // expanded grid input y sits at P + y*S', and window oy covers expanded
    // rows oy..oy+W, so contribution requires oy + ky == P + y*S'.
    let p = geom.insertion_pad;
    let s = geom.converse_stride;
    for y in 0..geom.input {
        for x in 0..geom.input {
            let ey = p + y * s;
            let ex = p + x * s;
            for ky in 0..k {
                let Some(oy) = ey.checked_sub(ky).filter(|&v| v < o) else {
                    continue;
                };
                for kx in 0..k {
                    let Some(ox) = ex.checked_sub(kx).filter(|&v| v < o) else {
                        continue;
                    };
                    for ci in 0..ic {
                        let v = input[&[ci, y, x]];
                        if v == 0.0 {
                            continue;
                        }
                        for co in 0..oc {
                            out[&[co, oy, ox][..]] += v * weights[&[co, ci, ky, kx]];
                        }
                    }
                }
            }
        }
    }
    out
}

/// W-CONV of a strided convolution through the zero-inserted-kernel path of
/// Fig. 6: `∇W[oc, ic] = conv(pad(input[ic], P), zero_insert(∇out[oc]))` at
/// stride 1, keeping the first `W × W` window positions.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn wconv_weight_grad_zero_insert(
    input: &Tensor,
    dout: &Tensor,
    geom: &WconvGeometry,
) -> Tensor {
    let f = &geom.forward;
    assert_eq!(input.shape()[1], f.input, "input extent mismatch");
    assert_eq!(dout.shape()[1], f.output, "∇output extent mismatch");
    let (ic, oc) = (input.shape()[0], dout.shape()[0]);
    let padded = pad_planes(input, f.pad);
    let kernel = insert_wconv_kernel(dout, geom);
    let ke = geom.inserted_kernel_extent();
    let w = f.kernel;
    let mut dw = Tensor::zeros(&[oc, ic, w, w]);
    for o in 0..oc {
        for i in 0..ic {
            for wy in 0..w {
                for wx in 0..w {
                    let mut acc = 0.0;
                    for ky in 0..ke {
                        for kx in 0..ke {
                            acc += padded[&[i, wy + ky, wx + kx]] * kernel[&[o, ky, kx]];
                        }
                    }
                    dw[&[o, i, wy, wx][..]] = acc;
                }
            }
        }
    }
    dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;
    use crate::geometry::TconvGeometry;

    fn det_tensor(shape: &[usize], seed: u32) -> Tensor {
        // Small deterministic pseudo-random values without pulling in rand.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
    }

    #[test]
    fn forward_identity_kernel() {
        let conv = Conv2d::new(1, 1, 1, 1, 0).unwrap();
        let input = det_tensor(&[1, 5, 5], 1);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let out = conv.forward(&input, &w);
        assert_tensors_close(&out, &input, 1e-6);
    }

    #[test]
    fn forward_stride2_shapes() {
        let conv = Conv2d::new(3, 8, 5, 2, 2).unwrap();
        let input = det_tensor(&[3, 8, 8], 2);
        let w = det_tensor(&[8, 3, 5, 5], 3);
        let out = conv.forward(&input, &w);
        assert_eq!(out.shape(), &[8, 4, 4]);
    }

    #[test]
    fn forward_known_values() {
        // 2x2 input [[1,2],[3,4]], 2x2 kernel of ones, stride 1, no pad.
        let conv = Conv2d::new(1, 1, 2, 1, 0).unwrap();
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let out = conv.forward(&input, &w);
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.data(), &[10.0]);
    }

    #[test]
    fn weight_grad_matches_finite_difference() {
        let conv = Conv2d::new(2, 3, 3, 2, 1).unwrap();
        let input = det_tensor(&[2, 6, 6], 4);
        let w = det_tensor(&[3, 2, 3, 3], 5);
        let dout = det_tensor(&[3, 3, 3], 6);
        let dw = conv.weight_grad(&input, &dout);

        // loss = sum(dout * forward), so dloss/dw ~ finite difference.
        let eps = 1e-2;
        let probe = [1usize, 0, 2, 1];
        let mut w_plus = w.clone();
        w_plus[&probe[..]] += eps;
        let mut w_minus = w.clone();
        w_minus[&probe[..]] -= eps;
        let loss = |weights: &Tensor| -> f32 {
            conv.forward(&input, weights)
                .zip_with(&dout, |a, b| a * b)
                .sum()
        };
        let fd = (loss(&w_plus) - loss(&w_minus)) / (2.0 * eps);
        assert!(
            (dw[&probe] - fd).abs() < 1e-2,
            "analytic {} vs fd {}",
            dw[&probe],
            fd
        );
    }

    #[test]
    fn input_grad_matches_finite_difference() {
        let conv = Conv2d::new(2, 3, 3, 2, 1).unwrap();
        let input = det_tensor(&[2, 6, 6], 7);
        let w = det_tensor(&[3, 2, 3, 3], 8);
        let dout = det_tensor(&[3, 3, 3], 9);
        let din = conv.input_grad(&dout, &w, 6);
        assert_eq!(din.shape(), input.shape());

        let eps = 1e-2;
        let probe = [1usize, 3, 4];
        let mut in_plus = input.clone();
        in_plus[&probe[..]] += eps;
        let mut in_minus = input.clone();
        in_minus[&probe[..]] -= eps;
        let loss =
            |inp: &Tensor| -> f32 { conv.forward(inp, &w).zip_with(&dout, |a, b| a * b).sum() };
        let fd = (loss(&in_plus) - loss(&in_minus)) / (2.0 * eps);
        assert!(
            (din[&probe] - fd).abs() < 1e-2,
            "analytic {} vs fd {}",
            din[&probe],
            fd
        );
    }

    #[test]
    fn input_grad_flat_indexing_matches_multi_index_reference() {
        // The flat-indexed scatter must be bit-identical to the original
        // multi-index transcription of the defining sum, at every thread
        // count.
        for (ic_n, oc_n, k, s, p, ie) in [(2, 3, 3, 2, 1, 6), (3, 2, 5, 2, 2, 8), (1, 4, 4, 2, 1, 16)]
        {
            let conv = Conv2d::new(ic_n, oc_n, k, s, p).unwrap();
            let geom = conv.geometry(ie);
            let w = det_tensor(&[oc_n, ic_n, k, k], 40);
            let dout = det_tensor(&[oc_n, geom.output, geom.output], 41);
            let pe = ie + 2 * p;
            let mut dpad = Tensor::zeros(&[ic_n, pe, pe]);
            for ic in 0..ic_n {
                for oc in 0..oc_n {
                    for oy in 0..geom.output {
                        for ox in 0..geom.output {
                            let g = dout[&[oc, oy, ox]];
                            if g == 0.0 {
                                continue;
                            }
                            for ky in 0..k {
                                for kx in 0..k {
                                    dpad[&[ic, oy * s + ky, ox * s + kx][..]] +=
                                        g * w[&[oc, ic, ky, kx]];
                                }
                            }
                        }
                    }
                }
            }
            let reference =
                Tensor::from_fn(&[ic_n, ie, ie], |i| dpad[&[i[0], i[1] + p, i[2] + p]]);
            for threads in [1, 2, 8] {
                let got = crate::parallel::with_threads(threads, || conv.input_grad(&dout, &w, ie));
                assert_eq!(got.shape(), reference.shape());
                for (a, b) in got.data().iter().zip(reference.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn input_grad_vectorized_matches_reference_bitwise() {
        // The hoisted `(oc, ky↓, kx↓, oy, ox)` nest delivers every ∇input
        // element's additions in the reference `(oc, oy, ox, ky, kx)` order,
        // so the two forms must agree bit-for-bit — including the
        // zero-gradient skip, which the vectorized form realises as a
        // per-lane select. Covers stride 1 (the T-CONV backward inner conv)
        // and strided/padded D-shaped geometries, at every thread count.
        for (ic_n, oc_n, k, s, p, ie) in [
            (2, 3, 3, 1, 0, 10),
            (3, 2, 3, 1, 1, 8),
            (2, 3, 3, 2, 1, 6),
            (3, 2, 5, 2, 2, 8),
            (1, 4, 4, 2, 1, 16),
        ] {
            let conv = Conv2d::new(ic_n, oc_n, k, s, p).unwrap();
            let geom = conv.geometry(ie);
            let w = det_tensor(&[oc_n, ic_n, k, k], 50);
            let mut dout = det_tensor(&[oc_n, geom.output, geom.output], 51);
            // Plant exact zeros so the skip path is exercised.
            let n = dout.data().len();
            for i in (0..n).step_by(3) {
                dout.data_mut()[i] = 0.0;
            }
            let reference = conv.input_grad(&dout, &w, ie);
            for threads in [1, 2, 8] {
                let got = crate::parallel::with_threads(threads, || {
                    let mut ws = crate::workspace::Workspace::new();
                    let mut din = vec![0.0; ic_n * ie * ie];
                    conv.input_grad_buf_vec(dout.data(), &w, ie, &mut ws, &mut din);
                    din
                });
                for (a, b) in got.iter().zip(reference.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn tconv_zero_insert_equals_direct() {
        for (i, w, s, ic, oc) in [
            (4, 5, 2, 3, 2),
            (8, 4, 2, 2, 4),
            (5, 5, 3, 1, 1),
            (7, 4, 2, 2, 2),
        ] {
            let geom = TconvGeometry::for_upsampling(i, w, s).unwrap();
            let input = det_tensor(&[ic, i, i], 10 + i as u32);
            let weights = det_tensor(&[oc, ic, w, w], 20 + w as u32);
            let a = tconv_forward_zero_insert(&input, &weights, &geom);
            let b = tconv_forward_direct(&input, &weights, &geom);
            assert_tensors_close(&a, &b, 1e-4);
        }
    }

    #[test]
    fn wconv_zero_insert_equals_defining_sum() {
        let conv = Conv2d::new(2, 3, 5, 2, 2).unwrap();
        let geom = WconvGeometry::new(8, 5, 2, 2).unwrap();
        let input = det_tensor(&[2, 8, 8], 30);
        let dout = det_tensor(&[3, 4, 4], 31);
        let a = conv.weight_grad(&input, &dout);
        let b = wconv_weight_grad_zero_insert(&input, &dout, &geom);
        assert_tensors_close(&a, &b, 1e-4);
    }

    #[test]
    fn tconv_inverts_shapes_of_converse_conv() {
        // The generator layer and its converse discriminator layer mirror
        // each other: T-CONV 4->8 corresponds to S-CONV 8->4.
        let geom = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        let conv = Conv2d::new(1, 1, 5, geom.converse_stride, geom.converse_pad).unwrap();
        assert_eq!(conv.geometry(geom.output).output, geom.input);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn forward_rejects_bad_weights() {
        let conv = Conv2d::new(1, 1, 3, 1, 1).unwrap();
        let input = Tensor::ones(&[1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let _ = conv.forward(&input, &w);
    }
}
