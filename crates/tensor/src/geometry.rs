//! Convolution geometry: the shape relationships of Equations 5–10.
//!
//! The paper characterises three convolution flavours used while training a
//! GAN (Table II notation):
//!
//! * **S-CONV** — ordinary strided convolution (discriminator forward),
//!   governed by Eq. 8: `I + 2P − W = S·(O−1) + R`.
//! * **T-CONV** — transposed convolution (generator forward, and error
//!   back-propagation through an S-CONV), realised by inserting `S′−1` zeros
//!   between adjacent inputs, `R` trailing zeros, and `P = W − P′ − 1`
//!   padding (Fig. 4), governed by Eq. 5.
//! * **W-CONV** — the weight-gradient convolution, where the zero-inserted
//!   `∇output` acts as a kernel slid over the padded input (Fig. 6),
//!   governed by Eq. 9.
//!
//! All spatial quantities are square (`I_w = I_l` etc.), as the paper
//! assumes, so a single `usize` describes each extent.

/// Geometry of an ordinary strided convolution (S-CONV), Eq. 8.
///
/// # Example
///
/// ```
/// use lergan_tensor::SconvGeometry;
/// // Discriminator CONV8 of DCGAN: 8x8 input, 5x5 kernel, stride 2, pad 2.
/// let g = SconvGeometry::new(8, 5, 2, 2).unwrap();
/// assert_eq!(g.output, 4);
/// assert_eq!(g.remainder, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SconvGeometry {
    /// Spatial input extent `I`.
    pub input: usize,
    /// Kernel extent `W`.
    pub kernel: usize,
    /// Stride `S`.
    pub stride: usize,
    /// Padding `P` applied on every side.
    pub pad: usize,
    /// Spatial output extent `O`, derived.
    pub output: usize,
    /// Remainder `R` of Eq. 8, derived (`0 ≤ R < S`).
    pub remainder: usize,
}

impl SconvGeometry {
    /// Builds the geometry from the free parameters, deriving `O` and `R`.
    ///
    /// Returns `None` when the configuration admits no output (kernel larger
    /// than the padded input) or `stride == 0`.
    pub fn new(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<Self> {
        if stride == 0 || kernel == 0 || input == 0 {
            return None;
        }
        let span = input + 2 * pad;
        if span < kernel {
            return None;
        }
        let output = (span - kernel) / stride + 1;
        let remainder = (span - kernel) % stride;
        Some(SconvGeometry {
            input,
            kernel,
            stride,
            pad,
            output,
            remainder,
        })
    }

    /// Total number of scalar multiplications per input channel per kernel
    /// (every window position uses the full `W × W` kernel).
    pub fn multiplications_per_channel(&self) -> usize {
        self.output * self.output * self.kernel * self.kernel
    }
}

/// Geometry of a transposed convolution (T-CONV), Eq. 5–7.
///
/// The "converse convolution" is the S-CONV that this T-CONV inverts
/// spatially: its stride is `S′` and padding `P′`. The zero-inserted
/// realisation convolves the expanded input with the kernel at stride 1.
///
/// # Example
///
/// ```
/// use lergan_tensor::TconvGeometry;
/// // CONV1 of the DCGAN generator: 4x4 -> 8x8, 5x5 kernel, converse stride 2.
/// let g = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
/// assert_eq!(g.output, 8);
/// assert_eq!(g.remainder, 1);
/// assert_eq!(g.insertion_pad, 2);
/// assert_eq!(g.expanded(), 12);
/// // 147456 stored values for 1024 channels, only 16384 useful (Sec. III-A).
/// assert_eq!(g.expanded() * g.expanded() * 1024, 147_456);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TconvGeometry {
    /// Spatial input extent `I` (the small side).
    pub input: usize,
    /// Spatial output extent `O` (the upsampled side).
    pub output: usize,
    /// Kernel extent `W`.
    pub kernel: usize,
    /// Converse-convolution stride `S′` (a T-CONV "stride of 1/S′").
    pub converse_stride: usize,
    /// Converse-convolution padding `P′`.
    pub converse_pad: usize,
    /// Remainder `R` of Eq. 5, derived.
    pub remainder: usize,
    /// Zero padding `P = W − P′ − 1` applied to the expanded input, derived.
    pub insertion_pad: usize,
    /// Extra zero padding applied only at the *end* of each axis (0 or 1).
    ///
    /// The paper's formulation is symmetric; this generalisation (the
    /// `output_padding` of deep-learning frameworks) is needed when the
    /// compact Table V notation describes a stride-1 T-CONV with an even
    /// kernel, where no symmetric padding yields a same-size output.
    pub extra_end_pad: usize,
}

impl TconvGeometry {
    /// Builds the geometry from `(I, O, W, S′, P′)`, deriving `R` and `P`.
    ///
    /// Returns `None` if Eq. 5 cannot be satisfied with `0 ≤ R < S′`, or if
    /// `P′ ≥ W` (which would make the insertion pad negative).
    pub fn new(
        input: usize,
        output: usize,
        kernel: usize,
        converse_stride: usize,
        converse_pad: usize,
    ) -> Option<Self> {
        if input == 0 || converse_stride == 0 || kernel == 0 || converse_pad >= kernel {
            return None;
        }
        // Eq. 5: O + 2P' - W = S'(I - 1) + R with 0 <= R < S'.
        let lhs = (output + 2 * converse_pad).checked_sub(kernel)?;
        let base = converse_stride * (input - 1);
        if lhs < base || lhs - base >= converse_stride {
            return None;
        }
        let remainder = lhs - base;
        Some(TconvGeometry {
            input,
            output,
            kernel,
            converse_stride,
            converse_pad,
            remainder,
            insertion_pad: kernel - converse_pad - 1,
            extra_end_pad: 0,
        })
    }

    /// Standard upsampling T-CONV producing `O = I · S′`, choosing the
    /// smallest converse padding `P′` that satisfies Eq. 5.
    ///
    /// Returns `None` when no valid `P′` exists (e.g. `W < S′`).
    pub fn for_upsampling(input: usize, kernel: usize, converse_stride: usize) -> Option<Self> {
        let output = input * converse_stride;
        (0..kernel)
            .find_map(|p| Self::new(input, output, kernel, converse_stride, p))
            .or_else(|| Self::for_target(input, kernel, converse_stride, output))
    }

    /// Builds the geometry whose output is as close as possible to
    /// `target_output`, allowing one extra end-pad zero when symmetric
    /// padding cannot reach the target (e.g. stride-1 even-kernel layers).
    ///
    /// Exact matches are preferred, then smaller `|O − target|`, then
    /// symmetric padding, then smaller converse padding. Returns `None` for
    /// degenerate parameters.
    pub fn for_target(
        input: usize,
        kernel: usize,
        converse_stride: usize,
        target_output: usize,
    ) -> Option<Self> {
        if input == 0 || kernel == 0 || converse_stride == 0 {
            return None;
        }
        let mut best: Option<(usize, usize, Self)> = None; // (|O-target|, extra, geom)
        for converse_pad in 0..kernel {
            for extra in 0..=1usize {
                for remainder in 0..converse_stride {
                    // O = S'(I-1) + R + W - 2P' + extra
                    let o = (converse_stride * (input - 1) + remainder + kernel + extra)
                        .checked_sub(2 * converse_pad);
                    let Some(output) = o.filter(|&o| o > 0) else {
                        continue;
                    };
                    let dist = output.abs_diff(target_output);
                    let geom = TconvGeometry {
                        input,
                        output,
                        kernel,
                        converse_stride,
                        converse_pad,
                        remainder,
                        insertion_pad: kernel - converse_pad - 1,
                        extra_end_pad: extra,
                    };
                    let better = match &best {
                        None => true,
                        Some((bd, be, bg)) => {
                            (dist, extra, geom.converse_pad) < (*bd, *be, bg.converse_pad)
                        }
                    };
                    if better {
                        best = Some((dist, extra, geom));
                    }
                }
            }
        }
        best.map(|(_, _, g)| g)
    }

    /// Number of zeros inserted along one axis, Eq. 6:
    /// `N_iz = (S′ − 1)(I − 1) + R`.
    pub fn inserted_zeros_per_axis(&self) -> usize {
        (self.converse_stride - 1) * (self.input - 1) + self.remainder
    }

    /// Extent of the expanded (zero-inserted and padded) input along one
    /// axis: `N_iz + I + 2P` (plus any extra end padding).
    pub fn expanded(&self) -> usize {
        self.inserted_zeros_per_axis() + self.input + 2 * self.insertion_pad + self.extra_end_pad
    }

    /// Sum over all (output-window, kernel-offset) pairs per axis that land
    /// on a true input value: `Σ_{oy} |{ky : expanded(oy+ky) is original}|`.
    ///
    /// Squaring (or cubing, for volumetric GANs) this quantity gives the
    /// useful multiplications per channel pair; the same sum also counts the
    /// useful work of the generator weight-gradient convolution, which slides
    /// the `O × O` `∇z` over the same expanded input.
    pub fn useful_row_weight_sum(&self) -> usize {
        (0..self.output)
            .map(|oy| {
                (0..self.kernel)
                    .filter(|&k| self.original_of_expanded(oy + k).is_some())
                    .count()
            })
            .sum()
    }

    /// Kernel offsets within the window at output position `o` that align
    /// with true (non-inserted) input values, i.e. the ZFDR "pattern" along
    /// one axis.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not a valid output position.
    pub fn axis_pattern(&self, o: usize) -> Vec<usize> {
        assert!(o < self.output, "output position out of range");
        (0..self.kernel)
            .filter(|&k| self.original_of_expanded(o + k).is_some())
            .collect()
    }

    /// Total zeros in the expanded input plane, Eq. 7 (extended to count
    /// padding on both sides, which the worked example of Sec. III-A does).
    pub fn zeros_per_plane(&self) -> usize {
        self.expanded() * self.expanded() - self.input * self.input
    }

    /// Maps an expanded-grid coordinate back to the original input
    /// coordinate, or `None` if the position holds an inserted zero or
    /// padding.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the expanded extent.
    pub fn original_of_expanded(&self, e: usize) -> Option<usize> {
        assert!(e < self.expanded(), "expanded coordinate out of range");
        let p = self.insertion_pad;
        if e < p {
            return None;
        }
        let rel = e - p;
        if rel.is_multiple_of(self.converse_stride) && rel / self.converse_stride < self.input {
            Some(rel / self.converse_stride)
        } else {
            None
        }
    }

    /// Scalar multiplications per input channel per kernel when executing
    /// the zero-inserted form (all window positions, full kernel).
    pub fn total_multiplications_per_channel(&self) -> usize {
        self.output * self.output * self.kernel * self.kernel
    }

    /// Scalar multiplications per input channel per kernel that touch a
    /// *useful* (non-inserted) input value.
    pub fn useful_multiplications_per_channel(&self) -> usize {
        // Rows and columns factorise, so the 2-D count is the square of the
        // 1-D count summed over output positions.
        let row_sum = self.useful_row_weight_sum();
        row_sum * row_sum
    }
}

/// Geometry of the discriminator weight-gradient convolution (W-CONV of a
/// strided convolution), Eq. 8–10 and Fig. 6.
///
/// `∇W = conv(pad(input, P), zero_insert(∇output))` where the zero-inserted
/// `∇output` acts as the kernel, slid at stride 1.
///
/// # Example
///
/// ```
/// use lergan_tensor::WconvGeometry;
/// // Layer11 -> Layer10 example of Fig. 6: 8x8 input, 5x5 kernel, stride 2, pad 2.
/// let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
/// assert_eq!(g.forward.output, 4);
/// assert_eq!(g.inserted_kernel_extent(), 8);
/// assert_eq!(g.padded_input_extent(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WconvGeometry {
    /// The forward S-CONV this gradient belongs to.
    pub forward: SconvGeometry,
}

impl WconvGeometry {
    /// Builds from the forward convolution's free parameters.
    ///
    /// Returns `None` under the same conditions as [`SconvGeometry::new`].
    pub fn new(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<Self> {
        SconvGeometry::new(input, kernel, stride, pad).map(|forward| WconvGeometry { forward })
    }

    /// Zeros inserted into `∇output` along one axis, Eq. 9:
    /// `N_iz = (S − 1)(O − 1) + R`.
    pub fn inserted_zeros_per_axis(&self) -> usize {
        let f = &self.forward;
        (f.stride - 1) * (f.output - 1) + f.remainder
    }

    /// Extent of the zero-inserted `∇output` kernel: `N_iz + O`.
    pub fn inserted_kernel_extent(&self) -> usize {
        self.inserted_zeros_per_axis() + self.forward.output
    }

    /// Extent of the padded input the inserted kernel slides over.
    pub fn padded_input_extent(&self) -> usize {
        self.forward.input + 2 * self.forward.pad
    }

    /// Total zeros handled by the naive W-CONV, Eq. 10 (inserted kernel
    /// zeros plus input padding zeros).
    pub fn total_zeros(&self) -> usize {
        let f = &self.forward;
        let k = self.inserted_kernel_extent();
        let p = self.padded_input_extent();
        (k * k - f.output * f.output) + (p * p - f.input * f.input)
    }

    /// Maps a coordinate inside the inserted kernel back to the original
    /// `∇output` coordinate, or `None` for an inserted zero.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside the inserted kernel extent.
    pub fn original_of_inserted(&self, k: usize) -> Option<usize> {
        assert!(
            k < self.inserted_kernel_extent(),
            "inserted-kernel coordinate out of range"
        );
        let s = self.forward.stride;
        if k.is_multiple_of(s) && k / s < self.forward.output {
            Some(k / s)
        } else {
            None
        }
    }

    /// Whether a padded-input coordinate holds a true input value (rather
    /// than padding).
    pub fn is_true_input(&self, pos: usize) -> bool {
        let f = &self.forward;
        pos >= f.pad && pos < f.pad + f.input
    }

    /// Sliding the inserted kernel over the padded input at stride 1 must
    /// yield exactly `W` positions per axis; this returns that extent.
    pub fn gradient_extent(&self) -> usize {
        self.padded_input_extent() - self.inserted_kernel_extent() + 1
    }

    /// `∇output` coordinates along one axis that multiply a *true* input
    /// value when the inserted kernel sits at gradient position `i`, i.e.
    /// the W-CONV-S ZFDR "pattern" along one axis.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid gradient position.
    pub fn axis_pattern(&self, i: usize) -> Vec<usize> {
        assert!(i < self.gradient_extent(), "gradient position out of range");
        let f = &self.forward;
        (0..f.output)
            .filter(|&oh| self.is_true_input(i + oh * f.stride))
            .collect()
    }

    /// Sum over (gradient position, `∇output` index) pairs per axis that
    /// touch a true input value; squaring gives the useful multiplications
    /// per channel pair of the zero-free W-CONV.
    pub fn useful_row_weight_sum(&self) -> usize {
        (0..self.gradient_extent())
            .map(|i| self.axis_pattern(i).len())
            .sum()
    }

    /// Total multiplications per (out-channel, in-channel) pair of the
    /// naive (zero-inserted) W-CONV: every gradient position scans the full
    /// inserted kernel.
    pub fn total_multiplications_per_pair(&self) -> usize {
        let g = self.gradient_extent();
        let k = self.inserted_kernel_extent();
        g * g * k * k
    }

    /// Useful multiplications per channel pair of the zero-free W-CONV.
    pub fn useful_multiplications_per_pair(&self) -> usize {
        let s = self.useful_row_weight_sum();
        s * s
    }
}

/// One axis of a (possibly dilated, possibly asymmetric) strided
/// convolution — D-CONV in the op algebra.
///
/// Dilation realises the EcoFlow observation that a dilated convolution
/// is the *dual* of a transposed one: where T-CONV zero-inserts the
/// input, D-CONV zero-inserts the **kernel** — a dilation-`D` kernel of
/// `K` true taps behaves like a dense kernel of effective extent
/// `K_eff = (K − 1)·D + 1` whose non-tap positions are all zero (exactly
/// the structure of W-CONV-S, where the zero-inserted `∇output` acts as
/// the kernel). The ZFDR pattern-class machinery therefore applies
/// verbatim: group output positions by which effective-kernel offsets
/// land on true taps *and* true (unpadded) input.
///
/// # Example
///
/// ```
/// use lergan_tensor::DconvAxis;
/// // 8-wide input, 3 taps dilated by 2 (effective extent 5), stride 1, pad 2.
/// let a = DconvAxis::new(8, 3, 1, 2, 2).unwrap();
/// assert_eq!(a.effective_kernel(), 5);
/// assert_eq!(a.output, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DconvAxis {
    /// Spatial input extent `I` along this axis.
    pub input: usize,
    /// True kernel tap count `K` along this axis.
    pub kernel: usize,
    /// Stride `S` along this axis.
    pub stride: usize,
    /// Dilation `D` (`1` = dense).
    pub dilation: usize,
    /// Padding `P` applied on both ends of this axis.
    pub pad: usize,
    /// Output extent `O`, derived.
    pub output: usize,
}

impl DconvAxis {
    /// Builds one axis, deriving `O = (I + 2P − K_eff)/S + 1`.
    ///
    /// Returns `None` for degenerate parameters or when the padded input
    /// cannot fit one effective kernel window.
    pub fn new(
        input: usize,
        kernel: usize,
        stride: usize,
        dilation: usize,
        pad: usize,
    ) -> Option<Self> {
        if input == 0 || kernel == 0 || stride == 0 || dilation == 0 {
            return None;
        }
        let eff = (kernel - 1) * dilation + 1;
        let span = input + 2 * pad;
        if span < eff {
            return None;
        }
        Some(DconvAxis {
            input,
            kernel,
            stride,
            dilation,
            pad,
            output: (span - eff) / stride + 1,
        })
    }

    /// The axis whose output extent equals `target`, searching padding
    /// `0..K_eff`; exact matches only.
    pub fn for_target(
        input: usize,
        kernel: usize,
        stride: usize,
        dilation: usize,
        target: usize,
    ) -> Option<Self> {
        let eff = (kernel.checked_sub(1)?) * dilation + 1;
        (0..eff)
            .filter_map(|p| Self::new(input, kernel, stride, dilation, p))
            .find(|a| a.output == target)
    }

    /// Effective (zero-inserted) kernel extent `K_eff = (K − 1)·D + 1`.
    pub fn effective_kernel(&self) -> usize {
        (self.kernel - 1) * self.dilation + 1
    }

    /// Effective-kernel offsets at output position `o` that are true taps
    /// (multiples of `D`) *and* read a true (unpadded) input value — the
    /// ZFDR pattern of this axis.
    ///
    /// # Panics
    ///
    /// Panics if `o` is not a valid output position.
    pub fn axis_pattern(&self, o: usize) -> Vec<usize> {
        assert!(o < self.output, "output position out of range");
        (0..self.kernel)
            .map(|j| j * self.dilation)
            .filter(|&e| {
                let pos = o * self.stride + e;
                pos >= self.pad && pos < self.pad + self.input
            })
            .collect()
    }

    /// Sum over output positions of true-tap counts; the per-axis factor
    /// of the useful MAC count (axes factorise exactly as for T-CONV).
    pub fn useful_row_weight_sum(&self) -> usize {
        (0..self.output).map(|o| self.axis_pattern(o).len()).sum()
    }

    /// Per-axis factor of the dense (zero-inserted-kernel) MAC count:
    /// every output position scans the full effective kernel.
    pub fn dense_row_weight_count(&self) -> usize {
        self.output * self.effective_kernel()
    }
}

/// Full 2-D geometry of a dilated / asymmetric strided convolution.
///
/// Rows and columns carry independent [`DconvAxis`] parameters, so
/// `Kh×Kw` kernels and `Sh×Sw` strides are first-class. When the two
/// axes are identical ([`DconvGeometry::is_symmetric`]) the ZFDR plan
/// machinery composes one axis-class set across both dimensions exactly
/// as it does for T-CONV; asymmetric geometry maps dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DconvGeometry {
    /// Vertical (row) axis.
    pub rows: DconvAxis,
    /// Horizontal (column) axis.
    pub cols: DconvAxis,
}

impl DconvGeometry {
    /// Builds a geometry from two axes.
    pub fn new(rows: DconvAxis, cols: DconvAxis) -> Self {
        DconvGeometry { rows, cols }
    }

    /// Square geometry: both axes share every parameter.
    pub fn square(input: usize, kernel: usize, stride: usize, dilation: usize, pad: usize) -> Option<Self> {
        let axis = DconvAxis::new(input, kernel, stride, dilation, pad)?;
        Some(DconvGeometry { rows: axis, cols: axis })
    }

    /// Whether the two axes are identical — the precondition for the
    /// pattern-class (pow-composed) ZFDR plan.
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether any axis dilates (`D > 1`).
    pub fn is_dilated(&self) -> bool {
        self.rows.dilation > 1 || self.cols.dilation > 1
    }

    /// True kernel taps per channel pair (`Kh·Kw`).
    pub fn kernel_taps(&self) -> usize {
        self.rows.kernel * self.cols.kernel
    }

    /// Dense multiplications per channel pair of the zero-inserted-kernel
    /// formulation: `(O_h·K_eff_h)·(O_w·K_eff_w)`.
    pub fn total_multiplications_per_pair(&self) -> usize {
        self.rows.dense_row_weight_count() * self.cols.dense_row_weight_count()
    }

    /// Multiplications per channel pair that touch a true kernel tap and
    /// a true input value (axes factorise).
    pub fn useful_multiplications_per_pair(&self) -> usize {
        self.rows.useful_row_weight_sum() * self.cols.useful_row_weight_sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sconv_dcgan_conv8() {
        // 8x8 -> 4x4, kernel 5, stride 2, pad 2 (discriminator CONV8).
        let g = SconvGeometry::new(8, 5, 2, 2).unwrap();
        assert_eq!(g.output, 4);
        assert_eq!(g.remainder, 1);
    }

    #[test]
    fn sconv_rejects_degenerate() {
        assert!(SconvGeometry::new(4, 5, 1, 0).is_none());
        assert!(SconvGeometry::new(4, 3, 0, 0).is_none());
        assert!(SconvGeometry::new(0, 3, 1, 0).is_none());
    }

    #[test]
    fn tconv_conv1_matches_paper_example() {
        // Section III-A worked example: CONV1 of the DCGAN generator.
        let g = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        assert_eq!(g.output, 8);
        assert_eq!(g.converse_pad, 2);
        assert_eq!(g.remainder, 1);
        assert_eq!(g.insertion_pad, 2);
        assert_eq!(g.inserted_zeros_per_axis(), 4); // (2-1)*(4-1) + 1
        assert_eq!(g.expanded(), 12);
        // "we store and transfer 147456 input values while only 16384 are useful"
        assert_eq!(g.expanded().pow(2) * 1024, 147_456);
        assert_eq!(g.input.pow(2) * 1024, 16_384);
    }

    #[test]
    fn tconv_conv1_efficiency_is_18_percent() {
        let g = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        // "we conduct 1638400 multiplications while 295936 of them are useful,
        //  whose efficiency is only 18.06%" (counted over the 1024 channels).
        let total = g.total_multiplications_per_channel() * 1024;
        let useful = g.useful_multiplications_per_channel() * 1024;
        assert_eq!(total, 1_638_400);
        assert_eq!(useful, 295_936);
        let eff = useful as f64 / total as f64;
        assert!((eff - 0.1806).abs() < 1e-3, "efficiency {eff}");
    }

    #[test]
    fn tconv_expanded_window_count_equals_output() {
        for (i, w, s) in [(4, 5, 2), (8, 5, 2), (16, 4, 2), (7, 4, 2), (5, 5, 3)] {
            let g = TconvGeometry::for_upsampling(i, w, s).unwrap();
            assert_eq!(
                g.expanded() - g.kernel + 1,
                g.output,
                "window count mismatch for ({i},{w},{s})"
            );
        }
    }

    #[test]
    fn tconv_original_mapping_round_trips() {
        let g = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        let recovered: Vec<usize> = (0..g.expanded())
            .filter_map(|e| g.original_of_expanded(e))
            .collect();
        assert_eq!(recovered, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tconv_rejects_invalid_converse_pad() {
        assert!(TconvGeometry::new(4, 8, 5, 2, 5).is_none());
        // R would be out of range:
        assert!(TconvGeometry::new(4, 9, 5, 2, 0).is_none());
    }

    #[test]
    fn tconv_stride3_supported() {
        // "capable of handling ... future GANs with larger stride (e.g. 3)".
        let g = TconvGeometry::for_upsampling(5, 5, 3).unwrap();
        assert_eq!(g.output, 15);
        assert!(g.remainder < 3);
        assert_eq!(g.expanded() - g.kernel + 1, 15);
    }

    #[test]
    fn wconv_fig6_example() {
        let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
        assert_eq!(g.forward.output, 4);
        assert_eq!(g.inserted_zeros_per_axis(), 4); // (2-1)*(4-1)+1
        assert_eq!(g.inserted_kernel_extent(), 8);
        assert_eq!(g.padded_input_extent(), 12);
        assert_eq!(g.gradient_extent(), 5); // exactly W
    }

    #[test]
    fn wconv_zero_count_eq10() {
        let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
        // (8*8 - 4*4) + (12*12 - 8*8) = 48 + 80 = 128.
        assert_eq!(g.total_zeros(), 128);
    }

    #[test]
    fn wconv_inserted_mapping() {
        let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
        let orig: Vec<Option<usize>> = (0..g.inserted_kernel_extent())
            .map(|k| g.original_of_inserted(k))
            .collect();
        assert_eq!(
            orig,
            vec![Some(0), None, Some(1), None, Some(2), None, Some(3), None]
        );
    }

    #[test]
    fn wconv_gradient_extent_is_kernel_for_common_configs() {
        for (i, w, s, p) in [(8, 5, 2, 2), (16, 4, 2, 1), (32, 4, 2, 1), (28, 7, 1, 3)] {
            let g = WconvGeometry::new(i, w, s, p).unwrap();
            assert_eq!(g.gradient_extent(), w, "config ({i},{w},{s},{p})");
        }
    }

    #[test]
    fn for_target_same_size_stride1_even_kernel() {
        // ArtGAN's 1024t4k1s layer: same-size stride-1 T-CONV with a 4x4
        // kernel requires one extra end-pad zero.
        let g = TconvGeometry::for_target(4, 4, 1, 4).unwrap();
        assert_eq!(g.output, 4);
        assert_eq!(g.extra_end_pad, 1);
        assert_eq!(g.expanded() - g.kernel + 1, g.output);
        // Odd kernels stay symmetric.
        let g = TconvGeometry::for_target(16, 7, 1, 16).unwrap();
        assert_eq!(g.output, 16);
        assert_eq!(g.extra_end_pad, 0);
        assert_eq!(g.converse_pad, 3);
    }

    #[test]
    fn for_target_prefers_exact_then_symmetric() {
        // Exact doubling prefers a symmetric solution when one exists.
        let g = TconvGeometry::for_target(4, 5, 2, 8).unwrap();
        assert_eq!(g.output, 8);
        assert_eq!(g.extra_end_pad, 0);
        assert_eq!(g.converse_pad, 2);
    }

    #[test]
    fn tconv_axis_pattern_is_periodic_inside() {
        let g = TconvGeometry::for_upsampling(8, 5, 2).unwrap();
        // Interior patterns repeat with period S'.
        let mid = g.output / 2;
        assert_eq!(g.axis_pattern(mid), g.axis_pattern(mid + 2));
        assert_ne!(g.axis_pattern(mid), g.axis_pattern(mid + 1));
    }

    #[test]
    fn wconv_axis_pattern_interior_is_full() {
        let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
        // Interior gradient positions see every ∇output element.
        let full: Vec<usize> = (0..g.forward.output).collect();
        assert_eq!(g.axis_pattern(2), full);
        // Boundary positions see fewer.
        assert!(g.axis_pattern(0).len() < full.len());
    }

    #[test]
    fn wconv_useful_counts_bounded() {
        let g = WconvGeometry::new(8, 5, 2, 2).unwrap();
        assert!(g.useful_multiplications_per_pair() <= g.total_multiplications_per_pair());
        assert!(g.useful_multiplications_per_pair() > 0);
    }

    #[test]
    fn dconv_dense_axis_matches_sconv() {
        // Dilation 1 degenerates to plain S-CONV geometry.
        let d = DconvAxis::new(8, 5, 2, 1, 2).unwrap();
        let s = SconvGeometry::new(8, 5, 2, 2).unwrap();
        assert_eq!(d.output, s.output);
        assert_eq!(d.effective_kernel(), 5);
        // Dense == useful when nothing is inserted and padding is absent.
        let nopad = DconvAxis::new(8, 3, 1, 1, 0).unwrap();
        assert_eq!(nopad.useful_row_weight_sum(), nopad.dense_row_weight_count());
    }

    #[test]
    fn dconv_dilated_pattern_structure() {
        // 3 taps dilated by 2: effective extent 5, true taps at {0, 2, 4}.
        let a = DconvAxis::new(8, 3, 1, 2, 2).unwrap();
        assert_eq!(a.output, 8);
        // Interior positions see all three taps.
        assert_eq!(a.axis_pattern(2), vec![0, 2, 4]);
        // The first window starts at pad offset: tap 0 reads padding.
        assert_eq!(a.axis_pattern(0), vec![2, 4]);
        // Useful < dense: the inserted kernel zeros are 2/5 of the scan,
        // and the pad positions shave the borders further.
        assert!(a.useful_row_weight_sum() < a.dense_row_weight_count());
        assert_eq!(a.dense_row_weight_count(), 8 * 5);
    }

    #[test]
    fn dconv_useful_count_by_enumeration() {
        for (i, k, s, d, p) in [(8, 3, 1, 2, 2), (9, 3, 2, 3, 3), (16, 2, 2, 4, 0)] {
            let a = DconvAxis::new(i, k, s, d, p).unwrap();
            let mut count = 0usize;
            for o in 0..a.output {
                for j in 0..k {
                    let pos = o * s + j * d;
                    if pos >= p && pos < p + i {
                        count += 1;
                    }
                }
            }
            assert_eq!(a.useful_row_weight_sum(), count, "axis ({i},{k},{s},{d},{p})");
        }
    }

    #[test]
    fn dconv_asymmetric_axes() {
        let rows = DconvAxis::new(12, 3, 1, 1, 1).unwrap();
        let cols = DconvAxis::new(12, 5, 2, 1, 2).unwrap();
        let g = DconvGeometry::new(rows, cols);
        assert!(!g.is_symmetric());
        assert!(!g.is_dilated());
        assert_eq!(g.rows.output, 12);
        assert_eq!(g.cols.output, 6);
        assert_eq!(g.kernel_taps(), 15);
        assert_eq!(
            g.useful_multiplications_per_pair(),
            rows.useful_row_weight_sum() * cols.useful_row_weight_sum()
        );
    }

    #[test]
    fn dconv_for_target_finds_same_size_padding() {
        let a = DconvAxis::for_target(8, 3, 1, 2, 8).unwrap();
        assert_eq!(a.pad, 2);
        assert_eq!(a.output, 8);
        assert!(DconvAxis::for_target(8, 3, 1, 2, 100).is_none());
    }

    #[test]
    fn dconv_rejects_degenerate() {
        assert!(DconvAxis::new(0, 3, 1, 1, 0).is_none());
        assert!(DconvAxis::new(8, 0, 1, 1, 0).is_none());
        assert!(DconvAxis::new(8, 3, 0, 1, 0).is_none());
        assert!(DconvAxis::new(8, 3, 1, 0, 0).is_none());
        // Effective kernel larger than the padded input.
        assert!(DconvAxis::new(4, 3, 1, 4, 0).is_none());
    }

    #[test]
    fn zero_counts_grow_with_stride_and_pad() {
        // Eq. 6/7 observation: more stride or padding => more zeros.
        let base = TconvGeometry::for_upsampling(8, 5, 2).unwrap();
        let wider = TconvGeometry::for_upsampling(8, 5, 3).unwrap();
        assert!(wider.zeros_per_plane() > base.zeros_per_plane());
    }
}
