//! A minimal dense, row-major, `f32` n-dimensional tensor.
//!
//! The accelerator simulation only needs shapes, but the functional GAN
//! substrate and the ZFDR correctness proofs need real arithmetic, so this
//! module provides just enough of an ndarray: construction, indexing,
//! element-wise maps, and a couple of linear-algebra helpers. The dense
//! kernels ([`gemm`], [`gemm_nt`], [`mmv`]) are thin allocating wrappers
//! over the packed, cache-blocked microkernels in [`crate::kernel`].

use std::fmt;

/// Maximum tensor rank. Shapes and strides are stored inline (no per-tensor
/// heap allocation for metadata), and nothing in the workspace needs more
/// than `[N, C, H, W]`.
pub(crate) const MAX_RANK: usize = 4;

/// Dense row-major `f32` tensor.
///
/// Shape and strides live in fixed `[usize; 4]` arrays (rank ≤ 4), so
/// constructing a tensor around an existing buffer performs no heap
/// allocation — the property the training workspace's zero-allocation
/// steady state relies on. Zero-sized dimensions are allowed; such tensors
/// simply hold no elements.
///
/// # Example
///
/// ```
/// use lergan_tensor::Tensor;
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t[&[1, 2]], 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone)]
pub struct Tensor {
    rank: usize,
    shape: [usize; MAX_RANK],
    strides: [usize; MAX_RANK],
    data: Vec<f32>,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape() == other.shape() && self.data == other.data
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape())
            .field("len", &self.data.len())
            .finish()
    }
}

/// Validates a shape and lays out its inline dimension/stride arrays
/// (unused trailing slots hold 1, which keeps the stride recurrence
/// well-defined; they are never compared or exposed).
fn dims_for(shape: &[usize]) -> (usize, [usize; MAX_RANK], [usize; MAX_RANK]) {
    let rank = shape.len();
    assert!(rank >= 1, "tensor shape must have at least one dim");
    assert!(rank <= MAX_RANK, "tensor rank {rank} exceeds {MAX_RANK}");
    let mut dims = [1usize; MAX_RANK];
    dims[..rank].copy_from_slice(shape);
    let mut strides = [1usize; MAX_RANK];
    for i in (0..rank.saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    (rank, dims, strides)
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or longer than four dimensions.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        let (rank, dims, strides) = dims_for(shape);
        let len = shape.iter().product();
        Tensor {
            rank,
            shape: dims,
            strides,
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        let (rank, dims, strides) = dims_for(shape);
        Tensor {
            rank,
            shape: dims,
            strides,
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut idx = [0usize; MAX_RANK];
        let rank = t.rank;
        for flat in 0..t.data.len() {
            t.unflatten(flat, &mut idx[..rank]);
            t.data[flat] = f(&idx[..rank]);
        }
        t
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape[..self.rank]
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (true only when some dimension
    /// is zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank, "index rank mismatch");
        let mut off = 0;
        for (d, (&i, (&dim, &stride))) in idx
            .iter()
            .zip(self.shape().iter().zip(self.strides.iter()))
            .enumerate()
        {
            assert!(i < dim, "index {i} out of bounds for dim {d} (size {dim})");
            off += i * stride;
        }
        off
    }

    fn unflatten(&self, mut flat: usize, out: &mut [usize]) {
        for (o, &stride) in out.iter_mut().zip(self.strides.iter()) {
            *o = flat / stride;
            flat %= stride;
        }
    }

    /// Returns a reshaped copy sharing the same data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rank: self.rank,
            shape: self.shape,
            strides: self.strides,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip_with shape mismatch");
        Tensor {
            rank: self.rank,
            shape: self.shape,
            strides: self.strides,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Number of elements equal to exactly `0.0`.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Overwrites every element with `value` in place.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Adds `k * other` into `self` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy_in_place(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }

    /// Adds `k * other` into `self` from a flat slice of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy_slice_in_place(&mut self, k: f32, other: &[f32]) {
        assert_eq!(self.data.len(), other.len(), "axpy length mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.iter()) {
            *a += k * b;
        }
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.offset(idx)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }
}

impl std::ops::Index<&[usize; 2]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 2]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 3]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 3]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 4]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 4]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

/// Work floor (multiply-adds) below which kernels stay single-threaded:
/// spawning scoped threads costs more than this much arithmetic.
pub(crate) const MIN_PARALLEL_FLOPS: usize = 32 * 1024;

/// Matrix-multiply-vector: `m` is `[rows, cols]`, `v` has `cols` elements.
///
/// This is the primitive the ReRAM CArray executes in one read cycle; the
/// functional ZFDR execution path is built out of calls to it. Allocating
/// wrapper over [`crate::kernel::mmv_into`]; every element accumulates
/// along `cols` in ascending order, bit-identically for every thread
/// count.
///
/// # Panics
///
/// Panics if `m` is not rank-2 or the vector length does not match.
pub fn mmv(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.shape().len(), 2, "mmv expects a rank-2 matrix");
    let mut out = vec![0.0; m.shape()[0]];
    crate::kernel::mmv_into(m, v, &mut out);
    out
}

/// Packed matrix-matrix product: `a` is `[m, k]`, `b` is `[k, n]`,
/// returning `[m, n]`.
///
/// This is the batched-execution primitive behind the ZFDR
/// one-GEMM-per-pattern-class path and the im2col convolution. Allocating
/// wrapper over the cache-blocked [`crate::kernel::gemm_into`], which
/// accumulates along `k` in ascending order exactly like [`mmv`] does, so
/// for any column vector `b` the two agree bit-for-bit; row blocks are
/// distributed over the [`crate::parallel`] substrate with each worker
/// owning disjoint output rows, so results are bit-identical for every
/// thread count.
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use lergan_tensor::tensor::gemm;
/// use lergan_tensor::Tensor;
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(gemm(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn gemm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "gemm expects rank-2 operands");
    assert_eq!(b.shape().len(), 2, "gemm expects rank-2 operands");
    let mut out = Tensor::zeros(&[a.shape()[0], b.shape()[1]]);
    crate::kernel::gemm_into(a, b, out.data_mut());
    out
}

/// GEMM with a pre-transposed right operand:
/// `[m, k] × ([n, k])ᵀ → [m, n]`.
///
/// Every element accumulates over `l` ascending from `0.0` with the same
/// chain as [`mmv`], so `gemm_nt(a, bt)` column `j` is bit-identical to
/// `mmv(a, bt_row_j)` — the property the batched ZFDR execution relies on.
/// Allocating wrapper over [`crate::kernel::gemm_nt_into`]. Prefer this
/// over [`gemm`] when the right operand is naturally gathered
/// row-per-column (few columns, long inner dimension).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions (the
/// *second* extent of both operands) disagree.
pub fn gemm_nt(a: &Tensor, bt: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "gemm_nt expects rank-2 operands");
    assert_eq!(bt.shape().len(), 2, "gemm_nt expects rank-2 operands");
    let mut out = Tensor::zeros(&[a.shape()[0], bt.shape()[0]]);
    crate::kernel::gemm_nt_into(a, bt, out.data_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.count_zeros(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_sized_dimensions_are_allowed() {
        let t = Tensor::zeros(&[3, 0]);
        assert_eq!(t.shape(), &[3, 0]);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rank_above_four_panics() {
        let _ = Tensor::zeros(&[1, 1, 1, 1, 1]);
    }

    #[test]
    fn equality_ignores_inline_padding() {
        // Same shape built through different paths must compare equal, and
        // different ranks with the same element count must not.
        let a = Tensor::from_vec(&[2, 3], vec![0.0; 6]);
        let b = Tensor::zeros(&[2, 3]);
        assert_eq!(a, b);
        let c = Tensor::zeros(&[2, 3, 1]);
        assert_ne!(a, c);
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let t = Tensor::from_fn(&[3, 4, 5], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32
        });
        assert_eq!(t[&[2, 3, 4]], 234.0);
        assert_eq!(t[&[0, 0, 0]], 0.0);
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(&[2, 2]);
        t[&[1, 0][..]] = 7.0;
        assert_eq!(t[&[1, 0]], 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[2, 0]];
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0]);
        let c = a.zip_with(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn fill_overwrites_in_place() {
        let mut t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        t.fill(0.5);
        assert_eq!(t.data(), &[0.5; 4]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[2, 2]);
        let b = Tensor::filled(&[2, 2], 3.0);
        a.axpy_in_place(0.5, &b);
        assert_eq!(a.data(), &[2.5, 2.5, 2.5, 2.5]);
        a.axpy_slice_in_place(1.0, &[0.5; 4]);
        assert_eq!(a.data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn mmv_matches_manual() {
        let m = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = mmv(&m, &[1.0, 0.0, -1.0]);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |idx| (idx[0] * 6 + idx[1]) as f32);
        let r = t.reshaped(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }
}
