//! A minimal dense, row-major, `f32` n-dimensional tensor.
//!
//! The accelerator simulation only needs shapes, but the functional GAN
//! substrate and the ZFDR correctness proofs need real arithmetic, so this
//! module provides just enough of an ndarray: construction, indexing,
//! element-wise maps, and a couple of linear-algebra helpers.

use std::fmt;

/// Dense row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use lergan_tensor::Tensor;
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t[&[1, 2]], 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .finish()
    }
}

fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must have at least one dim");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero: {shape:?}"
        );
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            strides: strides_for(shape),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            strides: strides_for(shape),
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..t.data.len() {
            t.unflatten(flat, &mut idx);
            t.data[flat] = f(&idx);
        }
        t
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, (&dim, &stride))) in idx
            .iter()
            .zip(self.shape.iter().zip(self.strides.iter()))
            .enumerate()
        {
            assert!(i < dim, "index {i} out of bounds for dim {d} (size {dim})");
            off += i * stride;
        }
        off
    }

    fn unflatten(&self, mut flat: usize, out: &mut [usize]) {
        for (o, &stride) in out.iter_mut().zip(self.strides.iter()) {
            *o = flat / stride;
            flat %= stride;
        }
    }

    /// Returns a reshaped copy sharing the same data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Number of elements equal to exactly `0.0`.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Adds `k * other` into `self` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy_in_place(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.offset(idx)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }
}

impl std::ops::Index<&[usize; 2]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 2]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 3]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 3]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 4]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 4]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

/// Matrix-multiply-vector: `m` is `[rows, cols]`, `v` has `cols` elements.
///
/// This is the primitive the ReRAM CArray executes in one read cycle; the
/// functional ZFDR execution path is built out of calls to it.
///
/// # Panics
///
/// Panics if `m` is not rank-2 or the vector length does not match.
pub fn mmv(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.shape().len(), 2, "mmv expects a rank-2 matrix");
    let (rows, cols) = (m.shape()[0], m.shape()[1]);
    assert_eq!(v.len(), cols, "mmv vector length mismatch");
    let mut out = vec![0.0; rows];
    // Rows are independent, so the parallel split cannot change any
    // per-element accumulation order: results are bit-identical for every
    // thread count. The chunk floor keeps small products serial.
    let min_rows = (MIN_PARALLEL_FLOPS / cols.max(1)).max(1);
    crate::parallel::for_each_chunk_mut(&mut out, min_rows, |row0, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            let r = row0 + i;
            let row = &m.data()[r * cols..(r + 1) * cols];
            *slot = row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
        }
    });
    out
}

/// Work floor (multiply-adds) below which kernels stay single-threaded:
/// spawning scoped threads costs more than this much arithmetic.
pub(crate) const MIN_PARALLEL_FLOPS: usize = 32 * 1024;

/// Inner-kernel K-blocking factor: one `[KC]`-deep panel of `b` stays in
/// cache while a block of output rows streams over it.
const GEMM_KC: usize = 256;

/// Blocked matrix-matrix product: `a` is `[m, k]`, `b` is `[k, n]`,
/// returning `[m, n]`.
///
/// This is the batched-execution primitive behind the ZFDR
/// one-GEMM-per-pattern-class path and the im2col convolution. The kernel
/// accumulates along `k` in ascending order exactly like [`mmv`] does, so
/// for any column vector `b` the two agree bit-for-bit; row blocks are
/// distributed over the [`crate::parallel`] substrate with each worker
/// owning disjoint output rows, so results are bit-identical for every
/// thread count.
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use lergan_tensor::tensor::gemm;
/// use lergan_tensor::Tensor;
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
/// assert_eq!(gemm(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn gemm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "gemm expects rank-2 operands");
    assert_eq!(b.shape().len(), 2, "gemm expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (kb, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "gemm inner dimensions disagree");
    let mut out = Tensor::zeros(&[m, n]);
    // Split output rows across workers; each chunk of rows is written by
    // exactly one worker with the serial kernel, so the accumulation order
    // per element never depends on the thread count.
    let min_rows = (MIN_PARALLEL_FLOPS / (k * n).max(1)).max(1);
    let mut rows: Vec<&mut [f32]> = out.data.chunks_mut(n).collect();
    crate::parallel::for_each_chunk_mut(&mut rows, min_rows, |row0, out_rows| {
        gemm_rows(out_rows, row0, a.data(), b.data(), k, n);
    });
    out
}

/// GEMM with a pre-transposed right operand:
/// `[m, k] × ([n, k])ᵀ → [m, n]`, each output element one contiguous dot
/// product.
///
/// Every element accumulates over `l` ascending from `0.0` with the same
/// expression as [`mmv`], so `gemm_nt(a, bt)` column `j` is bit-identical
/// to `mmv(a, bt_row_j)` — the property the batched ZFDR execution relies
/// on. Prefer this over [`gemm`] when the right operand is naturally
/// gathered row-per-column (few columns, long inner dimension).
///
/// # Panics
///
/// Panics if either operand is not rank-2 or the inner dimensions (the
/// *second* extent of both operands) disagree.
pub fn gemm_nt(a: &Tensor, bt: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "gemm_nt expects rank-2 operands");
    assert_eq!(bt.shape().len(), 2, "gemm_nt expects rank-2 operands");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, kb) = (bt.shape()[0], bt.shape()[1]);
    assert_eq!(k, kb, "gemm_nt inner dimensions disagree");
    let mut out = Tensor::zeros(&[m, n]);
    let adata = a.data.as_slice();
    let bdata = bt.data.as_slice();
    let min_rows = (MIN_PARALLEL_FLOPS / (k * n).max(1)).max(1);
    let mut rows: Vec<&mut [f32]> = out.data.chunks_mut(n.max(1)).collect();
    crate::parallel::for_each_chunk_mut(&mut rows, min_rows, |row0, out_rows| {
        for (i, orow) in out_rows.iter_mut().enumerate() {
            let abase = (row0 + i) * k;
            let arow = &adata[abase..abase + k];
            for (j, slot) in orow.iter_mut().enumerate() {
                let brow = &bdata[j * k..j * k + k];
                *slot = arow.iter().zip(brow.iter()).map(|(&x, &y)| x * y).sum();
            }
        }
    });
    out
}

/// Serial kernel: accumulates `out_rows[i] += a[row0+i, :] * b` with `k`
/// blocked into panels of [`GEMM_KC`]. The `j` loop is an iterator-free
/// indexed loop over two equal-length slices, which LLVM autovectorizes.
fn gemm_rows(out_rows: &mut [&mut [f32]], row0: usize, a: &[f32], b: &[f32], k: usize, n: usize) {
    for kb in (0..k).step_by(GEMM_KC) {
        let kend = (kb + GEMM_KC).min(k);
        for (i, orow) in out_rows.iter_mut().enumerate() {
            let abase = (row0 + i) * k;
            let arow = &a[abase..abase + k];
            let orow = &mut orow[..n];
            for (l, &av) in arow.iter().enumerate().take(kend).skip(kb) {
                let brow = &b[l * n..l * n + n];
                for j in 0..n {
                    orow[j] += av * brow[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.count_zeros(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let t = Tensor::from_fn(&[3, 4, 5], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32
        });
        assert_eq!(t[&[2, 3, 4]], 234.0);
        assert_eq!(t[&[0, 0, 0]], 0.0);
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(&[2, 2]);
        t[&[1, 0][..]] = 7.0;
        assert_eq!(t[&[1, 0]], 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[2, 0]];
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0]);
        let c = a.zip_with(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[2, 2]);
        let b = Tensor::filled(&[2, 2], 3.0);
        a.axpy_in_place(0.5, &b);
        assert_eq!(a.data(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn mmv_matches_manual() {
        let m = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = mmv(&m, &[1.0, 0.0, -1.0]);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |idx| (idx[0] * 6 + idx[1]) as f32);
        let r = t.reshaped(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }
}
