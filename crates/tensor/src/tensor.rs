//! A minimal dense, row-major, `f32` n-dimensional tensor.
//!
//! The accelerator simulation only needs shapes, but the functional GAN
//! substrate and the ZFDR correctness proofs need real arithmetic, so this
//! module provides just enough of an ndarray: construction, indexing,
//! element-wise maps, and a couple of linear-algebra helpers.

use std::fmt;

/// Dense row-major `f32` tensor.
///
/// # Example
///
/// ```
/// use lergan_tensor::Tensor;
/// let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t[&[1, 2]], 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("len", &self.data.len())
            .finish()
    }
}

fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn filled(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must have at least one dim");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero: {shape:?}"
        );
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            strides: strides_for(shape),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            strides: strides_for(shape),
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut idx = vec![0usize; shape.len()];
        for flat in 0..t.data.len() {
            t.unflatten(flat, &mut idx);
            t.data[flat] = f(&idx);
        }
        t
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, (&dim, &stride))) in idx
            .iter()
            .zip(self.shape.iter().zip(self.strides.iter()))
            .enumerate()
        {
            assert!(i < dim, "index {i} out of bounds for dim {d} (size {dim})");
            off += i * stride;
        }
        off
    }

    fn unflatten(&self, mut flat: usize, out: &mut [usize]) {
        for (o, &stride) in out.iter_mut().zip(self.strides.iter()) {
            *o = flat / stride;
            flat %= stride;
        }
    }

    /// Returns a reshaped copy sharing the same data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise binary combination of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            strides: self.strides.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Number of elements equal to exactly `0.0`.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Adds `k * other` into `self` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy_in_place(&mut self, k: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
    }
}

impl std::ops::Index<&[usize]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize]) -> &f32 {
        &self.data[self.offset(idx)]
    }
}

impl std::ops::IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }
}

impl std::ops::Index<&[usize; 2]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 2]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 3]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 3]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

impl std::ops::Index<&[usize; 4]> for Tensor {
    type Output = f32;
    fn index(&self, idx: &[usize; 4]) -> &f32 {
        &self.data[self.offset(idx.as_slice())]
    }
}

/// Matrix-multiply-vector: `m` is `[rows, cols]`, `v` has `cols` elements.
///
/// This is the primitive the ReRAM CArray executes in one read cycle; the
/// functional ZFDR execution path is built out of calls to it.
///
/// # Panics
///
/// Panics if `m` is not rank-2 or the vector length does not match.
pub fn mmv(m: &Tensor, v: &[f32]) -> Vec<f32> {
    assert_eq!(m.shape().len(), 2, "mmv expects a rank-2 matrix");
    let (rows, cols) = (m.shape()[0], m.shape()[1]);
    assert_eq!(v.len(), cols, "mmv vector length mismatch");
    let mut out = vec![0.0; rows];
    for r in 0..rows {
        let row = &m.data()[r * cols..(r + 1) * cols];
        out[r] = row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.count_zeros(), 24);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let t = Tensor::from_fn(&[3, 4, 5], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f32);
        assert_eq!(t[&[2, 3, 4]], 234.0);
        assert_eq!(t[&[0, 0, 0]], 0.0);
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(&[2, 2]);
        t[&[1, 0][..]] = 7.0;
        assert_eq!(t[&[1, 0]], 7.0);
        assert_eq!(t.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t[&[2, 0]];
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0]);
        let c = a.zip_with(&b, |x, y| y - x);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[2, 2]);
        let b = Tensor::filled(&[2, 2], 3.0);
        a.axpy_in_place(0.5, &b);
        assert_eq!(a.data(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn mmv_matches_manual() {
        let m = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = mmv(&m, &[1.0, 0.0, -1.0]);
        assert_eq!(out, vec![-2.0, -2.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |idx| (idx[0] * 6 + idx[1]) as f32);
        let r = t.reshaped(&[3, 4]);
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
    }
}
