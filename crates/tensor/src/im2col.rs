//! im2col + GEMM convolution — the matrix formulation PIM mappings (and
//! GPUs) actually execute.
//!
//! `im2col` unrolls every convolution window into a matrix column; the
//! convolution then becomes one matrix-matrix product with the reshaped
//! kernels. This is the dense formulation whose zero columns ZFDR prunes,
//! so having it as a first-class reference both cross-checks the loop-nest
//! kernels and quantifies the im2col traffic the baselines pay.

use crate::geometry::SconvGeometry;
use crate::tensor::Tensor;

/// Unrolls a padded `[C, H, W]` input into the im2col matrix
/// `[C·K·K, O·O]` for the given geometry: column `(oy·O + ox)` holds the
/// window at output position `(oy, ox)` in channel-major, then
/// row-major-kernel order. Allocating wrapper over [`im2col_into`].
///
/// # Panics
///
/// Panics if the input shape disagrees with the geometry.
pub fn im2col(input: &Tensor, geom: &SconvGeometry) -> Tensor {
    let c = input.shape()[0];
    let k = geom.kernel;
    let o = geom.output;
    let mut out = vec![0.0; c * k * k * o * o];
    im2col_into(input, geom, &mut out);
    Tensor::from_vec(&[c * k * k, o * o], out)
}

/// [`im2col`] into a caller-owned buffer of length `C·K·K · O·O`, fully
/// overwritten. Padding is resolved inline against the unpadded input (no
/// padded intermediate plane is materialised): out-of-bounds window taps
/// are written as `0.0`, producing exactly the values of the padded
/// formulation.
///
/// # Panics
///
/// Panics if the input shape disagrees with the geometry or the buffer
/// length is wrong.
pub fn im2col_into(input: &Tensor, geom: &SconvGeometry, out: &mut [f32]) {
    assert_eq!(input.shape().len(), 3, "im2col expects [C, H, W]");
    assert_eq!(input.shape()[1], geom.input, "input extent mismatch");
    assert_eq!(input.shape()[2], geom.input, "input extent mismatch");
    let c = input.shape()[0];
    let k = geom.kernel;
    let o = geom.output;
    let h = geom.input;
    let (stride, pad) = (geom.stride, geom.pad);
    assert_eq!(out.len(), c * k * k * o * o, "im2col buffer length mismatch");
    let data = input.data();
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ci * k * k + ky * k + kx;
                let orow = &mut out[row * o * o..(row + 1) * o * o];
                for oy in 0..o {
                    let y = oy * stride + ky;
                    let dst = &mut orow[oy * o..(oy + 1) * o];
                    if y < pad || y >= pad + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &data[ci * h * h + (y - pad) * h..ci * h * h + (y - pad + 1) * h];
                    for (ox, slot) in dst.iter_mut().enumerate() {
                        let x = ox * stride + kx;
                        *slot = if x < pad || x >= pad + h {
                            0.0
                        } else {
                            irow[x - pad]
                        };
                    }
                }
            }
        }
    }
}

/// Reshapes `[OC, IC, K, K]` kernels into the GEMM weight matrix
/// `[OC, IC·K·K]` matching [`im2col`]'s row order.
///
/// # Panics
///
/// Panics if the weights are not rank-4.
pub fn kernels_to_matrix(weights: &Tensor) -> Tensor {
    assert_eq!(weights.shape().len(), 4, "expected [OC, IC, K, K] kernels");
    let (oc, ic, k) = (weights.shape()[0], weights.shape()[1], weights.shape()[2]);
    Tensor::from_fn(&[oc, ic * k * k], |idx| {
        let (row, col) = (idx[0], idx[1]);
        let ci = col / (k * k);
        let ky = (col / k) % k;
        let kx = col % k;
        weights[&[row, ci, ky, kx]]
    })
}

/// Matrix multiply `[m, k] × [k, n] → [m, n]` through the blocked,
/// thread-parallel [`crate::tensor::gemm`] kernel.
///
/// # Panics
///
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.shape()[1],
        b.shape()[0],
        "inner dimensions disagree: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    crate::tensor::gemm(a, b)
}

/// Convolution through im2col + GEMM; identical to
/// [`crate::conv::Conv2d::forward`].
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn conv2d_gemm(input: &Tensor, weights: &Tensor, geom: &SconvGeometry) -> Tensor {
    let oc = weights.shape()[0];
    let cols = im2col(input, geom);
    let w = kernels_to_matrix(weights);
    let flat = matmul(&w, &cols);
    flat.reshaped(&[oc, geom.output, geom.output])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;
    use crate::conv::Conv2d;

    fn det(shape: &[usize], seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
    }

    #[test]
    fn gemm_conv_equals_loop_nest() {
        for (i, k, s, p, ic, oc) in [
            (8, 3, 1, 1, 2, 3),
            (8, 5, 2, 2, 3, 4),
            (16, 4, 2, 1, 2, 2),
            (6, 3, 3, 0, 1, 1),
        ] {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let conv = Conv2d::new(ic, oc, k, s, p).unwrap();
            let input = det(&[ic, i, i], i as u32);
            let weights = det(&[oc, ic, k, k], k as u32);
            let a = conv.forward(&input, &weights);
            let b = conv2d_gemm(&input, &weights, &geom);
            assert_tensors_close(&a, &b, 1e-4);
        }
    }

    #[test]
    fn im2col_shape_and_content() {
        let geom = SconvGeometry::new(4, 3, 1, 0).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let cols = im2col(&input, &geom);
        assert_eq!(cols.shape(), &[9, 4]);
        // First column = top-left window, row-major.
        let first: Vec<f32> = (0..9).map(|r| cols[&[r, 0]]).collect();
        assert_eq!(first, vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn inline_padding_matches_padded_formulation() {
        // im2col_into resolves padding inline; it must reproduce the
        // materialised pad_planes formulation value-for-value.
        use crate::zero_insert::pad_planes;
        for (i, k, s, p, c) in [(8, 3, 1, 1, 2), (8, 5, 2, 2, 3), (16, 4, 2, 1, 2), (6, 3, 3, 0, 1)]
        {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let input = det(&[c, i, i], 5);
            let cols = im2col(&input, &geom);
            let padded = pad_planes(&input, p);
            let o = geom.output;
            for ci in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let row = ci * k * k + ky * k + kx;
                        for oy in 0..o {
                            for ox in 0..o {
                                let want = padded[&[ci, oy * s + ky, ox * s + kx]];
                                let got = cols[&[row, oy * o + ox]];
                                assert_eq!(got.to_bits(), want.to_bits());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let a = det(&[3, 3], 9);
        let id = Tensor::from_fn(&[3, 3], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_tensors_close(&matmul(&a, &id), &a, 1e-6);
        assert_tensors_close(&matmul(&id, &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }
}
