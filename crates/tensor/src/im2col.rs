//! im2col + GEMM convolution — the matrix formulation PIM mappings (and
//! GPUs) actually execute.
//!
//! `im2col` unrolls every convolution window into a matrix column; the
//! convolution then becomes one matrix-matrix product with the reshaped
//! kernels. This is the dense formulation whose zero columns ZFDR prunes,
//! so having it as a first-class reference both cross-checks the loop-nest
//! kernels and quantifies the im2col traffic the baselines pay.

use crate::geometry::SconvGeometry;
use crate::tensor::Tensor;

/// Unrolls a padded `[C, H, W]` input into the im2col matrix
/// `[C·K·K, O·O]` for the given geometry: column `(oy·O + ox)` holds the
/// window at output position `(oy, ox)` in channel-major, then
/// row-major-kernel order. Allocating wrapper over [`im2col_into`].
///
/// # Panics
///
/// Panics if the input shape disagrees with the geometry.
pub fn im2col(input: &Tensor, geom: &SconvGeometry) -> Tensor {
    let c = input.shape()[0];
    let k = geom.kernel;
    let o = geom.output;
    let mut out = vec![0.0; c * k * k * o * o];
    im2col_into(input, geom, &mut out);
    Tensor::from_vec(&[c * k * k, o * o], out)
}

/// [`im2col`] into a caller-owned buffer of length `C·K·K · O·O`, fully
/// overwritten. Padding is resolved inline against the unpadded input (no
/// padded intermediate plane is materialised): out-of-bounds window taps
/// are written as `0.0`, producing exactly the values of the padded
/// formulation.
///
/// # Panics
///
/// Panics if the input shape disagrees with the geometry or the buffer
/// length is wrong.
pub fn im2col_into(input: &Tensor, geom: &SconvGeometry, out: &mut [f32]) {
    assert_eq!(input.shape().len(), 3, "im2col expects [C, H, W]");
    assert_eq!(input.shape()[1], geom.input, "input extent mismatch");
    assert_eq!(input.shape()[2], geom.input, "input extent mismatch");
    let c = input.shape()[0];
    let k = geom.kernel;
    let o = geom.output;
    let h = geom.input;
    let (stride, pad) = (geom.stride, geom.pad);
    assert_eq!(out.len(), c * k * k * o * o, "im2col buffer length mismatch");
    let data = input.data();
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = ci * k * k + ky * k + kx;
                let orow = &mut out[row * o * o..(row + 1) * o * o];
                for oy in 0..o {
                    let y = oy * stride + ky;
                    let dst = &mut orow[oy * o..(oy + 1) * o];
                    if y < pad || y >= pad + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &data[ci * h * h + (y - pad) * h..ci * h * h + (y - pad + 1) * h];
                    for (ox, slot) in dst.iter_mut().enumerate() {
                        let x = ox * stride + kx;
                        *slot = if x < pad || x >= pad + h {
                            0.0
                        } else {
                            irow[x - pad]
                        };
                    }
                }
            }
        }
    }
}

/// Batched [`im2col_into`] over `B` concatenated `[C, H, W]` sample
/// planes: writes the `[C·K·K, B·O·O]` matrix whose column `b·O·O + p` is
/// exactly [`im2col_into`]'s column `p` for sample `b` — the per-sample
/// matrices stacked along the *column* axis.
///
/// This is the batched trainer's GEMM operand: one
/// `[OC, C·K·K] × [C·K·K, B·O·O]` product covers the whole batch with `n`
/// multiplied by `B`, which keeps the GEMM kernels' SIMD lanes (they run
/// across output columns) saturated — the `m`-multiplied stacking starves
/// them whenever `OC` is small. Work is sharded across workers by matrix
/// row; every element is a pure copy or a structural zero, so the
/// sharding cannot change any value.
///
/// Unlike the per-sample reference builders, this one takes the fast
/// paths the trainer's hot loop earns: stride-1 window rows are straight
/// `memcpy`s, and strided rows precompute the in-bounds column range so
/// the inner loop carries no per-element padding branch. Both are pure
/// data movement — the emitted values are bit-identical to
/// [`im2col_into`]'s (pinned by the stacking test).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
pub fn im2col_batch_into(
    inputs: &[f32],
    batch: usize,
    channels: usize,
    geom: &SconvGeometry,
    out: &mut [f32],
) {
    let k = geom.kernel;
    let o = geom.output;
    let h = geom.input;
    let (stride, pad) = (geom.stride, geom.pad);
    let slen = channels * h * h;
    assert_eq!(inputs.len(), batch * slen, "batch input length mismatch");
    let red = channels * k * k;
    let (oo, bo) = (o * o, batch * o * o);
    assert_eq!(out.len(), red * bo, "im2col buffer length mismatch");
    let min_rows = (crate::tensor::MIN_PARALLEL_FLOPS / bo.max(1)).max(1);
    crate::parallel::for_each_unit_chunk_mut(out, bo, min_rows, |row0, rows| {
        for (d, orow) in rows.chunks_mut(bo).enumerate() {
            let row = row0 + d;
            let ci = row / (k * k);
            let ky = (row / k) % k;
            let kx = row % k;
            // Columns `ox` whose tap `x = ox·stride + kx` lands inside the
            // unpadded plane: `pad ≤ x < pad + h`. Everything outside the
            // range is a structural zero.
            let x_lo = pad.saturating_sub(kx).div_ceil(stride).min(o);
            let x_hi = if pad + h > kx {
                (pad + h - kx).div_ceil(stride).min(o)
            } else {
                0
            }
            .max(x_lo);
            for b in 0..batch {
                let plane = &inputs[b * slen + ci * h * h..b * slen + (ci + 1) * h * h];
                let brow = &mut orow[b * oo..(b + 1) * oo];
                for oy in 0..o {
                    let y = oy * stride + ky;
                    let dst = &mut brow[oy * o..(oy + 1) * o];
                    if y < pad || y >= pad + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &plane[(y - pad) * h..(y - pad + 1) * h];
                    dst[..x_lo].fill(0.0);
                    dst[x_hi..].fill(0.0);
                    if stride == 1 {
                        // Contiguous window row: one copy.
                        dst[x_lo..x_hi]
                            .copy_from_slice(&irow[x_lo + kx - pad..x_hi + kx - pad]);
                    } else {
                        let base = x_lo * stride + kx - pad;
                        for (i, slot) in dst[x_lo..x_hi].iter_mut().enumerate() {
                            *slot = irow[base + i * stride];
                        }
                    }
                }
            }
        }
    });
}

/// Transposed [`im2col_into`] over a raw `[C, H, W]` slice: writes the
/// `[O·O, C·K·K]` matrix whose row `p = oy·O + ox` holds the window at
/// output position `p` in ascending `(ci, ky, kx)` order — exactly
/// [`im2col_into`]'s column `p`, relaid row-major.
///
/// This is the layout for GEMMs that want window-major operands (e.g.
/// products against a `[C·K·K, OC]` weight matrix with `m = O·O`). Taking
/// the input as a slice (not a [`Tensor`]) lets callers pass per-sample
/// planes of a batch buffer without intermediate views. Padding taps are
/// written as `0.0`, matching the padded formulation exactly.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
pub fn im2col_t_into(input: &[f32], channels: usize, geom: &SconvGeometry, out: &mut [f32]) {
    let k = geom.kernel;
    let o = geom.output;
    let h = geom.input;
    let (stride, pad) = (geom.stride, geom.pad);
    assert_eq!(input.len(), channels * h * h, "input length mismatch");
    let red = channels * k * k;
    assert_eq!(out.len(), o * o * red, "im2col buffer length mismatch");
    for oy in 0..o {
        for ox in 0..o {
            let prow = &mut out[(oy * o + ox) * red..(oy * o + ox + 1) * red];
            let mut r = 0;
            for ci in 0..channels {
                let plane = &input[ci * h * h..(ci + 1) * h * h];
                for ky in 0..k {
                    let y = oy * stride + ky;
                    if y < pad || y >= pad + h {
                        prow[r..r + k].fill(0.0);
                        r += k;
                        continue;
                    }
                    let irow = &plane[(y - pad) * h..(y - pad + 1) * h];
                    for kx in 0..k {
                        let x = ox * stride + kx;
                        prow[r] = if x < pad || x >= pad + h {
                            0.0
                        } else {
                            irow[x - pad]
                        };
                        r += 1;
                    }
                }
            }
        }
    }
}

/// Reshapes `[OC, IC, K, K]` kernels into the GEMM weight matrix
/// `[OC, IC·K·K]` matching [`im2col`]'s row order.
///
/// # Panics
///
/// Panics if the weights are not rank-4.
pub fn kernels_to_matrix(weights: &Tensor) -> Tensor {
    assert_eq!(weights.shape().len(), 4, "expected [OC, IC, K, K] kernels");
    let (oc, ic, k) = (weights.shape()[0], weights.shape()[1], weights.shape()[2]);
    Tensor::from_fn(&[oc, ic * k * k], |idx| {
        let (row, col) = (idx[0], idx[1]);
        let ci = col / (k * k);
        let ky = (col / k) % k;
        let kx = col % k;
        weights[&[row, ci, ky, kx]]
    })
}

/// Matrix multiply `[m, k] × [k, n] → [m, n]` through the blocked,
/// thread-parallel [`crate::tensor::gemm`] kernel.
///
/// # Panics
///
/// Panics on inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.shape()[1],
        b.shape()[0],
        "inner dimensions disagree: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    crate::tensor::gemm(a, b)
}

/// Convolution through im2col + GEMM; identical to
/// [`crate::conv::Conv2d::forward`].
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn conv2d_gemm(input: &Tensor, weights: &Tensor, geom: &SconvGeometry) -> Tensor {
    let oc = weights.shape()[0];
    let cols = im2col(input, geom);
    let w = kernels_to_matrix(weights);
    let flat = matmul(&w, &cols);
    flat.reshaped(&[oc, geom.output, geom.output])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;
    use crate::conv::Conv2d;

    fn det(shape: &[usize], seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
    }

    #[test]
    fn transposed_im2col_is_the_exact_transpose() {
        for (i, k, s, p, c) in [(8, 3, 1, 1, 2), (8, 5, 2, 2, 3), (6, 3, 3, 0, 1)] {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let input = det(&[c, i, i], i as u32 + 3);
            let (red, oo) = (c * k * k, geom.output * geom.output);
            let mut cols = vec![0.0; red * oo];
            im2col_into(&input, &geom, &mut cols);
            let mut cols_t = vec![0.0; oo * red];
            im2col_t_into(input.data(), c, &geom, &mut cols_t);
            for r in 0..red {
                for p_ in 0..oo {
                    assert_eq!(
                        cols[r * oo + p_].to_bits(),
                        cols_t[p_ * red + r].to_bits(),
                        "(i={i},k={k},s={s},p={p}) element ({r},{p_})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_im2col_stacks_per_sample_columns_bitwise() {
        // Column b·O·O + p of the batched matrix must be bit-identical to
        // column p of sample b's own im2col matrix, at every worker count
        // (row sharding is pure data movement).
        let batch = 3;
        for (i, k, s, p, c) in [(8, 3, 1, 1, 2), (8, 5, 2, 2, 3), (6, 3, 3, 0, 1)] {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let (red, oo) = (c * k * k, geom.output * geom.output);
            let samples: Vec<Tensor> =
                (0..batch).map(|b| det(&[c, i, i], (i + b) as u32)).collect();
            let mut inputs = Vec::new();
            for t in &samples {
                inputs.extend_from_slice(t.data());
            }
            for threads in [1usize, 2, 8] {
                let mut batched = vec![f32::NAN; red * batch * oo];
                crate::parallel::with_threads(threads, || {
                    im2col_batch_into(&inputs, batch, c, &geom, &mut batched);
                });
                for (b, t) in samples.iter().enumerate() {
                    let mut cols = vec![0.0; red * oo];
                    im2col_into(t, &geom, &mut cols);
                    for r in 0..red {
                        for q in 0..oo {
                            assert_eq!(
                                batched[r * batch * oo + b * oo + q].to_bits(),
                                cols[r * oo + q].to_bits(),
                                "(i={i},k={k},s={s},p={p}) sample {b} element ({r},{q}) threads={threads}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_conv_equals_loop_nest() {
        for (i, k, s, p, ic, oc) in [
            (8, 3, 1, 1, 2, 3),
            (8, 5, 2, 2, 3, 4),
            (16, 4, 2, 1, 2, 2),
            (6, 3, 3, 0, 1, 1),
        ] {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let conv = Conv2d::new(ic, oc, k, s, p).unwrap();
            let input = det(&[ic, i, i], i as u32);
            let weights = det(&[oc, ic, k, k], k as u32);
            let a = conv.forward(&input, &weights);
            let b = conv2d_gemm(&input, &weights, &geom);
            assert_tensors_close(&a, &b, 1e-4);
        }
    }

    #[test]
    fn im2col_shape_and_content() {
        let geom = SconvGeometry::new(4, 3, 1, 0).unwrap();
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32);
        let cols = im2col(&input, &geom);
        assert_eq!(cols.shape(), &[9, 4]);
        // First column = top-left window, row-major.
        let first: Vec<f32> = (0..9).map(|r| cols[&[r, 0]]).collect();
        assert_eq!(first, vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn inline_padding_matches_padded_formulation() {
        // im2col_into resolves padding inline; it must reproduce the
        // materialised pad_planes formulation value-for-value.
        use crate::zero_insert::pad_planes;
        for (i, k, s, p, c) in [(8, 3, 1, 1, 2), (8, 5, 2, 2, 3), (16, 4, 2, 1, 2), (6, 3, 3, 0, 1)]
        {
            let geom = SconvGeometry::new(i, k, s, p).unwrap();
            let input = det(&[c, i, i], 5);
            let cols = im2col(&input, &geom);
            let padded = pad_planes(&input, p);
            let o = geom.output;
            for ci in 0..c {
                for ky in 0..k {
                    for kx in 0..k {
                        let row = ci * k * k + ky * k + kx;
                        for oy in 0..o {
                            for ox in 0..o {
                                let want = padded[&[ci, oy * s + ky, ox * s + kx]];
                                let got = cols[&[row, oy * o + ox]];
                                assert_eq!(got.to_bits(), want.to_bits());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let a = det(&[3, 3], 9);
        let id = Tensor::from_fn(&[3, 3], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        assert_tensors_close(&matmul(&a, &id), &a, 1e-6);
        assert_tensors_close(&matmul(&id, &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = matmul(&a, &b);
    }
}
