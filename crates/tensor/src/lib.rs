//! Dense `f32` tensors and reference convolution kernels for the LerGAN
//! reproduction.
//!
//! This crate is the numerical ground truth of the workspace. Everything the
//! accelerator model claims to compute — strided convolution (S-CONV),
//! transposed convolution (T-CONV), and the weight-gradient convolution
//! (W-CONV) — has a straightforward, obviously-correct implementation here,
//! including the *zero-insertion* formulation of T-CONV/W-CONV that the paper
//! analyses in Section III-A (Fig. 4–6). The zero-free ZFDR execution in
//! `lergan-core` is validated against these kernels.
//!
//! # Example
//!
//! ```
//! use lergan_tensor::{Tensor, conv::Conv2d};
//!
//! // A 1-channel 4x4 input and a single 3x3 kernel, stride 1, pad 1.
//! let input = Tensor::from_fn(&[1, 4, 4], |idx| (idx[1] + idx[2]) as f32);
//! let weights = Tensor::ones(&[1, 1, 3, 3]);
//! let conv = Conv2d::new(1, 1, 3, 1, 1).unwrap();
//! let out = conv.forward(&input, &weights);
//! assert_eq!(out.shape(), &[1, 4, 4]);
//! ```

pub mod conv;
pub mod dconv;
pub mod dispatch;
pub mod geometry;
pub mod im2col;
pub mod kernel;
pub mod parallel;
pub mod quant;
pub mod tensor;
pub mod workspace;
pub mod zero_insert;

pub use conv::Conv2d;
pub use geometry::{DconvAxis, DconvGeometry, SconvGeometry, TconvGeometry, WconvGeometry};
pub use kernel::{gemm_into, gemm_nt_into, mmv_into};
pub use tensor::{gemm, gemm_nt, Tensor};
pub use workspace::Workspace;

/// Absolute tolerance used by test helpers when comparing two floating point
/// tensors produced by algebraically equivalent computations.
pub const DEFAULT_TOLERANCE: f32 = 1e-3;

/// Asserts that two tensors have identical shape and element-wise agreement
/// within `tol`, with a relative-error fallback for large magnitudes.
///
/// # Panics
///
/// Panics with a descriptive message on the first mismatching element.
pub fn assert_tensors_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "tensor shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    for (i, (&x, &y)) in a.data().iter().zip(b.data().iter()).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() / denom <= tol,
            "tensors differ at flat index {i}: {x} vs {y} (shape {:?})",
            a.shape()
        );
    }
}
