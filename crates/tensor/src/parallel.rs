//! Persistent worker-pool substrate for the compute kernels.
//!
//! All data-parallel kernels in the workspace (GEMM row blocks, per-channel
//! convolution loops, per-pattern-class ZFDR batches, per-sample batched
//! training stages) funnel through the helpers here, so one knob controls
//! the whole workspace:
//!
//! * `LERGAN_THREADS` — environment override for the worker count
//!   (default: [`std::thread::available_parallelism`]);
//! * [`with_threads`] — a thread-local override for tests and benches that
//!   must compare thread counts without racing on the environment.
//!
//! Workers live in a lazily grown, process-wide pool and park on a condvar
//! between regions. Keeping the threads alive does two things the previous
//! scoped-thread substrate could not: dispatching a region performs **zero
//! heap allocations** once the pool has grown to the requested width (the
//! job is a plain pointer pair written into a pre-existing slot), and each
//! worker's thread-local state — the GEMM packing panel and the per-worker
//! [`Workspace`](crate::workspace::Workspace) pool — survives across
//! regions instead of being torn down with the thread.
//!
//! Every helper partitions its output disjointly, and each parallel element
//! is computed exactly as the serial code would compute it (same
//! per-element accumulation order), so results are **bit-identical for
//! every thread count** — determinism tests assert this.
//!
//! Nested parallel regions run serially: a worker that calls back into
//! these helpers executes inline rather than re-entering the pool, which
//! bounds the total thread count at the configured width and makes the
//! dispatch free of self-deadlock by construction.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside worker closures so nested regions run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("LERGAN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Worker count the next parallel region will use: the [`with_threads`]
/// override if present, else `LERGAN_THREADS`, else the machine's available
/// parallelism. Returns 1 inside a worker (nested regions are serial).
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(configured_threads)
}

/// Runs `f` with the worker count pinned to `n` on this thread.
///
/// This is how equivalence and determinism tests compare thread counts:
/// unlike mutating `LERGAN_THREADS`, concurrent test threads cannot race on
/// it. Zero is clamped to one.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let result = f();
    OVERRIDE.with(|c| c.set(prev));
    result
}

/// Runs `f` marked as inside a worker, so nested regions stay serial.
fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_WORKER.with(|c| c.replace(true));
    let result = f();
    IN_WORKER.with(|c| c.set(prev));
    result
}

/// A dispatched unit of work: a type-erased pointer to the region's `Fn`
/// plus a monomorphized trampoline that calls it with this worker's index.
/// Raw pointers stay valid because the dispatching frame blocks on
/// [`DoneState`] until every job has finished.
struct Job {
    func: *const (),
    call: unsafe fn(*const (), usize),
    index: usize,
    done: *const DoneState,
}

// SAFETY: `func` points at a `Sync` closure (enforced by `pool_run`'s
// bound) and `done` at completion state designed for cross-thread use; the
// dispatcher keeps both alive until the job completes.
unsafe impl Send for Job {}

/// One parked worker's mailbox.
struct WorkerSlot {
    job: Mutex<Option<Job>>,
    ready: Condvar,
}

/// Stack-allocated completion latch for one parallel region.
struct DoneState {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panicked: AtomicBool,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(slot: Arc<WorkerSlot>) {
    loop {
        let job = {
            let mut guard = lock_ignore_poison(&slot.job);
            loop {
                if let Some(job) = guard.take() {
                    break job;
                }
                guard = slot.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: the dispatcher guarantees `func` outlives this call.
            run_as_worker(|| unsafe { (job.call)(job.func, job.index) });
        }));
        // SAFETY: `done` is kept alive by the dispatcher's wait guard.
        let done = unsafe { &*job.done };
        if outcome.is_err() {
            done.panicked.store(true, Ordering::SeqCst);
        }
        let mut remaining = lock_ignore_poison(&done.remaining);
        *remaining -= 1;
        if *remaining == 0 {
            done.all_done.notify_all();
        }
    }
}

/// The process-wide pool: one parked worker per entry, grown on demand and
/// never shrunk. The mutex is held for the duration of a region, which
/// serializes concurrent top-level regions from different threads — the
/// kernels are CPU-bound, so overlapping them would only thrash.
fn pool() -> &'static Mutex<Vec<Arc<WorkerSlot>>> {
    static POOL: Mutex<Vec<Arc<WorkerSlot>>> = Mutex::new(Vec::new());
    &POOL
}

/// Runs `f(0)..f(threads-1)` across the pool: indices `1..` are dispatched
/// to parked workers, the calling thread runs `f(0)` itself, and the call
/// returns only after every index has finished. Dispatch allocates nothing
/// once the pool has grown to `threads - 1` workers.
fn pool_run<F: Fn(usize) + Sync>(threads: usize, f: &F) {
    unsafe fn call_thunk<F: Fn(usize)>(ptr: *const (), index: usize) {
        // SAFETY: `ptr` was erased from an `&F` by `pool_run` below and the
        // referent is kept alive until the region completes.
        let f = unsafe { &*(ptr as *const F) };
        f(index);
    }
    debug_assert!(threads >= 2, "serial regions never enter the pool");
    let done = DoneState {
        remaining: Mutex::new(threads - 1),
        all_done: Condvar::new(),
        panicked: AtomicBool::new(false),
    };
    let mut workers = lock_ignore_poison(pool());
    while workers.len() < threads - 1 {
        let slot = Arc::new(WorkerSlot {
            job: Mutex::new(None),
            ready: Condvar::new(),
        });
        let looped = Arc::clone(&slot);
        std::thread::Builder::new()
            .name(format!("lergan-worker-{}", workers.len() + 1))
            .spawn(move || worker_loop(looped))
            .expect("spawn pool worker");
        workers.push(slot);
    }
    /// Blocks until the region's jobs have all finished. Running this in
    /// `Drop` keeps the stack frame (and the pointers the jobs hold) alive
    /// even if the caller's own `f(0)` panics mid-region.
    struct WaitGuard<'a>(&'a DoneState);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            let mut remaining = lock_ignore_poison(&self.0.remaining);
            while *remaining != 0 {
                remaining = self
                    .0
                    .all_done
                    .wait(remaining)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
    {
        let _wait = WaitGuard(&done);
        for index in 1..threads {
            let slot = &workers[index - 1];
            let job = Job {
                func: f as *const F as *const (),
                call: call_thunk::<F>,
                index,
                done: &done,
            };
            *lock_ignore_poison(&slot.job) = Some(job);
            slot.ready.notify_one();
        }
        run_as_worker(|| f(0));
    }
    drop(workers);
    if done.panicked.load(Ordering::SeqCst) {
        panic!("a parallel worker panicked");
    }
}

/// Splits `0..len` into at most [`current_threads`] contiguous ranges of at
/// least `min_chunk` items and runs `f` on each, in parallel.
///
/// `f` must only touch state disjoint per range (the callers here write
/// through raw disjoint output partitions or locals). The calling thread
/// executes the first range itself.
pub fn for_each_range(len: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    if len == 0 {
        return;
    }
    let max_workers = len.div_ceil(min_chunk.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0..len);
        return;
    }
    let chunk = len.div_ceil(threads);
    let g = move |t: usize| {
        let (start, end) = (t * chunk, ((t + 1) * chunk).min(len));
        if start < end {
            f(start..end);
        }
    };
    pool_run(threads, &g);
}

/// Splits `data` into at most [`current_threads`] contiguous chunks of at
/// least `min_chunk` elements and runs `f(offset, chunk)` on each, in
/// parallel. `offset` is the chunk's start index within `data`.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let max_workers = len.div_ceil(min_chunk.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    let base = data.as_mut_ptr() as usize;
    let g = move |t: usize| {
        let start = t * chunk;
        if start >= len {
            return;
        }
        let take = chunk.min(len - start);
        // SAFETY: chunks `[start, start + take)` are disjoint across worker
        // indices and within the live `&mut [T]` borrow held by this frame.
        let part =
            unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), take) };
        f(start, part);
    };
    pool_run(threads, &g);
}

/// Like [`for_each_chunk_mut`], but chunk boundaries land on multiples of
/// `unit` elements — the shape needed to hand each worker whole rows of a
/// row-major matrix without collecting per-row slices. `f(first_unit,
/// chunk)` receives the index of the chunk's first unit. With one worker
/// the full slice is passed straight through, so the serial path performs
/// no allocation at all.
///
/// # Panics
///
/// Panics (debug) if `data.len()` is not a multiple of `unit`.
pub fn for_each_unit_chunk_mut<T: Send>(
    data: &mut [T],
    unit: usize,
    min_units: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let unit = unit.max(1);
    debug_assert_eq!(data.len() % unit, 0, "length must be a unit multiple");
    let units = data.len() / unit;
    if units == 0 {
        return;
    }
    let max_workers = units.div_ceil(min_units.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk_units = units.div_ceil(threads);
    let len = data.len();
    let base = data.as_mut_ptr() as usize;
    let g = move |t: usize| {
        let start = t * chunk_units * unit;
        if start >= len {
            return;
        }
        let take = (chunk_units * unit).min(len - start);
        // SAFETY: unit-aligned chunks are disjoint across worker indices
        // and within the live `&mut [T]` borrow held by this frame.
        let part =
            unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), take) };
        f(start / unit, part);
    };
    pool_run(threads, &g);
}

/// Computes `f(i)` for `i in 0..n` in parallel, preserving order.
pub fn map_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for_each_chunk_mut(&mut slots, 1, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(offset + i));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn for_each_range_covers_everything_once() {
        for threads in [1, 2, 5, 8] {
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            with_threads(threads, || {
                for_each_range(hits.len(), 1, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn for_each_chunk_mut_offsets_are_consistent() {
        for threads in [1, 2, 8] {
            let mut data = vec![0usize; 57];
            with_threads(threads, || {
                for_each_chunk_mut(&mut data, 1, |offset, chunk| {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = offset + i;
                    }
                });
            });
            assert_eq!(data, (0..57).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn unit_chunks_align_to_rows() {
        // 13 rows of width 5: every chunk boundary must land on a row
        // boundary, and offsets must be reported in rows.
        for threads in [1, 2, 8] {
            let mut data = vec![0usize; 13 * 5];
            with_threads(threads, || {
                for_each_unit_chunk_mut(&mut data, 5, 1, |row0, chunk| {
                    assert_eq!(chunk.len() % 5, 0);
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = row0 * 5 + i;
                    }
                });
            });
            assert_eq!(data, (0..65).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || map_indexed(41, |i| i * i));
            assert_eq!(out, (0..41).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_regions_run_serially() {
        with_threads(4, || {
            for_each_range(4, 1, |_r| {
                // Inside a worker the nested region must report width 1.
                assert_eq!(current_threads(), 1);
            });
        });
    }

    #[test]
    fn min_chunk_limits_worker_count() {
        // 10 items with min_chunk 8 admits at most 2 workers; the chunks
        // must still cover everything exactly once.
        let mut data = vec![0u8; 10];
        with_threads(8, || {
            for_each_chunk_mut(&mut data, 8, |_, chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        // A panic on a pooled worker must surface on the dispatching thread
        // — and the worker itself must stay parked and serviceable, so the
        // very next region over the same pool still completes.
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                for_each_range(4, 1, |r| {
                    if r.start > 0 {
                        panic!("injected worker failure");
                    }
                });
            });
        });
        assert!(caught.is_err(), "worker panic must propagate");
        let hits: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            for_each_range(hits.len(), 1, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_workers_keep_thread_identity_across_regions() {
        // The pool must reuse the same OS threads between regions —
        // thread-local pack buffers and per-worker workspaces depend on it.
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let ids: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        for _ in 0..4 {
            with_threads(4, || {
                for_each_range(4, 1, |_r| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            });
        }
        // 4 regions × 4 lanes land on the caller + at most 3 pooled workers.
        assert!(ids.lock().unwrap().len() <= 4, "threads must be reused");
    }
}
