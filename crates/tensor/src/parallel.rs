//! Scoped-thread worker substrate for the compute kernels.
//!
//! All data-parallel kernels in the workspace (GEMM row blocks, per-channel
//! convolution loops, per-pattern-class ZFDR batches) funnel through the
//! helpers here, so one knob controls the whole workspace:
//!
//! * `LERGAN_THREADS` — environment override for the worker count
//!   (default: [`std::thread::available_parallelism`]);
//! * [`with_threads`] — a thread-local override for tests and benches that
//!   must compare thread counts without racing on the environment.
//!
//! Threads are plain [`std::thread::scope`] workers: no pool is kept alive
//! between calls, there are no locks, and every helper partitions its
//! output disjointly. Each parallel element is computed exactly as the
//! serial code would compute it (same per-element accumulation order), so
//! results are **bit-identical for every thread count** — determinism tests
//! assert this.
//!
//! Nested parallel regions run serially: a worker spawned here that calls
//! back into these helpers executes inline rather than spawning a second
//! generation of threads, which bounds the total thread count at the
//! configured width.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside worker closures so nested regions run inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("LERGAN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Worker count the next parallel region will use: the [`with_threads`]
/// override if present, else `LERGAN_THREADS`, else the machine's available
/// parallelism. Returns 1 inside a worker (nested regions are serial).
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(configured_threads)
}

/// Runs `f` with the worker count pinned to `n` on this thread.
///
/// This is how equivalence and determinism tests compare thread counts:
/// unlike mutating `LERGAN_THREADS`, concurrent test threads cannot race on
/// it. Zero is clamped to one.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let result = f();
    OVERRIDE.with(|c| c.set(prev));
    result
}

/// Runs `f` marked as inside a worker, so nested regions stay serial.
fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_WORKER.with(|c| c.replace(true));
    let result = f();
    IN_WORKER.with(|c| c.set(prev));
    result
}

/// Splits `0..len` into at most [`current_threads`] contiguous ranges of at
/// least `min_chunk` items and runs `f` on each, in parallel.
///
/// `f` must only touch state disjoint per range (the callers here write
/// through raw disjoint output partitions or locals). The calling thread
/// executes the first range itself.
pub fn for_each_range(len: usize, min_chunk: usize, f: impl Fn(Range<usize>) + Sync) {
    if len == 0 {
        return;
    }
    let max_workers = len.div_ceil(min_chunk.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0..len);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for t in 1..threads {
            let (start, end) = (t * chunk, ((t + 1) * chunk).min(len));
            if start < end {
                scope.spawn(move || run_as_worker(|| f(start..end)));
            }
        }
        run_as_worker(|| f(0..chunk.min(len)));
    });
}

/// Splits `data` into at most [`current_threads`] contiguous chunks of at
/// least `min_chunk` elements and runs `f(offset, chunk)` on each, in
/// parallel. `offset` is the chunk's start index within `data`.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    min_chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let max_workers = len.div_ceil(min_chunk.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut offset = 0;
        let mut first: Option<&mut [T]> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if offset == 0 {
                first = Some(head);
            } else {
                scope.spawn(move || run_as_worker(|| f(offset, head)));
            }
            offset += take;
            rest = tail;
        }
        if let Some(head) = first {
            run_as_worker(|| f(0, head));
        }
    });
}

/// Like [`for_each_chunk_mut`], but chunk boundaries land on multiples of
/// `unit` elements — the shape needed to hand each worker whole rows of a
/// row-major matrix without collecting per-row slices. `f(first_unit,
/// chunk)` receives the index of the chunk's first unit. With one worker
/// the full slice is passed straight through, so the serial path performs
/// no allocation at all.
///
/// # Panics
///
/// Panics (debug) if `data.len()` is not a multiple of `unit`.
pub fn for_each_unit_chunk_mut<T: Send>(
    data: &mut [T],
    unit: usize,
    min_units: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let unit = unit.max(1);
    debug_assert_eq!(data.len() % unit, 0, "length must be a unit multiple");
    let units = data.len() / unit;
    if units == 0 {
        return;
    }
    let max_workers = units.div_ceil(min_units.max(1));
    let threads = current_threads().min(max_workers).max(1);
    if threads == 1 {
        f(0, data);
        return;
    }
    let chunk_units = units.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut unit0 = 0;
        let mut first: Option<&mut [T]> = None;
        while !rest.is_empty() {
            let take = (chunk_units * unit).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if unit0 == 0 {
                first = Some(head);
            } else {
                let u0 = unit0;
                scope.spawn(move || run_as_worker(|| f(u0, head)));
            }
            unit0 += take / unit;
            rest = tail;
        }
        if let Some(head) = first {
            run_as_worker(|| f(0, head));
        }
    });
}

/// Computes `f(i)` for `i in 0..n` in parallel, preserving order.
pub fn map_indexed<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for_each_chunk_mut(&mut slots, 1, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(offset + i));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outside);
    }

    #[test]
    fn for_each_range_covers_everything_once() {
        for threads in [1, 2, 5, 8] {
            let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
            with_threads(threads, || {
                for_each_range(hits.len(), 1, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn for_each_chunk_mut_offsets_are_consistent() {
        for threads in [1, 2, 8] {
            let mut data = vec![0usize; 57];
            with_threads(threads, || {
                for_each_chunk_mut(&mut data, 1, |offset, chunk| {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = offset + i;
                    }
                });
            });
            assert_eq!(data, (0..57).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn unit_chunks_align_to_rows() {
        // 13 rows of width 5: every chunk boundary must land on a row
        // boundary, and offsets must be reported in rows.
        for threads in [1, 2, 8] {
            let mut data = vec![0usize; 13 * 5];
            with_threads(threads, || {
                for_each_unit_chunk_mut(&mut data, 5, 1, |row0, chunk| {
                    assert_eq!(chunk.len() % 5, 0);
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = row0 * 5 + i;
                    }
                });
            });
            assert_eq!(data, (0..65).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_preserves_order() {
        for threads in [1, 2, 8] {
            let out = with_threads(threads, || map_indexed(41, |i| i * i));
            assert_eq!(out, (0..41).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_regions_run_serially() {
        with_threads(4, || {
            for_each_range(4, 1, |_r| {
                // Inside a worker the nested region must report width 1.
                assert_eq!(current_threads(), 1);
            });
        });
    }

    #[test]
    fn min_chunk_limits_worker_count() {
        // 10 items with min_chunk 8 admits at most 2 workers; the chunks
        // must still cover everything exactly once.
        let mut data = vec![0u8; 10];
        with_threads(8, || {
            for_each_chunk_mut(&mut data, 8, |_, chunk| {
                for x in chunk {
                    *x += 1;
                }
            });
        });
        assert!(data.iter().all(|&x| x == 1));
    }
}
