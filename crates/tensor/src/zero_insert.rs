//! Zero-insertion transformations (Fig. 4 and Fig. 6 of the paper).
//!
//! These build the *naive* expanded operands that a conventional accelerator
//! (or GPU library) would materialise: the zero-inserted input of a T-CONV
//! and the zero-inserted `∇output` kernel of a W-CONV. They serve as the
//! reference against which the zero-free ZFDR path is validated, and as the
//! cost model for the baselines that do move all those zeros around.

use crate::geometry::{TconvGeometry, WconvGeometry};
use crate::tensor::Tensor;

/// Pads every plane of a `[C, H, W]` tensor with `pad` zeros on each side.
///
/// # Panics
///
/// Panics if the tensor is not rank-3.
pub fn pad_planes(t: &Tensor, pad: usize) -> Tensor {
    assert_eq!(t.shape().len(), 3, "pad_planes expects [C, H, W]");
    let (c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2]);
    let mut out = Tensor::zeros(&[c, h + 2 * pad, w + 2 * pad]);
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out[&[ci, y + pad, x + pad][..]] = t[&[ci, y, x]];
            }
        }
    }
    out
}

/// Expands a `[C, I, I]` T-CONV input into the `[C, E, E]` zero-inserted and
/// padded plane of Fig. 4: `S′−1` zeros between adjacent elements, `R`
/// trailing zeros, and `P` padding on every side.
///
/// # Panics
///
/// Panics if the tensor is not rank-3 or its spatial extent differs from
/// `geom.input`.
pub fn expand_tconv_input(t: &Tensor, geom: &TconvGeometry) -> Tensor {
    assert_eq!(t.shape().len(), 3, "expand_tconv_input expects [C, I, I]");
    let c = t.shape()[0];
    assert_eq!(t.shape()[1], geom.input, "input height mismatch");
    assert_eq!(t.shape()[2], geom.input, "input width mismatch");
    let e = geom.expanded();
    let mut out = Tensor::zeros(&[c, e, e]);
    for ci in 0..c {
        for ey in 0..e {
            let Some(y) = geom.original_of_expanded(ey) else {
                continue;
            };
            for ex in 0..e {
                if let Some(x) = geom.original_of_expanded(ex) {
                    out[&[ci, ey, ex][..]] = t[&[ci, y, x]];
                }
            }
        }
    }
    out
}

/// Expands a `[C, O, O]` `∇output` into the `[C, K, K]` zero-inserted kernel
/// of Fig. 6 (`S−1` zeros between elements plus `R` trailing zeros).
///
/// # Panics
///
/// Panics if the tensor is not rank-3 or its spatial extent differs from the
/// forward output.
pub fn insert_wconv_kernel(dout: &Tensor, geom: &WconvGeometry) -> Tensor {
    assert_eq!(
        dout.shape().len(),
        3,
        "insert_wconv_kernel expects [C, O, O]"
    );
    let c = dout.shape()[0];
    let o = geom.forward.output;
    assert_eq!(dout.shape()[1], o, "∇output height mismatch");
    assert_eq!(dout.shape()[2], o, "∇output width mismatch");
    let k = geom.inserted_kernel_extent();
    let mut out = Tensor::zeros(&[c, k, k]);
    for ci in 0..c {
        for ky in 0..k {
            let Some(oy) = geom.original_of_inserted(ky) else {
                continue;
            };
            for kx in 0..k {
                if let Some(ox) = geom.original_of_inserted(kx) {
                    out[&[ci, ky, kx][..]] = dout[&[ci, oy, ox]];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{TconvGeometry, WconvGeometry};

    #[test]
    fn pad_preserves_interior() {
        let t = Tensor::from_fn(&[1, 2, 2], |i| (i[1] * 2 + i[2] + 1) as f32);
        let p = pad_planes(&t, 1);
        assert_eq!(p.shape(), &[1, 4, 4]);
        assert_eq!(p[&[0, 1, 1]], 1.0);
        assert_eq!(p[&[0, 2, 2]], 4.0);
        assert_eq!(p[&[0, 0, 0]], 0.0);
        assert_eq!(p.sum(), t.sum());
    }

    #[test]
    fn expand_conv1_layout_matches_fig4() {
        // 4x4 input with S'=2, R=1, P=2 => 12x12 expanded plane.
        let geom = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        let t = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2] + 1) as f32);
        let e = expand_tconv_input(&t, &geom);
        assert_eq!(e.shape(), &[1, 12, 12]);
        // Original values sit at pad + 2*index.
        assert_eq!(e[&[0, 2, 2]], 1.0);
        assert_eq!(e[&[0, 2, 4]], 2.0);
        assert_eq!(e[&[0, 8, 8]], 16.0);
        // Everything between is zero; totals agree.
        assert_eq!(e.sum(), t.sum());
        assert_eq!(e.count_zeros(), geom.zeros_per_plane());
    }

    #[test]
    fn expand_zero_count_matches_eq7() {
        for (i, w, s) in [(4, 5, 2), (8, 4, 2), (16, 4, 2), (5, 5, 3)] {
            let geom = TconvGeometry::for_upsampling(i, w, s).unwrap();
            let t = Tensor::ones(&[2, i, i]);
            let e = expand_tconv_input(&t, &geom);
            assert_eq!(e.count_zeros(), 2 * geom.zeros_per_plane(), "({i},{w},{s})");
        }
    }

    #[test]
    fn insert_kernel_positions() {
        let geom = WconvGeometry::new(8, 5, 2, 2).unwrap();
        let dout = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2] + 1) as f32);
        let k = insert_wconv_kernel(&dout, &geom);
        assert_eq!(k.shape(), &[1, 8, 8]);
        assert_eq!(k[&[0, 0, 0]], 1.0);
        assert_eq!(k[&[0, 0, 2]], 2.0);
        assert_eq!(k[&[0, 6, 6]], 16.0);
        assert_eq!(k[&[0, 1, 1]], 0.0);
        assert_eq!(k.sum(), dout.sum());
    }

    #[test]
    #[should_panic(expected = "input height mismatch")]
    fn expand_rejects_wrong_extent() {
        let geom = TconvGeometry::for_upsampling(4, 5, 2).unwrap();
        let t = Tensor::ones(&[1, 5, 5]);
        let _ = expand_tconv_input(&t, &geom);
    }
}
