//! Pooled scratch memory for the steady-state training loop.
//!
//! A [`Workspace`] is a size-keyed pool of `Vec<f32>` buffers:
//! [`Workspace::take`] pops a buffer of the exact requested length
//! (allocating only on a pool miss) and [`Workspace::give`] returns it for
//! reuse. A training step whose take/give
//! sequence is the same every iteration — which it is, because buffer sizes
//! depend only on network geometry — therefore performs **zero heap
//! allocations after a one-step warmup**; `tests/alloc_discipline.rs` in
//! the workspace root pins this with a counting global allocator.
//!
//! # Lifetime rules
//!
//! * Buffers are keyed by *exact* length; a `take(n)` can only be served by
//!   an earlier `give` of length `n`.
//! * [`Workspace::take`] returns a buffer with **unspecified contents**
//!   (stale values from its previous life): callers must fully overwrite
//!   it. Use [`Workspace::take_zeroed`]/[`Workspace::take_tensor`] when the
//!   consumer accumulates in place.
//! * Recycle a buffer to the workspace it came from. The trainer keeps one
//!   workspace per network stack; handing a generator buffer back to the
//!   discriminator's pool would migrate capacity between pools and force a
//!   steady-state allocation on each step.
//! * Pools are plain session state, not model state: dropping a workspace
//!   (or restoring a checkpoint) merely forces a fresh warmup step.
//!
//! The GEMM packing buffers are deliberately *not* in [`Workspace`]: the
//! parallel substrate hands each worker thread its own panel, so packing
//! scratch lives in a per-thread buffer (`with_pack_buffer`) sized by the
//! kernel's blocking parameters and retained for the life of the thread.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Per-thread packing buffer for the blocked GEMM kernels. Worker
    /// threads spawned by [`crate::parallel`] each get their own, so no
    /// packing state is ever shared; workers persist in a pool, so the
    /// buffer survives across parallel regions, making steady-state packing
    /// allocation-free on every thread.
    static PACK_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread [`Workspace`] for parallel stages whose workers need
    /// pooled scratch (e.g. the batched trainer's per-sample backward
    /// scatter). Like the pack buffer it lives for the life of the pooled
    /// worker thread: each worker warms its sizes once and then serves
    /// every later region allocation-free.
    static WORKER_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` over this thread's packing buffer, grown to at least `len`
/// elements (contents unspecified; the packing step overwrites every slot
/// it reads back).
pub(crate) fn with_pack_buffer<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Runs `f` over this thread's persistent [`Workspace`].
///
/// This is the scratch pool for code that runs *inside* a parallel worker,
/// where no caller-owned workspace can be threaded through (workers from
/// different regions interleave arbitrarily). Because the
/// [`crate::parallel`] substrate keeps worker threads alive in a pool, the
/// per-thread workspace persists across regions: one warmup pass populates
/// each worker's size buckets and the steady state allocates nothing.
///
/// Buffers taken from it must be given back before `f` returns — the
/// workspace is shared by every later region that lands on this thread.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    WORKER_WS.with(|cell| f(&mut cell.borrow_mut()))
}

/// Size-keyed pool of reusable `f32` buffers (see the module docs for the
/// lifetime rules).
#[derive(Default)]
pub struct Workspace {
    /// One bucket per distinct buffer length, linear-scanned: a training
    /// step uses a handful of distinct sizes, so a map would be overhead.
    pools: Vec<(usize, Vec<Vec<f32>>)>,
}

impl fmt::Debug for Workspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let buffers: usize = self.pools.iter().map(|(_, v)| v.len()).sum();
        let floats: usize = self.pools.iter().map(|(len, v)| len * v.len()).sum();
        f.debug_struct("Workspace")
            .field("sizes", &self.pools.len())
            .field("buffers", &buffers)
            .field("floats", &floats)
            .finish()
    }
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a buffer of exactly `len` elements with **unspecified
    /// contents** — the caller must overwrite every slot. Allocates only
    /// when the pool has no buffer of this length.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some((_, bucket)) = self.pools.iter_mut().find(|(l, _)| *l == len) {
            if let Some(buf) = bucket.pop() {
                debug_assert_eq!(buf.len(), len);
                return buf;
            }
        }
        vec![0.0; len]
    }

    /// Like [`take`](Self::take), but every element is `0.0` — for
    /// consumers that accumulate or scatter sparsely.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Takes a zeroed buffer shaped as a [`Tensor`].
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(shape, self.take_zeroed(len))
    }

    /// Returns a buffer to the pool for reuse by a later
    /// [`take`](Self::take) of the same length.
    pub fn give(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        match self.pools.iter_mut().find(|(l, _)| *l == len) {
            Some((_, bucket)) => bucket.push(buf),
            None => self.pools.push((len, vec![buf])),
        }
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn give_tensor(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_the_same_allocation() {
        let mut ws = Workspace::new();
        let buf = ws.take(64);
        let ptr = buf.as_ptr();
        ws.give(buf);
        let again = ws.take(64);
        assert_eq!(again.as_ptr(), ptr, "pooled buffer must be reused");
        assert_eq!(again.len(), 64);
    }

    #[test]
    fn lengths_are_exact_keys() {
        let mut ws = Workspace::new();
        ws.give(vec![1.0; 8]);
        // A different length must not be served from the 8-element bucket.
        assert_eq!(ws.take(9).len(), 9);
        // The 8-element buffer is still there, stale contents intact.
        assert_eq!(ws.take(8), vec![1.0; 8]);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut ws = Workspace::new();
        ws.give(vec![7.0; 16]);
        assert!(ws.take_zeroed(16).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tensor_round_trip() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.count_zeros(), 6);
        ws.give_tensor(t);
        let again = ws.take(6);
        assert_eq!(again.len(), 6);
    }
}
