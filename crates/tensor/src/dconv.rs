//! Dilated / asymmetric convolution (D-CONV) reference kernels.
//!
//! A dilation-`D` kernel is a *zero-inserted* kernel: `K` true taps with
//! `D − 1` zeros between neighbours, giving an effective dense extent
//! `K_eff = (K − 1)·D + 1`. This is the exact dual of T-CONV's
//! zero-inserted input (the EcoFlow observation), and structurally the
//! same shape as W-CONV-S, where the zero-inserted `∇output` slides as a
//! kernel. Two formulations live here:
//!
//! * **Zero-insertion (naive)** — materialise the `K_eff` kernel
//!   ([`expand_dilated_kernel`]) and run the dense im2col + GEMM over it
//!   ([`dconv_zero_insertion`], [`im2col_dconv_into`]). This is the
//!   formulation whose inserted zeros the workload analytics count as
//!   `macs_dense`, and the trainer's canonical GEMM shape.
//! * **Zero-free (direct)** — [`dconv_direct`] touches only the `K` true
//!   taps per axis, the software realisation of the ZFDR-style plan that
//!   `lergan-core` maps onto crossbars. Proven equal to the naive path.

use crate::geometry::DconvGeometry;
use crate::tensor::Tensor;

/// Expands `[OC, IC, Kh, Kw]` true-tap weights into the zero-inserted
/// dense kernel `[OC, IC, Kh_eff, Kw_eff]`: tap `(jy, jx)` lands at
/// `(jy·Dh, jx·Dw)`, every other position is `0.0`.
///
/// # Panics
///
/// Panics if the weight shape disagrees with the geometry.
pub fn expand_dilated_kernel(weights: &Tensor, geom: &DconvGeometry) -> Tensor {
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    assert_eq!(weights.shape().len(), 4, "expected [OC, IC, Kh, Kw] weights");
    assert_eq!(weights.shape()[2], kh, "kernel row count mismatch");
    assert_eq!(weights.shape()[3], kw, "kernel col count mismatch");
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let mut out = vec![0.0; oc * ic * eh * ew];
    expand_dilated_kernel_into(weights, geom, &mut out);
    Tensor::from_vec(&[oc, ic, eh, ew], out)
}

/// [`expand_dilated_kernel`] into a caller-owned buffer of length
/// `OC·IC·Kh_eff·Kw_eff`, fully overwritten.
///
/// # Panics
///
/// Panics on shape or buffer-length mismatch.
pub fn expand_dilated_kernel_into(weights: &Tensor, geom: &DconvGeometry, out: &mut [f32]) {
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    assert_eq!(weights.shape()[2], kh, "kernel row count mismatch");
    assert_eq!(weights.shape()[3], kw, "kernel col count mismatch");
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let (dh, dw) = (geom.rows.dilation, geom.cols.dilation);
    assert_eq!(out.len(), oc * ic * eh * ew, "expanded kernel buffer length mismatch");
    out.fill(0.0);
    let data = weights.data();
    for co in 0..oc {
        for ci in 0..ic {
            let src = &data[(co * ic + ci) * kh * kw..(co * ic + ci + 1) * kh * kw];
            let dst = &mut out[(co * ic + ci) * eh * ew..(co * ic + ci + 1) * eh * ew];
            for jy in 0..kh {
                for jx in 0..kw {
                    dst[jy * dh * ew + jx * dw] = src[jy * kw + jx];
                }
            }
        }
    }
}

/// Unrolls a `[C, H, W]` input into the dense im2col matrix
/// `[C·Kh_eff·Kw_eff, Oh·Ow]` of the zero-inserted-kernel formulation:
/// the asymmetric, effective-extent analogue of
/// [`crate::im2col::im2col_into`], with inline padding.
///
/// # Panics
///
/// Panics on shape or buffer-length mismatch.
pub fn im2col_dconv_into(input: &Tensor, geom: &DconvGeometry, out: &mut [f32]) {
    assert_eq!(input.shape().len(), 3, "im2col expects [C, H, W]");
    assert_eq!(input.shape()[1], geom.rows.input, "input row extent mismatch");
    assert_eq!(input.shape()[2], geom.cols.input, "input col extent mismatch");
    let c = input.shape()[0];
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    assert_eq!(out.len(), c * eh * ew * oh * ow, "im2col buffer length mismatch");
    let data = input.data();
    for ci in 0..c {
        for ky in 0..eh {
            for kx in 0..ew {
                let row = ci * eh * ew + ky * ew + kx;
                let orow = &mut out[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let y = oy * sh + ky;
                    let dst = &mut orow[oy * ow..(oy + 1) * ow];
                    if y < ph || y >= ph + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &data[ci * h * w + (y - ph) * w..ci * h * w + (y - ph + 1) * w];
                    for (ox, slot) in dst.iter_mut().enumerate() {
                        let x = ox * sw + kx;
                        *slot = if x < pw || x >= pw + w { 0.0 } else { irow[x - pw] };
                    }
                }
            }
        }
    }
}

/// Batched [`im2col_dconv_into`] over `B` concatenated `[C, H, W]` sample
/// planes: writes the `[C·Kh_eff·Kw_eff, B·Oh·Ow]` matrix whose column
/// `b·Oh·Ow + p` is exactly [`im2col_dconv_into`]'s column `p` for sample
/// `b` — the asymmetric, effective-extent analogue of
/// [`crate::im2col::im2col_batch_into`], sharded across workers by matrix
/// row (pure data movement, so sharding cannot change any value).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
pub fn im2col_dconv_batch_into(
    inputs: &[f32],
    batch: usize,
    channels: usize,
    geom: &DconvGeometry,
    out: &mut [f32],
) {
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    let slen = channels * h * w;
    assert_eq!(inputs.len(), batch * slen, "batch input length mismatch");
    let red = channels * eh * ew;
    let (oo, bo) = (oh * ow, batch * oh * ow);
    assert_eq!(out.len(), red * bo, "im2col buffer length mismatch");
    let min_rows = (crate::tensor::MIN_PARALLEL_FLOPS / bo.max(1)).max(1);
    crate::parallel::for_each_unit_chunk_mut(out, bo, min_rows, |row0, rows| {
        for (d, orow) in rows.chunks_mut(bo).enumerate() {
            let row = row0 + d;
            let ci = row / (eh * ew);
            let ky = (row / ew) % eh;
            let kx = row % ew;
            // In-bounds column range (`pw ≤ ox·sw + kx < pw + w`), hoisted
            // so the inner loop carries no per-element padding branch.
            let x_lo = pw.saturating_sub(kx).div_ceil(sw).min(ow);
            let x_hi = if pw + w > kx {
                (pw + w - kx).div_ceil(sw).min(ow)
            } else {
                0
            }
            .max(x_lo);
            for b in 0..batch {
                let plane = &inputs[b * slen + ci * h * w..b * slen + (ci + 1) * h * w];
                let brow = &mut orow[b * oo..(b + 1) * oo];
                for oy in 0..oh {
                    let y = oy * sh + ky;
                    let dst = &mut brow[oy * ow..(oy + 1) * ow];
                    if y < ph || y >= ph + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &plane[(y - ph) * w..(y - ph + 1) * w];
                    dst[..x_lo].fill(0.0);
                    dst[x_hi..].fill(0.0);
                    if sw == 1 {
                        dst[x_lo..x_hi]
                            .copy_from_slice(&irow[x_lo + kx - pw..x_hi + kx - pw]);
                    } else {
                        let base = x_lo * sw + kx - pw;
                        for (i, slot) in dst[x_lo..x_hi].iter_mut().enumerate() {
                            *slot = irow[base + i * sw];
                        }
                    }
                }
            }
        }
    });
}

/// Transposed [`im2col_dconv_into`] over a raw `[C, H, W]` slice: writes
/// the `[Oh·Ow, C·Kh_eff·Kw_eff]` matrix whose row `p = oy·Ow + ox` holds
/// the dense effective-extent window at output position `p` in ascending
/// `(ci, ky, kx)` order — exactly [`im2col_dconv_into`]'s column `p`,
/// relaid row-major.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the geometry.
pub fn im2col_dconv_t_into(input: &[f32], channels: usize, geom: &DconvGeometry, out: &mut [f32]) {
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    assert_eq!(input.len(), channels * h * w, "input length mismatch");
    let red = channels * eh * ew;
    assert_eq!(out.len(), oh * ow * red, "im2col buffer length mismatch");
    for oy in 0..oh {
        for ox in 0..ow {
            let prow = &mut out[(oy * ow + ox) * red..(oy * ow + ox + 1) * red];
            let mut r = 0;
            for ci in 0..channels {
                let plane = &input[ci * h * w..(ci + 1) * h * w];
                for ky in 0..eh {
                    let y = oy * sh + ky;
                    if y < ph || y >= ph + h {
                        prow[r..r + ew].fill(0.0);
                        r += ew;
                        continue;
                    }
                    let irow = &plane[(y - ph) * w..(y - ph + 1) * w];
                    for kx in 0..ew {
                        let x = ox * sw + kx;
                        prow[r] = if x < pw || x >= pw + w { 0.0 } else { irow[x - pw] };
                        r += 1;
                    }
                }
            }
        }
    }
}

/// Zero-free D-CONV input gradient: scatters `∇output` back through the
/// `Kh·Kw` true taps only, accumulating into a caller-owned `∇input` slice
/// of length `IC·H·W` that **must arrive zeroed**. For a fixed `∇input`
/// element the additions arrive in ascending `(co, oy, jy, ox, jx)` order
/// regardless of the caller, so the single-sample and batched trainers
/// produce bit-identical gradients through this one loop nest.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn dconv_input_grad_scatter(
    dout: &[f32],
    weights: &Tensor,
    geom: &DconvGeometry,
    din: &mut [f32],
) {
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    assert_eq!(weights.shape()[2], kh, "kernel row count mismatch");
    assert_eq!(weights.shape()[3], kw, "kernel col count mismatch");
    let (dil_h, dil_w) = (geom.rows.dilation, geom.cols.dilation);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    assert_eq!(dout.len(), oc * oh * ow, "∇output length mismatch");
    assert_eq!(din.len(), ic * h * w, "∇input length mismatch");
    let wdata = weights.data();
    for co in 0..oc {
        let gplane = &dout[co * oh * ow..(co + 1) * oh * ow];
        for ci in 0..ic {
            let taps = &wdata[(co * ic + ci) * kh * kw..(co * ic + ci + 1) * kh * kw];
            let dplane = &mut din[ci * h * w..(ci + 1) * h * w];
            for oy in 0..oh {
                for jy in 0..kh {
                    let y = oy * sh + jy * dil_h;
                    if y < ph || y >= ph + h {
                        continue;
                    }
                    let drow = &mut dplane[(y - ph) * w..(y - ph + 1) * w];
                    let grow = &gplane[oy * ow..(oy + 1) * ow];
                    for (ox, &gv) in grow.iter().enumerate() {
                        for jx in 0..kw {
                            let x = ox * sw + jx * dil_w;
                            if x < pw || x >= pw + w {
                                continue;
                            }
                            drow[x - pw] += taps[jy * kw + jx] * gv;
                        }
                    }
                }
            }
        }
    }
}

/// Allocating wrapper over [`im2col_dconv_into`].
pub fn im2col_dconv(input: &Tensor, geom: &DconvGeometry) -> Tensor {
    let c = input.shape()[0];
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let mut out = vec![0.0; c * eh * ew * oh * ow];
    im2col_dconv_into(input, geom, &mut out);
    Tensor::from_vec(&[c * eh * ew, oh * ow], out)
}

/// Naive zero-insertion D-CONV: expand the kernel to its dense effective
/// extent and run the full im2col + GEMM — the baseline whose inserted
/// zeros the zero-free path removes.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn dconv_zero_insertion(input: &Tensor, weights: &Tensor, geom: &DconvGeometry) -> Tensor {
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let expanded = expand_dilated_kernel(weights, geom);
    let cols = im2col_dconv(input, geom);
    let wmat = expanded.reshaped(&[oc, ic * eh * ew]);
    let flat = crate::tensor::gemm(&wmat, &cols);
    flat.reshaped(&[oc, geom.rows.output, geom.cols.output])
}

/// Unrolls a `[C, H, W]` input into the *compact* im2col matrix
/// `[C·Kh·Kw, Oh·Ow]` of the zero-free formulation: row `(ci, jy, jx)`
/// samples the input at the true tap offsets `(jy·Dh, jx·Dw)` only, so
/// the GEMM reduction dimension shrinks from `C·Kh_eff·Kw_eff` to
/// `C·Kh·Kw` — the inserted zeros are never materialised, let alone
/// multiplied.
///
/// # Panics
///
/// Panics on shape or buffer-length mismatch.
pub fn im2col_dconv_compact_into(input: &Tensor, geom: &DconvGeometry, out: &mut [f32]) {
    assert_eq!(input.shape().len(), 3, "im2col expects [C, H, W]");
    assert_eq!(input.shape()[1], geom.rows.input, "input row extent mismatch");
    assert_eq!(input.shape()[2], geom.cols.input, "input col extent mismatch");
    let c = input.shape()[0];
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (dh, dw) = (geom.rows.dilation, geom.cols.dilation);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    assert_eq!(out.len(), c * kh * kw * oh * ow, "im2col buffer length mismatch");
    let data = input.data();
    for ci in 0..c {
        for jy in 0..kh {
            for jx in 0..kw {
                let row = ci * kh * kw + jy * kw + jx;
                let orow = &mut out[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let y = oy * sh + jy * dh;
                    let dst = &mut orow[oy * ow..(oy + 1) * ow];
                    if y < ph || y >= ph + h {
                        dst.fill(0.0);
                        continue;
                    }
                    let irow = &data[ci * h * w + (y - ph) * w..ci * h * w + (y - ph + 1) * w];
                    for (ox, slot) in dst.iter_mut().enumerate() {
                        let x = ox * sw + jx * dw;
                        *slot = if x < pw || x >= pw + w { 0.0 } else { irow[x - pw] };
                    }
                }
            }
        }
    }
}

/// Allocating wrapper over [`im2col_dconv_compact_into`].
pub fn im2col_dconv_compact(input: &Tensor, geom: &DconvGeometry) -> Tensor {
    let c = input.shape()[0];
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let mut out = vec![0.0; c * kh * kw * oh * ow];
    im2col_dconv_compact_into(input, geom, &mut out);
    Tensor::from_vec(&[c * kh * kw, oh * ow], out)
}

/// Zero-free D-CONV through the compact im2col + GEMM: the true-tap
/// weights `[OC, IC·Kh·Kw]` multiply [`im2col_dconv_compact`]'s matrix,
/// skipping every inserted zero of the dilated kernel while keeping the
/// arithmetic on the same GEMM dispatch as the naive path — the software
/// realisation of the ZFDR-style dilated plan.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn dconv_zero_free(input: &Tensor, weights: &Tensor, geom: &DconvGeometry) -> Tensor {
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    assert_eq!(weights.shape()[2], kh, "kernel row count mismatch");
    assert_eq!(weights.shape()[3], kw, "kernel col count mismatch");
    let cols = im2col_dconv_compact(input, geom);
    let wmat = weights.reshaped(&[oc, ic * kh * kw]);
    let flat = crate::tensor::gemm(&wmat, &cols);
    flat.reshaped(&[oc, geom.rows.output, geom.cols.output])
}

/// Zero-free D-CONV reference: touches only the `Kh·Kw` true taps per
/// window with a scalar gather. Each output element accumulates taps in
/// ascending `(ci, jy, jx)` order from `0.0`, the same chain the
/// zero-insertion GEMM evaluates over the true taps, so the two paths
/// agree bitwise when padding taps contribute exact zeros.
///
/// # Panics
///
/// Panics on operand shape mismatches.
pub fn dconv_direct(input: &Tensor, weights: &Tensor, geom: &DconvGeometry) -> Tensor {
    assert_eq!(input.shape()[1], geom.rows.input, "input row extent mismatch");
    assert_eq!(input.shape()[2], geom.cols.input, "input col extent mismatch");
    let (oc, ic) = (weights.shape()[0], weights.shape()[1]);
    assert_eq!(input.shape()[0], ic, "channel count mismatch");
    let (kh, kw) = (geom.rows.kernel, geom.cols.kernel);
    let (oh, ow) = (geom.rows.output, geom.cols.output);
    let (h, w) = (geom.rows.input, geom.cols.input);
    let (sh, sw) = (geom.rows.stride, geom.cols.stride);
    let (dh, dw) = (geom.rows.dilation, geom.cols.dilation);
    let (ph, pw) = (geom.rows.pad, geom.cols.pad);
    let data = input.data();
    let wdata = weights.data();
    Tensor::from_fn(&[oc, oh, ow], |idx| {
        let (co, oy, ox) = (idx[0], idx[1], idx[2]);
        let mut acc = 0.0f32;
        for ci in 0..ic {
            let plane = &data[ci * h * w..(ci + 1) * h * w];
            let taps = &wdata[(co * ic + ci) * kh * kw..(co * ic + ci + 1) * kh * kw];
            for jy in 0..kh {
                let y = oy * sh + jy * dh;
                if y < ph || y >= ph + h {
                    continue;
                }
                let irow = &plane[(y - ph) * w..(y - ph + 1) * w];
                for jx in 0..kw {
                    let x = ox * sw + jx * dw;
                    if x < pw || x >= pw + w {
                        continue;
                    }
                    acc += taps[jy * kw + jx] * irow[x - pw];
                }
            }
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_tensors_close;
    use crate::geometry::DconvAxis;

    fn det(shape: &[usize], seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
    }

    #[test]
    fn batched_dconv_im2col_stacks_per_sample_columns_bitwise() {
        // Column b·Oh·Ow + p must be bit-identical to column p of sample
        // b's own matrix, at every worker count.
        let batch = 3;
        let geom = DconvGeometry::square(8, 3, 1, 2, 2).unwrap();
        let c = 2;
        let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
        let (red, oo) = (c * eh * ew, geom.rows.output * geom.cols.output);
        let samples: Vec<Tensor> = (0..batch).map(|b| det(&[c, 8, 8], 11 + b as u32)).collect();
        let mut inputs = Vec::new();
        for t in &samples {
            inputs.extend_from_slice(t.data());
        }
        for threads in [1usize, 2, 8] {
            let mut batched = vec![f32::NAN; red * batch * oo];
            crate::parallel::with_threads(threads, || {
                im2col_dconv_batch_into(&inputs, batch, c, &geom, &mut batched);
            });
            for (b, t) in samples.iter().enumerate() {
                let mut cols = vec![0.0; red * oo];
                im2col_dconv_into(t, &geom, &mut cols);
                for r in 0..red {
                    for q in 0..oo {
                        assert_eq!(
                            batched[r * batch * oo + b * oo + q].to_bits(),
                            cols[r * oo + q].to_bits(),
                            "sample {b} element ({r},{q}) threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn expanded_kernel_places_taps_at_dilation_multiples() {
        let geom = DconvGeometry::square(8, 3, 1, 2, 2).unwrap();
        let weights = det(&[2, 1, 3, 3], 3);
        let e = expand_dilated_kernel(&weights, &geom);
        assert_eq!(e.shape(), &[2, 1, 5, 5]);
        for jy in 0..3 {
            for jx in 0..3 {
                assert_eq!(
                    e[&[0, 0, jy * 2, jx * 2]].to_bits(),
                    weights[&[0, 0, jy, jx]].to_bits()
                );
            }
        }
        // Off-tap positions are exactly zero.
        assert_eq!(e[&[0, 0, 1, 0]], 0.0);
        assert_eq!(e[&[0, 0, 3, 3]], 0.0);
    }

    #[test]
    fn zero_insertion_equals_direct() {
        for (i, k, s, d, p, ic, oc) in [
            (8, 3, 1, 2, 2, 2, 3),
            (9, 3, 2, 3, 3, 1, 2),
            (16, 2, 2, 4, 0, 3, 1),
            (8, 3, 1, 1, 1, 2, 2), // dilation 1 degenerates to plain conv
        ] {
            let geom = DconvGeometry::square(i, k, s, d, p).unwrap();
            let input = det(&[ic, i, i], i as u32);
            let weights = det(&[oc, ic, k, k], k as u32 + 11);
            let a = dconv_zero_insertion(&input, &weights, &geom);
            let b = dconv_direct(&input, &weights, &geom);
            assert_tensors_close(&a, &b, 1e-4);
            let c = dconv_zero_free(&input, &weights, &geom);
            assert_tensors_close(&a, &c, 1e-4);
        }
    }

    #[test]
    fn compact_im2col_has_the_true_tap_rows_of_the_dense_one() {
        // Row (ci, jy, jx) of the compact matrix must equal row
        // (ci, jy·Dh, jx·Dw) of the dense effective-extent matrix.
        let geom = DconvGeometry::square(10, 3, 2, 3, 3).unwrap();
        let input = det(&[2, 10, 10], 21);
        let dense = im2col_dconv(&input, &geom);
        let compact = im2col_dconv_compact(&input, &geom);
        let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
        let positions = geom.rows.output * geom.cols.output;
        assert_eq!(compact.shape(), &[2 * 3 * 3, positions]);
        for ci in 0..2 {
            for jy in 0..3 {
                for jx in 0..3 {
                    let crow = ci * 9 + jy * 3 + jx;
                    let drow = ci * eh * ew + (jy * geom.rows.dilation) * ew + jx * geom.cols.dilation;
                    assert_eq!(
                        &compact.data()[crow * positions..(crow + 1) * positions],
                        &dense.data()[drow * positions..(drow + 1) * positions],
                        "tap ({ci},{jy},{jx})"
                    );
                }
            }
        }
    }

    #[test]
    fn transposed_dconv_im2col_is_the_exact_transpose() {
        for (i, k, s, d, p, c) in [(8, 3, 1, 2, 2, 2), (9, 3, 2, 3, 3, 1), (16, 2, 2, 4, 0, 3)] {
            let geom = DconvGeometry::square(i, k, s, d, p).unwrap();
            let input = det(&[c, i, i], i as u32 + 17);
            let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
            let (red, oo) = (c * eh * ew, geom.rows.output * geom.cols.output);
            let mut cols = vec![0.0; red * oo];
            im2col_dconv_into(&input, &geom, &mut cols);
            let mut cols_t = vec![0.0; oo * red];
            im2col_dconv_t_into(input.data(), c, &geom, &mut cols_t);
            for r in 0..red {
                for p_ in 0..oo {
                    assert_eq!(
                        cols[r * oo + p_].to_bits(),
                        cols_t[p_ * red + r].to_bits(),
                        "(i={i},k={k},s={s},d={d},p={p}) element ({r},{p_})"
                    );
                }
            }
        }
    }

    #[test]
    fn asymmetric_geometry_executes() {
        let rows = DconvAxis::new(12, 3, 1, 1, 1).unwrap();
        let cols = DconvAxis::new(12, 5, 2, 1, 2).unwrap();
        let geom = DconvGeometry::new(rows, cols);
        let input = det(&[2, 12, 12], 4);
        let weights = det(&[3, 2, 3, 5], 5);
        let a = dconv_zero_insertion(&input, &weights, &geom);
        let b = dconv_direct(&input, &weights, &geom);
        assert_eq!(a.shape(), &[3, 12, 6]);
        assert_tensors_close(&a, &b, 1e-4);
    }

    #[test]
    fn dilation_one_square_matches_conv2d_gemm() {
        use crate::geometry::SconvGeometry;
        use crate::im2col::conv2d_gemm;
        let geom = DconvGeometry::square(8, 5, 2, 1, 2).unwrap();
        let sgeom = SconvGeometry::new(8, 5, 2, 2).unwrap();
        let input = det(&[3, 8, 8], 9);
        let weights = det(&[4, 3, 5, 5], 10);
        let a = dconv_zero_insertion(&input, &weights, &geom);
        let b = conv2d_gemm(&input, &weights, &sgeom);
        assert_tensors_close(&a, &b, 1e-5);
    }

    #[test]
    fn im2col_nonzero_count_matches_useful_macs() {
        // The literal nonzero count of the zero-inserted formulation's
        // operands equals the analytic useful-MAC count: ones input, the
        // expanded kernel's nonzero structure, padding zeros inline.
        let geom = DconvGeometry::square(8, 3, 1, 2, 2).unwrap();
        let cols = im2col_dconv(&Tensor::ones(&[1, 8, 8]), &geom);
        let expanded = expand_dilated_kernel(&Tensor::ones(&[1, 1, 3, 3]), &geom);
        let (eh, ew) = (5, 5);
        let (oh, ow) = (geom.rows.output, geom.cols.output);
        let mut useful = 0usize;
        for ky in 0..eh {
            for kx in 0..ew {
                if expanded[&[0, 0, ky, kx]] == 0.0 {
                    continue;
                }
                for o in 0..oh * ow {
                    if cols[&[ky * ew + kx, o]] != 0.0 {
                        useful += 1;
                    }
                }
            }
        }
        assert_eq!(useful, geom.useful_multiplications_per_pair());
    }
}
