//! Fault events emitted by the online detection loop.
//!
//! The scheduler layer owns the event vocabulary: a checked op that trips
//! its ABFT residual raises a [`FaultEvent`], and the recovery runtime
//! records which [`RecoveryAction`] resolved it. Keeping the types here
//! (rather than in `lergan-core`) lets any consumer of the engine attach a
//! detection loop without depending on the full accelerator model.

/// What a checked op observed when its residual was evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEventKind {
    /// The ABFT checksum residual exceeded the detection threshold:
    /// silent corruption in the op's output.
    ResidualFlagged {
        /// Magnitude of the residual (integer MMV domain, exact).
        residual: f64,
    },
    /// Wear-out broke cells during a training-phase write.
    WearBreak {
        /// Number of cells that newly failed this step.
        cells: usize,
    },
    /// A CRC check caught in-flight corruption on an added NoC wire; the
    /// wire's identity is in the event label.
    LinkCorrupted {
        /// How many payload bits the wire flipped.
        flipped_bits: u32,
    },
    /// The receiver timed out: an added NoC wire dropped the transfer
    /// outright (wire identity in the event label).
    LinkDropped,
    /// The retransmit ladder gave up on a flaky wire and soft-quarantined
    /// it: Dijkstra re-routes subsequent transfers around the wire named
    /// in the event label.
    LinkQuarantined,
    /// A transfer ultimately succeeded after link-level recovery.
    LinkRecovered {
        /// How the link layer resolved it (normally
        /// [`RecoveryAction::Retransmitted`]).
        action: RecoveryAction,
        /// Total attempts the transfer took, including the success.
        attempts: u32,
    },
}

/// One detected fault, timestamped in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Training step (iteration index) during which the fault surfaced.
    pub step: u64,
    /// Simulated time of detection, ns from the start of the run.
    pub time_ns: f64,
    /// Label of the flagged op (matches the schedule's task labels).
    pub label: String,
    /// What was observed.
    pub kind: FaultEventKind,
}

/// How the runtime resolved a [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Suspect cells were quarantined and the op replayed cleanly on
    /// relocated cells — no remap needed.
    Corrected,
    /// Quarantine density forced a tile kill; the affected bank was
    /// remapped with `for_phase_avoiding` and the op replayed.
    Remapped,
    /// Remap was impossible or the residual persisted after the retry
    /// budget: the trainer rolled back to the last checkpoint.
    RolledBack,
    /// A CRC-failed or dropped NoC transfer was delivered by the link
    /// layer's bounded retransmit ladder (possibly after re-routing
    /// around a soft-quarantined wire).
    Retransmitted,
}
