//! A small deterministic discrete-event execution engine and statistics
//! helpers for the LerGAN accelerator simulation.
//!
//! The engine schedules a DAG of [`engine::TaskSpec`]s over
//! capacity-limited resources with deterministic tie-breaking, which is all
//! the phase-level pipeline model of Fig. 13 needs: phases become tasks,
//! banks/links become resources, and the makespan of one training
//! iteration falls out of the schedule.
//!
//! # Example
//!
//! ```
//! use lergan_sim::engine::{Engine, TaskSpec};
//!
//! let mut e = Engine::new();
//! let bank = e.add_resource("bank", 1);
//! let a = e.add_task(TaskSpec::new("G-forward", 100.0).on(bank));
//! let b = e.add_task(TaskSpec::new("D-forward", 80.0).on(bank).after(a));
//! let done = e.run().expect("acyclic");
//! assert_eq!(done.finish_ns(b), 180.0); // serialised on the same bank
//! ```

pub mod engine;
pub mod event;
pub mod stats;

pub use engine::{Engine, ResourceId, Schedule, SimError, TaskId, TaskSpec};
pub use event::{FaultEvent, FaultEventKind, RecoveryAction};
pub use stats::Breakdown;
