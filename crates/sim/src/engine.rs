//! Deterministic discrete-event DAG scheduler.
//!
//! Tasks declare a fixed duration, dependencies, and at most one resource
//! (with integer capacity). A task becomes *ready* when all dependencies
//! have finished; ready tasks acquire their resource in deterministic
//! (ready-time, insertion-order) order. This is classic list scheduling —
//! enough to model pipelined GAN-training phases contending for banks and
//! links.

/// Identifier of a task inside one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

impl TaskId {
    /// Position of the task in its engine's insertion order.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Typed scheduler failure.
///
/// [`Engine::add_task`] only accepts dependencies on already-registered
/// tasks, so a cycle cannot be built through the public API; the variant
/// exists so the entry points stay total if that invariant is ever
/// relaxed (e.g. graphs deserialized or mutated in place).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No task was ready although unscheduled tasks remain: every listed
    /// task is waiting on a dependency inside the same stuck set.
    DependencyCycle {
        /// Ids of the tasks that could never become ready.
        stuck: Vec<TaskId>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::DependencyCycle { stuck } => {
                write!(f, "dependency cycle: {} task(s) stuck:", stuck.len())?;
                for t in stuck {
                    write!(f, " #{}", t.0)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Identifier of a resource inside one [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Specification of one task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Human-readable label (appears in schedules and debugging output).
    pub label: String,
    /// Fixed execution time in nanoseconds.
    pub duration_ns: f64,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
    /// Resource this task occupies (one capacity unit) while running.
    pub resource: Option<ResourceId>,
}

impl TaskSpec {
    /// Creates a task with no dependencies and no resource.
    pub fn new(label: impl Into<String>, duration_ns: f64) -> Self {
        TaskSpec {
            label: label.into(),
            duration_ns,
            deps: Vec::new(),
            resource: None,
        }
    }

    /// Binds the task to a resource.
    pub fn on(mut self, r: ResourceId) -> Self {
        self.resource = Some(r);
        self
    }

    /// Adds a dependency.
    pub fn after(mut self, t: TaskId) -> Self {
        self.deps.push(t);
        self
    }

    /// Adds many dependencies.
    pub fn after_all(mut self, ts: &[TaskId]) -> Self {
        self.deps.extend_from_slice(ts);
        self
    }
}

#[derive(Debug, Clone)]
struct Resource {
    label: String,
    capacity: usize,
}

/// Heap key for the ready queue: `(ready time, insertion index)`, popped
/// smallest-first. `ready_ns` is finite (task durations are validated), so
/// `total_cmp` agrees with the `partial_cmp` the linear scan uses.
#[derive(Debug, PartialEq)]
struct ReadyKey {
    ready_ns: f64,
    index: usize,
}

impl Eq for ReadyKey {}

impl Ord for ReadyKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ready_ns
            .total_cmp(&other.ready_ns)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for ReadyKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The scheduler.
#[derive(Debug, Default)]
pub struct Engine {
    tasks: Vec<TaskSpec>,
    resources: Vec<Resource>,
}

/// The result of running an engine: per-task start/finish times and
/// per-resource occupancy.
#[derive(Debug, Clone)]
pub struct Schedule {
    starts: Vec<f64>,
    finishes: Vec<f64>,
    labels: Vec<String>,
    resource_busy: Vec<f64>,
    resource_labels: Vec<String>,
}

impl Schedule {
    /// Start time of a task (ns).
    pub fn start_ns(&self, t: TaskId) -> f64 {
        self.starts[t.0]
    }

    /// Finish time of a task (ns).
    pub fn finish_ns(&self, t: TaskId) -> f64 {
        self.finishes[t.0]
    }

    /// Completion time of the whole DAG (ns).
    pub fn makespan_ns(&self) -> f64 {
        self.finishes.iter().copied().fold(0.0, f64::max)
    }

    /// Label of a task.
    pub fn label(&self, t: TaskId) -> &str {
        &self.labels[t.0]
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.finishes.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.finishes.is_empty()
    }

    /// Total busy time (occupancy-seconds) of a resource across the run.
    pub fn resource_busy_ns(&self, r: ResourceId) -> f64 {
        self.resource_busy[r.0]
    }

    /// Utilisation of a resource: busy time over the makespan (can exceed
    /// 1.0 for capacities above one).
    pub fn resource_utilization(&self, r: ResourceId) -> f64 {
        let span = self.makespan_ns();
        if span == 0.0 {
            0.0
        } else {
            self.resource_busy[r.0] / span
        }
    }

    /// Iterates `(label, busy_ns)` over all resources, in creation order.
    pub fn resources(&self) -> impl Iterator<Item = (&str, f64)> {
        self.resource_labels
            .iter()
            .map(|l| l.as_str())
            .zip(self.resource_busy.iter().copied())
    }
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn add_resource(&mut self, label: impl Into<String>, capacity: usize) -> ResourceId {
        assert!(capacity > 0, "resource capacity must be positive");
        self.resources.push(Resource {
            label: label.into(),
            capacity,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Adds a task.
    ///
    /// # Panics
    ///
    /// Panics if a dependency or resource id does not exist, or the
    /// duration is negative/NaN.
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskId {
        assert!(
            spec.duration_ns >= 0.0 && spec.duration_ns.is_finite(),
            "task duration must be finite and non-negative"
        );
        for d in &spec.deps {
            assert!(d.0 < self.tasks.len(), "dependency on unknown task");
        }
        if let Some(r) = spec.resource {
            assert!(r.0 < self.resources.len(), "unknown resource");
        }
        self.tasks.push(spec);
        TaskId(self.tasks.len() - 1)
    }

    /// Runs the schedule to completion.
    ///
    /// The ready queue is a binary heap keyed `(ready time, insertion
    /// index)`. A task's ready time is *final* by the time it enters the
    /// queue — tasks are pushed only when their last dependency resolves,
    /// and `ready_at` is never written afterwards — so the key frozen at
    /// push time equals the value a linear min-scan would read at pop time
    /// and the heap schedule is identical to
    /// [`run_linear_reference`](Self::run_linear_reference) (the property
    /// test `scheduler_equivalence` checks this on random DAGs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DependencyCycle`] if the dependency graph
    /// contains a cycle, listing the task ids that never became ready.
    pub fn run(&self) -> Result<Schedule, SimError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.tasks.len();
        let mut remaining_deps: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let dependents = self.dependents();
        let mut ready_at: Vec<f64> = vec![0.0; n];
        let mut starts = vec![f64::NAN; n];
        let mut finishes = vec![f64::NAN; n];
        // Per-resource list of occupancy intervals (start, finish).
        let mut busy: Vec<Vec<(f64, f64)>> = self.resources.iter().map(|_| Vec::new()).collect();
        // Ready queue popped in (ready time, insertion index) order.
        let mut ready: BinaryHeap<Reverse<ReadyKey>> = (0..n)
            .filter(|&i| remaining_deps[i] == 0)
            .map(|i| {
                Reverse(ReadyKey {
                    ready_ns: 0.0,
                    index: i,
                })
            })
            .collect();
        let mut scheduled = 0usize;
        while scheduled < n {
            let Some(Reverse(key)) = ready.pop() else {
                return Err(self.cycle_error(&starts));
            };
            let i = key.index;
            let (start, finish) = self.place(i, ready_at[i], &mut busy);
            starts[i] = start;
            finishes[i] = finish;
            scheduled += 1;
            for &dep in &dependents[i] {
                remaining_deps[dep] -= 1;
                ready_at[dep] = ready_at[dep].max(finish);
                if remaining_deps[dep] == 0 {
                    ready.push(Reverse(ReadyKey {
                        ready_ns: ready_at[dep],
                        index: dep,
                    }));
                }
            }
        }
        Ok(self.collect(starts, finishes, &busy))
    }

    /// The original O(n²) scheduler — a linear min-scan over a `Vec` ready
    /// queue. Kept as the oracle for the heap-equivalence property test;
    /// produces bit-identical schedules to [`run`](Self::run).
    #[doc(hidden)]
    pub fn run_linear_reference(&self) -> Result<Schedule, SimError> {
        let n = self.tasks.len();
        let mut remaining_deps: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let dependents = self.dependents();
        let mut ready_at: Vec<f64> = vec![0.0; n];
        let mut starts = vec![f64::NAN; n];
        let mut finishes = vec![f64::NAN; n];
        let mut busy: Vec<Vec<(f64, f64)>> = self.resources.iter().map(|_| Vec::new()).collect();
        // Ready queue ordered by (ready time, insertion index).
        let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_deps[i] == 0).collect();
        let mut scheduled = 0usize;
        while scheduled < n {
            if ready.is_empty() {
                return Err(self.cycle_error(&starts));
            }
            // Deterministic pick: smallest (ready time, index).
            let pos = ready
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    ready_at[a]
                        .partial_cmp(&ready_at[b])
                        .unwrap()
                        .then(a.cmp(&b))
                })
                .map(|(p, _)| p)
                .expect("non-empty ready queue");
            let i = ready.swap_remove(pos);
            let (start, finish) = self.place(i, ready_at[i], &mut busy);
            starts[i] = start;
            finishes[i] = finish;
            scheduled += 1;
            for &dep in &dependents[i] {
                remaining_deps[dep] -= 1;
                ready_at[dep] = ready_at[dep].max(finish);
                if remaining_deps[dep] == 0 {
                    ready.push(dep);
                }
            }
        }
        Ok(self.collect(starts, finishes, &busy))
    }

    /// Tasks never scheduled (start still NaN) are exactly the stuck set.
    fn cycle_error(&self, starts: &[f64]) -> SimError {
        let stuck = (0..self.tasks.len())
            .filter(|&i| starts[i].is_nan())
            .map(TaskId)
            .collect();
        SimError::DependencyCycle { stuck }
    }

    /// Reverse dependency lists, indexed by producer.
    fn dependents(&self) -> Vec<Vec<usize>> {
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(i);
            }
        }
        dependents
    }

    /// Places task `i` at the earliest time `>= ready_ns` its resource
    /// admits, records the occupancy, and returns `(start, finish)`.
    fn place(&self, i: usize, ready_ns: f64, busy: &mut [Vec<(f64, f64)>]) -> (f64, f64) {
        let spec = &self.tasks[i];
        let mut start = ready_ns;
        if let Some(r) = spec.resource {
            let q = &mut busy[r.0];
            let cap = self.resources[r.0].capacity;
            // Earliest time >= start with fewer than `cap` overlapping
            // occupancies: advance to the next finish among overlaps
            // until a slot frees up.
            loop {
                let overlapping: Vec<f64> = q
                    .iter()
                    .filter(|&&(s, f)| s <= start && start < f)
                    .map(|&(_, f)| f)
                    .collect();
                if overlapping.len() < cap {
                    break;
                }
                start = overlapping.iter().copied().fold(f64::INFINITY, f64::min);
            }
            q.push((start, start + spec.duration_ns));
        }
        (start, start + spec.duration_ns)
    }

    fn collect(&self, starts: Vec<f64>, finishes: Vec<f64>, busy: &[Vec<(f64, f64)>]) -> Schedule {
        let resource_busy: Vec<f64> = busy
            .iter()
            .map(|intervals| intervals.iter().map(|(s, f)| f - s).sum())
            .collect();
        Schedule {
            starts,
            finishes,
            labels: self.tasks.iter().map(|t| t.label.clone()).collect(),
            resource_busy,
            resource_labels: self.resources.iter().map(|r| r.label.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_accumulates() {
        let mut e = Engine::new();
        let a = e.add_task(TaskSpec::new("a", 10.0));
        let b = e.add_task(TaskSpec::new("b", 5.0).after(a));
        let c = e.add_task(TaskSpec::new("c", 1.0).after(b));
        let s = e.run().unwrap();
        assert_eq!(s.finish_ns(a), 10.0);
        assert_eq!(s.finish_ns(b), 15.0);
        assert_eq!(s.finish_ns(c), 16.0);
        assert_eq!(s.makespan_ns(), 16.0);
    }

    #[test]
    fn independent_tasks_overlap() {
        let mut e = Engine::new();
        let a = e.add_task(TaskSpec::new("a", 10.0));
        let b = e.add_task(TaskSpec::new("b", 7.0));
        let s = e.run().unwrap();
        assert_eq!(s.start_ns(a), 0.0);
        assert_eq!(s.start_ns(b), 0.0);
        assert_eq!(s.makespan_ns(), 10.0);
    }

    #[test]
    fn resource_capacity_serialises() {
        let mut e = Engine::new();
        let r = e.add_resource("bank", 1);
        let a = e.add_task(TaskSpec::new("a", 10.0).on(r));
        let b = e.add_task(TaskSpec::new("b", 10.0).on(r));
        let s = e.run().unwrap();
        assert_eq!(s.finish_ns(a).min(s.finish_ns(b)), 10.0);
        assert_eq!(s.makespan_ns(), 20.0);
    }

    #[test]
    fn capacity_two_runs_pairs() {
        let mut e = Engine::new();
        let r = e.add_resource("link", 2);
        let ids: Vec<TaskId> = (0..4)
            .map(|i| e.add_task(TaskSpec::new(format!("t{i}"), 10.0).on(r)))
            .collect();
        let s = e.run().unwrap();
        assert_eq!(s.makespan_ns(), 20.0);
        let early = ids.iter().filter(|&&t| s.start_ns(t) == 0.0).count();
        assert_eq!(early, 2);
    }

    #[test]
    fn diamond_dependencies() {
        let mut e = Engine::new();
        let a = e.add_task(TaskSpec::new("a", 5.0));
        let b = e.add_task(TaskSpec::new("b", 10.0).after(a));
        let c = e.add_task(TaskSpec::new("c", 3.0).after(a));
        let d = e.add_task(TaskSpec::new("d", 1.0).after_all(&[b, c]));
        let s = e.run().unwrap();
        assert_eq!(s.start_ns(d), 15.0);
        assert_eq!(s.makespan_ns(), 16.0);
    }

    #[test]
    fn zero_duration_tasks_are_fine() {
        let mut e = Engine::new();
        let a = e.add_task(TaskSpec::new("barrier", 0.0));
        let b = e.add_task(TaskSpec::new("b", 2.0).after(a));
        let s = e.run().unwrap();
        assert_eq!(s.finish_ns(b), 2.0);
    }

    #[test]
    #[should_panic(expected = "dependency on unknown task")]
    fn unknown_dependency_rejected() {
        let mut e = Engine::new();
        let _ = e.add_task(TaskSpec::new("x", 1.0).after(TaskId(7)));
    }

    #[test]
    fn resource_utilization_is_tracked() {
        let mut e = Engine::new();
        let r = e.add_resource("bank", 1);
        let idle = e.add_resource("idle", 1);
        let a = e.add_task(TaskSpec::new("a", 10.0).on(r));
        let _b = e.add_task(TaskSpec::new("b", 10.0).on(r).after(a));
        let _c = e.add_task(TaskSpec::new("c", 5.0));
        let s = e.run().unwrap();
        assert_eq!(s.resource_busy_ns(r), 20.0);
        assert_eq!(s.resource_busy_ns(idle), 0.0);
        assert!((s.resource_utilization(r) - 1.0).abs() < 1e-12);
        let names: Vec<&str> = s.resources().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["bank", "idle"]);
    }

    #[test]
    fn dependency_cycle_is_a_typed_error_listing_stuck_tasks() {
        // A cycle cannot be built through `add_task` (deps must already
        // exist), so assemble the engine directly: a -> b -> a, plus one
        // healthy task that schedules fine.
        let e = Engine {
            tasks: vec![
                TaskSpec::new("a", 1.0).after(TaskId(1)),
                TaskSpec::new("b", 1.0).after(TaskId(0)),
                TaskSpec::new("ok", 2.0),
            ],
            resources: Vec::new(),
        };
        let err = e.run().unwrap_err();
        let SimError::DependencyCycle { stuck } = &err;
        assert_eq!(stuck, &vec![TaskId(0), TaskId(1)]);
        assert_eq!(err.to_string(), "dependency cycle: 2 task(s) stuck: #0 #1");
        // The linear oracle reports the identical stuck set.
        assert_eq!(e.run_linear_reference().unwrap_err(), err);
        assert_eq!(stuck[0].index(), 0);
    }

    #[test]
    fn labels_survive() {
        let mut e = Engine::new();
        let a = e.add_task(TaskSpec::new("G-forward", 1.0));
        let s = e.run().unwrap();
        assert_eq!(s.label(a), "G-forward");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
