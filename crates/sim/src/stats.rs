//! Labelled accumulation helpers for latency/energy breakdowns.

use std::collections::BTreeMap;
use std::fmt;

/// A labelled breakdown of a scalar quantity (energy, time, traffic).
///
/// Backed by a `BTreeMap` so iteration order — and therefore printed
/// output — is deterministic.
///
/// # Example
///
/// ```
/// use lergan_sim::Breakdown;
/// let mut b = Breakdown::new();
/// b.add("compute", 70.0);
/// b.add("communication", 16.0);
/// b.add("other", 14.0);
/// assert!((b.share("compute") - 0.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    parts: BTreeMap<String, f64>,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the bucket `label`.
    pub fn add(&mut self, label: &str, value: f64) {
        *self.parts.entry(label.to_string()).or_insert(0.0) += value;
    }

    /// Value of one bucket (0 if absent).
    pub fn get(&self, label: &str) -> f64 {
        self.parts.get(label).copied().unwrap_or(0.0)
    }

    /// Sum over all buckets.
    pub fn total(&self) -> f64 {
        self.parts.values().sum()
    }

    /// Fraction a bucket contributes (0 if the total is 0).
    pub fn share(&self, label: &str) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(label) / t
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for (k, v) in &other.parts {
            self.add(k, *v);
        }
    }

    /// Iterates `(label, value)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.parts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for (k, v) in &self.parts {
            let pct = if total > 0.0 { v / total * 100.0 } else { 0.0 };
            writeln!(f, "{k:<24} {v:>14.2} ({pct:5.2}%)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_share() {
        let mut b = Breakdown::new();
        b.add("a", 3.0);
        b.add("a", 1.0);
        b.add("b", 6.0);
        assert_eq!(b.get("a"), 4.0);
        assert_eq!(b.total(), 10.0);
        assert!((b.share("a") - 0.4).abs() < 1e-12);
        assert_eq!(b.share("missing"), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Breakdown::new();
        a.add("x", 1.0);
        let mut b = Breakdown::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_breakdown_is_harmless() {
        let b = Breakdown::new();
        assert!(b.is_empty());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.share("anything"), 0.0);
    }

    #[test]
    fn display_lists_buckets() {
        let mut b = Breakdown::new();
        b.add("compute", 70.0);
        let s = b.to_string();
        assert!(s.contains("compute"));
        assert!(s.contains("100.00%"));
    }
}
