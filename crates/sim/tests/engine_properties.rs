//! Property tests for the discrete-event scheduler: dependency honesty,
//! critical-path and work-conservation bounds, and determinism.

use lergan_sim::engine::{Engine, TaskId, TaskSpec};
use proptest::prelude::*;

/// A random DAG: `durations[i]` plus edges only from lower to higher
/// indices (guaranteed acyclic).
#[derive(Debug, Clone)]
struct RandomDag {
    durations: Vec<f64>,
    edges: Vec<(usize, usize)>,
    capacity: usize,
}

fn dag() -> impl Strategy<Value = RandomDag> {
    (2usize..14, 1usize..4).prop_flat_map(|(n, capacity)| {
        let durations = proptest::collection::vec(0.0f64..50.0, n);
        let edges = proptest::collection::vec((0usize..n, 0usize..n), 0..2 * n)
            .prop_map(move |pairs| pairs.into_iter().filter(|(a, b)| a < b).collect::<Vec<_>>());
        (durations, edges).prop_map(move |(durations, edges)| RandomDag {
            durations,
            edges,
            capacity,
        })
    })
}

fn build_and_run(dag: &RandomDag, on_resource: bool) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let mut e = Engine::new();
    let r = e.add_resource("shared", dag.capacity);
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); dag.durations.len()];
    for &(a, b) in &dag.edges {
        deps[b].push(a);
    }
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, &d) in dag.durations.iter().enumerate() {
        let mut spec = TaskSpec::new(format!("t{i}"), d);
        if on_resource {
            spec = spec.on(r);
        }
        for &p in &deps[i] {
            spec = spec.after(ids[p]);
        }
        ids.push(e.add_task(spec));
    }
    let s = e.run().unwrap();
    let starts: Vec<f64> = ids.iter().map(|&t| s.start_ns(t)).collect();
    let finishes: Vec<f64> = ids.iter().map(|&t| s.finish_ns(t)).collect();
    (starts, finishes, s.makespan_ns(), s.resource_busy_ns(r))
}

/// Longest dependency chain (critical path) of the DAG.
fn critical_path(dag: &RandomDag) -> f64 {
    let n = dag.durations.len();
    let mut longest = vec![0.0f64; n];
    for i in 0..n {
        let mut best = 0.0f64;
        for &(a, b) in &dag.edges {
            if b == i {
                best = best.max(longest[a]);
            }
        }
        longest[i] = best + dag.durations[i];
    }
    longest.iter().copied().fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dependencies_are_honoured(dag in dag()) {
        let (starts, finishes, _, _) = build_and_run(&dag, true);
        for &(a, b) in &dag.edges {
            prop_assert!(
                starts[b] >= finishes[a] - 1e-9,
                "task {b} started at {} before {a} finished at {}",
                starts[b],
                finishes[a]
            );
        }
    }

    #[test]
    fn makespan_at_least_critical_path(dag in dag()) {
        let (_, _, makespan, _) = build_and_run(&dag, true);
        prop_assert!(makespan >= critical_path(&dag) - 1e-9);
    }

    #[test]
    fn makespan_at_least_work_over_capacity(dag in dag()) {
        let (_, _, makespan, busy) = build_and_run(&dag, true);
        let work: f64 = dag.durations.iter().sum();
        prop_assert!((busy - work).abs() < 1e-6, "busy {busy} vs work {work}");
        prop_assert!(makespan >= work / dag.capacity as f64 - 1e-9);
    }

    #[test]
    fn unconstrained_makespan_equals_critical_path(dag in dag()) {
        let (_, _, makespan, _) = build_and_run(&dag, false);
        prop_assert!((makespan - critical_path(&dag)).abs() < 1e-6);
    }

    #[test]
    fn runs_are_deterministic(dag in dag()) {
        let a = build_and_run(&dag, true);
        let b = build_and_run(&dag, true);
        prop_assert_eq!(a.0, b.0);
        prop_assert!((a.2 - b.2).abs() < 1e-12);
    }
}
