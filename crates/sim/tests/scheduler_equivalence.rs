//! Property: the heap-based ready queue in `Engine::run` produces exactly
//! the schedule of the original linear min-scan (`run_linear_reference`).
//!
//! The equivalence holds because a task's ready time is final when it
//! enters the queue, so freezing the heap key at push time loses nothing.
//! This test exercises random DAGs — skewed durations, shared capacity-
//! limited resources, fan-in/fan-out dependencies — and demands *bitwise*
//! equality of every start, finish, and per-resource busy total.

use lergan_sim::{Engine, TaskId, TaskSpec};
use proptest::collection::vec;
use proptest::prelude::*;

/// Per-task generator: (duration seed, dependency seed, resource seed).
/// Durations are deliberately non-round so float ties are rare and the
/// (ready time, index) tiebreak still gets exercised via the zero-duration
/// and equal-seed cases.
fn task_seeds() -> impl Strategy<Value = Vec<(f64, u64, u64)>> {
    vec(
        (0.0f64..50.0, 0u64..u64::MAX, 0u64..u64::MAX),
        1..40usize,
    )
}

/// Builds a deterministic engine from the seeds: three resources with
/// capacities 1, 2 and 3, up to three backward dependencies per task.
fn build_engine(seeds: &[(f64, u64, u64)]) -> (Engine, Vec<TaskId>) {
    let mut e = Engine::new();
    let resources = [
        e.add_resource("bank", 1),
        e.add_resource("link", 2),
        e.add_resource("bus", 3),
    ];
    let mut ids: Vec<TaskId> = Vec::with_capacity(seeds.len());
    for (i, &(duration, dep_seed, res_seed)) in seeds.iter().enumerate() {
        // Roughly a quarter of tasks are zero-duration barriers, which
        // forces ready-time ties and exercises the index tiebreak.
        let duration = if dep_seed % 4 == 0 { 0.0 } else { duration };
        let mut spec = TaskSpec::new(format!("t{i}"), duration);
        if i > 0 {
            let n_deps = (dep_seed % 4) as usize; // 0..=3
            for d in 0..n_deps {
                let dep = (dep_seed.rotate_right(7 * (d as u32 + 1)) as usize) % i;
                spec = spec.after(ids[dep]);
            }
        }
        match res_seed % 4 {
            0 => {} // no resource
            k => spec = spec.on(resources[(k - 1) as usize]),
        }
        ids.push(e.add_task(spec));
    }
    (e, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_schedule_equals_linear_scan(seeds in task_seeds()) {
        let (engine, ids) = build_engine(&seeds);
        let heap = engine.run().unwrap();
        let linear = engine.run_linear_reference().unwrap();

        prop_assert_eq!(heap.len(), linear.len());
        for &t in &ids {
            prop_assert_eq!(
                heap.start_ns(t).to_bits(),
                linear.start_ns(t).to_bits(),
                "start of {} diverged: heap {} vs linear {}",
                heap.label(t),
                heap.start_ns(t),
                linear.start_ns(t)
            );
            prop_assert_eq!(
                heap.finish_ns(t).to_bits(),
                linear.finish_ns(t).to_bits(),
                "finish of {} diverged: heap {} vs linear {}",
                heap.label(t),
                heap.finish_ns(t),
                linear.finish_ns(t)
            );
        }
        prop_assert_eq!(heap.makespan_ns().to_bits(), linear.makespan_ns().to_bits());
        let heap_busy: Vec<u64> = heap.resources().map(|(_, b)| b.to_bits()).collect();
        let linear_busy: Vec<u64> = linear.resources().map(|(_, b)| b.to_bits()).collect();
        prop_assert_eq!(heap_busy, linear_busy);
    }
}
