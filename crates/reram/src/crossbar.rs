//! Crossbar-level mapping of weight matrices.
//!
//! A CArray executes a matrix-multiply-vector in one read cycle, but a real
//! weight matrix rarely fits one 128×128 crossbar: rows beyond
//! `crossbar_dim` need extra crossbars whose partial sums are accumulated,
//! and each 16-bit weight occupies `cells_per_weight` adjacent columns.
//! [`CrossbarLayout`] captures how a logical `rows × cols` matrix tiles
//! onto physical crossbars and what one logical MMV therefore costs.

use crate::config::ReramConfig;

/// How a logical weight matrix maps onto physical crossbars.
///
/// `rows` is the input-vector length, `cols` the output width; both count
/// 16-bit values.
///
/// # Example
///
/// ```
/// use lergan_reram::{CrossbarLayout, ReramConfig};
/// let cfg = ReramConfig::default();
/// // DCGAN CONV1 reshaped matrix: 4096 inputs x 512 outputs.
/// let l = CrossbarLayout::for_matrix(4096, 512, &cfg);
/// assert_eq!(l.row_tiles, 32);
/// assert_eq!(l.col_tiles, 16);
/// assert_eq!(l.crossbars(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrossbarLayout {
    /// Logical input length (16-bit values).
    pub rows: usize,
    /// Logical output width (16-bit values).
    pub cols: usize,
    /// Crossbars along the input dimension.
    pub row_tiles: usize,
    /// Crossbars along the output dimension.
    pub col_tiles: usize,
    /// Logical output values one crossbar produces.
    pub cols_per_crossbar: usize,
}

impl CrossbarLayout {
    /// Computes the layout of a `rows × cols` 16-bit matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn for_matrix(rows: usize, cols: usize, config: &ReramConfig) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        let dim = config.crossbar_dim;
        let cols_per_crossbar = dim / config.cells_per_weight();
        CrossbarLayout {
            rows,
            cols,
            row_tiles: rows.div_ceil(dim),
            col_tiles: cols.div_ceil(cols_per_crossbar),
            cols_per_crossbar,
        }
    }

    /// Total physical crossbars the matrix occupies.
    pub fn crossbars(&self) -> usize {
        self.row_tiles * self.col_tiles
    }

    /// Crossbar read operations per logical MMV (all crossbars fire once;
    /// partial sums along the row dimension merge in shift-and-add units).
    pub fn ops_per_mmv(&self) -> usize {
        self.crossbars()
    }

    /// Weight values stored, including padding of partially-filled
    /// crossbars (the space the CArray actually reserves).
    pub fn stored_weights(&self, config: &ReramConfig) -> u64 {
        self.crossbars() as u64 * config.weights_per_crossbar() as u64
    }

    /// Occupancy: useful weights / reserved weight slots.
    pub fn occupancy(&self, config: &ReramConfig) -> f64 {
        (self.rows as u64 * self.cols as u64) as f64 / self.stored_weights(config) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_crossbar_fit() {
        let cfg = ReramConfig::default();
        let l = CrossbarLayout::for_matrix(128, 32, &cfg);
        assert_eq!(l.crossbars(), 1);
        assert_eq!(l.ops_per_mmv(), 1);
        assert!((l.occupancy(&cfg) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_fill_rounds_up() {
        let cfg = ReramConfig::default();
        let l = CrossbarLayout::for_matrix(129, 33, &cfg);
        assert_eq!(l.row_tiles, 2);
        assert_eq!(l.col_tiles, 2);
        assert_eq!(l.crossbars(), 4);
        assert!(l.occupancy(&cfg) < 0.27);
    }

    #[test]
    fn fc_layer_of_dcgan() {
        // 100 -> 16384 FC: 1 row tile, 512 col tiles.
        let cfg = ReramConfig::default();
        let l = CrossbarLayout::for_matrix(100, 16384, &cfg);
        assert_eq!(l.row_tiles, 1);
        assert_eq!(l.col_tiles, 512);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_rejected() {
        let cfg = ReramConfig::default();
        let _ = CrossbarLayout::for_matrix(0, 4, &cfg);
    }
}
