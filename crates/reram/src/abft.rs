//! Algorithm-based fault tolerance (ABFT) for crossbar MMVs: one redundant
//! checksum column per weight block.
//!
//! RED-style ReRAM pipelines assume per-crossbar result checking is cheap
//! relative to the MMV itself; the classic way to get it is Huang–Abraham
//! checksums. Each weight block stores one extra column holding its weight
//! **row sums**: `c[r] = Σ_j W[r][j]`. Because an MMV is linear, the
//! checksum column's output equals the sum of the data outputs in exact
//! arithmetic — `Σ_r c[r]·x[r] = Σ_j y_j` — so the *residual*
//! `|s − Σ_j y_j|` of a perceived (fault- and variation-disturbed) MMV is
//! exactly zero on clean hardware and non-zero whenever a stuck cell
//! silently corrupted either the data or the checksum column. Detection
//! therefore rides along with every MMV at a storage and read-op overhead
//! of `1/cols`, with no second compute pass.
//!
//! The block's cells (data first, then the checksum column) live in the
//! same [`FaultMap`] cell space the programming loop wears out, so a cell
//! broken mid-run by [`crate::wear::WearModel`] perturbs the very residual
//! that is supposed to catch it.

use crate::config::ReramConfig;
use crate::fault::{FaultMap, WritePolicy, WriteReport};
use crate::variation::VariationModel;

/// A `rows × cols` weight block with one appended checksum column,
/// anchored at a fixed cell base inside a bank's fault map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbftBlock {
    /// Input-vector length (weight rows).
    pub rows: usize,
    /// Output width (weight columns), excluding the checksum column.
    pub cols: usize,
    /// First absolute cell index of the block.
    pub cell_base: u64,
}

/// What one checked MMV observed.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftObservation {
    /// Exact integer outputs (what healthy hardware computes).
    pub outputs_exact: Vec<i64>,
    /// Perceived outputs under the fault map (and optional variation).
    pub outputs_perceived: Vec<f64>,
    /// Perceived output of the checksum column.
    pub checksum_perceived: f64,
    /// `|checksum output − Σ data outputs|` of the perceived MMV.
    pub residual: f64,
}

impl AbftObservation {
    /// Whether the residual trips the detection threshold.
    pub fn flagged(&self, threshold: f64) -> bool {
        self.residual > threshold
    }
}

impl AbftBlock {
    /// A block of `rows × cols` weights at `cell_base`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize, cell_base: u64) -> Self {
        assert!(rows > 0 && cols > 0, "block dimensions must be non-zero");
        AbftBlock {
            rows,
            cols,
            cell_base,
        }
    }

    /// Stored weight values including the checksum column.
    pub fn stored_values(&self) -> u64 {
        (self.rows * (self.cols + 1)) as u64
    }

    /// Cells the block occupies (data then checksum, contiguous).
    pub fn cells(&self, config: &ReramConfig) -> u64 {
        self.stored_values() * config.cells_per_weight() as u64
    }

    /// Fractional storage / read-op overhead of the checksum column.
    pub fn overhead(&self) -> f64 {
        1.0 / self.cols as f64
    }

    /// Cell index of the weight at `(row, col)`; `col == cols` addresses
    /// the checksum column.
    fn cell_of(&self, row: usize, col: usize, config: &ReramConfig) -> u64 {
        debug_assert!(row < self.rows && col <= self.cols);
        let value_index = if col == self.cols {
            // Checksum column lives after the data block.
            (self.rows * self.cols + row) as u64
        } else {
            (row * self.cols + col) as u64
        };
        self.cell_base + value_index * config.cells_per_weight() as u64
    }

    /// Row-sum checksum codes for a row-major `rows × cols` weight block.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` or a row sum leaves the
    /// 16-bit code domain (blocks monitored by the runtime are sized so
    /// the checksum column stays representable).
    pub fn checksums(&self, weights: &[i32]) -> Vec<i32> {
        assert_eq!(weights.len(), self.rows * self.cols, "block shape");
        (0..self.rows)
            .map(|r| {
                let sum: i64 = weights[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .map(|&w| w as i64)
                    .sum();
                i32::try_from(sum).expect("checksum code representable")
            })
            .collect()
    }

    /// Programs the data block *and* its derived checksum column through
    /// the write-and-verify loop (each write advances wear on its cells).
    pub fn program(
        &self,
        map: &mut FaultMap,
        weights: &[i32],
        config: &ReramConfig,
        policy: &WritePolicy,
    ) -> WriteReport {
        let checksums = self.checksums(weights);
        let mut report = WriteReport::default();
        for r in 0..self.rows {
            for c in 0..self.cols {
                report.absorb(map.program_weight(
                    weights[r * self.cols + c],
                    self.cell_of(r, c, config),
                    config,
                    policy,
                ));
            }
            report.absorb(map.program_weight(
                checksums[r],
                self.cell_of(r, self.cols, config),
                config,
                policy,
            ));
        }
        report
    }

    /// One checked MMV: perceived data outputs, perceived checksum output
    /// and the residual that flags silent corruption.
    ///
    /// With a pristine map and no variation the residual is exactly zero
    /// (integer sums well inside the f64-exact range).
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes do not match the block.
    pub fn checked_mmv(
        &self,
        map: &FaultMap,
        variation: Option<&VariationModel>,
        weights: &[i32],
        inputs: &[i32],
        config: &ReramConfig,
    ) -> AbftObservation {
        assert_eq!(weights.len(), self.rows * self.cols, "block shape");
        assert_eq!(inputs.len(), self.rows, "input length");
        let checksums = self.checksums(weights);
        let mut outputs_exact = vec![0i64; self.cols];
        let mut outputs_perceived = vec![0.0f64; self.cols];
        let mut checksum_perceived = 0.0f64;
        for (r, &x) in inputs.iter().enumerate() {
            for c in 0..self.cols {
                let w = weights[r * self.cols + c];
                outputs_exact[c] += w as i64 * x as i64;
                outputs_perceived[c] += map.perceived_weight(
                    variation,
                    w,
                    self.cell_of(r, c, config),
                    config,
                ) * x as f64;
            }
            checksum_perceived += map.perceived_weight(
                variation,
                checksums[r],
                self.cell_of(r, self.cols, config),
                config,
            ) * x as f64;
        }
        let residual = (checksum_perceived - outputs_perceived.iter().sum::<f64>()).abs();
        AbftObservation {
            outputs_exact,
            outputs_perceived,
            checksum_perceived,
            residual,
        }
    }

    /// Diagnostic read-back: the stuck cells inside this block's cell
    /// range (what a controller's verify scan pins down after a residual
    /// trips). These are the cells the runtime quarantines.
    pub fn suspect_cells(&self, map: &FaultMap, config: &ReramConfig) -> Vec<u64> {
        let lo = self.cell_base;
        let hi = self.cell_base + self.cells(config);
        map.stuck_cells_in(lo..hi).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StuckAt;

    fn block_weights(b: &AbftBlock) -> Vec<i32> {
        (0..b.rows * b.cols)
            .map(|i| ((i as i32 * 37) % 201) - 100)
            .collect()
    }

    fn inputs(rows: usize) -> Vec<i32> {
        (0..rows).map(|i| ((i as i32 * 13) % 15) - 7).collect()
    }

    #[test]
    fn clean_hardware_has_exactly_zero_residual() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(8, 6, 0);
        let w = block_weights(&b);
        let obs = b.checked_mmv(&FaultMap::pristine(), None, &w, &inputs(8), &cfg);
        assert_eq!(obs.residual, 0.0);
        assert!(!obs.flagged(0.0));
        for (e, p) in obs.outputs_exact.iter().zip(&obs.outputs_perceived) {
            assert_eq!(*e as f64, *p);
        }
    }

    #[test]
    fn stuck_data_cell_trips_the_residual() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(8, 6, 0);
        let w = block_weights(&b);
        let mut map = FaultMap::pristine();
        // Weight (0,0) is negative, so its most significant slice is 0xF;
        // pinning it at zero shifts the perceived weight while the
        // checksum column stays put — residual fires.
        map.set_stuck(3, StuckAt::Zero);
        let obs = b.checked_mmv(&map, None, &w, &inputs(8), &cfg);
        assert!(obs.residual > 0.0, "silent corruption must be visible");
        assert_eq!(b.suspect_cells(&map, &cfg), vec![3]);
    }

    #[test]
    fn stuck_checksum_cell_also_trips_the_residual() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(4, 4, 0);
        let w = block_weights(&b);
        let mut map = FaultMap::pristine();
        // First checksum cell sits right after the 16 data weights. Row 0
        // sums negative, so its top slice is 0xF — pin it at zero.
        let checksum_cell = 16 * cfg.cells_per_weight() as u64;
        map.set_stuck(checksum_cell + 3, StuckAt::Zero);
        let obs = b.checked_mmv(&map, None, &w, &inputs(4), &cfg);
        assert!(obs.residual > 0.0);
    }

    #[test]
    fn stuck_cell_agreeing_with_its_target_is_benign() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(4, 4, 0);
        // All-zero weights: a stuck-at-zero cell stores exactly the right
        // level, so the residual must stay clean (no false positive).
        let w = vec![0i32; 16];
        let mut map = FaultMap::pristine();
        map.set_stuck(0, StuckAt::Zero);
        let obs = b.checked_mmv(&map, None, &w, &inputs(4), &cfg);
        assert_eq!(obs.residual, 0.0);
    }

    #[test]
    fn programming_covers_data_and_checksum_cells() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(3, 5, 0);
        let w = block_weights(&b);
        let mut map = FaultMap::pristine();
        let report = b.program(&mut map, &w, &cfg, &WritePolicy::default());
        assert!(report.succeeded());
        // One pulse per cell: data + checksum column.
        assert_eq!(report.attempts, b.cells(&cfg));
        assert_eq!(b.stored_values(), 3 * 6);
        assert!((b.overhead() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn checked_mmv_is_deterministic() {
        let cfg = ReramConfig::default();
        let b = AbftBlock::new(6, 6, 128);
        let w = block_weights(&b);
        let map = FaultMap::seeded(9, 0.05, b.cell_base + b.cells(&cfg));
        let a = b.checked_mmv(&map, None, &w, &inputs(6), &cfg);
        let c = b.checked_mmv(&map, None, &w, &inputs(6), &cfg);
        assert_eq!(a, c);
    }
}
