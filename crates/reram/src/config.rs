//! Hardware configuration constants (Table IV).
//!
//! Every latency is in nanoseconds and every energy in picojoules, exactly
//! as Table IV reports them. Fields the table does not give directly (the
//! per-component split of an MMV's energy) are derived in
//! [`crate::energy`] and calibrated against Fig. 24, with the calibration
//! recorded in `EXPERIMENTS.md`.

/// Complete ReRAM-based main-memory configuration.
///
/// `Default` is the paper's Table IV configuration.
///
/// # Example
///
/// ```
/// use lergan_reram::ReramConfig;
/// let cfg = ReramConfig::default();
/// assert_eq!(cfg.tiles_per_bank, 16);
/// assert_eq!(cfg.cell_bits, 4);
/// assert!((cfg.tile_read_latency_ns - 2.9).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReramConfig {
    // ---- organisation ----
    /// Total main-memory capacity in bytes (16 GB).
    pub total_capacity_bytes: u64,
    /// Capacity per bank in bytes (2 GB).
    pub bank_capacity_bytes: u64,
    /// Capacity per tile in bytes (128 MB).
    pub tile_capacity_bytes: u64,
    /// Tiles per bank (derived: 16).
    pub tiles_per_bank: usize,
    /// Bytes of a tile configured as CArray (64 MB — half the tile).
    pub carray_bytes: u64,
    /// Bytes of a tile configured as BArray (2 MB — 1/64 of the tile).
    pub barray_bytes: u64,
    /// Bytes of a tile configured as SArray (62 MB — the rest).
    pub sarray_bytes: u64,

    // ---- cell / crossbar ----
    /// Bits stored per ReRAM cell (4).
    pub cell_bits: u32,
    /// Bits of inputs, weights and outputs (16, as in PipeLayer).
    pub data_bits: u32,
    /// Crossbar rows = columns (128 cells).
    pub crossbar_dim: usize,

    // ---- timing (ns) ----
    /// Bank read latency (32.8 ns).
    pub bank_read_latency_ns: f64,
    /// Bank write latency (41.4 ns).
    pub bank_write_latency_ns: f64,
    /// Full H-tree traversal latency within a bank (29.9 ns).
    pub htree_latency_ns: f64,
    /// Tile read latency (2.9 ns) — also the CArray MMV cycle `t_m`.
    pub tile_read_latency_ns: f64,
    /// Tile write latency (11.5 ns).
    pub tile_write_latency_ns: f64,
    /// Off-chip I/O frequency in GHz (1.6).
    pub io_frequency_ghz: f64,
    /// Off-chip I/O bus width in bits (64-bit DDR channel equivalent).
    pub io_bus_bits: u32,

    // ---- energy (pJ) ----
    /// Bank read energy (413 pJ).
    pub bank_read_energy_pj: f64,
    /// Bank write energy (665 pJ).
    pub bank_write_energy_pj: f64,
    /// Full H-tree traversal energy (386 pJ).
    pub htree_energy_pj: f64,
    /// Tile read energy (3.3 pJ).
    pub tile_read_energy_pj: f64,
    /// Tile write energy (34.8 pJ).
    pub tile_write_energy_pj: f64,
}

impl Default for ReramConfig {
    fn default() -> Self {
        const MB: u64 = 1 << 20;
        const GB: u64 = 1 << 30;
        ReramConfig {
            total_capacity_bytes: 16 * GB,
            bank_capacity_bytes: 2 * GB,
            tile_capacity_bytes: 128 * MB,
            tiles_per_bank: 16,
            carray_bytes: 64 * MB,
            barray_bytes: 2 * MB,
            sarray_bytes: 62 * MB,
            cell_bits: 4,
            data_bits: 16,
            crossbar_dim: 128,
            bank_read_latency_ns: 32.8,
            bank_write_latency_ns: 41.4,
            htree_latency_ns: 29.9,
            tile_read_latency_ns: 2.9,
            tile_write_latency_ns: 11.5,
            io_frequency_ghz: 1.6,
            io_bus_bits: 64,
            bank_read_energy_pj: 413.0,
            bank_write_energy_pj: 665.0,
            htree_energy_pj: 386.0,
            tile_read_energy_pj: 3.3,
            tile_write_energy_pj: 34.8,
        }
    }
}

impl ReramConfig {
    /// Number of banks in the memory (8 with the default 16 GB / 2 GB).
    pub fn banks(&self) -> usize {
        (self.total_capacity_bytes / self.bank_capacity_bytes) as usize
    }

    /// Cells needed to hold one `data_bits`-wide weight (4 with defaults).
    pub fn cells_per_weight(&self) -> usize {
        self.data_bits.div_ceil(self.cell_bits) as usize
    }

    /// 16-bit weights one crossbar stores
    /// (`crossbar_dim × crossbar_dim / cells_per_weight` = 4096).
    pub fn weights_per_crossbar(&self) -> usize {
        self.crossbar_dim * self.crossbar_dim / self.cells_per_weight()
    }

    /// Bytes one crossbar occupies (8 KiB with defaults).
    pub fn crossbar_bytes(&self) -> u64 {
        (self.crossbar_dim as u64 * self.crossbar_dim as u64 * self.cell_bits as u64) / 8
    }

    /// Crossbars in one tile's CArray (8192 with defaults).
    pub fn crossbars_per_tile(&self) -> usize {
        (self.carray_bytes / self.crossbar_bytes()) as usize
    }

    /// 16-bit weights one tile's CArray can hold (32 Mi with defaults).
    pub fn weights_per_tile(&self) -> u64 {
        self.crossbars_per_tile() as u64 * self.weights_per_crossbar() as u64
    }

    /// The CArray MMV cycle time `t_m`.
    ///
    /// ISAAC-style crossbars (which LerGAN's CArrays adopt for 16-bit
    /// precision, Sec. V) stream the input bit-serially: one array read
    /// per input bit, so a 16-bit MMV takes `data_bits` read cycles.
    /// (PRIME's "one read cycle" claim applies to its low-precision
    /// inputs.)
    pub fn mmv_latency_ns(&self) -> f64 {
        self.tile_read_latency_ns * self.data_bits as f64
    }

    /// Latency of one hop between adjacent H-tree levels. The H-tree of a
    /// 16-tile bank is 4 levels deep, so a full traversal (Table IV's
    /// 29.9 ns) is 4 hops.
    pub fn htree_hop_latency_ns(&self) -> f64 {
        self.htree_latency_ns / 4.0
    }

    /// Energy of one hop between adjacent H-tree levels (Table IV's
    /// 386 pJ characterises the long tree wires each hop drives).
    pub fn htree_hop_energy_pj(&self) -> f64 {
        self.htree_energy_pj
    }

    /// Off-chip I/O time to move `bytes` (ns).
    pub fn io_transfer_ns(&self, bytes: u64) -> f64 {
        let bytes_per_ns = self.io_frequency_ghz * self.io_bus_bits as f64 / 8.0;
        bytes as f64 / bytes_per_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_defaults() {
        let c = ReramConfig::default();
        assert_eq!(c.banks(), 8);
        assert_eq!(c.tiles_per_bank, 16);
        assert_eq!(
            c.bank_capacity_bytes,
            c.tile_capacity_bytes * c.tiles_per_bank as u64
        );
        assert_eq!(
            c.carray_bytes + c.barray_bytes + c.sarray_bytes,
            c.tile_capacity_bytes
        );
    }

    #[test]
    fn crossbar_derivations() {
        let c = ReramConfig::default();
        assert_eq!(c.cells_per_weight(), 4);
        assert_eq!(c.weights_per_crossbar(), 4096);
        assert_eq!(c.crossbar_bytes(), 8 * 1024);
        assert_eq!(c.crossbars_per_tile(), 8192);
        assert_eq!(c.weights_per_tile(), 32 * (1 << 20));
    }

    #[test]
    fn io_transfer_scales_linearly() {
        let c = ReramConfig::default();
        let t1 = c.io_transfer_ns(1024);
        let t2 = c.io_transfer_ns(2048);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 12.8 GB/s bus: 1 KiB in 80 ns.
        assert!((t1 - 80.0).abs() < 1.0);
    }

    #[test]
    fn hop_costs_quarter_the_tree() {
        let c = ReramConfig::default();
        assert!((c.htree_hop_latency_ns() * 4.0 - 29.9).abs() < 1e-9);
        assert!((c.htree_hop_energy_pj() - 386.0).abs() < 1e-9);
    }
}
