//! Cell-conductance variation and its effect on analog MMVs.
//!
//! ReRAM cells are analog devices; programmed conductances deviate from
//! their targets. Yu et al. \[66\] (the study the Sec. VI-D what-if cites)
//! characterise synaptic devices with sub-pJ switching *and tolerance to
//! variability* — this module provides the Monte-Carlo machinery to ask
//! how much output error a given per-cell deviation causes on the 4-bit
//! slices of a 16-bit weight, deterministically (a counter-based LCG, no
//! RNG dependency in library code).

use crate::bitslice::slice_weight;
use crate::config::ReramConfig;

/// A deterministic per-cell disturbance model: each programmed cell level
/// deviates by a uniform offset in `[-max_level_error, +max_level_error]`
/// (in units of one 4-bit level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Maximum deviation in cell levels (e.g. 0.3 = under a third of one
    /// 4-bit level; devices in \[66\] stay well below one level).
    pub max_level_error: f64,
    /// Seed for the deterministic disturbance sequence.
    pub seed: u64,
}

impl VariationModel {
    /// Creates a model.
    pub fn new(max_level_error: f64, seed: u64) -> Self {
        VariationModel {
            max_level_error,
            seed,
        }
    }

    /// Deterministic uniform deviate in `[-max, +max]` for cell `index`.
    ///
    /// Public so [`crate::fault::FaultMap`] can compose hard faults with
    /// this analog model: healthy cells take exactly this deviation, stuck
    /// cells ignore it.
    pub fn deviation_at(&self, index: u64) -> f64 {
        self.deviation(index)
    }

    fn deviation(&self, index: u64) -> f64 {
        // SplitMix64: uncorrelated per-index values without state.
        let mut z = self
            .seed
            .wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit * 2.0 - 1.0) * self.max_level_error
    }

    /// The *analog* value of a weight as the crossbar would read it: each
    /// slice disturbed by its cell's deviation, recombined with slice
    /// significance (sign handled as in [`crate::bitslice::sliced_dot`]).
    pub fn perceived_weight(&self, code: i32, cell_base_index: u64, config: &ReramConfig) -> f64 {
        let slices = slice_weight(code, config);
        let mut v = 0.0f64;
        for (i, &s) in slices.iter().enumerate() {
            let dev = self.deviation(cell_base_index + i as u64);
            v += (s as f64 + dev) * f64::from(1u32 << (i as u32 * config.cell_bits));
        }
        if code < 0 {
            v -= f64::from(1u32 << config.data_bits);
        }
        v
    }

    /// Monte-Carlo dot-product error: computes the disturbed analog dot
    /// product of `weights · inputs` and returns `(exact, perceived)`.
    pub fn disturbed_dot(
        &self,
        weights: &[i32],
        inputs: &[i32],
        config: &ReramConfig,
    ) -> (i64, f64) {
        assert_eq!(weights.len(), inputs.len(), "operand length mismatch");
        let exact: i64 = weights
            .iter()
            .zip(inputs.iter())
            .map(|(&w, &x)| w as i64 * x as i64)
            .sum();
        let cells = config.cells_per_weight() as u64;
        let perceived: f64 = weights
            .iter()
            .zip(inputs.iter())
            .enumerate()
            .map(|(i, (&w, &x))| self.perceived_weight(w, i as u64 * cells, config) * x as f64)
            .sum();
        (exact, perceived)
    }

    /// Normalised RMS error of the disturbed dot product over `trials`
    /// random operand sets of length `n` (deterministic in the seed):
    /// `sqrt(Σ(perceived − exact)² / Σ exact²)`. Normalising by the
    /// aggregate magnitude avoids the blow-up of per-sample relative error
    /// when an individual dot product happens to be near zero.
    pub fn relative_rms_error(&self, n: usize, trials: usize, config: &ReramConfig) -> f64 {
        let mut err2 = 0.0f64;
        let mut mag2 = 0.0f64;
        // An independent deterministic stream for operand synthesis.
        let synth = VariationModel::new(1.0, self.seed ^ 0xD1B54A32D192ED03);
        for t in 0..trials {
            let base = (t as u64 + 1) * 1_000_003;
            let weights: Vec<i32> = (0..n)
                .map(|i| ((synth.deviation(base + i as u64) * 1e6) as i64 % 30000) as i32)
                .collect();
            let inputs: Vec<i32> = (0..n)
                .map(|i| ((synth.deviation(base + (n + i) as u64) * 1e6) as i64 % 200) as i32)
                .collect();
            let (exact, perceived) = self.disturbed_dot(&weights, &inputs, config);
            err2 += (perceived - exact as f64).powi(2);
            mag2 += (exact as f64).powi(2);
        }
        if mag2 == 0.0 {
            0.0
        } else {
            (err2 / mag2).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_variation_is_exact() {
        let cfg = ReramConfig::default();
        let m = VariationModel::new(0.0, 1);
        let w = [1234, -5678, 32000, -7];
        let x = [3, -2, 1, 9];
        let (exact, perceived) = m.disturbed_dot(&w, &x, &cfg);
        assert!((perceived - exact as f64).abs() < 1e-9);
    }

    #[test]
    fn perceived_weight_error_is_bounded() {
        let cfg = ReramConfig::default();
        let m = VariationModel::new(0.5, 7);
        for code in [-30000, -1, 0, 123, 30000] {
            let p = m.perceived_weight(code, 99, &cfg);
            // Worst case: every slice off by 0.5 level, weighted by
            // significance: 0.5 * (1 + 16 + 256 + 4096).
            let bound = 0.5 * (1.0 + 16.0 + 256.0 + 4096.0);
            assert!(
                (p - code as f64).abs() <= bound + 1e-9,
                "code {code}: perceived {p}"
            );
        }
    }

    #[test]
    fn error_grows_with_variation() {
        let cfg = ReramConfig::default();
        let small = VariationModel::new(0.1, 3).relative_rms_error(64, 20, &cfg);
        let large = VariationModel::new(1.0, 3).relative_rms_error(64, 20, &cfg);
        assert!(
            large > small,
            "rms error should grow with variation: {small} vs {large}"
        );
    }

    #[test]
    fn variation_is_deterministic_in_seed() {
        let cfg = ReramConfig::default();
        let a = VariationModel::new(0.3, 11).relative_rms_error(32, 10, &cfg);
        let b = VariationModel::new(0.3, 11).relative_rms_error(32, 10, &cfg);
        assert_eq!(a, b);
        let c = VariationModel::new(0.3, 12).relative_rms_error(32, 10, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn pristine_fault_map_is_bit_identical_to_variation_alone() {
        use crate::fault::FaultMap;
        let cfg = ReramConfig::default();
        let m = VariationModel::new(0.4, 21);
        let faults = FaultMap::pristine();
        for code in [-30000, -1, 0, 123, 30000] {
            let alone = m.perceived_weight(code, 17, &cfg);
            let composed = faults.perceived_weight(Some(&m), code, 17, &cfg);
            assert_eq!(alone.to_bits(), composed.to_bits());
        }
        let w = [1234, -5678, 32000, -7];
        let x = [3, -2, 1, 9];
        let (ea, pa) = m.disturbed_dot(&w, &x, &cfg);
        let (eb, pb) = faults.disturbed_dot(Some(&m), &w, &x, &cfg);
        assert_eq!(ea, eb);
        assert_eq!(pa.to_bits(), pb.to_bits());
    }

    #[test]
    fn stuck_at_dominates_analog_deviation() {
        use crate::fault::{FaultMap, StuckAt};
        let cfg = ReramConfig::default();
        // Huge analog deviation everywhere…
        let m = VariationModel::new(3.0, 9);
        let mut faults = FaultMap::pristine();
        for cell in 0..cfg.cells_per_weight() as u64 {
            faults.set_stuck(cell, StuckAt::Zero);
        }
        // …yet a fully stuck-at-zero weight reads exactly as code 0 does:
        // the pinned level ignores the deviation entirely.
        let p = faults.perceived_weight(Some(&m), 123, 0, &cfg);
        assert_eq!(p, 0.0);
        let mut high = FaultMap::pristine();
        for cell in 0..cfg.cells_per_weight() as u64 {
            high.set_stuck(cell, StuckAt::One);
        }
        // All slices pinned to 15: 15 * (1 + 16 + 256 + 4096), exactly.
        let p = high.perceived_weight(Some(&m), 123, 0, &cfg);
        assert_eq!(p, 15.0 * (1.0 + 16.0 + 256.0 + 4096.0));
    }

    #[test]
    fn partial_stuck_weight_mixes_pinned_and_deviated_slices() {
        use crate::fault::{FaultMap, StuckAt};
        let cfg = ReramConfig::default();
        let m = VariationModel::new(0.2, 13);
        let mut faults = FaultMap::pristine();
        faults.set_stuck(2, StuckAt::One);
        let composed = faults.perceived_weight(Some(&m), 500, 0, &cfg);
        // Reconstruct by hand: slices 0,1,3 deviate per the model, slice 2
        // is pinned at 15 × 256.
        let slices = crate::bitslice::slice_weight(500, &cfg);
        let mut expect = 0.0f64;
        for (i, &s) in slices.iter().enumerate() {
            let scale = f64::from(1u32 << (i as u32 * cfg.cell_bits));
            if i == 2 {
                expect += 15.0 * scale;
            } else {
                expect += (s as f64 + m.deviation_at(i as u64)) * scale;
            }
        }
        assert_eq!(composed.to_bits(), expect.to_bits());
    }

    #[test]
    fn sub_level_variation_keeps_error_small() {
        // \[66\]-class devices (well under one level of deviation) keep the
        // dot-product error in the low percents.
        let cfg = ReramConfig::default();
        let rms = VariationModel::new(0.25, 5).relative_rms_error(128, 30, &cfg);
        assert!(rms < 0.05, "rms error {rms} too large for 0.25-level cells");
    }
}
