//! ReRAM crossbar / tile / bank timing, energy and area models.
//!
//! This crate is the hardware substrate of the LerGAN reproduction. The
//! paper evaluates on TaOx/TiO₂ ReRAM whose circuit characteristics it
//! publishes in Table IV; those numbers seed [`config::ReramConfig`], so the
//! model charges exactly the latencies and energies the paper's own
//! accounting used (the substitution for CACTI-6.5/CACTI-IO is documented
//! in `DESIGN.md`).
//!
//! The organisation follows PRIME/ISAAC, as Sec. V prescribes:
//!
//! * a **crossbar** of 128×128 4-bit cells stores 16-bit weights across 4
//!   adjacent cells and performs one matrix-multiply-vector per read cycle;
//! * a **tile** (128 MB) holds a CArray (64 MB of crossbars for compute), a
//!   BArray (2 MB of random-access buffer) and an SArray (62 MB of plain
//!   storage);
//! * a **bank** holds 16 tiles behind an H-tree (modelled in `lergan-noc`).
//!
//! [`energy::EnergyModel`] produces the Fig. 24 per-tile breakdown (ADC,
//! cell switching, DAC, shift-and-add, buffer) and supports the paper's
//! what-if (1-pJ cell switching + 60 % ADC saving ⇒ ≈3× power reduction).

pub mod abft;
pub mod area;
pub mod bitslice;
pub mod config;
pub mod crossbar;
pub mod energy;
pub mod fault;
pub mod tile;
pub mod variation;
pub mod wear;

pub use abft::{AbftBlock, AbftObservation};
pub use config::ReramConfig;
pub use crossbar::CrossbarLayout;
pub use energy::{EnergyCounts, EnergyModel, TileEnergyBreakdown};
pub use fault::{FaultMap, StuckAt, WritePolicy, WriteReport};
pub use tile::{BankSpec, TileSpec};
pub use variation::VariationModel;
pub use wear::WearModel;
