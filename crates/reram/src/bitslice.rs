//! Bit-slicing of 16-bit weights across 4-bit ReRAM cells.
//!
//! A 16-bit weight code occupies `cells_per_weight` adjacent cells of a
//! crossbar row (4 cells of 4 bits each with Table IV's configuration);
//! the shift-and-add units recombine per-slice partial sums after the
//! ADCs. This module implements the encode/decode pair and the per-slice
//! dot-product identity the analog pipeline relies on.

use crate::config::ReramConfig;

/// Splits a two's-complement code of `data_bits` into `cells_per_weight`
/// unsigned cell values, least-significant slice first.
///
/// # Panics
///
/// Panics if the code does not fit in `data_bits`.
pub fn slice_weight(code: i32, config: &ReramConfig) -> Vec<u8> {
    let bits = config.data_bits;
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    assert!(
        (min..=max).contains(&(code as i64)),
        "code {code} does not fit {bits} bits"
    );
    let unsigned = (code as i64 & ((1i64 << bits) - 1)) as u64;
    let cell_bits = config.cell_bits;
    let mask = (1u64 << cell_bits) - 1;
    (0..config.cells_per_weight())
        .map(|i| ((unsigned >> (i as u32 * cell_bits)) & mask) as u8)
        .collect()
}

/// Recombines slices (least-significant first) into the original code.
///
/// # Panics
///
/// Panics if the slice count disagrees with the configuration.
pub fn unslice_weight(slices: &[u8], config: &ReramConfig) -> i32 {
    assert_eq!(
        slices.len(),
        config.cells_per_weight(),
        "slice count mismatch"
    );
    let bits = config.data_bits;
    let mut unsigned: u64 = 0;
    for (i, &s) in slices.iter().enumerate() {
        unsigned |= (s as u64) << (i as u32 * config.cell_bits);
    }
    // Sign-extend.
    let sign_bit = 1u64 << (bits - 1);
    if unsigned & sign_bit != 0 {
        (unsigned as i64 - (1i64 << bits)) as i32
    } else {
        unsigned as i32
    }
}

/// Computes a dot product slice-wise, exactly as the crossbar columns and
/// shift-and-add units do: per-slice partial dot products, shifted by the
/// slice significance and summed. Returns the same value as the direct
/// integer dot product — the identity the analog pipeline depends on.
///
/// Inputs stay full-precision codes here (they stream bit-serially in
/// time, which is already captured by the MMV latency model).
///
/// # Panics
///
/// Panics if the operand lengths differ.
pub fn sliced_dot(weights: &[i32], inputs: &[i32], config: &ReramConfig) -> i64 {
    assert_eq!(weights.len(), inputs.len(), "operand length mismatch");
    let cell_bits = config.cell_bits;
    let n_slices = config.cells_per_weight();
    let mut total: i64 = 0;
    for slice in 0..n_slices {
        let mut partial: i64 = 0;
        for (&w, &x) in weights.iter().zip(inputs.iter()) {
            let s = slice_weight(w, config)[slice] as i64;
            partial += s * x as i64;
        }
        total += partial << (slice as u32 * cell_bits);
    }
    // Correct the two's-complement bias: the top slice carried the sign
    // bits as unsigned magnitude, overshooting negative weights by 2^bits.
    let bias: i64 = weights
        .iter()
        .zip(inputs.iter())
        .filter(|(&w, _)| w < 0)
        .map(|(_, &x)| (x as i64) << config.data_bits)
        .sum();
    total - bias
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_round_trip() {
        let cfg = ReramConfig::default();
        for code in [-32768, -1, 0, 1, 1234, 32767, -20000] {
            let slices = slice_weight(code, &cfg);
            assert_eq!(slices.len(), 4);
            assert!(slices.iter().all(|&s| s < 16));
            assert_eq!(unslice_weight(&slices, &cfg), code, "code {code}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_rejected() {
        let _ = slice_weight(40000, &ReramConfig::default());
    }

    #[test]
    fn sliced_dot_equals_integer_dot() {
        let cfg = ReramConfig::default();
        let w = [1234, -5678, 32767, -32768, 0, 17];
        let x = [5, -3, 2, 7, 100, -1];
        let direct: i64 = w
            .iter()
            .zip(x.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
        assert_eq!(sliced_dot(&w, &x, &cfg), direct);
    }

    #[test]
    fn sliced_dot_with_quantized_operands() {
        // Bridge test: tensor-side quantisation feeds hardware-side
        // slicing; the whole pipeline is exact in the integer domain.
        let cfg = ReramConfig::default();
        let w: Vec<i32> = (0..16).map(|i| (i * 977 % 4001) - 2000).collect();
        let x: Vec<i32> = (0..16).map(|i| (i * 313 % 301) - 150).collect();
        let direct: i64 = w
            .iter()
            .zip(x.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum();
        assert_eq!(sliced_dot(&w, &x, &cfg), direct);
    }
}
