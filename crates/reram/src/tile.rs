//! Tile and bank organisation derived from the configuration.
//!
//! A tile is the unit that computes (its CArray crossbars fire in
//! parallel), buffers (BArray) and stores (SArray); a bank is 16 tiles
//! behind an H-tree. These specs answer the capacity questions the
//! ZFDM compiler asks: how many weights fit where, and how many logical
//! MMVs can proceed per cycle.

use crate::config::ReramConfig;
use crate::crossbar::CrossbarLayout;

/// Static description of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// Crossbars available in the CArray.
    pub crossbars: usize,
    /// 16-bit weight capacity of the CArray.
    pub carray_weights: u64,
    /// 16-bit value capacity of the BArray.
    pub barray_values: u64,
    /// 16-bit value capacity of the SArray.
    pub sarray_values: u64,
}

impl TileSpec {
    /// Derives the spec from a configuration.
    pub fn new(config: &ReramConfig) -> Self {
        let value_bytes = (config.data_bits / 8) as u64;
        TileSpec {
            crossbars: config.crossbars_per_tile(),
            carray_weights: config.weights_per_tile(),
            barray_values: config.barray_bytes / value_bytes,
            sarray_values: config.sarray_bytes / value_bytes,
        }
    }

    /// Whether a weight matrix fits in this tile's CArray.
    pub fn fits(&self, layout: &CrossbarLayout) -> bool {
        layout.crossbars() <= self.crossbars
    }

    /// How many copies of a matrix the CArray can hold (its replication
    /// headroom for the duplication degrees of Table III).
    pub fn copies_of(&self, layout: &CrossbarLayout) -> usize {
        if layout.crossbars() == 0 {
            return 0;
        }
        self.crossbars / layout.crossbars()
    }
}

/// Static description of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankSpec {
    /// Tiles in the bank (16).
    pub tiles: usize,
    /// Per-tile spec.
    pub tile: TileSpec,
}

impl BankSpec {
    /// Derives the spec from a configuration.
    pub fn new(config: &ReramConfig) -> Self {
        BankSpec {
            tiles: config.tiles_per_bank,
            tile: TileSpec::new(config),
        }
    }

    /// Total CArray weight capacity of the bank.
    pub fn carray_weights(&self) -> u64 {
        self.tiles as u64 * self.tile.carray_weights
    }

    /// Total crossbars in the bank.
    pub fn crossbars(&self) -> usize {
        self.tiles * self.tile.crossbars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_spec_from_table_iv() {
        let spec = TileSpec::new(&ReramConfig::default());
        assert_eq!(spec.crossbars, 8192);
        assert_eq!(spec.carray_weights, 32 << 20);
        assert_eq!(spec.barray_values, 1 << 20);
        assert_eq!(spec.sarray_values, 62 * (1 << 20) / 2);
    }

    #[test]
    fn bank_capacity() {
        let cfg = ReramConfig::default();
        let bank = BankSpec::new(&cfg);
        assert_eq!(bank.tiles, 16);
        assert_eq!(bank.carray_weights(), 16 * (32 << 20));
        assert_eq!(bank.crossbars(), 16 * 8192);
    }

    #[test]
    fn fits_and_copies() {
        let cfg = ReramConfig::default();
        let tile = TileSpec::new(&cfg);
        // DCGAN CONV1 reshaped matrix occupies 512 crossbars.
        let layout = CrossbarLayout::for_matrix(4096, 512, &cfg);
        assert!(tile.fits(&layout));
        assert_eq!(tile.copies_of(&layout), 16);
        // Something enormous does not fit.
        let huge = CrossbarLayout::for_matrix(1 << 20, 1 << 14, &cfg);
        assert!(!tile.fits(&huge));
        assert_eq!(tile.copies_of(&huge), 0);
    }
}
