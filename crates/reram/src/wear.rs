//! Endurance wear-out distribution: per-cell write-pulse limits.
//!
//! [`crate::fault::WritePolicy::endurance_limit`] models a single hard
//! cutoff shared by every cell — good enough for the write-verify loop's
//! give-up accounting, but real TaOx/HfOx endurance is log-normal-ish:
//! cells in the same array die orders of magnitude apart. [`WearModel`]
//! gives every cell its own deterministic limit, log-uniform around a mean
//! (`limit = mean · spreadᵘ`, `u ∈ [-1, 1)` hashed from the seed and cell
//! index), so a training run wears cells out *staggered* over time instead
//! of all at once — exactly the mid-run surprise the self-healing runtime
//! has to detect and route around. [`crate::fault::FaultMap::advance_wear`]
//! is the hook that charges pulses against these limits.
//!
//! Determinism contract: a cell's limit is a pure function of
//! `(seed, cell)`; the same model replays the same break schedule
//! bit-identically.

use crate::fault::{mix, unit};

/// Seeded per-cell endurance distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearModel {
    /// Mean endurance in write pulses. Zero disables wear-out entirely
    /// (every cell's limit becomes `u64::MAX`).
    pub endurance_mean: u64,
    /// Log-uniform spread factor (≥ 1): per-cell limits range over
    /// `[mean / spread, mean · spread)`. A spread of 1 pins every cell at
    /// the mean.
    pub spread: f64,
    /// Seed of the per-cell limits and of the polarity each worn-out cell
    /// freezes at.
    pub seed: u64,
}

impl WearModel {
    /// A model whose cells never wear out.
    pub fn disabled() -> Self {
        WearModel {
            endurance_mean: 0,
            spread: 1.0,
            seed: 0,
        }
    }

    /// A model with the given mean, spread and seed.
    ///
    /// # Panics
    ///
    /// Panics if `spread < 1`.
    pub fn new(endurance_mean: u64, spread: f64, seed: u64) -> Self {
        assert!(spread >= 1.0, "spread is a multiplicative factor >= 1");
        WearModel {
            endurance_mean,
            spread,
            seed,
        }
    }

    /// Whether wear-out is active.
    pub fn is_enabled(&self) -> bool {
        self.endurance_mean > 0
    }

    /// This cell's personal endurance limit in write pulses (at least 1;
    /// `u64::MAX` when the model is disabled).
    pub fn limit_of(&self, cell: u64) -> u64 {
        if self.endurance_mean == 0 {
            return u64::MAX;
        }
        let u = 2.0 * unit(self.seed ^ 0x3C3C_C3C3_3C3C_C3C3, mix(cell, 0x11)) - 1.0;
        let limit = self.endurance_mean as f64 * self.spread.powf(u);
        limit.round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultMap;

    #[test]
    fn disabled_model_never_breaks_cells() {
        let model = WearModel::disabled();
        assert!(!model.is_enabled());
        assert_eq!(model.limit_of(0), u64::MAX);
        let mut m = FaultMap::pristine();
        let newly = m.advance_wear(0..1000, 1_000_000, &model);
        assert!(newly.is_empty());
        assert_eq!(m.stuck_cells(), 0);
        // Counters still advance (observable bookkeeping).
        assert_eq!(m.wear_of(500), 1_000_000);
    }

    #[test]
    fn limits_are_deterministic_and_centred_on_the_mean() {
        let model = WearModel::new(10_000, 4.0, 42);
        assert_eq!(model.limit_of(7), model.limit_of(7));
        let limits: Vec<u64> = (0..2000).map(|c| model.limit_of(c)).collect();
        // Log-uniform over [mean/4, mean*4).
        assert!(limits.iter().all(|&l| (2500..40_000).contains(&l)));
        // Spread actually spreads: both halves of the range are populated.
        assert!(limits.iter().any(|&l| l < 10_000));
        assert!(limits.iter().any(|&l| l > 10_000));
        // Unit spread pins the mean exactly.
        let flat = WearModel::new(10_000, 1.0, 42);
        assert!((0..100).all(|c| flat.limit_of(c) == 10_000));
    }

    #[test]
    fn wear_breaks_cells_staggered_as_pulses_accumulate() {
        let model = WearModel::new(100, 4.0, 9);
        let mut m = FaultMap::pristine();
        let mut broken = 0usize;
        let mut rounds_with_breaks = 0usize;
        for _round in 0..40 {
            let newly = m.advance_wear(0..256, 10, &model);
            if !newly.is_empty() {
                rounds_with_breaks += 1;
            }
            broken += newly.len();
        }
        // 400 pulses vs limits in [25, 400): everything eventually dies…
        assert_eq!(broken, 256);
        assert_eq!(m.stuck_cells(), 256);
        // …but not all in the same round.
        assert!(rounds_with_breaks > 1, "wear-out must be staggered");
    }

    #[test]
    fn stuck_cells_accumulate_no_further_wear() {
        let model = WearModel::new(10, 1.0, 1);
        let mut m = FaultMap::pristine();
        let newly = m.advance_wear(0..4, 11, &model);
        assert_eq!(newly, vec![0, 1, 2, 3]);
        assert_eq!(m.wear_of(2), 11);
        // A second pass touches nothing: already stuck.
        assert!(m.advance_wear(0..4, 11, &model).is_empty());
        assert_eq!(m.wear_of(2), 11);
    }

    #[test]
    fn wear_replays_bit_identically() {
        let model = WearModel::new(50, 2.0, 0xABCD);
        let run = || {
            let mut m = FaultMap::pristine();
            let mut log = Vec::new();
            for _ in 0..20 {
                log.push(m.advance_wear(0..128, 7, &model));
            }
            (m, log)
        };
        assert_eq!(run(), run());
    }
}
