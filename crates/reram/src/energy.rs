//! Per-tile energy accounting and the Fig. 24 breakdown.
//!
//! Table IV publishes aggregate read/write energies; Fig. 24 breaks a
//! ReRAM tile's consumption into cell switching (40.16 %), ADC (45.14 %),
//! and a ~14.7 % remainder (DAC, shift-and-add, buffers). The per-component
//! constants below are ISAAC-class values calibrated (see `EXPERIMENTS.md`)
//! so that the *simulated* GAN-training operation mix reproduces those
//! shares; they are deliberately exposed so the Sec. VI-D what-if analysis
//! (1-pJ cell switching \[66\], 60 % ADC saving \[37\] ⇒ ≈3× power reduction)
//! can be replayed by swapping constants.

/// Per-operation energy constants of one ReRAM tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// ADC energy per crossbar read operation (pJ).
    pub adc_pj_per_op: f64,
    /// DAC / wordline-driver energy per crossbar read operation (pJ).
    pub dac_pj_per_op: f64,
    /// Crossbar array read (cell current) energy per operation (pJ).
    pub array_pj_per_op: f64,
    /// Shift-and-add merge energy per crossbar read operation (pJ).
    pub shift_add_pj_per_op: f64,
    /// Cell-switching energy per ReRAM cell written (pJ).
    pub cell_switch_pj_per_cell: f64,
    /// Cells written per 16-bit weight (4 with 4-bit cells).
    pub cells_per_weight: u32,
    /// BArray buffer energy per 16-bit value accessed (pJ).
    pub buffer_pj_per_value: f64,
    /// SArray read energy per 16-bit value (pJ).
    pub sarray_read_pj_per_value: f64,
    /// SArray write energy per 16-bit value (pJ).
    pub sarray_write_pj_per_value: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            adc_pj_per_op: 37.2,
            dac_pj_per_op: 3.6,
            array_pj_per_op: 3.6,
            shift_add_pj_per_op: 1.4,
            cell_switch_pj_per_cell: 10.0,
            cells_per_weight: 4,
            buffer_pj_per_value: 0.4,
            sarray_read_pj_per_value: 0.6,
            sarray_write_pj_per_value: 1.05,
        }
    }
}

impl EnergyModel {
    /// The Sec. VI-D what-if configuration: 1-pJ cell switching \[66\] and a
    /// 60 %-cheaper ADC \[37\].
    pub fn optimistic_whatif(&self) -> Self {
        EnergyModel {
            adc_pj_per_op: self.adc_pj_per_op * 0.4,
            cell_switch_pj_per_cell: 1.0,
            ..*self
        }
    }

    /// Computes the energy breakdown of an operation mix.
    pub fn breakdown(&self, counts: &EnergyCounts) -> TileEnergyBreakdown {
        let ops = counts.crossbar_mmv_ops as f64;
        TileEnergyBreakdown {
            adc_pj: ops * self.adc_pj_per_op,
            dac_pj: ops * self.dac_pj_per_op,
            array_pj: ops * self.array_pj_per_op,
            shift_add_pj: ops * self.shift_add_pj_per_op,
            cell_switching_pj: counts.weight_writes as f64
                * self.cell_switch_pj_per_cell
                * self.cells_per_weight as f64,
            buffer_pj: counts.buffer_values as f64 * self.buffer_pj_per_value
                + counts.sarray_read_values as f64 * self.sarray_read_pj_per_value
                + counts.sarray_write_values as f64 * self.sarray_write_pj_per_value,
        }
    }
}

/// Operation counts accumulated over a simulation, all tile-local.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyCounts {
    /// Crossbar read operations (one per crossbar per logical MMV).
    pub crossbar_mmv_ops: u128,
    /// 16-bit weight values written into CArrays (mapping + updates).
    pub weight_writes: u128,
    /// 16-bit values staged through BArray buffers.
    pub buffer_values: u128,
    /// 16-bit values read from SArrays.
    pub sarray_read_values: u128,
    /// 16-bit values written to SArrays.
    pub sarray_write_values: u128,
}

impl EnergyCounts {
    /// Accumulates another count set into this one.
    pub fn accumulate(&mut self, other: &EnergyCounts) {
        self.crossbar_mmv_ops += other.crossbar_mmv_ops;
        self.weight_writes += other.weight_writes;
        self.buffer_values += other.buffer_values;
        self.sarray_read_values += other.sarray_read_values;
        self.sarray_write_values += other.sarray_write_values;
    }
}

/// The Fig. 24 energy breakdown of a ReRAM tile (picojoules).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TileEnergyBreakdown {
    /// Analog-to-digital conversion.
    pub adc_pj: f64,
    /// Digital-to-analog conversion and wordline drivers.
    pub dac_pj: f64,
    /// Crossbar array read current.
    pub array_pj: f64,
    /// Shift-and-add partial-sum merging.
    pub shift_add_pj: f64,
    /// ReRAM cell switching (writes).
    pub cell_switching_pj: f64,
    /// BArray/SArray buffer traffic.
    pub buffer_pj: f64,
}

impl TileEnergyBreakdown {
    /// Total tile energy.
    pub fn total_pj(&self) -> f64 {
        self.adc_pj
            + self.dac_pj
            + self.array_pj
            + self.shift_add_pj
            + self.cell_switching_pj
            + self.buffer_pj
    }

    /// Fraction contributed by the ADC (Fig. 24 reports 45.14 %).
    pub fn adc_share(&self) -> f64 {
        self.adc_pj / self.total_pj()
    }

    /// Fraction contributed by cell switching (Fig. 24 reports 40.16 %).
    pub fn cell_switching_share(&self) -> f64 {
        self.cell_switching_pj / self.total_pj()
    }

    /// Everything else (DAC + shift-add + array + buffers).
    pub fn other_share(&self) -> f64 {
        1.0 - self.adc_share() - self.cell_switching_share()
    }

    /// Component-wise sum of two breakdowns.
    pub fn accumulate(&mut self, other: &TileEnergyBreakdown) {
        self.adc_pj += other.adc_pj;
        self.dac_pj += other.dac_pj;
        self.array_pj += other.array_pj;
        self.shift_add_pj += other.shift_add_pj;
        self.cell_switching_pj += other.cell_switching_pj;
        self.buffer_pj += other.buffer_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canonical_mix() -> EnergyCounts {
        // A GAN-training-like mix: many MMVs, weights rewritten once per
        // iteration, activations staged through buffers.
        EnergyCounts {
            crossbar_mmv_ops: 1_000_000,
            weight_writes: 830_000,
            buffer_values: 2_000_000,
            sarray_read_values: 1_000_000,
            sarray_write_values: 1_500_000,
        }
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let m = EnergyModel::default();
        let b = m.breakdown(&canonical_mix());
        let share_sum = b.adc_share() + b.cell_switching_share() + b.other_share();
        assert!((share_sum - 1.0).abs() < 1e-12);
        assert!(b.total_pj() > 0.0);
    }

    #[test]
    fn canonical_mix_matches_fig24_shape() {
        // ADC and cell switching must dominate, in Fig. 24's proportions.
        let m = EnergyModel::default();
        let b = m.breakdown(&canonical_mix());
        assert!(
            (b.adc_share() - 0.4514).abs() < 0.05,
            "ADC share {:.3}",
            b.adc_share()
        );
        assert!(
            (b.cell_switching_share() - 0.4016).abs() < 0.05,
            "cell switching share {:.3}",
            b.cell_switching_share()
        );
    }

    #[test]
    fn whatif_reduces_power_about_3x() {
        // Sec. VI-D: 1-pJ cell switching + 60% ADC saving => ~3x reduction.
        let base = EnergyModel::default();
        let opt = base.optimistic_whatif();
        let mix = canonical_mix();
        let ratio = base.breakdown(&mix).total_pj() / opt.breakdown(&mix).total_pj();
        assert!(
            (2.3..=3.7).contains(&ratio),
            "what-if power reduction {ratio:.2} (paper: nearly 3x)"
        );
    }

    #[test]
    fn accumulate_adds_components() {
        let m = EnergyModel::default();
        let b1 = m.breakdown(&canonical_mix());
        let mut acc = TileEnergyBreakdown::default();
        acc.accumulate(&b1);
        acc.accumulate(&b1);
        assert!((acc.total_pj() - 2.0 * b1.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn counts_accumulate() {
        let mut c = EnergyCounts::default();
        c.accumulate(&canonical_mix());
        c.accumulate(&canonical_mix());
        assert_eq!(c.crossbar_mmv_ops, 2_000_000);
        assert_eq!(c.weight_writes, 1_660_000);
    }
}
