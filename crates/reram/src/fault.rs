//! Hard-fault model: stuck-at cells, dead tiles, endurance wear-out and a
//! write-and-verify programming loop.
//!
//! [`crate::variation`] models the *analog* non-ideality the paper's
//! Sec. VI-D what-if covers — every cell still works, it is merely
//! imprecise. Real TaOx/TiO₂ arrays additionally suffer *hard* failures:
//! cells stuck at the lowest or highest conductance level, whole tiles lost
//! to peripheral defects, and bounded write endurance that turns healthy
//! cells into stuck ones as training rewrites weights. [`FaultMap`] is the
//! deterministic, seeded record of those failures, composable with
//! [`VariationModel`] (a stuck cell's level is exact — hard faults dominate
//! analog deviation), and [`FaultMap::program_weight`] is the
//! write-and-verify loop real controllers run: program, read back, retry
//! with bounded backoff, and report the cells that could not be programmed
//! (their retries exhausted, they enter the fault map).
//!
//! Determinism contract: every random decision (which cells start stuck,
//! whether a write attempt takes, which polarity a worn-out cell freezes
//! at) is a pure function of a user-supplied seed and the cell index —
//! SplitMix64-hashed, never stateful — so any fault scenario replays
//! bit-identically.

use crate::bitslice::slice_weight;
use crate::config::ReramConfig;
use crate::variation::VariationModel;
use std::collections::{BTreeMap, BTreeSet};

/// Stateless SplitMix64 hash used for every seeded fault decision.
pub(crate) fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` deviate from a seeded hash.
pub(crate) fn unit(seed: u64, index: u64) -> f64 {
    (mix(seed, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// The polarity a hard-failed cell is frozen at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StuckAt {
    /// Stuck at the lowest conductance (level 0).
    Zero,
    /// Stuck at the highest conductance (level `2^cell_bits - 1`).
    One,
}

impl StuckAt {
    /// The cell level the fault pins, for `cell_bits`-bit cells.
    pub fn level(self, cell_bits: u32) -> u8 {
        match self {
            StuckAt::Zero => 0,
            StuckAt::One => ((1u32 << cell_bits) - 1) as u8,
        }
    }
}

/// Policy of the write-and-verify programming loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WritePolicy {
    /// Verify-and-retry attempts after the initial write (bounded backoff:
    /// each retry costs one extra write pulse).
    pub max_retries: u32,
    /// First-pulse transient failure probability (deterministic in the
    /// seed; a failed attempt leaves the cell unverified and retries).
    ///
    /// Failures are *sticky*: once a pulse misses, the cell is in a
    /// partially-switched state and every follow-up pulse fails with the
    /// elevated probability `sqrt(transient_fail_rate)`. Independent
    /// per-pulse coins would make retry exhaustion — and therefore
    /// quarantine — essentially unobservable (`rate^(1+max_retries)` ≈ 0
    /// at realistic rates), which is exactly the accounting hole the
    /// fault sweep used to report as `cells_quarantined: 0`.
    pub transient_fail_rate: f64,
    /// Write pulses after which a cell wears out and freezes (0 disables
    /// endurance wear-out).
    pub endurance_limit: u64,
    /// Seed of the per-(cell, pulse) attempt outcomes.
    pub seed: u64,
}

impl Default for WritePolicy {
    fn default() -> Self {
        WritePolicy {
            max_retries: 3,
            transient_fail_rate: 0.0,
            endurance_limit: 0,
            seed: 0,
        }
    }
}

impl WritePolicy {
    /// A policy with a transient failure rate and the default bounds.
    pub fn with_fail_rate(rate: f64, seed: u64) -> Self {
        WritePolicy {
            transient_fail_rate: rate,
            seed,
            ..Self::default()
        }
    }
}

/// Outcome of programming one weight (all of its cell slices).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Write pulses issued across all slices, including retries.
    pub attempts: u64,
    /// Cells (absolute indices) whose target level could not be
    /// established: stuck at a different level, or retries exhausted.
    pub failed_cells: Vec<u64>,
    /// Cells that wore out (or exhausted retries) during this call and
    /// were added to the fault map.
    pub newly_stuck: u64,
}

impl WriteReport {
    /// Whether every cell verified at its target level.
    pub fn succeeded(&self) -> bool {
        self.failed_cells.is_empty()
    }

    /// Merges another report into this one (for matrix-level programming).
    pub fn absorb(&mut self, other: WriteReport) {
        self.attempts += other.attempts;
        self.failed_cells.extend(other.failed_cells);
        self.newly_stuck += other.newly_stuck;
    }
}

/// Deterministic record of hard faults in one bank's crossbar array:
/// stuck-at cells (by absolute cell index), dead tiles (by tile index
/// within the bank), and per-cell endurance counters.
///
/// An empty (pristine) map is a strict no-op: every composition hook
/// reproduces the fault-free computation bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMap {
    stuck: BTreeMap<u64, StuckAt>,
    dead_tiles: BTreeSet<usize>,
    wear: BTreeMap<u64, u64>,
}

impl FaultMap {
    /// A map with no faults at all.
    pub fn pristine() -> Self {
        Self::default()
    }

    /// Whether the map holds no faults (stuck cells or dead tiles).
    pub fn is_pristine(&self) -> bool {
        self.stuck.is_empty() && self.dead_tiles.is_empty()
    }

    /// Seeds stuck-at faults over `cells` cell indices at `rate`
    /// (probability per cell). Polarity is an independent coin per faulty
    /// cell. Deterministic: the same `(seed, rate, cells)` always yields
    /// the same map.
    pub fn seeded(seed: u64, rate: f64, cells: u64) -> Self {
        let mut map = FaultMap::pristine();
        if rate <= 0.0 {
            return map;
        }
        for cell in 0..cells {
            if unit(seed, cell) < rate {
                let polarity = if mix(seed ^ 0xA5A5_A5A5_5A5A_5A5A, cell) & 1 == 0 {
                    StuckAt::Zero
                } else {
                    StuckAt::One
                };
                map.stuck.insert(cell, polarity);
            }
        }
        map
    }

    /// Marks one cell stuck.
    pub fn set_stuck(&mut self, cell: u64, polarity: StuckAt) -> &mut Self {
        self.stuck.insert(cell, polarity);
        self
    }

    /// The stuck polarity of a cell, if any.
    pub fn stuck_at(&self, cell: u64) -> Option<StuckAt> {
        self.stuck.get(&cell).copied()
    }

    /// Number of stuck cells.
    pub fn stuck_cells(&self) -> usize {
        self.stuck.len()
    }

    /// Stuck cells within a cell-index range, ascending (the diagnostic
    /// read-back scan ABFT localization runs after a residual trips).
    pub fn stuck_cells_in(
        &self,
        range: std::ops::Range<u64>,
    ) -> impl Iterator<Item = u64> + '_ {
        self.stuck.range(range).map(|(&cell, _)| cell)
    }

    /// Marks a tile dead (peripheral failure: its whole CArray is lost).
    pub fn kill_tile(&mut self, tile: usize) -> &mut Self {
        self.dead_tiles.insert(tile);
        self
    }

    /// Whether a tile is dead.
    pub fn tile_is_dead(&self, tile: usize) -> bool {
        self.dead_tiles.contains(&tile)
    }

    /// The dead tiles, ascending.
    pub fn dead_tiles(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead_tiles.iter().copied()
    }

    /// Number of dead tiles.
    pub fn dead_tile_count(&self) -> usize {
        self.dead_tiles.len()
    }

    /// Write pulses a cell has absorbed so far.
    pub fn wear_of(&self, cell: u64) -> u64 {
        self.wear.get(&cell).copied().unwrap_or(0)
    }

    // ---- composition with the analog variation model -------------------

    /// The *analog* value of a weight as the crossbar would read it, under
    /// both hard faults and (optional) analog variation: healthy cells
    /// deviate per `variation`, stuck cells sit exactly at their pinned
    /// level — hard faults dominate deviation.
    ///
    /// With a pristine map this reproduces
    /// [`VariationModel::perceived_weight`] bit-for-bit (and the exact
    /// sliced value when `variation` is `None`).
    pub fn perceived_weight(
        &self,
        variation: Option<&VariationModel>,
        code: i32,
        cell_base_index: u64,
        config: &ReramConfig,
    ) -> f64 {
        let slices = slice_weight(code, config);
        let mut v = 0.0f64;
        for (i, &s) in slices.iter().enumerate() {
            let cell = cell_base_index + i as u64;
            let level = match self.stuck_at(cell) {
                Some(polarity) => f64::from(polarity.level(config.cell_bits)),
                None => {
                    let dev = variation.map_or(0.0, |m| m.deviation_at(cell));
                    s as f64 + dev
                }
            };
            v += level * f64::from(1u32 << (i as u32 * config.cell_bits));
        }
        if code < 0 {
            v -= f64::from(1u32 << config.data_bits);
        }
        v
    }

    /// Dot-product under hard faults + variation: returns
    /// `(exact, perceived)`, mirroring [`VariationModel::disturbed_dot`].
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    pub fn disturbed_dot(
        &self,
        variation: Option<&VariationModel>,
        weights: &[i32],
        inputs: &[i32],
        config: &ReramConfig,
    ) -> (i64, f64) {
        assert_eq!(weights.len(), inputs.len(), "operand length mismatch");
        let exact: i64 = weights
            .iter()
            .zip(inputs.iter())
            .map(|(&w, &x)| w as i64 * x as i64)
            .sum();
        let cells = config.cells_per_weight() as u64;
        let perceived: f64 = weights
            .iter()
            .zip(inputs.iter())
            .enumerate()
            .map(|(i, (&w, &x))| {
                self.perceived_weight(variation, w, i as u64 * cells, config) * x as f64
            })
            .sum();
        (exact, perceived)
    }

    // ---- write-and-verify programming ----------------------------------

    /// Programs one weight's cell slices with write-and-verify: each slice
    /// is pulsed, read back, and re-pulsed up to `policy.max_retries`
    /// times. A cell already stuck at a level other than its target is
    /// unprogrammable immediately; a cell whose retries run out — or whose
    /// cumulative wear crosses `policy.endurance_limit` — freezes at a
    /// seeded polarity and *enters this fault map*, so later programming
    /// passes see it as hard-failed.
    ///
    /// Deterministic: outcomes depend only on `policy.seed`, the absolute
    /// cell index and that cell's wear count.
    pub fn program_weight(
        &mut self,
        code: i32,
        cell_base_index: u64,
        config: &ReramConfig,
        policy: &WritePolicy,
    ) -> WriteReport {
        let slices = slice_weight(code, config);
        let mut report = WriteReport::default();
        for (i, &target) in slices.iter().enumerate() {
            let cell = cell_base_index + i as u64;
            if let Some(polarity) = self.stuck_at(cell) {
                if polarity.level(config.cell_bits) != target {
                    report.failed_cells.push(cell);
                }
                continue;
            }
            let mut verified = false;
            let mut missed = false;
            for _attempt in 0..=policy.max_retries {
                let pulse = {
                    let w = self.wear.entry(cell).or_insert(0);
                    *w += 1;
                    *w
                };
                report.attempts += 1;
                if policy.endurance_limit > 0 && pulse > policy.endurance_limit {
                    self.freeze(cell, policy.seed);
                    report.newly_stuck += 1;
                    break;
                }
                // Sticky failure: a cell that missed a pulse is partially
                // switched and misses follow-ups at sqrt(rate) >= rate.
                let fail_rate = if missed {
                    policy.transient_fail_rate.sqrt()
                } else {
                    policy.transient_fail_rate
                };
                let outcome = unit(policy.seed ^ 0x57A7_1C5E_ED5E_ED00, mix(cell, pulse));
                if outcome >= fail_rate {
                    verified = true;
                    break;
                }
                missed = true;
            }
            if !verified {
                if self.stuck_at(cell).is_none() {
                    // Retries exhausted on a transiently-failing cell: the
                    // controller gives up and quarantines it.
                    self.freeze(cell, policy.seed);
                    report.newly_stuck += 1;
                }
                report.failed_cells.push(cell);
            }
        }
        report
    }

    /// Programs `weights` as a contiguous matrix (weight `i` at cell base
    /// `i × cells_per_weight`), absorbing the per-weight reports.
    pub fn program_matrix(
        &mut self,
        weights: &[i32],
        config: &ReramConfig,
        policy: &WritePolicy,
    ) -> WriteReport {
        let cells = config.cells_per_weight() as u64;
        let mut report = WriteReport::default();
        for (i, &w) in weights.iter().enumerate() {
            report.absorb(self.program_weight(w, i as u64 * cells, config, policy));
        }
        report
    }

    /// Advances the wear counter of every healthy cell in `cells` by
    /// `pulses` write pulses and freezes the cells whose cumulative wear
    /// crosses their personal endurance limit under `model`, returning the
    /// newly broken cell indices (ascending). This is the mid-run wear-out
    /// channel: each training-phase weight update pulses the cells it
    /// rewrites, and a cell that was healthy at step *k* can be stuck at
    /// step *k + 1* — the self-healing runtime's ABFT residuals are what
    /// notice.
    ///
    /// Already-stuck cells no longer switch and accumulate no further
    /// wear. With a disabled model (`endurance_mean == 0`) this only
    /// advances counters and never breaks anything.
    pub fn advance_wear(
        &mut self,
        cells: std::ops::Range<u64>,
        pulses: u64,
        model: &crate::wear::WearModel,
    ) -> Vec<u64> {
        let mut newly = Vec::new();
        if pulses == 0 {
            return newly;
        }
        for cell in cells {
            if self.stuck_at(cell).is_some() {
                continue;
            }
            let worn = {
                let w = self.wear.entry(cell).or_insert(0);
                *w += pulses;
                *w
            };
            if worn > model.limit_of(cell) {
                self.freeze(cell, model.seed);
                newly.push(cell);
            }
        }
        newly
    }

    /// Freezes a cell at a seeded polarity (wear-out / give-up path).
    pub(crate) fn freeze(&mut self, cell: u64, seed: u64) {
        let polarity = if mix(seed ^ 0xF0F0_F0F0_0F0F_0F0F, cell) & 1 == 0 {
            StuckAt::Zero
        } else {
            StuckAt::One
        };
        self.stuck.insert(cell, polarity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_map_has_no_faults() {
        let m = FaultMap::pristine();
        assert!(m.is_pristine());
        assert_eq!(m.stuck_cells(), 0);
        assert_eq!(m.dead_tile_count(), 0);
        assert_eq!(m.stuck_at(42), None);
        assert!(!m.tile_is_dead(3));
    }

    #[test]
    fn seeded_maps_are_deterministic_and_rate_scaled() {
        let a = FaultMap::seeded(7, 0.01, 100_000);
        let b = FaultMap::seeded(7, 0.01, 100_000);
        assert_eq!(a, b);
        let c = FaultMap::seeded(8, 0.01, 100_000);
        assert_ne!(a, c);
        // ~1% of 100k cells, generously bounded.
        assert!(a.stuck_cells() > 500 && a.stuck_cells() < 2000);
        let denser = FaultMap::seeded(7, 0.1, 100_000);
        assert!(denser.stuck_cells() > 5 * a.stuck_cells());
        assert!(FaultMap::seeded(7, 0.0, 100_000).is_pristine());
    }

    #[test]
    fn stuck_levels_pin_the_extremes() {
        assert_eq!(StuckAt::Zero.level(4), 0);
        assert_eq!(StuckAt::One.level(4), 15);
    }

    #[test]
    fn dead_tiles_round_trip() {
        let mut m = FaultMap::pristine();
        m.kill_tile(5).kill_tile(2).kill_tile(5);
        assert_eq!(m.dead_tile_count(), 2);
        assert!(m.tile_is_dead(2) && m.tile_is_dead(5));
        assert_eq!(m.dead_tiles().collect::<Vec<_>>(), vec![2, 5]);
        assert!(!m.is_pristine());
    }

    #[test]
    fn pristine_perceived_weight_is_exact_without_variation() {
        let cfg = ReramConfig::default();
        let m = FaultMap::pristine();
        for code in [-30000, -1, 0, 123, 30000] {
            assert_eq!(m.perceived_weight(None, code, 0, &cfg), code as f64);
        }
    }

    #[test]
    fn stuck_at_one_inflates_low_slices() {
        let cfg = ReramConfig::default();
        let mut m = FaultMap::pristine();
        // Weight 0 at cell base 0: pin the least-significant slice high.
        m.set_stuck(0, StuckAt::One);
        let p = m.perceived_weight(None, 0, 0, &cfg);
        assert_eq!(p, 15.0);
        // The most significant slice weighs 4096 per level.
        let mut m2 = FaultMap::pristine();
        m2.set_stuck(3, StuckAt::One);
        assert_eq!(m2.perceived_weight(None, 0, 0, &cfg), 15.0 * 4096.0);
    }

    #[test]
    fn write_verify_programs_healthy_cells_in_one_pulse_each() {
        let cfg = ReramConfig::default();
        let mut m = FaultMap::pristine();
        let report = m.program_weight(1234, 0, &cfg, &WritePolicy::default());
        assert!(report.succeeded());
        assert_eq!(report.attempts, cfg.cells_per_weight() as u64);
        assert_eq!(report.newly_stuck, 0);
        assert_eq!(m.wear_of(0), 1);
    }

    #[test]
    fn transient_failures_cost_retries_deterministically() {
        let cfg = ReramConfig::default();
        let policy = WritePolicy::with_fail_rate(0.5, 11);
        let mut a = FaultMap::pristine();
        let ra = a.program_matrix(&[1, -2, 3, 40, 500, -600], &cfg, &policy);
        let mut b = FaultMap::pristine();
        let rb = b.program_matrix(&[1, -2, 3, 40, 500, -600], &cfg, &policy);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
        // Half the pulses fail: more attempts than cells.
        assert!(ra.attempts > 6 * cfg.cells_per_weight() as u64);
    }

    #[test]
    fn exhausted_retries_enter_the_fault_map() {
        let cfg = ReramConfig::default();
        // Every attempt fails: all cells quarantine after 1 + max_retries.
        let policy = WritePolicy {
            max_retries: 2,
            transient_fail_rate: 1.0,
            endurance_limit: 0,
            seed: 3,
        };
        let mut m = FaultMap::pristine();
        let report = m.program_weight(77, 0, &cfg, &policy);
        assert!(!report.succeeded());
        assert_eq!(report.failed_cells.len(), cfg.cells_per_weight());
        assert_eq!(report.newly_stuck, cfg.cells_per_weight() as u64);
        assert_eq!(report.attempts, 3 * cfg.cells_per_weight() as u64);
        assert_eq!(m.stuck_cells(), cfg.cells_per_weight());
    }

    #[test]
    fn endurance_wearout_freezes_cells() {
        let cfg = ReramConfig::default();
        let policy = WritePolicy {
            max_retries: 0,
            transient_fail_rate: 0.0,
            endurance_limit: 4,
            seed: 5,
        };
        let mut m = FaultMap::pristine();
        // Four updates fit the endurance budget…
        for _ in 0..4 {
            assert!(m.program_weight(9, 0, &cfg, &policy).succeeded());
        }
        // …the fifth wears the cells out.
        let report = m.program_weight(9, 0, &cfg, &policy);
        assert!(!report.succeeded());
        assert_eq!(m.stuck_cells(), cfg.cells_per_weight());
    }

    #[test]
    fn realistic_fail_rates_produce_nonzero_quarantine() {
        // Regression for the fault-sweep accounting hole: at a 2% write
        // fail rate over ~100k weights, sticky failures must drive a
        // visible number of cells to retry exhaustion (independent coins
        // gave 0.02^4 per cell — nothing ever quarantined).
        let cfg = ReramConfig::default();
        let policy = WritePolicy::with_fail_rate(0.02, 0xBEEF);
        let weights: Vec<i32> = (0..100_000).map(|i| (i % 251) - 125).collect();
        let mut m = FaultMap::pristine();
        let stuck_pre = m.stuck_cells();
        let report = m.program_matrix(&weights, &cfg, &policy);
        assert!(
            report.newly_stuck > 0,
            "sticky transient failures must exhaust some retries"
        );
        // Accounting invariant: every newly-stuck cell is in the map.
        assert_eq!(
            m.stuck_cells() - stuck_pre,
            report.newly_stuck as usize,
            "quarantine count must match the fault-map delta"
        );
        // Quarantined cells are a subset of the reported failures.
        assert!(report.failed_cells.len() >= report.newly_stuck as usize);
    }

    #[test]
    fn stuck_cell_matching_target_is_not_a_failure() {
        let cfg = ReramConfig::default();
        let mut m = FaultMap::pristine();
        // Weight 0 slices to all-zero levels; a stuck-at-zero cell agrees.
        m.set_stuck(0, StuckAt::Zero);
        let report = m.program_weight(0, 0, &cfg, &WritePolicy::default());
        assert!(report.succeeded());
        // Stuck cells absorb no pulses.
        assert_eq!(report.attempts, (cfg.cells_per_weight() - 1) as u64);
    }
}
