//! Area accounting (Sec. VI-E).
//!
//! The paper reports that the added switches and wires of the 3D-connected
//! PIM cost **13.3 % extra space** compared with PRIME. We model bank area
//! as the sum of its components in normalised crossbar-equivalent units:
//! crossbar arrays dominate, peripheral circuitry (ADCs, drivers,
//! shift-and-add, buffers) adds a PRIME-like overhead, and the 3D additions
//! contribute per-node switch area plus horizontal/vertical wiring.

use crate::config::ReramConfig;

/// Relative area model (unitless; crossbar array area of one bank = 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Peripheral (ADC/DAC/S&A/buffer/H-tree) area relative to the
    /// crossbar arrays, as in PRIME-class designs.
    pub peripheral_ratio: f64,
    /// Area of one added switch, relative to total bank area.
    pub switch_area_frac: f64,
    /// Area of added horizontal + vertical wiring per node, relative to
    /// total bank area.
    pub wire_area_frac: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            peripheral_ratio: 0.55,
            // Calibrated so a 16-tile 3-bank 3DCU lands on the paper's
            // 13.3 % overhead (Sec. VI-E); see `overhead` bench.
            switch_area_frac: 0.004,
            wire_area_frac: 0.00287,
        }
    }
}

/// Area summary of one bank (arbitrary units where crossbars = 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankArea {
    /// Crossbar array area.
    pub arrays: f64,
    /// Peripheral circuit area.
    pub peripherals: f64,
    /// Added 3D switch area (zero for a PRIME-style bank).
    pub switches: f64,
    /// Added 3D wire area (zero for a PRIME-style bank).
    pub wires: f64,
}

impl BankArea {
    /// Total area.
    pub fn total(&self) -> f64 {
        self.arrays + self.peripherals + self.switches + self.wires
    }
}

impl AreaModel {
    /// Area of a PRIME-style (H-tree only) bank.
    pub fn prime_bank(&self) -> BankArea {
        BankArea {
            arrays: 1.0,
            peripherals: self.peripheral_ratio,
            switches: 0.0,
            wires: 0.0,
        }
    }

    /// Area of a LerGAN 3D-connected bank.
    ///
    /// Every H-tree node of a 16-tile bank (15 internal nodes) gains one
    /// switch and its share of horizontal wire; middle-layer banks gain a
    /// second switch for the simultaneous up/down connections, which we
    /// amortise as half a switch per bank (one bank in three has them, and
    /// vertical wires are shared between adjacent banks).
    pub fn lergan_bank(&self, config: &ReramConfig) -> BankArea {
        let nodes = (config.tiles_per_bank - 1) as f64; // internal tree nodes
        let base = self.prime_bank();
        let switches = nodes * 1.5 * self.switch_area_frac * base.total();
        let wires = nodes * self.wire_area_frac * base.total();
        BankArea {
            switches,
            wires,
            ..base
        }
    }

    /// Fractional area overhead of the LerGAN bank over PRIME — the
    /// Sec. VI-E headline (13.3 %).
    pub fn overhead(&self, config: &ReramConfig) -> f64 {
        let prime = self.prime_bank().total();
        let lergan = self.lergan_bank(config).total();
        lergan / prime - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper() {
        let m = AreaModel::default();
        let o = m.overhead(&ReramConfig::default());
        assert!(
            (o - 0.133).abs() < 0.01,
            "3D area overhead {o:.3} (paper: 13.3%)"
        );
    }

    #[test]
    fn prime_bank_has_no_3d_area() {
        let m = AreaModel::default();
        let b = m.prime_bank();
        assert_eq!(b.switches, 0.0);
        assert_eq!(b.wires, 0.0);
        assert!(b.total() > 1.0);
    }

    #[test]
    fn totals_are_component_sums() {
        let m = AreaModel::default();
        let b = m.lergan_bank(&ReramConfig::default());
        let sum = b.arrays + b.peripherals + b.switches + b.wires;
        assert!((b.total() - sum).abs() < 1e-12);
    }
}
