//! Synthetic training distributions.
//!
//! The paper trains on image datasets (MNIST, CIFAR-10, …) that the
//! accelerator model never looks at — only layer shapes matter there. The
//! *functional* substrate, however, needs real distributions to prove the
//! training loop learns. These generators produce deterministic, seeded,
//! visually-structured image families whose statistics are easy to test:
//! each has a scalar *signature* that separates it from noise, so a test
//! can check a generator has learned the structure without eyeballing
//! samples.

use crate::train::Gan;
use lergan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic image distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Horizontal stripes: rows alternate high/low.
    Stripes,
    /// A bright centred blob on a dark field.
    Blob,
    /// A 2×2-tile checkerboard.
    Checkerboard,
    /// Vertical gradient from −0.8 to 0.8.
    Gradient,
}

impl Distribution {
    /// All distributions.
    pub const ALL: [Distribution; 4] = [
        Distribution::Stripes,
        Distribution::Blob,
        Distribution::Checkerboard,
        Distribution::Gradient,
    ];
}

/// A seeded sampler of one distribution at a fixed square extent.
#[derive(Debug)]
pub struct Sampler {
    distribution: Distribution,
    extent: usize,
    jitter: f32,
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler. `jitter` is the per-sample amplitude noise.
    pub fn new(distribution: Distribution, extent: usize, jitter: f32, seed: u64) -> Self {
        Sampler {
            distribution,
            extent,
            jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Image extent.
    pub fn extent(&self) -> usize {
        self.extent
    }

    /// Draws one `[1, extent, extent]` sample.
    pub fn sample(&mut self) -> Tensor {
        let n = self.extent;
        let amp = 0.8 + (self.rng.gen::<f32>() - 0.5) * self.jitter;
        let phase = self.rng.gen::<f32>() * 0.2;
        let d = self.distribution;
        Tensor::from_fn(&[1, n, n], |idx| {
            let (y, x) = (idx[1], idx[2]);
            let v = match d {
                Distribution::Stripes => {
                    if y % 2 == 0 {
                        amp
                    } else {
                        -amp
                    }
                }
                Distribution::Blob => {
                    let cy = (n as f32 - 1.0) / 2.0;
                    let r2 = (y as f32 - cy).powi(2) + (x as f32 - cy).powi(2);
                    let radius2 = (n as f32 / 3.5).powi(2);
                    if r2 < radius2 {
                        amp
                    } else {
                        -amp
                    }
                }
                Distribution::Checkerboard => {
                    let tile = (n / 4).max(1);
                    if (y / tile + x / tile).is_multiple_of(2) {
                        amp
                    } else {
                        -amp
                    }
                }
                Distribution::Gradient => -amp + 2.0 * amp * (y as f32 / (n as f32 - 1.0)),
            };
            v + phase * 0.1
        })
    }

    /// Draws a minibatch.
    pub fn batch(&mut self, size: usize) -> Vec<Tensor> {
        (0..size).map(|_| self.sample()).collect()
    }

    /// The distribution's scalar signature evaluated on an image (high for
    /// true samples, near zero for unstructured noise).
    pub fn signature(&self, img: &Tensor) -> f32 {
        signature(self.distribution, img)
    }
}

/// Structure score of an image under a distribution (see [`Sampler`]).
pub fn signature(distribution: Distribution, img: &Tensor) -> f32 {
    let n = img.shape()[1];
    match distribution {
        Distribution::Stripes => {
            // Mean absolute row-to-row alternation.
            let mut s = 0.0;
            for y in 0..n - 1 {
                for x in 0..n {
                    s += (img[&[0, y, x]] - img[&[0, y + 1, x]]).abs();
                }
            }
            s / ((n - 1) * n) as f32
        }
        Distribution::Blob => {
            // Centre brightness minus corner brightness.
            let c = n / 2;
            let centre = img[&[0, c, c]];
            let corners = (img[&[0, 0, 0]]
                + img[&[0, 0, n - 1]]
                + img[&[0, n - 1, 0]]
                + img[&[0, n - 1, n - 1]])
                / 4.0;
            centre - corners
        }
        Distribution::Checkerboard => {
            // Tile-to-tile contrast at the tile stride.
            let tile = (n / 4).max(1);
            let mut s = 0.0;
            let mut count = 0;
            for y in (0..n - tile).step_by(tile) {
                for x in 0..n {
                    s += (img[&[0, y, x]] - img[&[0, y + tile, x]]).abs();
                    count += 1;
                }
            }
            s / count as f32
        }
        Distribution::Gradient => {
            // Bottom-minus-top mean.
            let mut top = 0.0;
            let mut bottom = 0.0;
            for x in 0..n {
                top += img[&[0, 0, x]];
                bottom += img[&[0, n - 1, x]];
            }
            (bottom - top) / n as f32
        }
    }
}

/// Average signature of a generator's outputs under a distribution.
pub fn generator_signature(gan: &mut Gan, distribution: Distribution, samples: usize) -> f32 {
    let mut acc = 0.0;
    for _ in 0..samples {
        acc += signature(distribution, &gan.generate());
    }
    acc / samples as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_have_high_signature() {
        for d in Distribution::ALL {
            let mut s = Sampler::new(d, 12, 0.05, 42);
            let img = s.sample();
            assert_eq!(img.shape(), &[1, 12, 12]);
            let sig = s.signature(&img);
            assert!(sig > 0.4, "{d:?} signature {sig}");
        }
    }

    #[test]
    fn noise_has_low_signature() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise = Tensor::from_fn(&[1, 12, 12], |_| rng.gen::<f32>() * 2.0 - 1.0);
        for d in Distribution::ALL {
            let sig = signature(d, &noise).abs();
            let mut s = Sampler::new(d, 12, 0.05, 42);
            let sample = s.sample();
            let real = s.signature(&sample);
            assert!(sig < real * 0.8, "{d:?}: noise {sig} vs real {real}");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut a = Sampler::new(Distribution::Blob, 8, 0.1, 7);
        let mut b = Sampler::new(Distribution::Blob, 8, 0.1, 7);
        assert_eq!(a.sample().data(), b.sample().data());
        // Different seeds differ.
        let mut c = Sampler::new(Distribution::Blob, 8, 0.1, 8);
        assert_ne!(a.sample().data(), c.sample().data());
    }

    #[test]
    fn batch_size_is_respected() {
        let mut s = Sampler::new(Distribution::Gradient, 8, 0.0, 1);
        assert_eq!(s.batch(5).len(), 5);
    }
}
