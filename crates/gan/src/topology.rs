//! Parser for the paper's compact Table V topology notation.
//!
//! The notation describes a network layer by layer with `-`-separated
//! tokens:
//!
//! * `512c5k2s` — a convolution layer with **512 input feature maps**,
//!   5×5 kernels and stride 2;
//! * `512t5k2s` — a transposed convolution layer ("stride of 1/2");
//! * `100f` — a fully-connected layer with a 100-unit input;
//! * `f1` / `t3` — the final output width: a 1-unit FC output or a T-CONV
//!   producing 3 output feature maps;
//! * `(1024t-512t-256t-128t)(5k2s)` — factored common kernel/stride.
//!
//! The op-algebra extensions add suffixes to `c` tokens:
//!
//! * `64c3k1s2d` — dilated convolution (D-CONV) with dilation 2; the
//!   kernel's zero-insertion is the dual of T-CONV's input insertion;
//! * `64c3x5k1x2s` — per-axis `KhxKw` kernel / `ShxSw` stride extents
//!   (rows × cols); the output must stay square, each axis deriving its
//!   own padding;
//! * `64c3k1sbn` / `…pn` / `…nn` — per-layer normalization tags
//!   (BatchNorm / PixelNorm / none); untagged layers keep the legacy
//!   network-wide behaviour;
//! * `64c3k1s+2` — a skip edge: this layer's output is added to the input
//!   of the layer two positions downstream (`+N`, N ≥ 2, matching
//!   channels and extent).
//!
//! Because tokens name layer *inputs*, each layer's output channel count is
//! the next conv-like token's input count (or the trailing `tK`/`fK` spec).
//!
//! ## Under-determined details and how we resolve them
//!
//! The notation omits paddings and spatial sizes, so the parser
//! reconstructs them:
//!
//! * Conv-chain spatial trajectories are anchored at the image: a chain at
//!   the start of a network begins at the item extent; a chain at the end
//!   finishes there. T-CONVs target `O = I·S′`, S-CONVs target
//!   `O = ⌈I/S⌉`, stride-1 layers keep their extent; the padding that
//!   realises each target exactly (Eq. 5 / Eq. 8) is then derived, allowing
//!   one asymmetric end-pad zero where no symmetric padding exists.
//! * A mid-network `Nf` token whose declared input width differs from the
//!   incoming flattened size (DiscoGAN-5pairs' 100-unit bottleneck) expands
//!   to two FC layers: a projection into the declared width followed by the
//!   re-expansion the next conv chain requires.

use crate::layer::{ConvLayer, DconvLayer, FcLayer, Layer, Norm, TconvLayer};
use crate::phase::Phase;
use crate::workload::{phase_workloads, ConvWorkload};
use lergan_tensor::{DconvAxis, DconvGeometry, SconvGeometry, TconvGeometry};
use std::error::Error;
use std::fmt;

/// A residual/skip connection: the output of layer `from` is added to the
/// input of layer `to` (`to ≥ from + 2`, channel counts and spatial
/// extents must match).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkipEdge {
    /// Index of the layer whose output is forwarded.
    pub from: usize,
    /// Index of the layer whose input receives the addition.
    pub to: usize,
}

/// A parsed network: an ordered list of layers plus the dimensionality the
/// spatial extents live in (2 for images, 3 for 3D-GAN volumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Human-readable name, e.g. `"DCGAN generator"`.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
    /// Spatial dimensionality (2 or 3).
    pub dims: u32,
    /// Residual/skip edges declared by `+N` suffixes, in parse order.
    pub skips: Vec<SkipEdge>,
    /// Per-layer normalization variants (same length as `layers`;
    /// [`Norm::Legacy`] for untagged layers).
    pub norms: Vec<Norm>,
}

impl NetworkSpec {
    /// Total weight count across all layers.
    pub fn total_weights(&self) -> u128 {
        self.layers.iter().map(|l| l.weight_count(self.dims)).sum()
    }

    /// Total dense forward MACs for one sample.
    pub fn total_forward_macs_dense(&self) -> u128 {
        self.layers
            .iter()
            .map(|l| l.forward_macs_dense(self.dims))
            .sum()
    }

    /// Total useful (zero-free) forward MACs for one sample.
    pub fn total_forward_macs_useful(&self) -> u128 {
        self.layers
            .iter()
            .map(|l| l.forward_macs_useful(self.dims))
            .sum()
    }

    /// Whether the network contains at least one T-CONV layer.
    pub fn has_tconv(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::Tconv(_)))
    }

    /// Whether the network contains at least one S-CONV layer.
    pub fn has_sconv(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::Conv(_)))
    }

    /// Whether the network is purely fully-connected (MAGAN's
    /// discriminator).
    pub fn is_fully_connected(&self) -> bool {
        self.layers.iter().all(|l| matches!(l, Layer::Fc(_)))
    }

    /// Whether the network contains at least one dilated/asymmetric
    /// D-CONV layer.
    pub fn has_dconv(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::Dconv(_)))
    }

    /// The normalization variant of layer `idx` ([`Norm::Legacy`] when the
    /// spec predates per-layer tags).
    pub fn norm_of(&self, idx: usize) -> Norm {
        self.norms.get(idx).copied().unwrap_or_default()
    }

    /// Skip edges whose addition lands on the input of layer `idx`.
    pub fn skips_into(&self, idx: usize) -> Vec<SkipEdge> {
        self.skips.iter().copied().filter(|s| s.to == idx).collect()
    }
}

/// A complete GAN benchmark: generator plus discriminator plus the item
/// (sample) dimensions from Table V.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GanSpec {
    /// Benchmark name as it appears in Table V.
    pub name: String,
    /// The generator network.
    pub generator: NetworkSpec,
    /// The discriminator network.
    pub discriminator: NetworkSpec,
    /// Item dimensions, e.g. `[64, 64]` or `[64, 64, 64]`.
    pub item_size: Vec<usize>,
    /// Minibatch size used in the evaluation (64 in the paper).
    pub batch_size: usize,
}

impl GanSpec {
    /// Parses a benchmark from its Table V row.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTopologyError`] if either notation string is
    /// malformed or geometrically unrealisable.
    pub fn parse(
        name: &str,
        generator: &str,
        discriminator: &str,
        item_size: &[usize],
    ) -> Result<Self, ParseTopologyError> {
        let dims = item_size.len() as u32;
        if !(2..=3).contains(&dims) {
            return Err(ParseTopologyError::new(
                name,
                "item size must be 2- or 3-dimensional",
            ));
        }
        let extent = item_size[0];
        let generator = parse_network(&format!("{name} generator"), generator, dims, extent)?;
        let discriminator = parse_network(
            &format!("{name} discriminator"),
            discriminator,
            dims,
            extent,
        )?;
        Ok(GanSpec {
            name: name.to_string(),
            generator,
            discriminator,
            item_size: item_size.to_vec(),
            batch_size: 64,
        })
    }

    /// The network a phase runs over.
    pub fn network_for(&self, phase: Phase) -> &NetworkSpec {
        if phase.is_generator_phase() {
            &self.generator
        } else {
            &self.discriminator
        }
    }

    /// Per-layer convolution workloads for a phase (see
    /// [`crate::workload`]).
    pub fn workloads(&self, phase: Phase) -> Vec<ConvWorkload> {
        phase_workloads(self.network_for(phase), phase)
    }

    /// The phases of this GAN that benefit from ZFDR (contain at least one
    /// zero-inserted workload). DiscoGAN-4pairs has five; a plain
    /// T-CONV-generator GAN has four; MAGAN's FC discriminator contributes
    /// none of its D-phases except through its generator.
    pub fn zfdr_phases(&self) -> Vec<Phase> {
        Phase::ALL
            .into_iter()
            .filter(|&p| {
                self.workloads(p)
                    .iter()
                    .any(|w| !matches!(w.kind, crate::workload::WorkloadKind::Dense))
            })
            .collect()
    }
}

/// Renders a per-axis extent as the grammar writes it: `5` when symmetric,
/// `3x5` (rows × cols) otherwise.
fn fmt_extent(rows: usize, cols: usize) -> String {
    if rows == cols {
        rows.to_string()
    } else {
        format!("{rows}x{cols}")
    }
}

/// The trailing norm/skip annotations of the conv-like layer at `i`.
fn layer_annotations(net: &NetworkSpec, i: usize) -> String {
    let mut s = String::new();
    if let Some(tag) = net.norm_of(i).suffix() {
        s.push_str(tag);
    }
    if let Some(sk) = net.skips.iter().find(|sk| sk.from == i) {
        s.push('+');
        s.push_str(&(sk.to - sk.from).to_string());
    }
    s
}

/// Renders a parsed network back into (un-factored) Table V notation,
/// including the extended-grammar suffixes (dilation `Dd`, asymmetric
/// `KhxKw` extents, `bn`/`pn`/`nn` norm tags, `+N` skips).
///
/// Group factoring is not reconstructed — every conv-like token carries
/// its own `WkSs` suffix — so `parse → render → parse` is the identity on
/// layers even though the string may differ from the original.
pub fn render_notation(net: &NetworkSpec) -> String {
    let mut parts: Vec<String> = Vec::new();
    let layers = &net.layers;
    let conv_like = |l: Option<&Layer>| {
        matches!(
            l,
            Some(Layer::Conv(_) | Layer::Tconv(_) | Layer::Dconv(_))
        )
    };
    let mut i = 0;
    while i < layers.len() {
        match &layers[i] {
            Layer::Fc(f) => {
                // A mid-network bottleneck (conv → FC → FC → conv, as in
                // DiscoGAN-5pairs) renders as the single `Nf` token the
                // parser expands back into the projection/expansion pair.
                let is_bridge = i > 0
                    && conv_like(layers.get(i - 1))
                    && matches!(layers.get(i + 1), Some(Layer::Fc(g)) if g.in_units == f.out_units)
                    && conv_like(layers.get(i + 2));
                let terminal = i + 1 == layers.len();
                if terminal {
                    // The last FC needs both its input token and the
                    // output-width spec (the parser folds `Nf-fK` into one
                    // layer, and a bare `fK` after a conv chain flattens
                    // implicitly, so either string round-trips).
                    if i > 0 && conv_like(layers.get(i.wrapping_sub(1))) {
                        parts.push(format!("f{}", f.out_units));
                    } else {
                        parts.push(format!("{}f", f.in_units));
                        parts.push(format!("f{}", f.out_units));
                    }
                } else if is_bridge {
                    parts.push(format!("{}f", f.out_units));
                    i += 1; // the expansion FC is implied
                } else {
                    parts.push(format!("{}f", f.in_units));
                }
            }
            Layer::Conv(c) => {
                parts.push(format!(
                    "{}c{}k{}s{}",
                    c.in_channels,
                    c.geometry.kernel,
                    c.geometry.stride,
                    layer_annotations(net, i)
                ));
                // Without a successor token the parser infers oc = ic, so
                // a channel-changing chain tail needs the explicit mark.
                if !conv_like(layers.get(i + 1)) && c.out_channels != c.in_channels {
                    parts.push(format!("t{}", c.out_channels));
                }
            }
            Layer::Dconv(dc) => {
                let g = &dc.geometry;
                let mut tok = format!(
                    "{}c{}k{}s",
                    dc.in_channels,
                    fmt_extent(g.rows.kernel, g.cols.kernel),
                    fmt_extent(g.rows.stride, g.cols.stride),
                );
                if (g.rows.dilation, g.cols.dilation) != (1, 1) {
                    tok.push_str(&fmt_extent(g.rows.dilation, g.cols.dilation));
                    tok.push('d');
                }
                tok.push_str(&layer_annotations(net, i));
                parts.push(tok);
                if !conv_like(layers.get(i + 1)) && dc.out_channels != dc.in_channels {
                    parts.push(format!("t{}", dc.out_channels));
                }
            }
            Layer::Tconv(tl) => {
                parts.push(format!(
                    "{}t{}k{}s{}",
                    tl.in_channels,
                    tl.geometry.kernel,
                    tl.geometry.converse_stride,
                    layer_annotations(net, i)
                ));
                if !conv_like(layers.get(i + 1)) {
                    parts.push(format!("t{}", tl.out_channels));
                }
            }
        }
        i += 1;
    }
    parts.join("-")
}

/// Error produced when a Table V notation string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    network: String,
    message: String,
}

impl ParseTopologyError {
    fn new(network: &str, message: impl Into<String>) -> Self {
        ParseTopologyError {
            network: network.to_string(),
            message: message.into(),
        }
    }

    /// An error anchored at a specific token: the message names the
    /// offending token text and its character position in the notation
    /// string.
    fn at(network: &str, token: &str, pos: usize, message: impl Into<String>) -> Self {
        ParseTopologyError {
            network: network.to_string(),
            message: format!("token `{token}` at char {pos}: {}", message.into()),
        }
    }
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology for {}: {}", self.network, self.message)
    }
}

impl Error for ParseTopologyError {}

/// A raw token after group expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    /// `Nf` — fully connected layer with an `N`-unit input.
    FcIn(usize),
    /// `fK` — final FC output width.
    FcOut(usize),
    /// `NcWkSs[Dd][bn|pn|nn][+N]` / `NtWkSs[...]` — conv-like layer; the
    /// kernel/stride/dilation extents are per-axis `(rows, cols)` pairs
    /// (written `KhxKw` when asymmetric).
    ConvLike {
        in_channels: usize,
        transposed: bool,
        kernel: (usize, usize),
        stride: (usize, usize),
        dilation: (usize, usize),
        norm: Norm,
        skip: Option<usize>,
    },
    /// `tK` — final T-CONV output channel count.
    FinalChannels(usize),
}

/// The decoded suffix of a conv-like token.
struct ConvSuffix {
    kernel: (usize, usize),
    stride: (usize, usize),
    dilation: (usize, usize),
    norm: Norm,
    skip: Option<usize>,
}

fn parse_token(network: &str, tok: &str, pos: usize) -> Result<Token, ParseTopologyError> {
    let err = |m: &str| ParseTopologyError::at(network, tok, pos, m);
    let bytes = tok.as_bytes();
    if bytes.is_empty() {
        return Err(ParseTopologyError::at(
            network,
            "",
            pos,
            "empty token",
        ));
    }
    // fK / tK (leading letter).
    if bytes[0] == b'f' || bytes[0] == b't' {
        let n: usize = tok[1..].parse().map_err(|_| err("bad trailing count"))?;
        return Ok(if bytes[0] == b'f' {
            Token::FcOut(n)
        } else {
            Token::FinalChannels(n)
        });
    }
    // Leading number.
    let digits = tok.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return Err(err("expected a leading count"));
    }
    let n: usize = tok[..digits].parse().map_err(|_| err("bad count"))?;
    let rest = &tok[digits..];
    match rest.chars().next() {
        Some('f') if rest.len() == 1 => Ok(Token::FcIn(n)),
        Some(k @ ('c' | 't')) => {
            let ks = &rest[1..];
            if ks.is_empty() {
                return Err(err("conv token missing kernel/stride suffix"));
            }
            let sx = parse_conv_suffix(network, tok, pos, ks)?;
            if k == 't'
                && (sx.kernel.0 != sx.kernel.1
                    || sx.stride.0 != sx.stride.1
                    || sx.dilation != (1, 1))
            {
                return Err(err(
                    "T-CONV tokens take a symmetric kernel/stride and no dilation",
                ));
            }
            Ok(Token::ConvLike {
                in_channels: n,
                transposed: k == 't',
                kernel: sx.kernel,
                stride: sx.stride,
                dilation: sx.dilation,
                norm: sx.norm,
                skip: sx.skip,
            })
        }
        _ => Err(err("unknown layer kind")),
    }
}

/// Parses a per-axis extent: `5` (symmetric) or `3x5` (rows × cols).
fn parse_extent(s: &str) -> Option<(usize, usize)> {
    let (a, b) = match s.split_once('x') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let v: usize = s.parse().ok()?;
            (v, v)
        }
    };
    if a == 0 || b == 0 {
        return None;
    }
    Some((a, b))
}

/// Parses the conv-token suffix `<K>k<S>s[<D>d][bn|pn|nn][+N]`
/// (e.g. `5k2s`, `3k1s2d`, `3x5k1x2s`, `3k1sbn+2`).
fn parse_conv_suffix(
    network: &str,
    tok: &str,
    pos: usize,
    suffix: &str,
) -> Result<ConvSuffix, ParseTopologyError> {
    let err = |m: String| ParseTopologyError::at(network, tok, pos, m);
    let mut s = suffix;
    // Trailing `+N` skip distance.
    let mut skip = None;
    if let Some(plus) = s.find('+') {
        let n: usize = s[plus + 1..]
            .parse()
            .map_err(|_| err("bad skip distance after `+`".into()))?;
        skip = Some(n);
        s = &s[..plus];
    }
    // Trailing norm tag. Geometry sections never contain `n`, so the tags
    // are unambiguous.
    let mut norm = Norm::Legacy;
    for (tag, v) in [("bn", Norm::Batch), ("pn", Norm::Pixel), ("nn", Norm::None)] {
        if let Some(stripped) = s.strip_suffix(tag) {
            norm = v;
            s = stripped;
            break;
        }
    }
    // Geometry: `<K>k<S>s` with an optional `<D>d` dilation.
    let kpos = s.find('k').ok_or_else(|| err("missing `k`".into()))?;
    let spos = s.find('s').ok_or_else(|| err("missing `s`".into()))?;
    if kpos + 1 >= spos {
        return Err(err("expected `<K>k<S>s[<D>d]`".into()));
    }
    let kernel =
        parse_extent(&s[..kpos]).ok_or_else(|| err(format!("bad kernel `{}`", &s[..kpos])))?;
    let stride = parse_extent(&s[kpos + 1..spos])
        .ok_or_else(|| err(format!("bad stride `{}`", &s[kpos + 1..spos])))?;
    let dilation = if spos == s.len() - 1 {
        (1, 1)
    } else {
        let d = s[spos + 1..]
            .strip_suffix('d')
            .ok_or_else(|| err(format!("trailing `{}` is not a `<D>d` dilation", &s[spos + 1..])))?;
        parse_extent(d).ok_or_else(|| err(format!("bad dilation `{d}`")))?
    };
    Ok(ConvSuffix {
        kernel,
        stride,
        dilation,
        norm,
        skip,
    })
}

/// Splits a notation string into raw token strings, expanding
/// `(A-B-C)(WkSs)` groups. Each token carries the character position it
/// starts at in `s`, so parse errors can point at the offending token.
fn tokenize(network: &str, s: &str) -> Result<Vec<(String, usize)>, ParseTopologyError> {
    let err = |m: &str| ParseTopologyError::new(network, m.to_string());
    let mut out = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '-' {
            i += 1;
            continue;
        }
        if chars[i] == '(' {
            let close = (i + 1..chars.len())
                .find(|&j| chars[j] == ')')
                .ok_or_else(|| err("unbalanced `(`"))?;
            let body: String = chars[i + 1..close].iter().collect();
            // The group must be followed immediately by a `(WkSs)` suffix.
            if close + 1 >= chars.len() || chars[close + 1] != '(' {
                return Err(err(
                    "layer group must be followed by a (kernel/stride) group",
                ));
            }
            let close2 = (close + 2..chars.len())
                .find(|&j| chars[j] == ')')
                .ok_or_else(|| err("unbalanced suffix `(`"))?;
            let suffix: String = chars[close + 2..close2].iter().collect();
            let mut off = 0;
            for part in body.split('-') {
                if !part.is_empty() {
                    out.push((format!("{part}{suffix}"), i + 1 + off));
                }
                off += part.chars().count() + 1;
            }
            i = close2 + 1;
        } else {
            let end = (i..chars.len())
                .find(|&j| chars[j] == '-' || chars[j] == '(')
                .unwrap_or(chars.len());
            if chars.get(end) == Some(&'(') {
                return Err(err("unexpected `(` inside a token"));
            }
            out.push((chars[i..end].iter().collect(), i));
            i = end;
        }
    }
    if out.is_empty() {
        return Err(err("empty topology"));
    }
    Ok(out)
}

/// Parses one network side of a Table V row.
///
/// `dims` is the spatial dimensionality (2 or 3) and `item_extent` the
/// image/volume edge length that anchors conv-chain spatial trajectories.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] on malformed notation or unrealisable
/// geometry.
pub fn parse_network(
    name: &str,
    notation: &str,
    dims: u32,
    item_extent: usize,
) -> Result<NetworkSpec, ParseTopologyError> {
    let raw = tokenize(name, notation)?;
    let tokens: Vec<Token> = raw
        .iter()
        .map(|(t, p)| parse_token(name, t, *p))
        .collect::<Result<_, _>>()?;

    // --- Pass 1: spatial trajectory for every conv-like token. ---
    // Conv-like tokens form contiguous segments separated by FC tokens.
    let conv_positions: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t, Token::ConvLike { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut spatial_in = vec![0usize; tokens.len()];
    let mut spatial_out = vec![0usize; tokens.len()];
    let mut seg_start = 0;
    while seg_start < conv_positions.len() {
        // Find the contiguous run of conv positions.
        let mut seg_end = seg_start;
        while seg_end + 1 < conv_positions.len()
            && conv_positions[seg_end + 1] == conv_positions[seg_end] + 1
        {
            seg_end += 1;
        }
        let seg: &[usize] = &conv_positions[seg_start..=seg_end];
        let starts_network = seg[0] == 0;
        let ends_network = {
            // The segment ends the network if only output-spec tokens follow.
            tokens[seg[seg.len() - 1] + 1..]
                .iter()
                .all(|t| matches!(t, Token::FinalChannels(_)))
        };
        if starts_network {
            // Anchor at the start: the first conv consumes the item. The
            // row-axis stride drives the scalar spatial trajectory; the
            // column axis must realise the same square output via its own
            // padding (checked at emission).
            let mut cur = item_extent;
            for &p in seg {
                let Token::ConvLike {
                    transposed, stride, ..
                } = tokens[p]
                else {
                    unreachable!()
                };
                spatial_in[p] = cur;
                cur = if transposed {
                    cur * stride.0
                } else {
                    cur.div_ceil(stride.0)
                };
                spatial_out[p] = cur;
            }
        } else if ends_network {
            // Anchor at the end: the last conv produces the item.
            let mut cur = item_extent;
            for &p in seg.iter().rev() {
                let Token::ConvLike {
                    transposed, stride, ..
                } = tokens[p]
                else {
                    unreachable!()
                };
                spatial_out[p] = cur;
                cur = if transposed {
                    cur.div_ceil(stride.0)
                } else {
                    cur * stride.0
                };
                spatial_in[p] = cur;
            }
        } else {
            return Err(ParseTopologyError::new(
                name,
                "a convolution chain must touch the start or the end of the network",
            ));
        }
        seg_start = seg_end + 1;
    }

    // --- Pass 2: emit layers with channel chaining. ---
    let mut layers = Vec::new();
    let mut norms: Vec<Norm> = Vec::new();
    // `+N` skip declarations, recorded as (from-layer-index, distance).
    let mut skips_raw: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    // Flattened width of the data currently flowing (None before any layer).
    let mut flat: Option<u128> = None;
    while i < tokens.len() {
        match tokens[i] {
            Token::ConvLike {
                in_channels,
                transposed,
                kernel,
                stride,
                dilation,
                norm,
                skip,
            } => {
                let out_channels = match tokens.get(i + 1) {
                    Some(Token::ConvLike { in_channels, .. }) => *in_channels,
                    Some(Token::FinalChannels(k)) => *k,
                    _ => in_channels,
                };
                let (sin, sout) = (spatial_in[i], spatial_out[i]);
                // A `c` token with per-axis structure or dilation > 1 is a
                // D-CONV; symmetric dilation-1 tokens normalise to the
                // plain S-CONV layer (bit-identity with the old grammar).
                let symmetric =
                    kernel.0 == kernel.1 && stride.0 == stride.1 && dilation == (1, 1);
                let layer = if transposed {
                    let (kernel, stride) = (kernel.0, stride.0);
                    let geometry = TconvGeometry::for_target(sin, kernel, stride, sout)
                        .filter(|g| g.output == sout)
                        .ok_or_else(|| {
                            ParseTopologyError::new(
                                name,
                                format!(
                                    "no T-CONV geometry realises {sin}->{sout} with \
                                     kernel {kernel} stride 1/{stride}"
                                ),
                            )
                        })?;
                    Layer::Tconv(TconvLayer {
                        in_channels,
                        out_channels,
                        geometry,
                    })
                } else if symmetric {
                    let (kernel, stride) = (kernel.0, stride.0);
                    let geometry = (0..kernel)
                        .filter_map(|p| SconvGeometry::new(sin, kernel, stride, p))
                        .find(|g| g.output == sout)
                        .ok_or_else(|| {
                            ParseTopologyError::new(
                                name,
                                format!(
                                    "no padding realises conv {sin}->{sout} with \
                                     kernel {kernel} stride {stride}"
                                ),
                            )
                        })?;
                    Layer::Conv(ConvLayer {
                        in_channels,
                        out_channels,
                        geometry,
                    })
                } else {
                    if dims != 2 {
                        return Err(ParseTopologyError::new(
                            name,
                            "dilated/asymmetric convolutions support 2-D networks only",
                        ));
                    }
                    let axis = |k: usize, s: usize, dil: usize, which: &str| {
                        DconvAxis::for_target(sin, k, s, dil, sout).ok_or_else(|| {
                            ParseTopologyError::new(
                                name,
                                format!(
                                    "no padding realises dilated conv {sin}->{sout} with \
                                     kernel {k} stride {s} dilation {dil} on the {which} axis"
                                ),
                            )
                        })
                    };
                    let rows = axis(kernel.0, stride.0, dilation.0, "row")?;
                    let cols = axis(kernel.1, stride.1, dilation.1, "column")?;
                    Layer::Dconv(DconvLayer {
                        in_channels,
                        out_channels,
                        geometry: DconvGeometry::new(rows, cols),
                    })
                };
                flat = Some(out_channels as u128 * (sout as u128).pow(dims));
                layers.push(layer);
                norms.push(norm);
                if let Some(n) = skip {
                    skips_raw.push((layers.len() - 1, n));
                }
                // Consume a FinalChannels spec if it closed this chain.
                if matches!(tokens.get(i + 1), Some(Token::FinalChannels(_))) {
                    i += 1;
                }
                i += 1;
            }
            Token::FcIn(n) => {
                // Bridge in if the incoming flat width disagrees (bottleneck
                // FC, see module docs).
                if let Some(f) = flat {
                    if f != n as u128 {
                        layers.push(Layer::Fc(FcLayer {
                            in_units: f as usize,
                            out_units: n,
                        }));
                        norms.push(Norm::Legacy);
                    }
                }
                // Output width: what the next token needs.
                let out_units = match tokens.get(i + 1) {
                    Some(Token::ConvLike { in_channels: c, .. }) => {
                        *c as u128 * (spatial_in[i + 1] as u128).pow(dims)
                    }
                    Some(Token::FcIn(m)) => *m as u128,
                    Some(Token::FcOut(k)) => {
                        // `Nf-fK`: this FC maps N directly to K.
                        *k as u128
                    }
                    Some(Token::FinalChannels(_)) | None => {
                        return Err(ParseTopologyError::new(
                            name,
                            "an FC layer needs a successor to size its output",
                        ));
                    }
                };
                layers.push(Layer::Fc(FcLayer {
                    in_units: n,
                    out_units: out_units as usize,
                }));
                norms.push(Norm::Legacy);
                flat = Some(out_units);
                // `fK` right after is consumed as this layer's output spec.
                if matches!(tokens.get(i + 1), Some(Token::FcOut(_))) {
                    i += 1;
                }
                i += 1;
            }
            Token::FcOut(k) => {
                // A trailing `fK` after a conv chain: flatten and map to K.
                let in_units = flat
                    .ok_or_else(|| ParseTopologyError::new(name, "`fK` cannot start a network"))?
                    as usize;
                layers.push(Layer::Fc(FcLayer {
                    in_units,
                    out_units: k,
                }));
                norms.push(Norm::Legacy);
                flat = Some(k as u128);
                i += 1;
            }
            Token::FinalChannels(_) => {
                return Err(ParseTopologyError::new(
                    name,
                    "`tK` must directly follow a transposed-convolution chain",
                ));
            }
        }
    }

    // --- Resolve skip declarations into validated edges. ---
    let mut skips = Vec::new();
    for (from, n) in skips_raw {
        if n < 2 {
            return Err(ParseTopologyError::new(
                name,
                format!("skip `+{n}` on layer {from} must span at least 2 layers"),
            ));
        }
        let to = from + n;
        let Some(target) = layers.get(to) else {
            return Err(ParseTopologyError::new(
                name,
                format!(
                    "skip `+{n}` on layer {from} points past the last layer \
                     (network has {} layers)",
                    layers.len()
                ),
            ));
        };
        if matches!(target, Layer::Fc(_)) {
            return Err(ParseTopologyError::new(
                name,
                format!("skip `+{n}` on layer {from} targets an FC layer"),
            ));
        }
        let (oc, os) = (layers[from].fan_out_channels(), layers[from].out_spatial());
        let (ic, is) = (target.fan_in_channels(), target.in_spatial());
        if oc != ic || os != is {
            return Err(ParseTopologyError::new(
                name,
                format!(
                    "skip from layer {from} carries {oc} channels at extent {os} \
                     but layer {to} consumes {ic} channels at extent {is}"
                ),
            ));
        }
        skips.push(SkipEdge { from, to });
    }

    Ok(NetworkSpec {
        name: name.to_string(),
        layers,
        dims,
        skips,
        norms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_expands_groups() {
        let t = tokenize("t", "100f-(1024t-512t-256t-128t)(5k2s)-t3").unwrap();
        let strings: Vec<&str> = t.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            strings,
            vec![
                "100f",
                "1024t5k2s",
                "512t5k2s",
                "256t5k2s",
                "128t5k2s",
                "t3"
            ]
        );
        // Positions point at where each token (or group member) starts.
        let positions: Vec<usize> = t.iter().map(|(_, p)| *p).collect();
        assert_eq!(positions, vec![0, 6, 12, 17, 22, 34]);
    }

    #[test]
    fn tokenize_rejects_unbalanced() {
        assert!(tokenize("t", "(1024t-512t(5k2s)").is_err());
        assert!(tokenize("t", "(1024t)").is_err());
        assert!(tokenize("t", "").is_err());
    }

    #[test]
    fn token_kinds() {
        assert_eq!(parse_token("t", "100f", 0).unwrap(), Token::FcIn(100));
        assert_eq!(parse_token("t", "f11", 0).unwrap(), Token::FcOut(11));
        assert_eq!(parse_token("t", "t3", 0).unwrap(), Token::FinalChannels(3));
        assert_eq!(
            parse_token("t", "512c5k2s", 0).unwrap(),
            Token::ConvLike {
                in_channels: 512,
                transposed: false,
                kernel: (5, 5),
                stride: (2, 2),
                dilation: (1, 1),
                norm: Norm::Legacy,
                skip: None,
            }
        );
        assert_eq!(
            parse_token("t", "128t4k1s", 0).unwrap(),
            Token::ConvLike {
                in_channels: 128,
                transposed: true,
                kernel: (4, 4),
                stride: (1, 1),
                dilation: (1, 1),
                norm: Norm::Legacy,
                skip: None,
            }
        );
        assert!(parse_token("t", "128x", 0).is_err());
        assert!(parse_token("t", "128c", 0).is_err());
        assert!(parse_token("t", "", 0).is_err());
    }

    #[test]
    fn extended_token_suffixes() {
        assert_eq!(
            parse_token("t", "64c3k1s2d", 0).unwrap(),
            Token::ConvLike {
                in_channels: 64,
                transposed: false,
                kernel: (3, 3),
                stride: (1, 1),
                dilation: (2, 2),
                norm: Norm::Legacy,
                skip: None,
            }
        );
        assert_eq!(
            parse_token("t", "64c3x5k1x2sbn+2", 0).unwrap(),
            Token::ConvLike {
                in_channels: 64,
                transposed: false,
                kernel: (3, 5),
                stride: (1, 2),
                dilation: (1, 1),
                norm: Norm::Batch,
                skip: Some(2),
            }
        );
        assert_eq!(
            parse_token("t", "32c3k1s4dpn", 0).unwrap(),
            Token::ConvLike {
                in_channels: 32,
                transposed: false,
                kernel: (3, 3),
                stride: (1, 1),
                dilation: (4, 4),
                norm: Norm::Pixel,
                skip: None,
            }
        );
        // Dilation and asymmetry are S-CONV-only.
        assert!(parse_token("t", "64t3k1s2d", 0).is_err());
        assert!(parse_token("t", "64t3x5k1s", 0).is_err());
        // Malformed pieces are rejected.
        assert!(parse_token("t", "64c3k1s0d", 0).is_err());
        assert!(parse_token("t", "64c3k1s+x", 0).is_err());
        assert!(parse_token("t", "64c3k1s2q", 0).is_err());
    }

    #[test]
    fn parse_errors_name_the_token_and_position() {
        let e = parse_network("X", "100f-64c3k", 2, 64).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("`64c3k`"), "{msg}");
        assert!(msg.contains("char 5"), "{msg}");
        // Group members are located inside the group body.
        let e = parse_network("X", "(3c-64q)(5k2s)-f1", 2, 64).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("`64q5k2s`"), "{msg}");
        assert!(msg.contains("char 4"), "{msg}");
    }

    #[test]
    fn dcgan_generator_structure() {
        let net = parse_network(
            "DCGAN generator",
            "100f-(1024t-512t-256t-128t)(5k2s)-t3",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 5);
        // FC 100 -> 1024 x 4 x 4.
        let Layer::Fc(fc) = net.layers[0] else {
            panic!("expected FC first");
        };
        assert_eq!((fc.in_units, fc.out_units), (100, 1024 * 16));
        // Channel chain 1024 -> 512 -> 256 -> 128 -> 3.
        let chans: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.fan_in_channels(), l.fan_out_channels()))
            .collect();
        assert_eq!(chans, vec![(1024, 512), (512, 256), (256, 128), (128, 3)]);
        // Spatial chain 4 -> 8 -> 16 -> 32 -> 64.
        let spatial: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.in_spatial(), l.out_spatial()))
            .collect();
        assert_eq!(spatial, vec![(4, 8), (8, 16), (16, 32), (32, 64)]);
    }

    #[test]
    fn dcgan_discriminator_structure() {
        let net = parse_network(
            "DCGAN discriminator",
            "(3c-128c-256c-512c-1024c)(5k2s)-f1",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 6);
        let spatial: Vec<usize> = net.layers[..5].iter().map(|l| l.out_spatial()).collect();
        assert_eq!(spatial, vec![32, 16, 8, 4, 2]);
        let Layer::Fc(fc) = net.layers[5] else {
            panic!("expected trailing FC");
        };
        assert_eq!(fc.out_units, 1);
        assert_eq!(fc.in_units, 1024 * 4);
    }

    #[test]
    fn magan_generator_structure() {
        let net = parse_network("MAGAN generator", "50f-128t7k1s-64t4k2s-t1", 2, 28).unwrap();
        assert_eq!(net.layers.len(), 3);
        let Layer::Fc(fc) = net.layers[0] else {
            panic!()
        };
        assert_eq!((fc.in_units, fc.out_units), (50, 128 * 14 * 14));
        let Layer::Tconv(t1) = net.layers[1] else {
            panic!()
        };
        assert_eq!((t1.geometry.input, t1.geometry.output), (14, 14));
        let Layer::Tconv(t2) = net.layers[2] else {
            panic!()
        };
        assert_eq!((t2.geometry.input, t2.geometry.output), (14, 28));
        assert_eq!((t2.in_channels, t2.out_channels), (64, 1));
    }

    #[test]
    fn magan_discriminator_is_fully_connected() {
        let net = parse_network("MAGAN discriminator", "784f-256f-256f-784f-f11", 2, 28).unwrap();
        assert!(net.is_fully_connected());
        let widths: Vec<(usize, usize)> = net
            .layers
            .iter()
            .map(|l| (l.fan_in_channels(), l.fan_out_channels()))
            .collect();
        assert_eq!(widths, vec![(784, 256), (256, 256), (256, 784), (784, 11)]);
    }

    #[test]
    fn discogan_4pairs_generator_has_both_conv_kinds() {
        let net = parse_network(
            "DiscoGAN-4pairs generator",
            "(3c-64c-128c-256c-512t-256t-128t-64t)(4k2s)-t3",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 8);
        assert!(net.has_sconv() && net.has_tconv());
        let spatial: Vec<usize> = net.layers.iter().map(|l| l.out_spatial()).collect();
        assert_eq!(spatial, vec![32, 16, 8, 4, 8, 16, 32, 64]);
        assert_eq!(net.layers[7].fan_out_channels(), 3);
    }

    #[test]
    fn discogan_5pairs_has_bottleneck_fcs() {
        let net = parse_network(
            "DiscoGAN-5pairs generator",
            "(3c-64c-128c-256c-512c)(4k2s)-100f-(512t-256t-128t-64t)(4k2s)-t3",
            2,
            64,
        )
        .unwrap();
        // 5 convs + bridge FC (2048->100) + FC (100->8192) + 4 T-CONVs.
        assert_eq!(net.layers.len(), 11);
        let Layer::Fc(bridge) = net.layers[5] else {
            panic!("expected bridging FC");
        };
        assert_eq!((bridge.in_units, bridge.out_units), (512 * 4, 100));
        let Layer::Fc(expand) = net.layers[6] else {
            panic!("expected expansion FC");
        };
        assert_eq!((expand.in_units, expand.out_units), (100, 512 * 16));
        let Layer::Tconv(first_t) = net.layers[7] else {
            panic!("expected T-CONV after FCs");
        };
        assert_eq!(first_t.geometry.input, 4);
    }

    #[test]
    fn artgan_generator_handles_stride1_layers() {
        let net = parse_network(
            "ArtGAN generator",
            "100f-1024t4k1s-512t4k2s-256t4k2s-128t4k2s-128t3k1s-t3",
            2,
            32,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 6);
        let spatial: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.in_spatial(), l.out_spatial()))
            .collect();
        assert_eq!(spatial, vec![(4, 4), (4, 8), (8, 16), (16, 32), (32, 32)]);
    }

    #[test]
    fn volumetric_3dgan_fc_sizes_cube() {
        let net =
            parse_network("3D-GAN generator", "100f-(512t-256t-128t)(4k2s)-t3", 3, 64).unwrap();
        let Layer::Fc(fc) = net.layers[0] else {
            panic!()
        };
        // 64 / 2^3 = 8 start extent, cubed for a volumetric network.
        assert_eq!(fc.out_units, 512 * 8 * 8 * 8);
    }

    #[test]
    fn gan_spec_parses_full_row() {
        let g = GanSpec::parse(
            "DCGAN",
            "100f-(1024t-512t-256t-128t)(5k2s)-t3",
            "(3c-128c-256c-512c-1024c)(5k2s)-f1",
            &[64, 64],
        )
        .unwrap();
        assert_eq!(g.batch_size, 64);
        assert_eq!(g.generator.dims, 2);
        assert!(g.generator.has_tconv());
        assert!(!g.discriminator.has_tconv());
    }

    #[test]
    fn render_round_trips_every_benchmark() {
        use crate::benchmarks;
        for gan in benchmarks::all() {
            for net in [&gan.generator, &gan.discriminator] {
                let notation = render_notation(net);
                let reparsed = parse_network(
                    &net.name,
                    &notation,
                    net.dims,
                    // The item extent anchors spatial chains; recover it
                    // from the network's own boundary layers.
                    gan.item_size[0],
                )
                .unwrap_or_else(|e| panic!("{}: `{notation}`: {e}", net.name));
                assert_eq!(
                    reparsed.layers, net.layers,
                    "{}: round trip through `{notation}`",
                    net.name
                );
            }
        }
    }

    #[test]
    fn dilated_conv_parses_to_dconv_layer() {
        let net = parse_network("dil", "(3c-32c)(3k1s)-64c3k1s2d-32c3k1s4d-f1", 2, 32).unwrap();
        assert!(net.has_dconv());
        let Layer::Dconv(dc) = net.layers[2] else {
            panic!("expected D-CONV at layer 2, got {:?}", net.layers[2]);
        };
        assert_eq!(dc.geometry.rows.dilation, 2);
        assert_eq!(dc.geometry.rows.effective_kernel(), 5);
        // Dilation with stride 1 keeps the extent: pad = (Keff-1)/2.
        assert_eq!((dc.geometry.rows.input, dc.geometry.rows.output), (32, 32));
        assert_eq!(dc.geometry.rows.pad, 2);
        let Layer::Dconv(dc4) = net.layers[3] else {
            panic!();
        };
        assert_eq!(dc4.geometry.rows.effective_kernel(), 9);
    }

    #[test]
    fn asymmetric_conv_requires_square_output() {
        // 3x5 kernel with per-axis padding keeps 32x32 square.
        let net = parse_network("asym", "3c3x5k1x1s-16c3k1s-f1", 2, 32).unwrap();
        let Layer::Dconv(dc) = net.layers[0] else {
            panic!("expected D-CONV, got {:?}", net.layers[0]);
        };
        assert_eq!((dc.geometry.rows.kernel, dc.geometry.cols.kernel), (3, 5));
        assert_eq!(dc.geometry.rows.output, dc.geometry.cols.output);
        // A column geometry that cannot reach the row-axis target errors.
        assert!(parse_network("asym", "3c3x4k1x3s-16c3k1s-f1", 2, 31).is_err());
    }

    #[test]
    fn skip_edges_resolve_and_validate() {
        let net = parse_network("skip", "(3c-32c)(3k1s)-32c3k1s+2-32c3k1s-32c3k1s-f1", 2, 32)
            .unwrap();
        assert_eq!(net.skips, vec![SkipEdge { from: 2, to: 4 }]);
        // Channel mismatch between skip source output and target input.
        let e = parse_network("skip", "(3c-32c)(3k1s)-32c3k1s+2-32c3k1s-64c3k1s-f1", 2, 32)
            .unwrap_err();
        assert!(e.to_string().contains("channels"), "{e}");
        // Skips shorter than 2 layers or past the end are rejected.
        assert!(parse_network("skip", "(3c-32c-32c)(3k1s)-32c3k1s+1-f1", 2, 32).is_err());
        assert!(parse_network("skip", "(3c-32c-32c)(3k1s)-32c3k1s+9-f1", 2, 32).is_err());
    }

    #[test]
    fn norm_tags_attach_per_layer() {
        let net = parse_network("norm", "(3c-32c)(3k1s)-32c3k1sbn-32c3k1spn-32c3k1snn-f1", 2, 32)
            .unwrap();
        assert_eq!(
            net.norms,
            vec![
                Norm::Legacy,
                Norm::Legacy,
                Norm::Batch,
                Norm::Pixel,
                Norm::None,
                Norm::Legacy
            ]
        );
        assert_eq!(net.norm_of(3), Norm::Pixel);
    }

    #[test]
    fn render_round_trips_extended_grammar() {
        for notation in [
            "(3c-32c)(3k1s)-64c3k1s2d-32c3k1s4d-f1",
            "(3c-32c)(3k1s)-32c3k1s+2-32c3k1spn-32c3k1s-f1",
            "3c3x5k1x1s-16c3k1sbn-f1",
            "100f-(64t-32t)(4k2s)-t3",
        ] {
            let net = parse_network("ext", notation, 2, 32).unwrap();
            let rendered = render_notation(&net);
            let reparsed = parse_network("ext", &rendered, 2, 32)
                .unwrap_or_else(|e| panic!("`{rendered}`: {e}"));
            assert_eq!(reparsed.layers, net.layers, "via `{rendered}`");
            assert_eq!(reparsed.skips, net.skips, "via `{rendered}`");
            assert_eq!(reparsed.norms, net.norms, "via `{rendered}`");
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse_network("X", "100f", 2, 64).unwrap_err();
        assert!(e.to_string().contains("successor"));
        let e = parse_network("X", "f1-3c4k2s", 2, 64).unwrap_err();
        assert!(e.to_string().contains("cannot start"));
    }
}
