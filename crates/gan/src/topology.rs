//! Parser for the paper's compact Table V topology notation.
//!
//! The notation describes a network layer by layer with `-`-separated
//! tokens:
//!
//! * `512c5k2s` — a convolution layer with **512 input feature maps**,
//!   5×5 kernels and stride 2;
//! * `512t5k2s` — a transposed convolution layer ("stride of 1/2");
//! * `100f` — a fully-connected layer with a 100-unit input;
//! * `f1` / `t3` — the final output width: a 1-unit FC output or a T-CONV
//!   producing 3 output feature maps;
//! * `(1024t-512t-256t-128t)(5k2s)` — factored common kernel/stride.
//!
//! Because tokens name layer *inputs*, each layer's output channel count is
//! the next conv-like token's input count (or the trailing `tK`/`fK` spec).
//!
//! ## Under-determined details and how we resolve them
//!
//! The notation omits paddings and spatial sizes, so the parser
//! reconstructs them:
//!
//! * Conv-chain spatial trajectories are anchored at the image: a chain at
//!   the start of a network begins at the item extent; a chain at the end
//!   finishes there. T-CONVs target `O = I·S′`, S-CONVs target
//!   `O = ⌈I/S⌉`, stride-1 layers keep their extent; the padding that
//!   realises each target exactly (Eq. 5 / Eq. 8) is then derived, allowing
//!   one asymmetric end-pad zero where no symmetric padding exists.
//! * A mid-network `Nf` token whose declared input width differs from the
//!   incoming flattened size (DiscoGAN-5pairs' 100-unit bottleneck) expands
//!   to two FC layers: a projection into the declared width followed by the
//!   re-expansion the next conv chain requires.

use crate::layer::{ConvLayer, FcLayer, Layer, TconvLayer};
use crate::phase::Phase;
use crate::workload::{phase_workloads, ConvWorkload};
use lergan_tensor::{SconvGeometry, TconvGeometry};
use std::error::Error;
use std::fmt;

/// A parsed network: an ordered list of layers plus the dimensionality the
/// spatial extents live in (2 for images, 3 for 3D-GAN volumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Human-readable name, e.g. `"DCGAN generator"`.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
    /// Spatial dimensionality (2 or 3).
    pub dims: u32,
}

impl NetworkSpec {
    /// Total weight count across all layers.
    pub fn total_weights(&self) -> u128 {
        self.layers.iter().map(|l| l.weight_count(self.dims)).sum()
    }

    /// Total dense forward MACs for one sample.
    pub fn total_forward_macs_dense(&self) -> u128 {
        self.layers
            .iter()
            .map(|l| l.forward_macs_dense(self.dims))
            .sum()
    }

    /// Total useful (zero-free) forward MACs for one sample.
    pub fn total_forward_macs_useful(&self) -> u128 {
        self.layers
            .iter()
            .map(|l| l.forward_macs_useful(self.dims))
            .sum()
    }

    /// Whether the network contains at least one T-CONV layer.
    pub fn has_tconv(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::Tconv(_)))
    }

    /// Whether the network contains at least one S-CONV layer.
    pub fn has_sconv(&self) -> bool {
        self.layers.iter().any(|l| matches!(l, Layer::Conv(_)))
    }

    /// Whether the network is purely fully-connected (MAGAN's
    /// discriminator).
    pub fn is_fully_connected(&self) -> bool {
        self.layers.iter().all(|l| matches!(l, Layer::Fc(_)))
    }
}

/// A complete GAN benchmark: generator plus discriminator plus the item
/// (sample) dimensions from Table V.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GanSpec {
    /// Benchmark name as it appears in Table V.
    pub name: String,
    /// The generator network.
    pub generator: NetworkSpec,
    /// The discriminator network.
    pub discriminator: NetworkSpec,
    /// Item dimensions, e.g. `[64, 64]` or `[64, 64, 64]`.
    pub item_size: Vec<usize>,
    /// Minibatch size used in the evaluation (64 in the paper).
    pub batch_size: usize,
}

impl GanSpec {
    /// Parses a benchmark from its Table V row.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTopologyError`] if either notation string is
    /// malformed or geometrically unrealisable.
    pub fn parse(
        name: &str,
        generator: &str,
        discriminator: &str,
        item_size: &[usize],
    ) -> Result<Self, ParseTopologyError> {
        let dims = item_size.len() as u32;
        if !(2..=3).contains(&dims) {
            return Err(ParseTopologyError::new(
                name,
                "item size must be 2- or 3-dimensional",
            ));
        }
        let extent = item_size[0];
        let generator = parse_network(&format!("{name} generator"), generator, dims, extent)?;
        let discriminator = parse_network(
            &format!("{name} discriminator"),
            discriminator,
            dims,
            extent,
        )?;
        Ok(GanSpec {
            name: name.to_string(),
            generator,
            discriminator,
            item_size: item_size.to_vec(),
            batch_size: 64,
        })
    }

    /// The network a phase runs over.
    pub fn network_for(&self, phase: Phase) -> &NetworkSpec {
        if phase.is_generator_phase() {
            &self.generator
        } else {
            &self.discriminator
        }
    }

    /// Per-layer convolution workloads for a phase (see
    /// [`crate::workload`]).
    pub fn workloads(&self, phase: Phase) -> Vec<ConvWorkload> {
        phase_workloads(self.network_for(phase), phase)
    }

    /// The phases of this GAN that benefit from ZFDR (contain at least one
    /// zero-inserted workload). DiscoGAN-4pairs has five; a plain
    /// T-CONV-generator GAN has four; MAGAN's FC discriminator contributes
    /// none of its D-phases except through its generator.
    pub fn zfdr_phases(&self) -> Vec<Phase> {
        Phase::ALL
            .into_iter()
            .filter(|&p| {
                self.workloads(p)
                    .iter()
                    .any(|w| !matches!(w.kind, crate::workload::WorkloadKind::Dense))
            })
            .collect()
    }
}

/// Renders a parsed network back into (un-factored) Table V notation.
///
/// Group factoring is not reconstructed — every conv-like token carries
/// its own `WkSs` suffix — so `parse → render → parse` is the identity on
/// layers even though the string may differ from the original.
pub fn render_notation(net: &NetworkSpec) -> String {
    let mut parts: Vec<String> = Vec::new();
    let layers = &net.layers;
    let mut i = 0;
    while i < layers.len() {
        match &layers[i] {
            Layer::Fc(f) => {
                // A mid-network bottleneck (conv → FC → FC → conv, as in
                // DiscoGAN-5pairs) renders as the single `Nf` token the
                // parser expands back into the projection/expansion pair.
                let is_bridge = i > 0
                    && matches!(layers.get(i - 1), Some(Layer::Conv(_) | Layer::Tconv(_)))
                    && matches!(layers.get(i + 1), Some(Layer::Fc(g)) if g.in_units == f.out_units)
                    && matches!(layers.get(i + 2), Some(Layer::Conv(_) | Layer::Tconv(_)));
                let terminal = i + 1 == layers.len();
                if terminal {
                    // The last FC needs both its input token and the
                    // output-width spec (the parser folds `Nf-fK` into one
                    // layer, and a bare `fK` after a conv chain flattens
                    // implicitly, so either string round-trips).
                    if matches!(
                        layers.get(i.wrapping_sub(1)),
                        Some(Layer::Conv(_) | Layer::Tconv(_))
                    ) && i > 0
                    {
                        parts.push(format!("f{}", f.out_units));
                    } else {
                        parts.push(format!("{}f", f.in_units));
                        parts.push(format!("f{}", f.out_units));
                    }
                } else if is_bridge {
                    parts.push(format!("{}f", f.out_units));
                    i += 1; // the expansion FC is implied
                } else {
                    parts.push(format!("{}f", f.in_units));
                }
            }
            Layer::Conv(c) => {
                parts.push(format!(
                    "{}c{}k{}s",
                    c.in_channels, c.geometry.kernel, c.geometry.stride
                ));
                if !matches!(layers.get(i + 1), Some(Layer::Conv(_) | Layer::Tconv(_))) {
                    // Channel count of the final conv is implied (= input).
                }
            }
            Layer::Tconv(tl) => {
                parts.push(format!(
                    "{}t{}k{}s",
                    tl.in_channels, tl.geometry.kernel, tl.geometry.converse_stride
                ));
                let last_convlike =
                    !matches!(layers.get(i + 1), Some(Layer::Conv(_) | Layer::Tconv(_)));
                if last_convlike {
                    parts.push(format!("t{}", tl.out_channels));
                }
            }
        }
        i += 1;
    }
    parts.join("-")
}

/// Error produced when a Table V notation string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    network: String,
    message: String,
}

impl ParseTopologyError {
    fn new(network: &str, message: impl Into<String>) -> Self {
        ParseTopologyError {
            network: network.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology for {}: {}", self.network, self.message)
    }
}

impl Error for ParseTopologyError {}

/// A raw token after group expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    /// `Nf` — fully connected layer with an `N`-unit input.
    FcIn(usize),
    /// `fK` — final FC output width.
    FcOut(usize),
    /// `NcWkSs` / `NtWkSs` — conv-like layer.
    ConvLike {
        in_channels: usize,
        transposed: bool,
        kernel: usize,
        stride: usize,
    },
    /// `tK` — final T-CONV output channel count.
    FinalChannels(usize),
}

fn parse_token(network: &str, tok: &str) -> Result<Token, ParseTopologyError> {
    let err = |m: &str| ParseTopologyError::new(network, format!("token `{tok}`: {m}"));
    let bytes = tok.as_bytes();
    if bytes.is_empty() {
        return Err(err("empty token"));
    }
    // fK / tK (leading letter).
    if bytes[0] == b'f' || bytes[0] == b't' {
        let n: usize = tok[1..].parse().map_err(|_| err("bad trailing count"))?;
        return Ok(if bytes[0] == b'f' {
            Token::FcOut(n)
        } else {
            Token::FinalChannels(n)
        });
    }
    // Leading number.
    let digits = tok.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 {
        return Err(err("expected a leading count"));
    }
    let n: usize = tok[..digits].parse().map_err(|_| err("bad count"))?;
    let rest = &tok[digits..];
    match rest.chars().next() {
        Some('f') if rest.len() == 1 => Ok(Token::FcIn(n)),
        Some(k @ ('c' | 't')) => {
            let ks = &rest[1..];
            if ks.is_empty() {
                return Err(err("conv token missing kernel/stride suffix"));
            }
            let (kernel, stride) = parse_kernel_stride(network, ks)?;
            Ok(Token::ConvLike {
                in_channels: n,
                transposed: k == 't',
                kernel,
                stride,
            })
        }
        _ => Err(err("unknown layer kind")),
    }
}

/// Parses `WkSs` (e.g. `5k2s`).
fn parse_kernel_stride(network: &str, s: &str) -> Result<(usize, usize), ParseTopologyError> {
    let err = |m: &str| ParseTopologyError::new(network, format!("suffix `{s}`: {m}"));
    let kpos = s.find('k').ok_or_else(|| err("missing `k`"))?;
    let spos = s.find('s').ok_or_else(|| err("missing `s`"))?;
    if spos != s.len() - 1 || kpos + 1 >= spos {
        return Err(err("expected `<W>k<S>s`"));
    }
    let kernel = s[..kpos].parse().map_err(|_| err("bad kernel"))?;
    let stride = s[kpos + 1..spos].parse().map_err(|_| err("bad stride"))?;
    if kernel == 0 || stride == 0 {
        return Err(err("kernel and stride must be positive"));
    }
    Ok((kernel, stride))
}

/// Splits a notation string into raw token strings, expanding
/// `(A-B-C)(WkSs)` groups.
fn tokenize(network: &str, s: &str) -> Result<Vec<String>, ParseTopologyError> {
    let err = |m: &str| ParseTopologyError::new(network, m.to_string());
    let mut out = Vec::new();
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '-' {
            i += 1;
            continue;
        }
        if chars[i] == '(' {
            let close = (i + 1..chars.len())
                .find(|&j| chars[j] == ')')
                .ok_or_else(|| err("unbalanced `(`"))?;
            let body: String = chars[i + 1..close].iter().collect();
            // The group must be followed immediately by a `(WkSs)` suffix.
            if close + 1 >= chars.len() || chars[close + 1] != '(' {
                return Err(err(
                    "layer group must be followed by a (kernel/stride) group",
                ));
            }
            let close2 = (close + 2..chars.len())
                .find(|&j| chars[j] == ')')
                .ok_or_else(|| err("unbalanced suffix `(`"))?;
            let suffix: String = chars[close + 2..close2].iter().collect();
            for part in body.split('-').filter(|p| !p.is_empty()) {
                out.push(format!("{part}{suffix}"));
            }
            i = close2 + 1;
        } else {
            let end = (i..chars.len())
                .find(|&j| chars[j] == '-' || chars[j] == '(')
                .unwrap_or(chars.len());
            if chars.get(end) == Some(&'(') {
                return Err(err("unexpected `(` inside a token"));
            }
            out.push(chars[i..end].iter().collect());
            i = end;
        }
    }
    if out.is_empty() {
        return Err(err("empty topology"));
    }
    Ok(out)
}

/// Parses one network side of a Table V row.
///
/// `dims` is the spatial dimensionality (2 or 3) and `item_extent` the
/// image/volume edge length that anchors conv-chain spatial trajectories.
///
/// # Errors
///
/// Returns [`ParseTopologyError`] on malformed notation or unrealisable
/// geometry.
pub fn parse_network(
    name: &str,
    notation: &str,
    dims: u32,
    item_extent: usize,
) -> Result<NetworkSpec, ParseTopologyError> {
    let raw = tokenize(name, notation)?;
    let tokens: Vec<Token> = raw
        .iter()
        .map(|t| parse_token(name, t))
        .collect::<Result<_, _>>()?;

    // --- Pass 1: spatial trajectory for every conv-like token. ---
    // Conv-like tokens form contiguous segments separated by FC tokens.
    let conv_positions: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t, Token::ConvLike { .. }))
        .map(|(i, _)| i)
        .collect();
    let mut spatial_in = vec![0usize; tokens.len()];
    let mut spatial_out = vec![0usize; tokens.len()];
    let mut seg_start = 0;
    while seg_start < conv_positions.len() {
        // Find the contiguous run of conv positions.
        let mut seg_end = seg_start;
        while seg_end + 1 < conv_positions.len()
            && conv_positions[seg_end + 1] == conv_positions[seg_end] + 1
        {
            seg_end += 1;
        }
        let seg: &[usize] = &conv_positions[seg_start..=seg_end];
        let starts_network = seg[0] == 0;
        let ends_network = {
            // The segment ends the network if only output-spec tokens follow.
            tokens[seg[seg.len() - 1] + 1..]
                .iter()
                .all(|t| matches!(t, Token::FinalChannels(_)))
        };
        if starts_network {
            // Anchor at the start: the first conv consumes the item.
            let mut cur = item_extent;
            for &p in seg {
                let Token::ConvLike {
                    transposed, stride, ..
                } = tokens[p]
                else {
                    unreachable!()
                };
                spatial_in[p] = cur;
                cur = if transposed {
                    cur * stride
                } else {
                    cur.div_ceil(stride)
                };
                spatial_out[p] = cur;
            }
        } else if ends_network {
            // Anchor at the end: the last conv produces the item.
            let mut cur = item_extent;
            for &p in seg.iter().rev() {
                let Token::ConvLike {
                    transposed, stride, ..
                } = tokens[p]
                else {
                    unreachable!()
                };
                spatial_out[p] = cur;
                cur = if transposed {
                    cur.div_ceil(stride)
                } else {
                    cur * stride
                };
                spatial_in[p] = cur;
            }
        } else {
            return Err(ParseTopologyError::new(
                name,
                "a convolution chain must touch the start or the end of the network",
            ));
        }
        seg_start = seg_end + 1;
    }

    // --- Pass 2: emit layers with channel chaining. ---
    let mut layers = Vec::new();
    let mut i = 0;
    // Flattened width of the data currently flowing (None before any layer).
    let mut flat: Option<u128> = None;
    while i < tokens.len() {
        match tokens[i] {
            Token::ConvLike {
                in_channels,
                transposed,
                kernel,
                stride,
            } => {
                let out_channels = match tokens.get(i + 1) {
                    Some(Token::ConvLike { in_channels, .. }) => *in_channels,
                    Some(Token::FinalChannels(k)) => *k,
                    _ => in_channels,
                };
                let (sin, sout) = (spatial_in[i], spatial_out[i]);
                let layer = if transposed {
                    let geometry = TconvGeometry::for_target(sin, kernel, stride, sout)
                        .filter(|g| g.output == sout)
                        .ok_or_else(|| {
                            ParseTopologyError::new(
                                name,
                                format!(
                                    "no T-CONV geometry realises {sin}->{sout} with \
                                     kernel {kernel} stride 1/{stride}"
                                ),
                            )
                        })?;
                    Layer::Tconv(TconvLayer {
                        in_channels,
                        out_channels,
                        geometry,
                    })
                } else {
                    let geometry = (0..kernel)
                        .filter_map(|p| SconvGeometry::new(sin, kernel, stride, p))
                        .find(|g| g.output == sout)
                        .ok_or_else(|| {
                            ParseTopologyError::new(
                                name,
                                format!(
                                    "no padding realises conv {sin}->{sout} with \
                                     kernel {kernel} stride {stride}"
                                ),
                            )
                        })?;
                    Layer::Conv(ConvLayer {
                        in_channels,
                        out_channels,
                        geometry,
                    })
                };
                flat = Some(out_channels as u128 * (sout as u128).pow(dims));
                layers.push(layer);
                // Consume a FinalChannels spec if it closed this chain.
                if matches!(tokens.get(i + 1), Some(Token::FinalChannels(_))) {
                    i += 1;
                }
                i += 1;
            }
            Token::FcIn(n) => {
                // Bridge in if the incoming flat width disagrees (bottleneck
                // FC, see module docs).
                if let Some(f) = flat {
                    if f != n as u128 {
                        layers.push(Layer::Fc(FcLayer {
                            in_units: f as usize,
                            out_units: n,
                        }));
                    }
                }
                // Output width: what the next token needs.
                let out_units = match tokens.get(i + 1) {
                    Some(Token::ConvLike { in_channels: c, .. }) => {
                        *c as u128 * (spatial_in[i + 1] as u128).pow(dims)
                    }
                    Some(Token::FcIn(m)) => *m as u128,
                    Some(Token::FcOut(k)) => {
                        // `Nf-fK`: this FC maps N directly to K.
                        *k as u128
                    }
                    Some(Token::FinalChannels(_)) | None => {
                        return Err(ParseTopologyError::new(
                            name,
                            "an FC layer needs a successor to size its output",
                        ));
                    }
                };
                layers.push(Layer::Fc(FcLayer {
                    in_units: n,
                    out_units: out_units as usize,
                }));
                flat = Some(out_units);
                // `fK` right after is consumed as this layer's output spec.
                if matches!(tokens.get(i + 1), Some(Token::FcOut(_))) {
                    i += 1;
                }
                i += 1;
            }
            Token::FcOut(k) => {
                // A trailing `fK` after a conv chain: flatten and map to K.
                let in_units = flat
                    .ok_or_else(|| ParseTopologyError::new(name, "`fK` cannot start a network"))?
                    as usize;
                layers.push(Layer::Fc(FcLayer {
                    in_units,
                    out_units: k,
                }));
                flat = Some(k as u128);
                i += 1;
            }
            Token::FinalChannels(_) => {
                return Err(ParseTopologyError::new(
                    name,
                    "`tK` must directly follow a transposed-convolution chain",
                ));
            }
        }
    }

    Ok(NetworkSpec {
        name: name.to_string(),
        layers,
        dims,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_expands_groups() {
        let t = tokenize("t", "100f-(1024t-512t-256t-128t)(5k2s)-t3").unwrap();
        assert_eq!(
            t,
            vec![
                "100f",
                "1024t5k2s",
                "512t5k2s",
                "256t5k2s",
                "128t5k2s",
                "t3"
            ]
        );
    }

    #[test]
    fn tokenize_rejects_unbalanced() {
        assert!(tokenize("t", "(1024t-512t(5k2s)").is_err());
        assert!(tokenize("t", "(1024t)").is_err());
        assert!(tokenize("t", "").is_err());
    }

    #[test]
    fn token_kinds() {
        assert_eq!(parse_token("t", "100f").unwrap(), Token::FcIn(100));
        assert_eq!(parse_token("t", "f11").unwrap(), Token::FcOut(11));
        assert_eq!(parse_token("t", "t3").unwrap(), Token::FinalChannels(3));
        assert_eq!(
            parse_token("t", "512c5k2s").unwrap(),
            Token::ConvLike {
                in_channels: 512,
                transposed: false,
                kernel: 5,
                stride: 2
            }
        );
        assert_eq!(
            parse_token("t", "128t4k1s").unwrap(),
            Token::ConvLike {
                in_channels: 128,
                transposed: true,
                kernel: 4,
                stride: 1
            }
        );
        assert!(parse_token("t", "128x").is_err());
        assert!(parse_token("t", "128c").is_err());
        assert!(parse_token("t", "").is_err());
    }

    #[test]
    fn dcgan_generator_structure() {
        let net = parse_network(
            "DCGAN generator",
            "100f-(1024t-512t-256t-128t)(5k2s)-t3",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 5);
        // FC 100 -> 1024 x 4 x 4.
        let Layer::Fc(fc) = net.layers[0] else {
            panic!("expected FC first");
        };
        assert_eq!((fc.in_units, fc.out_units), (100, 1024 * 16));
        // Channel chain 1024 -> 512 -> 256 -> 128 -> 3.
        let chans: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.fan_in_channels(), l.fan_out_channels()))
            .collect();
        assert_eq!(chans, vec![(1024, 512), (512, 256), (256, 128), (128, 3)]);
        // Spatial chain 4 -> 8 -> 16 -> 32 -> 64.
        let spatial: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.in_spatial(), l.out_spatial()))
            .collect();
        assert_eq!(spatial, vec![(4, 8), (8, 16), (16, 32), (32, 64)]);
    }

    #[test]
    fn dcgan_discriminator_structure() {
        let net = parse_network(
            "DCGAN discriminator",
            "(3c-128c-256c-512c-1024c)(5k2s)-f1",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 6);
        let spatial: Vec<usize> = net.layers[..5].iter().map(|l| l.out_spatial()).collect();
        assert_eq!(spatial, vec![32, 16, 8, 4, 2]);
        let Layer::Fc(fc) = net.layers[5] else {
            panic!("expected trailing FC");
        };
        assert_eq!(fc.out_units, 1);
        assert_eq!(fc.in_units, 1024 * 4);
    }

    #[test]
    fn magan_generator_structure() {
        let net = parse_network("MAGAN generator", "50f-128t7k1s-64t4k2s-t1", 2, 28).unwrap();
        assert_eq!(net.layers.len(), 3);
        let Layer::Fc(fc) = net.layers[0] else {
            panic!()
        };
        assert_eq!((fc.in_units, fc.out_units), (50, 128 * 14 * 14));
        let Layer::Tconv(t1) = net.layers[1] else {
            panic!()
        };
        assert_eq!((t1.geometry.input, t1.geometry.output), (14, 14));
        let Layer::Tconv(t2) = net.layers[2] else {
            panic!()
        };
        assert_eq!((t2.geometry.input, t2.geometry.output), (14, 28));
        assert_eq!((t2.in_channels, t2.out_channels), (64, 1));
    }

    #[test]
    fn magan_discriminator_is_fully_connected() {
        let net = parse_network("MAGAN discriminator", "784f-256f-256f-784f-f11", 2, 28).unwrap();
        assert!(net.is_fully_connected());
        let widths: Vec<(usize, usize)> = net
            .layers
            .iter()
            .map(|l| (l.fan_in_channels(), l.fan_out_channels()))
            .collect();
        assert_eq!(widths, vec![(784, 256), (256, 256), (256, 784), (784, 11)]);
    }

    #[test]
    fn discogan_4pairs_generator_has_both_conv_kinds() {
        let net = parse_network(
            "DiscoGAN-4pairs generator",
            "(3c-64c-128c-256c-512t-256t-128t-64t)(4k2s)-t3",
            2,
            64,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 8);
        assert!(net.has_sconv() && net.has_tconv());
        let spatial: Vec<usize> = net.layers.iter().map(|l| l.out_spatial()).collect();
        assert_eq!(spatial, vec![32, 16, 8, 4, 8, 16, 32, 64]);
        assert_eq!(net.layers[7].fan_out_channels(), 3);
    }

    #[test]
    fn discogan_5pairs_has_bottleneck_fcs() {
        let net = parse_network(
            "DiscoGAN-5pairs generator",
            "(3c-64c-128c-256c-512c)(4k2s)-100f-(512t-256t-128t-64t)(4k2s)-t3",
            2,
            64,
        )
        .unwrap();
        // 5 convs + bridge FC (2048->100) + FC (100->8192) + 4 T-CONVs.
        assert_eq!(net.layers.len(), 11);
        let Layer::Fc(bridge) = net.layers[5] else {
            panic!("expected bridging FC");
        };
        assert_eq!((bridge.in_units, bridge.out_units), (512 * 4, 100));
        let Layer::Fc(expand) = net.layers[6] else {
            panic!("expected expansion FC");
        };
        assert_eq!((expand.in_units, expand.out_units), (100, 512 * 16));
        let Layer::Tconv(first_t) = net.layers[7] else {
            panic!("expected T-CONV after FCs");
        };
        assert_eq!(first_t.geometry.input, 4);
    }

    #[test]
    fn artgan_generator_handles_stride1_layers() {
        let net = parse_network(
            "ArtGAN generator",
            "100f-1024t4k1s-512t4k2s-256t4k2s-128t4k2s-128t3k1s-t3",
            2,
            32,
        )
        .unwrap();
        assert_eq!(net.layers.len(), 6);
        let spatial: Vec<(usize, usize)> = net.layers[1..]
            .iter()
            .map(|l| (l.in_spatial(), l.out_spatial()))
            .collect();
        assert_eq!(spatial, vec![(4, 4), (4, 8), (8, 16), (16, 32), (32, 32)]);
    }

    #[test]
    fn volumetric_3dgan_fc_sizes_cube() {
        let net =
            parse_network("3D-GAN generator", "100f-(512t-256t-128t)(4k2s)-t3", 3, 64).unwrap();
        let Layer::Fc(fc) = net.layers[0] else {
            panic!()
        };
        // 64 / 2^3 = 8 start extent, cubed for a volumetric network.
        assert_eq!(fc.out_units, 512 * 8 * 8 * 8);
    }

    #[test]
    fn gan_spec_parses_full_row() {
        let g = GanSpec::parse(
            "DCGAN",
            "100f-(1024t-512t-256t-128t)(5k2s)-t3",
            "(3c-128c-256c-512c-1024c)(5k2s)-f1",
            &[64, 64],
        )
        .unwrap();
        assert_eq!(g.batch_size, 64);
        assert_eq!(g.generator.dims, 2);
        assert!(g.generator.has_tconv());
        assert!(!g.discriminator.has_tconv());
    }

    #[test]
    fn render_round_trips_every_benchmark() {
        use crate::benchmarks;
        for gan in benchmarks::all() {
            for net in [&gan.generator, &gan.discriminator] {
                let notation = render_notation(net);
                let reparsed = parse_network(
                    &net.name,
                    &notation,
                    net.dims,
                    // The item extent anchors spatial chains; recover it
                    // from the network's own boundary layers.
                    gan.item_size[0],
                )
                .unwrap_or_else(|e| panic!("{}: `{notation}`: {e}", net.name));
                assert_eq!(
                    reparsed.layers, net.layers,
                    "{}: round trip through `{notation}`",
                    net.name
                );
            }
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let e = parse_network("X", "100f", 2, 64).unwrap_err();
        assert!(e.to_string().contains("successor"));
        let e = parse_network("X", "f1-3c4k2s", 2, 64).unwrap_err();
        assert!(e.to_string().contains("cannot start"));
    }
}
