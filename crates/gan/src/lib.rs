//! GAN topologies, training dataflows and a functional training substrate
//! for the LerGAN reproduction.
//!
//! The crate provides five things:
//!
//! * [`topology`] — a parser for the paper's compact Table V notation
//!   (`100f-(1024t-512t-256t-128t)(5k2s)-t3`) producing layer-exact
//!   [`NetworkSpec`]s, and [`benchmarks`] with the eight evaluated GANs.
//! * [`ir`] — the shared op-graph IR: one [`ir::OpGraph`] per GAN, built
//!   once from the [`GanSpec`], whose [`ir::PhaseOp`] nodes carry the phase,
//!   layer, zero structure, GEMM shape, B1–B6 bank and dataflow edges. The
//!   analytic workloads, the functional trainer and `lergan-core`'s
//!   compiler/schedule are all lowered from it.
//! * [`phase`] / [`workload`] — the six training phases of Fig. 3
//!   (G→, D→, D←, D-weight-grad, G←, G-weight-grad) and, for every
//!   (phase, layer) pair, a [`workload::ConvWorkload`] characterising the
//!   convolution it performs: dense, zero-inserted-input (T-CONV-like) or
//!   zero-inserted-kernel (W-CONV-S) — the classification that decides which
//!   ZFDR interface applies (Sec. V "Interface").
//! * [`train`] — a small functional GAN trainer (forward/backward/SGD over
//!   real `f32` tensors) proving the substrate end-to-end on synthetic data.
//! * [`analysis`] — zero-fraction analytics per network and phase
//!   (Sec. III-A).
//!
//! # Example
//!
//! ```
//! use lergan_gan::benchmarks;
//! use lergan_gan::phase::Phase;
//!
//! let dcgan = benchmarks::dcgan();
//! assert_eq!(dcgan.generator.layers.len(), 5); // 1 FC + 4 T-CONV
//! let fwd = dcgan.workloads(Phase::GForward);
//! // Every generator T-CONV inserts zeros in its forward pass.
//! assert!(fwd.iter().filter(|w| w.kind.is_zero_inserted_input()).count() >= 4);
//! ```

pub mod analysis;
pub mod benchmarks;
pub mod data;
pub mod ir;
pub mod layer;
pub mod phase;
pub mod topology;
pub mod train;
pub mod workload;

pub use ir::{BankSlot, GemmShape, OpGraph, OpId, PhaseOp};
pub use layer::{ConvLayer, FcLayer, Layer, TconvLayer};
pub use phase::Phase;
pub use topology::{GanSpec, NetworkSpec, ParseTopologyError};
pub use train::{
    pack_batch, tree_reduce_in_place, CheckpointError, Gan, GanCheckpoint, LayerState, OpBinding,
    Sequential, TrainError, UpdateRule,
};
pub use workload::{ConvWorkload, WorkloadKind};
