//! The six training phases of Fig. 3.
//!
//! Training one GAN iteration interleaves forward propagation, error
//! transfer and ∇weight calculation across both models. The paper denotes
//! them G→, D→, D←, D-weight, G←, G-weight; the discriminator phases run
//! while training either model, the generator backward phases only while
//! training the generator.

use std::fmt;

/// One of the six training phases of a GAN iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Generator forward propagation (`G→`), dominated by T-CONV.
    GForward,
    /// Discriminator forward propagation (`D→`), dominated by S-CONV.
    DForward,
    /// Discriminator error transfer (`D←`), Eq. 3 — T-CONV-shaped.
    DBackward,
    /// Discriminator ∇weight calculation (`D-w`), Eq. 4 — W-CONV-S-shaped.
    DWeightGrad,
    /// Generator error transfer (`G←`) — S-CONV-shaped for T-CONV layers.
    GBackward,
    /// Generator ∇weight calculation (`G-w`) — zero-inserted-input shaped.
    GWeightGrad,
}

impl Phase {
    /// All six phases in dataflow order.
    pub const ALL: [Phase; 6] = [
        Phase::GForward,
        Phase::DForward,
        Phase::DBackward,
        Phase::DWeightGrad,
        Phase::GBackward,
        Phase::GWeightGrad,
    ];

    /// Whether this phase runs over the generator network (as opposed to
    /// the discriminator network).
    pub fn is_generator_phase(self) -> bool {
        matches!(
            self,
            Phase::GForward | Phase::GBackward | Phase::GWeightGrad
        )
    }

    /// Whether this is a forward-propagation phase.
    pub fn is_forward(self) -> bool {
        matches!(self, Phase::GForward | Phase::DForward)
    }

    /// Whether this is a ∇weight-calculation phase.
    pub fn is_weight_grad(self) -> bool {
        matches!(self, Phase::GWeightGrad | Phase::DWeightGrad)
    }

    /// The paper's arrow notation for the phase.
    pub fn arrow(self) -> &'static str {
        match self {
            Phase::GForward => "G→",
            Phase::DForward => "D→",
            Phase::DBackward => "D←",
            Phase::DWeightGrad => "D-w",
            Phase::GBackward => "G←",
            Phase::GWeightGrad => "G-w",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.arrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Phase::GForward.is_generator_phase());
        assert!(Phase::GForward.is_forward());
        assert!(!Phase::DForward.is_generator_phase());
        assert!(Phase::DWeightGrad.is_weight_grad());
        assert!(!Phase::DBackward.is_weight_grad());
    }

    #[test]
    fn all_distinct() {
        let mut v = Phase::ALL.to_vec();
        v.dedup();
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn display_uses_arrows() {
        assert_eq!(Phase::GForward.to_string(), "G→");
        assert_eq!(Phase::DWeightGrad.to_string(), "D-w");
    }
}
