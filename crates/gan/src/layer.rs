//! Layer descriptors for the Table V networks.
//!
//! Layers are *descriptors*, not trainable objects (see [`crate::train`]
//! for those): they carry exact spatial geometry so that the workload
//! characterisation and ZFDR analysis downstream are layer-exact. All
//! counting methods take the network dimensionality (`2` for images, `3`
//! for 3D-GAN's volumes) so volumetric layers cube their spatial terms.

use lergan_tensor::{DconvGeometry, SconvGeometry, TconvGeometry};

/// A fully-connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcLayer {
    /// Input unit count.
    pub in_units: usize,
    /// Output unit count.
    pub out_units: usize,
}

/// A strided convolution layer (S-CONV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvLayer {
    /// Input feature-map count.
    pub in_channels: usize,
    /// Output feature-map count.
    pub out_channels: usize,
    /// Spatial geometry (input extent, kernel, stride, pad, output extent).
    pub geometry: SconvGeometry,
}

/// A transposed convolution layer (T-CONV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TconvLayer {
    /// Input feature-map count.
    pub in_channels: usize,
    /// Output feature-map count.
    pub out_channels: usize,
    /// Spatial geometry including the zero-insertion parameters.
    pub geometry: TconvGeometry,
}

/// A dilated and/or asymmetric strided convolution layer (D-CONV).
///
/// Covers dilation ≥ 1 and `Kh×Kw` / `Sh×Sw` geometry. A dilation-1
/// symmetric configuration is normalised to [`Layer::Conv`] by the
/// topology parser, so a `Dconv` layer always carries genuinely new
/// structure (zero-inserted kernel and/or per-axis geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DconvLayer {
    /// Input feature-map count.
    pub in_channels: usize,
    /// Output feature-map count.
    pub out_channels: usize,
    /// Per-axis spatial geometry including dilation.
    pub geometry: DconvGeometry,
}

/// Per-layer normalisation variant in the op algebra.
///
/// `Legacy` preserves the pre-algebra behaviour: the trainer's
/// network-wide `batch_norm` flag decides whether a conv-like layer is
/// followed by BatchNorm. Explicitly tagged layers (`bn`/`pn`/`nn` in
/// the topology grammar) override that flag per layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Norm {
    /// Untagged: defer to the network-wide trainer flag (pre-algebra
    /// behaviour; keeps the eight Table V GANs bit-identical).
    #[default]
    Legacy,
    /// Batch normalisation after this layer.
    Batch,
    /// Pixel normalisation (per-position channel RMS) after this layer.
    Pixel,
    /// No normalisation after this layer, regardless of the flag.
    None,
}

impl Norm {
    /// The grammar suffix of an explicit tag (`None` for [`Norm::Legacy`]).
    pub fn suffix(&self) -> Option<&'static str> {
        match self {
            Norm::Legacy => None,
            Norm::Batch => Some("bn"),
            Norm::Pixel => Some("pn"),
            Norm::None => Some("nn"),
        }
    }
}

/// Any layer of a Table V network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Fully connected.
    Fc(FcLayer),
    /// Strided convolution.
    Conv(ConvLayer),
    /// Transposed convolution.
    Tconv(TconvLayer),
    /// Dilated / asymmetric strided convolution.
    Dconv(DconvLayer),
}

fn powd(base: usize, dims: u32) -> u128 {
    (base as u128).pow(dims)
}

impl Layer {
    /// Number of weight values (no biases; the paper's accounting ignores
    /// them too, as they are negligible next to the kernels).
    pub fn weight_count(&self, dims: u32) -> u128 {
        match self {
            Layer::Fc(f) => f.in_units as u128 * f.out_units as u128,
            Layer::Conv(c) => {
                c.in_channels as u128 * c.out_channels as u128 * powd(c.geometry.kernel, dims)
            }
            Layer::Tconv(t) => {
                t.in_channels as u128 * t.out_channels as u128 * powd(t.geometry.kernel, dims)
            }
            // Only the true taps are stored (the dilation zeros are never
            // materialised by the zero-free mapping).
            Layer::Dconv(dc) => {
                dc.in_channels as u128 * dc.out_channels as u128 * dc.geometry.kernel_taps() as u128
            }
        }
    }

    /// Number of input activation values (pre zero-insertion).
    pub fn input_count(&self, dims: u32) -> u128 {
        match self {
            Layer::Fc(f) => f.in_units as u128,
            Layer::Conv(c) => c.in_channels as u128 * powd(c.geometry.input, dims),
            Layer::Tconv(t) => t.in_channels as u128 * powd(t.geometry.input, dims),
            Layer::Dconv(dc) => {
                dc.in_channels as u128
                    * dc.geometry.rows.input as u128
                    * dc.geometry.cols.input as u128
            }
        }
    }

    /// Number of output activation values.
    pub fn output_count(&self, dims: u32) -> u128 {
        match self {
            Layer::Fc(f) => f.out_units as u128,
            Layer::Conv(c) => c.out_channels as u128 * powd(c.geometry.output, dims),
            Layer::Tconv(t) => t.out_channels as u128 * powd(t.geometry.output, dims),
            Layer::Dconv(dc) => {
                dc.out_channels as u128
                    * dc.geometry.rows.output as u128
                    * dc.geometry.cols.output as u128
            }
        }
    }

    /// Dense forward multiply-accumulate count, *including* any
    /// zero-touching work the naive formulation performs (T-CONV layers
    /// count the full expanded-window scan).
    pub fn forward_macs_dense(&self, dims: u32) -> u128 {
        match self {
            Layer::Fc(f) => f.in_units as u128 * f.out_units as u128,
            Layer::Conv(c) => {
                c.in_channels as u128
                    * c.out_channels as u128
                    * powd(c.geometry.output, dims)
                    * powd(c.geometry.kernel, dims)
            }
            Layer::Tconv(t) => {
                t.in_channels as u128
                    * t.out_channels as u128
                    * powd(t.geometry.output, dims)
                    * powd(t.geometry.kernel, dims)
            }
            // The naive formulation scans the full zero-inserted
            // (effective-extent) kernel at every output position.
            Layer::Dconv(dc) => {
                dc.in_channels as u128
                    * dc.out_channels as u128
                    * dc.geometry.total_multiplications_per_pair() as u128
            }
        }
    }

    /// Forward multiply-accumulates that touch a useful (non-inserted)
    /// value. Equal to the dense count except for zero-inserted layers
    /// (T-CONV input zeros, D-CONV kernel zeros).
    pub fn forward_macs_useful(&self, dims: u32) -> u128 {
        match self {
            Layer::Tconv(t) => {
                t.in_channels as u128
                    * t.out_channels as u128
                    * (t.geometry.useful_row_weight_sum() as u128).pow(dims)
            }
            Layer::Dconv(dc) => {
                dc.in_channels as u128
                    * dc.out_channels as u128
                    * dc.geometry.useful_multiplications_per_pair() as u128
            }
            _ => self.forward_macs_dense(dims),
        }
    }

    /// The `[m, k] × [k, n]` shape of the im2col GEMM this layer's forward
    /// pass executes (T-CONV as the stride-1 S-CONV over the zero-inserted
    /// input, so `m·k·n` always equals [`Layer::forward_macs_dense`]).
    ///
    /// FC layers are their own GEMV: `m` output units, `k` input units,
    /// one column.
    pub fn forward_gemm_shape(&self, dims: u32) -> (u128, u128, u128) {
        match self {
            Layer::Fc(f) => (f.out_units as u128, f.in_units as u128, 1),
            Layer::Conv(c) => (
                c.out_channels as u128,
                c.in_channels as u128 * powd(c.geometry.kernel, dims),
                powd(c.geometry.output, dims),
            ),
            Layer::Tconv(t) => (
                t.out_channels as u128,
                t.in_channels as u128 * powd(t.geometry.kernel, dims),
                powd(t.geometry.output, dims),
            ),
            Layer::Dconv(dc) => {
                let g = &dc.geometry;
                (
                    dc.out_channels as u128,
                    dc.in_channels as u128
                        * g.rows.effective_kernel() as u128
                        * g.cols.effective_kernel() as u128,
                    g.rows.output as u128 * g.cols.output as u128,
                )
            }
        }
    }

    /// Human-oriented kind tag (`f`, `c` or `t`, as in the Table V
    /// notation; D-CONV renders as a `c` token with suffixes).
    pub fn kind_tag(&self) -> char {
        match self {
            Layer::Fc(_) => 'f',
            Layer::Conv(_) | Layer::Dconv(_) => 'c',
            Layer::Tconv(_) => 't',
        }
    }

    /// Input channels for conv-like layers, input units for FC.
    pub fn fan_in_channels(&self) -> usize {
        match self {
            Layer::Fc(f) => f.in_units,
            Layer::Conv(c) => c.in_channels,
            Layer::Tconv(t) => t.in_channels,
            Layer::Dconv(dc) => dc.in_channels,
        }
    }

    /// Output channels for conv-like layers, output units for FC.
    pub fn fan_out_channels(&self) -> usize {
        match self {
            Layer::Fc(f) => f.out_units,
            Layer::Conv(c) => c.out_channels,
            Layer::Tconv(t) => t.out_channels,
            Layer::Dconv(dc) => dc.out_channels,
        }
    }

    /// Spatial output extent (1 for FC layers; D-CONV geometry is
    /// constrained to square outputs by the parser, so the row extent is
    /// the extent).
    pub fn out_spatial(&self) -> usize {
        match self {
            Layer::Fc(_) => 1,
            Layer::Conv(c) => c.geometry.output,
            Layer::Tconv(t) => t.geometry.output,
            Layer::Dconv(dc) => dc.geometry.rows.output,
        }
    }

    /// Spatial input extent (1 for FC layers).
    pub fn in_spatial(&self) -> usize {
        match self {
            Layer::Fc(_) => 1,
            Layer::Conv(c) => c.geometry.input,
            Layer::Tconv(t) => t.geometry.input,
            Layer::Dconv(dc) => dc.geometry.rows.input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcgan_conv1() -> Layer {
        Layer::Tconv(TconvLayer {
            in_channels: 1024,
            out_channels: 512,
            geometry: TconvGeometry::for_upsampling(4, 5, 2).unwrap(),
        })
    }

    #[test]
    fn conv1_counts_match_paper() {
        let l = dcgan_conv1();
        assert_eq!(l.weight_count(2), 1024 * 512 * 25);
        assert_eq!(l.input_count(2), 1024 * 16);
        assert_eq!(l.output_count(2), 512 * 64);
        // Dense vs useful MACs reproduce the 18.06% efficiency example.
        let dense = l.forward_macs_dense(2);
        let useful = l.forward_macs_useful(2);
        assert_eq!(dense, 512 * 1024 * 64 * 25);
        let eff = useful as f64 / dense as f64;
        assert!((eff - 0.1806).abs() < 1e-3);
    }

    #[test]
    fn gemm_shape_volume_equals_dense_macs() {
        let layers = [
            dcgan_conv1(),
            Layer::Fc(FcLayer {
                in_units: 100,
                out_units: 16384,
            }),
            Layer::Conv(ConvLayer {
                in_channels: 3,
                out_channels: 128,
                geometry: SconvGeometry::new(64, 5, 2, 2).unwrap(),
            }),
        ];
        for l in layers {
            for dims in [2, 3] {
                let (m, k, n) = l.forward_gemm_shape(dims);
                assert_eq!(m * k * n, l.forward_macs_dense(dims), "{l:?}");
            }
        }
    }

    #[test]
    fn fc_counts() {
        let l = Layer::Fc(FcLayer {
            in_units: 100,
            out_units: 16384,
        });
        assert_eq!(l.weight_count(2), 1_638_400);
        assert_eq!(l.forward_macs_dense(2), l.forward_macs_useful(2));
        assert_eq!(l.out_spatial(), 1);
    }

    #[test]
    fn volumetric_counts_cube() {
        let geom = TconvGeometry::for_upsampling(4, 4, 2).unwrap();
        let l = Layer::Tconv(TconvLayer {
            in_channels: 8,
            out_channels: 4,
            geometry: geom,
        });
        // dims=3 cubes spatial and kernel extents.
        assert_eq!(l.weight_count(3), 8 * 4 * 64);
        assert_eq!(l.input_count(3), 8 * 64);
        assert_eq!(l.output_count(3), 4 * 512);
        assert!(l.forward_macs_useful(3) < l.forward_macs_dense(3));
    }

    #[test]
    fn conv_layer_counts() {
        let l = Layer::Conv(ConvLayer {
            in_channels: 3,
            out_channels: 128,
            geometry: SconvGeometry::new(64, 5, 2, 2).unwrap(),
        });
        assert_eq!(l.out_spatial(), 32);
        assert_eq!(l.forward_macs_dense(2), 3 * 128 * 32 * 32 * 25);
        assert_eq!(l.forward_macs_dense(2), l.forward_macs_useful(2));
    }
}
