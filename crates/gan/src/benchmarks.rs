//! The eight GAN benchmarks of Table V.
//!
//! Each function parses the exact Table V row. `all()` returns them in the
//! table's order, which is also the x-axis order of Fig. 16–22.

use crate::topology::GanSpec;

/// DCGAN (Radford et al.), 64×64 items.
pub fn dcgan() -> GanSpec {
    GanSpec::parse(
        "DCGAN",
        "100f-(1024t-512t-256t-128t)(5k2s)-t3",
        "(3c-128c-256c-512c-1024c)(5k2s)-f1",
        &[64, 64],
    )
    .expect("Table V row is well-formed")
}

/// cGAN (context encoders), 64×64 items.
pub fn cgan() -> GanSpec {
    GanSpec::parse(
        "cGAN",
        "100f-(256t-128t-64t)(4k2s)-t3",
        "(3c-64c-128c-256c)(4k2s)-f1",
        &[64, 64],
    )
    .expect("Table V row is well-formed")
}

/// 3D-GAN, 64×64×64 volumetric items.
pub fn threed_gan() -> GanSpec {
    GanSpec::parse(
        "3D-GAN",
        "100f-(512t-256t-128t)(4k2s)-t3",
        "(1c-64c-128c-256c-512c)(4k2s)-f1",
        &[64, 64, 64],
    )
    .expect("Table V row is well-formed")
}

/// ArtGAN on CIFAR-10, 32×32 items (11-way discriminator output).
pub fn artgan_cifar10() -> GanSpec {
    GanSpec::parse(
        "ArtGAN-CIFAR-10",
        "100f-1024t4k1s-512t4k2s-256t4k2s-128t4k2s-128t3k1s-t3",
        "3c4k2s-128c3k1s-(128c-256c-512c-1024c)(4k2s)-f11",
        &[32, 32],
    )
    .expect("Table V row is well-formed")
}

/// GP-GAN, 64×64 items.
pub fn gpgan() -> GanSpec {
    GanSpec::parse(
        "GPGAN",
        "100f-(512t-256t-128t-64t)(4k2s)-t3",
        "(3c-64c-128c-256c-512c)(4k2s)-f1",
        &[64, 64],
    )
    .expect("Table V row is well-formed")
}

/// MAGAN on MNIST, 28×28 items, fully-connected discriminator.
pub fn magan_mnist() -> GanSpec {
    GanSpec::parse(
        "MAGAN-MNIST",
        "50f-128t7k1s-64t4k2s-t1",
        "784f-256f-256f-784f-f11",
        &[28, 28],
    )
    .expect("Table V row is well-formed")
}

/// DiscoGAN with 4 domain pairs: the generator holds both S-CONV and
/// T-CONV layers, so five phases use ZFDR.
pub fn discogan_4pairs() -> GanSpec {
    GanSpec::parse(
        "DiscoGAN-4pairs",
        "(3c-64c-128c-256c-512t-256t-128t-64t)(4k2s)-t3",
        "(3c-64c-128c-256c-512c)(4k2s)-f1",
        &[64, 64],
    )
    .expect("Table V row is well-formed")
}

/// DiscoGAN with 5 domain pairs: encoder–bottleneck–decoder generator.
pub fn discogan_5pairs() -> GanSpec {
    GanSpec::parse(
        "DiscoGAN-5pairs",
        "(3c-64c-128c-256c-512c)(4k2s)-100f-(512t-256t-128t-64t)(4k2s)-t3",
        "(3c-64c-128c-256c-512c)(4k2s)-f1",
        &[64, 64],
    )
    .expect("Table V row is well-formed")
}

/// Residual dilated-refiner GAN, 32×32 items — the first extended-grammar
/// benchmark: both networks carry dilated convolutions (`2d`/`4d`) and a
/// residual skip (`+2`), so every backend must lower D-CONV workloads and
/// skip dataflow edges.
pub fn res_dilated_gan() -> GanSpec {
    GanSpec::parse(
        "ResDilatedGAN",
        "100f-(256t-128t)(4k2s)-64c3k1s2d+2-64c3k1s-64c3k1s-t3",
        "3c4k2s-64c3k1s2d+2-64c3k1s-64c3k1s4d-(64c-128c)(4k2s)-f1",
        &[32, 32],
    )
    .expect("extended benchmark row is well-formed")
}

/// Pixel-normalised atrous GAN, 64×64 items — the second extended-grammar
/// benchmark: per-layer norm tags (`pn`, `bn`), an asymmetric `3x5`
/// kernel in the discriminator, and a dilated residual pair in the
/// generator.
pub fn atrous_pixel_gan() -> GanSpec {
    GanSpec::parse(
        "AtrousPixelGAN",
        "100f-(512t-256t-128t)(4k2s)-64c3k1s2dpn+2-64c3k1spn-64c3k1s-t3",
        "3c3x5k1x1s-64c4k2sbn-(64c-128c-256c)(4k2s)-f1",
        &[64, 64],
    )
    .expect("extended benchmark row is well-formed")
}

/// The extended-grammar benchmarks: dilated convolutions, skip edges,
/// normalisation variants and asymmetric kernels. Kept out of [`all`] so
/// the Table V result set stays byte-stable.
pub fn extended() -> Vec<GanSpec> {
    vec![res_dilated_gan(), atrous_pixel_gan()]
}

/// All eight benchmarks in Table V order.
pub fn all() -> Vec<GanSpec> {
    vec![
        dcgan(),
        cgan(),
        threed_gan(),
        artgan_cifar10(),
        gpgan(),
        magan_mnist(),
        discogan_4pairs(),
        discogan_5pairs(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;

    #[test]
    fn all_eight_parse() {
        let gans = all();
        assert_eq!(gans.len(), 8);
        let names: Vec<&str> = gans.iter().map(|g| g.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "DCGAN",
                "cGAN",
                "3D-GAN",
                "ArtGAN-CIFAR-10",
                "GPGAN",
                "MAGAN-MNIST",
                "DiscoGAN-4pairs",
                "DiscoGAN-5pairs"
            ]
        );
    }

    #[test]
    fn threed_gan_is_volumetric() {
        let g = threed_gan();
        assert_eq!(g.generator.dims, 3);
        assert_eq!(g.item_size, vec![64, 64, 64]);
        // Volumetric MAC counts dwarf the 2-D networks'.
        assert!(
            g.generator.total_forward_macs_dense() > dcgan().generator.total_forward_macs_dense()
        );
    }

    #[test]
    fn discogan_4pairs_uses_zfdr_in_five_phases() {
        // Sec. VI-C: "DiscoGAN-4pairs has 5 phases using ZFDR because its
        // generator has both S-CONV and T-CONV."
        assert_eq!(discogan_4pairs().zfdr_phases().len(), 5);
    }

    #[test]
    fn plain_tconv_gans_use_zfdr_in_four_phases() {
        for g in [dcgan(), cgan(), gpgan(), threed_gan()] {
            assert_eq!(g.zfdr_phases().len(), 4, "{}", g.name);
            let phases = g.zfdr_phases();
            assert!(phases.contains(&Phase::GForward));
            assert!(phases.contains(&Phase::GWeightGrad));
            assert!(phases.contains(&Phase::DBackward));
            assert!(phases.contains(&Phase::DWeightGrad));
        }
    }

    #[test]
    fn magan_discriminator_has_no_zfdr_phases_of_its_own() {
        // "there is no speedup on discriminator of MAGAN-MNIST, because its
        // layers are fully-connected."
        let g = magan_mnist();
        assert!(g.discriminator.is_fully_connected());
        let phases = g.zfdr_phases();
        assert!(!phases.contains(&Phase::DBackward));
        assert!(!phases.contains(&Phase::DWeightGrad));
        // Its generator's T-CONVs still use ZFDR.
        assert!(phases.contains(&Phase::GForward));
    }

    #[test]
    fn generators_end_in_image_channels() {
        for g in all() {
            let last = g.generator.layers.last().unwrap();
            assert!(
                matches!(last.fan_out_channels(), 1 | 3),
                "{} generator ends in {} channels",
                g.name,
                last.fan_out_channels()
            );
        }
    }

    #[test]
    fn discriminators_end_in_logits() {
        for g in all() {
            let last = g.discriminator.layers.last().unwrap();
            assert!(
                matches!(last.fan_out_channels(), 1 | 11),
                "{} discriminator ends in {} outputs",
                g.name,
                last.fan_out_channels()
            );
        }
    }

    #[test]
    fn generator_output_matches_item_size() {
        for g in all().into_iter().chain(extended()) {
            let last = g.generator.layers.last().unwrap();
            assert_eq!(
                last.out_spatial(),
                g.item_size[0],
                "{} generator output extent",
                g.name
            );
        }
    }

    #[test]
    fn extended_benchmarks_exercise_dconv_and_skips() {
        let gans = extended();
        assert_eq!(gans.len(), 2);
        for g in &gans {
            assert!(
                g.generator.has_dconv(),
                "{} generator exercises D-CONV",
                g.name
            );
            assert!(
                !g.generator.skips.is_empty(),
                "{} generator exercises skip edges",
                g.name
            );
        }
        // ResDilatedGAN's discriminator carries its own dilated residual
        // block; AtrousPixelGAN's carries the asymmetric 3×5 kernel.
        assert!(!gans[0].discriminator.skips.is_empty());
        assert!(gans[0].discriminator.has_dconv());
        assert!(gans[1].discriminator.has_dconv());
    }

    #[test]
    fn extended_benchmarks_stay_out_of_table_v() {
        // The Table V result set must remain byte-stable: no dilated
        // convolutions, skip edges or explicit norm tags in `all()`.
        assert_eq!(all().len(), 8);
        for g in all() {
            for net in [&g.generator, &g.discriminator] {
                assert!(!net.has_dconv(), "{}", g.name);
                assert!(net.skips.is_empty(), "{}", g.name);
                assert!(
                    net.norms.iter().all(|n| matches!(n, crate::layer::Norm::Legacy)),
                    "{}",
                    g.name
                );
            }
        }
    }

    #[test]
    fn extended_benchmarks_produce_workloads_in_every_phase() {
        for g in extended() {
            for phase in Phase::ALL {
                assert!(
                    !g.workloads(phase).is_empty(),
                    "{} lowers no workloads for {phase:?}",
                    g.name
                );
            }
        }
    }
}
