//! The shared op-graph IR: one typed description of a GAN's training
//! iteration, consumed by every backend.
//!
//! A GAN used to be described three times — the analytic workload tables
//! (`workload.rs`), the functional trainer (`train.rs`) and the
//! event-driven schedule in `lergan-core` each re-derived the per-phase
//! operation list from the parsed topology. [`OpGraph`] replaces that with
//! a single build: every (phase, layer) pair becomes one [`PhaseOp`] node
//! carrying the phase, the layer it touches, the zero structure
//! ([`WorkloadKind`] geometry inside [`ConvWorkload`]), the im2col GEMM
//! shape, the B1–B6 bank the op executes in, and producer/consumer edges.
//! The three consumers then *lower* the same graph:
//!
//! * `workload::phase_workloads` projects the per-phase [`ConvWorkload`]s
//!   out of the ops (the analytic view);
//! * `train::build_trainable_bound` constructs the functional
//!   [`Sequential`](crate::train::Sequential) from the forward ops, with a
//!   stable op-id ↔ train-layer correspondence;
//! * `lergan_core`'s compiler maps each op to CArray storage and MMV
//!   cycles, and its schedule module lowers the graph into labelled
//!   `lergan-sim` tasks.
//!
//! # Example
//!
//! ```
//! use lergan_gan::benchmarks;
//! use lergan_gan::ir::OpGraph;
//! use lergan_gan::phase::Phase;
//!
//! let graph = OpGraph::build(&benchmarks::dcgan());
//! // Six phases over a 5-layer generator and a 6-layer discriminator.
//! assert_eq!(graph.len(), 3 * 5 + 3 * 6);
//! let gf = graph.phase_ops(Phase::GForward);
//! assert_eq!(gf.len(), 5);
//! // Every op's naive GEMM accounts for exactly its dense MACs.
//! assert!(graph.ops().iter().all(|op| op.gemm.macs() == op.workload.macs_dense));
//! ```

use crate::layer::{Layer, Norm};
use crate::phase::Phase;
use crate::topology::{GanSpec, NetworkSpec};
use crate::workload::{ConvWorkload, WorkloadKind};
use lergan_tensor::{TconvGeometry, WconvGeometry};

/// Identifier of a [`PhaseOp`] inside one [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// The algebraic kind of an op — the small op algebra every backend lowers.
///
/// The kind is determined by the op's zero structure together with the layer
/// it touches: a dense op on an FC layer is [`OpKind::Fc`], a dense op on any
/// conv-like layer is S-CONV-shaped, input-zero ops are T-CONV-shaped,
/// kernel-zero ops are W-CONV-S (stride-induced) or D-CONV (dilation-induced,
/// the EcoFlow dual of T-CONV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Fully-connected matrix–vector product.
    Fc,
    /// Dense strided convolution.
    Sconv,
    /// Transposed convolution: zeros inserted in the input plane.
    Tconv,
    /// W-CONV-S weight gradient: zeros inserted in the moving `∇output`.
    Wconv,
    /// Dilated convolution: zeros inserted in the kernel by dilation.
    Dconv,
}

impl OpKind {
    /// Derives the kind from the layer and the analytic workload.
    pub fn of(layer: &Layer, workload: &ConvWorkload) -> OpKind {
        match workload.kind {
            WorkloadKind::Dense => {
                if matches!(layer, Layer::Fc(_)) {
                    OpKind::Fc
                } else {
                    OpKind::Sconv
                }
            }
            WorkloadKind::TconvInput(_) => OpKind::Tconv,
            WorkloadKind::WconvKernel(_) => OpKind::Wconv,
            WorkloadKind::DconvKernel(_) => OpKind::Dconv,
        }
    }
}

/// The bank of the 3DCU pair an op executes in — the paper's B1–B6 map:
/// forward phases on the top banks, ∇weight in the middle, error transfer
/// at the bottom; generator phases on side 0, discriminator on side 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankSlot {
    /// Which 3DCU of the pair (0 = generator, 1 = discriminator).
    pub side: usize,
    /// Which stacked bank (0 = top/forward, 1 = ∇weight, 2 = error).
    pub bank: usize,
}

impl BankSlot {
    /// The bank a phase executes in.
    pub fn for_phase(phase: Phase) -> BankSlot {
        let side = usize::from(!phase.is_generator_phase());
        let bank = match phase {
            Phase::GForward | Phase::DForward => 0,
            Phase::GWeightGrad | Phase::DWeightGrad => 1,
            Phase::GBackward | Phase::DBackward => 2,
        };
        BankSlot { side, bank }
    }

    /// Paper numbering B1–B6.
    pub fn label(&self) -> String {
        format!("B{}", self.side * 3 + self.bank + 1)
    }
}

/// The naive (zero-inserted) GEMM an op executes: `m` result positions,
/// reduction length `k`, `n` independent result channels.
///
/// For the forward and error-transfer ops this is exactly the im2col GEMM
/// the functional trainer runs (`m` output positions × `k = channels ×
/// kernel volume` × `n` output channels). For the per-pair ∇weight
/// convolutions (`W-CONV-S` and the T-CONV weight gradient) `n` counts the
/// independent (in, out) channel pairs, each reducing over its own sliding
/// window. In every case `m · k · n` equals the op's dense MAC count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Result positions per sample.
    pub m: u128,
    /// Reduction (MMV input) length.
    pub k: u128,
    /// Independent result channels (or channel pairs for ∇weight ops).
    pub n: u128,
}

impl GemmShape {
    /// Total multiply-accumulates of the GEMM: `m · k · n`.
    pub fn macs(&self) -> u128 {
        self.m * self.k * self.n
    }
}

/// One node of the op graph: a convolution-shaped operation some phase
/// performs on some layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOp {
    /// Identity inside the graph (or the standalone per-phase view).
    pub id: OpId,
    /// The phase executing this op.
    pub phase: Phase,
    /// Index of the layer inside its network.
    pub layer_index: usize,
    /// Position of this op in its phase's dataflow order (backward phases
    /// run layers in reverse, so `seq` differs from `layer_index` there).
    pub seq: usize,
    /// Algebraic kind of the op (FC / S-CONV / T-CONV / W-CONV-S / D-CONV).
    pub kind: OpKind,
    /// Normalization applied after the layer this op belongs to.
    pub norm: Norm,
    /// The analytic workload: zero structure, MAC/traffic/storage counts.
    pub workload: ConvWorkload,
    /// The naive im2col GEMM shape (`m · k · n == workload.macs_dense`).
    pub gemm: GemmShape,
    /// The B1–B6 bank the op executes in.
    pub bank: BankSlot,
    /// Ops whose results this op consumes.
    pub producers: Vec<OpId>,
    /// Ops consuming this op's results.
    pub consumers: Vec<OpId>,
}

/// The op graph of one GAN's training iteration: all six phases' ops in
/// [`Phase::ALL`] order, each phase's ops in dataflow order.
#[derive(Debug, Clone, PartialEq)]
pub struct OpGraph {
    ops: Vec<PhaseOp>,
    /// `ops` range of each phase, indexed like [`Phase::ALL`].
    spans: [(usize, usize); 6],
}

impl OpGraph {
    /// Builds the graph for a GAN: six phases over the generator and
    /// discriminator networks, chained intra-phase, plus the Fig. 3
    /// cross-phase dataflow edges (G→ feeds D→ and G-w; D→ feeds D← and
    /// D-w; D← feeds D-w and G←; G← feeds G-w).
    pub fn build(spec: &GanSpec) -> OpGraph {
        let mut ops: Vec<PhaseOp> = Vec::new();
        let mut spans = [(0usize, 0usize); 6];
        for (pi, phase) in Phase::ALL.into_iter().enumerate() {
            let base = ops.len();
            ops.extend(ops_with_base(spec.network_for(phase), phase, base));
            spans[pi] = (base, ops.len());
        }
        let mut graph = OpGraph { ops, spans };
        // Cross-phase dataflow: the last op of the producing phase feeds
        // the first op of the consuming phase (∇weight phases additionally
        // consume the error stream as it starts, matching the Fig. 13
        // barrier structure).
        for (from, to) in [
            (Phase::GForward, Phase::DForward),
            (Phase::DForward, Phase::DBackward),
            (Phase::DForward, Phase::DWeightGrad),
            (Phase::DBackward, Phase::DWeightGrad),
            (Phase::DBackward, Phase::GBackward),
            (Phase::GForward, Phase::GWeightGrad),
            (Phase::GBackward, Phase::GWeightGrad),
        ] {
            graph.link(from, to);
        }
        graph
    }

    fn link(&mut self, from: Phase, to: Phase) {
        let producer = *self.phase_ids(from).last().expect("phases are non-empty");
        let consumer = self.phase_ids(to)[0];
        self.ops[producer.0].consumers.push(consumer);
        self.ops[consumer.0].producers.push(producer);
    }

    fn phase_span(&self, phase: Phase) -> (usize, usize) {
        let pi = Phase::ALL
            .iter()
            .position(|p| *p == phase)
            .expect("all phases enumerable");
        self.spans[pi]
    }

    fn phase_ids(&self, phase: Phase) -> Vec<OpId> {
        let (a, b) = self.phase_span(phase);
        (a..b).map(OpId).collect()
    }

    /// All ops, grouped by phase in [`Phase::ALL`] order.
    pub fn ops(&self) -> &[PhaseOp] {
        &self.ops
    }

    /// One phase's ops, in dataflow order.
    pub fn phase_ops(&self, phase: Phase) -> &[PhaseOp] {
        let (a, b) = self.phase_span(phase);
        &self.ops[a..b]
    }

    /// The op with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn op(&self, id: OpId) -> &PhaseOp {
        &self.ops[id.0]
    }

    /// Total op count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The ops one phase performs over one network, in dataflow order, with
/// ids numbered from zero — the standalone per-phase view backing
/// [`phase_workloads`](crate::workload::phase_workloads) and the trainer
/// builder. [`OpGraph::build`] stitches six of these together.
pub fn network_ops(net: &NetworkSpec, phase: Phase) -> Vec<PhaseOp> {
    ops_with_base(net, phase, 0)
}

fn ops_with_base(net: &NetworkSpec, phase: Phase, base: usize) -> Vec<PhaseOp> {
    let indices: Vec<usize> = if phase.is_forward() {
        (0..net.layers.len()).collect()
    } else {
        (0..net.layers.len()).rev().collect()
    };
    let n = indices.len();
    let bank = BankSlot::for_phase(phase);
    let mut out = Vec::with_capacity(n);
    for (seq, idx) in indices.into_iter().enumerate() {
        let (workload, gemm) = layer_op(net, phase, idx);
        debug_assert_eq!(gemm.macs(), workload.macs_dense, "GEMM accounts all MACs");
        let id = OpId(base + seq);
        let producers = if seq == 0 {
            Vec::new()
        } else {
            vec![OpId(base + seq - 1)]
        };
        let consumers = if seq + 1 == n {
            Vec::new()
        } else {
            vec![OpId(base + seq + 1)]
        };
        out.push(PhaseOp {
            id,
            phase,
            layer_index: idx,
            seq,
            kind: OpKind::of(&net.layers[idx], &workload),
            norm: net.norm_of(idx),
            workload,
            gemm,
            bank,
            producers,
            consumers,
        });
    }
    // Skip connections are first-class dataflow edges: in forward phases
    // the skipped-from op feeds the skipped-to op; in error transfer the
    // edge reverses (the error at `to`'s input flows straight back to
    // `from`'s output). ∇weight ops are per-layer independent, so skips
    // add no edges there.
    if !phase.is_weight_grad() {
        for sk in &net.skips {
            let (p, c) = if phase.is_forward() {
                (sk.from, sk.to)
            } else {
                (n - 1 - sk.to, n - 1 - sk.from)
            };
            let pid = OpId(base + p);
            let cid = OpId(base + c);
            if !out[p].consumers.contains(&cid) {
                out[p].consumers.push(cid);
            }
            if !out[c].producers.contains(&pid) {
                out[c].producers.push(pid);
            }
        }
    }
    out
}

fn powd(v: usize, dims: u32) -> u128 {
    (v as u128).pow(dims)
}

/// Characterises the op `phase` performs on layer `idx` of `net`: the
/// analytic workload (where the zeros are, how much work/traffic/storage)
/// and the naive GEMM shape. This is the single source of the
/// phase-kind × layer-kind table the whole stack derives from
/// (see the module docs of [`workload`](crate::workload)).
fn layer_op(net: &NetworkSpec, phase: Phase, idx: usize) -> (ConvWorkload, GemmShape) {
    let d = net.dims;
    let layer = &net.layers[idx];
    match (phase.is_forward(), phase.is_weight_grad(), layer) {
        // ---- forward ----
        (true, _, Layer::Fc(f)) => (
            dense(
                phase,
                idx,
                d,
                f.in_units,
                f.out_units,
                f.in_units as u128 * f.out_units as u128,
                f.in_units as u128,
                f.in_units as u128 * f.out_units as u128,
                f.out_units as u128,
            ),
            GemmShape {
                m: 1,
                k: f.in_units as u128,
                n: f.out_units as u128,
            },
        ),
        (true, _, Layer::Conv(c)) => {
            let g = &c.geometry;
            (
                dense(
                    phase,
                    idx,
                    d,
                    c.in_channels,
                    c.out_channels,
                    c.in_channels as u128
                        * c.out_channels as u128
                        * powd(g.output, d)
                        * powd(g.kernel, d),
                    c.in_channels as u128 * powd(g.input, d),
                    c.in_channels as u128 * c.out_channels as u128 * powd(g.kernel, d),
                    c.out_channels as u128 * powd(g.output, d),
                ),
                GemmShape {
                    m: powd(g.output, d),
                    k: c.in_channels as u128 * powd(g.kernel, d),
                    n: c.out_channels as u128,
                },
            )
        }
        (true, _, Layer::Tconv(t)) => {
            let g = t.geometry;
            let pair = t.in_channels as u128 * t.out_channels as u128;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::TconvInput(g),
                    in_channels: t.in_channels,
                    out_channels: t.out_channels,
                    macs_dense: pair * powd(g.output, d) * powd(g.kernel, d),
                    macs_useful: pair * (g.useful_row_weight_sum() as u128).pow(d),
                    moved_values_dense: t.in_channels as u128 * powd(g.expanded(), d),
                    moved_values_useful: t.in_channels as u128 * powd(g.input, d),
                    weight_values: pair * powd(g.kernel, d),
                    output_values: t.out_channels as u128 * powd(g.output, d),
                    dims: d,
                },
                GemmShape {
                    m: powd(g.output, d),
                    k: t.in_channels as u128 * powd(g.kernel, d),
                    n: t.out_channels as u128,
                },
            )
        }
        (true, _, Layer::Dconv(dc)) => {
            // D-CONV forward: the kernel is zero-inserted by dilation (the
            // EcoFlow dual of T-CONV's input insertion). The input plane
            // itself is dense, so the savings are MACs and kernel storage,
            // not input traffic.
            let g = dc.geometry;
            let pair = dc.in_channels as u128 * dc.out_channels as u128;
            let positions = g.rows.output as u128 * g.cols.output as u128;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::DconvKernel(g),
                    in_channels: dc.in_channels,
                    out_channels: dc.out_channels,
                    macs_dense: pair * g.total_multiplications_per_pair() as u128,
                    macs_useful: pair * g.useful_multiplications_per_pair() as u128,
                    moved_values_dense: dc.in_channels as u128
                        * g.rows.input as u128
                        * g.cols.input as u128,
                    moved_values_useful: dc.in_channels as u128
                        * g.rows.input as u128
                        * g.cols.input as u128,
                    weight_values: pair * g.kernel_taps() as u128,
                    output_values: dc.out_channels as u128 * positions,
                    dims: d,
                },
                GemmShape {
                    m: positions,
                    k: dc.in_channels as u128
                        * g.rows.effective_kernel() as u128
                        * g.cols.effective_kernel() as u128,
                    n: dc.out_channels as u128,
                },
            )
        }
        // ---- weight gradient ----
        (false, true, Layer::Fc(f)) => (
            dense(
                phase,
                idx,
                d,
                f.out_units,
                f.in_units,
                f.in_units as u128 * f.out_units as u128,
                f.in_units as u128 + f.out_units as u128,
                0,
                f.in_units as u128 * f.out_units as u128,
            ),
            // ∇W = a · δᵀ: a rank-1 outer product per sample.
            GemmShape {
                m: f.out_units as u128,
                k: 1,
                n: f.in_units as u128,
            },
        ),
        (false, true, Layer::Conv(c)) => {
            // W-CONV-S: zero-inserted ∇output slides over the padded
            // input (Fig. 6).
            let g = WconvGeometry {
                forward: c.geometry,
            };
            let pair = c.in_channels as u128 * c.out_channels as u128;
            let f = &g.forward;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::WconvKernel(g),
                    in_channels: c.out_channels, // the moving ∇output
                    out_channels: c.in_channels,
                    macs_dense: pair * g.total_multiplications_per_pair() as u128,
                    macs_useful: pair * g.useful_multiplications_per_pair() as u128,
                    moved_values_dense: c.in_channels as u128 * powd(g.padded_input_extent(), d)
                        + c.out_channels as u128 * powd(g.inserted_kernel_extent(), d),
                    moved_values_useful: c.in_channels as u128 * powd(f.input, d)
                        + c.out_channels as u128 * powd(f.output, d),
                    weight_values: 0,
                    output_values: pair * powd(f.kernel, d),
                    dims: d,
                },
                // Per channel pair: every gradient position reduces over
                // the full inserted kernel plane.
                GemmShape {
                    m: (g.gradient_extent() as u128).pow(2),
                    k: (g.inserted_kernel_extent() as u128).pow(2),
                    n: pair,
                },
            )
        }
        (false, true, Layer::Tconv(t)) => {
            // ∇W of a T-CONV: ∇z (dense) scans the zero-inserted input
            // a^{l-1}; same zero structure as the forward T-CONV.
            let g = t.geometry;
            let pair = t.in_channels as u128 * t.out_channels as u128;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::TconvInput(g),
                    in_channels: t.in_channels,
                    out_channels: t.out_channels,
                    macs_dense: pair * powd(g.kernel, d) * powd(g.output, d),
                    macs_useful: pair * (g.useful_row_weight_sum() as u128).pow(d),
                    moved_values_dense: t.in_channels as u128 * powd(g.expanded(), d)
                        + t.out_channels as u128 * powd(g.output, d),
                    moved_values_useful: t.in_channels as u128 * powd(g.input, d)
                        + t.out_channels as u128 * powd(g.output, d),
                    weight_values: t.out_channels as u128 * powd(g.output, d),
                    output_values: pair * powd(g.kernel, d),
                    dims: d,
                },
                // Per channel pair: each of the kernel^d gradient positions
                // reduces ∇z over the expanded input window.
                GemmShape {
                    m: powd(g.kernel, d),
                    k: powd(g.output, d),
                    n: pair,
                },
            )
        }
        (false, true, Layer::Dconv(dc)) => {
            // ∇W of a D-CONV: ∇output scans the dense input, but gradients
            // land only on the dilated true taps — the same kernel-zero
            // structure as the forward pass, transposed (each true tap
            // reduces over the valid output positions, so the useful count
            // is the same double sum read tap-major).
            let g = dc.geometry;
            let pair = dc.in_channels as u128 * dc.out_channels as u128;
            let positions = g.rows.output as u128 * g.cols.output as u128;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::DconvKernel(g),
                    in_channels: dc.out_channels, // the moving ∇output
                    out_channels: dc.in_channels,
                    macs_dense: pair * g.total_multiplications_per_pair() as u128,
                    macs_useful: pair * g.useful_multiplications_per_pair() as u128,
                    moved_values_dense: dc.in_channels as u128
                        * g.rows.input as u128
                        * g.cols.input as u128
                        + dc.out_channels as u128 * positions,
                    moved_values_useful: dc.in_channels as u128
                        * g.rows.input as u128
                        * g.cols.input as u128
                        + dc.out_channels as u128 * positions,
                    weight_values: 0,
                    output_values: pair * g.kernel_taps() as u128,
                    dims: d,
                },
                // Per channel pair: each expanded-kernel position reduces
                // ∇output over every output position.
                GemmShape {
                    m: g.rows.effective_kernel() as u128 * g.cols.effective_kernel() as u128,
                    k: positions,
                    n: pair,
                },
            )
        }
        // ---- error transfer ----
        (false, false, Layer::Fc(f)) => (
            dense(
                phase,
                idx,
                d,
                f.out_units,
                f.in_units,
                f.in_units as u128 * f.out_units as u128,
                f.out_units as u128,
                f.in_units as u128 * f.out_units as u128,
                f.in_units as u128,
            ),
            GemmShape {
                m: 1,
                k: f.out_units as u128,
                n: f.in_units as u128,
            },
        ),
        (false, false, Layer::Conv(c)) => {
            // Error through an S-CONV is T-CONV-shaped (Eq. 3): the
            // converse geometry always exists because Eq. 5 and Eq. 8
            // are the same relation read in opposite directions.
            let g = c.geometry;
            let tg = TconvGeometry::new(g.output, g.input, g.kernel, g.stride, g.pad)
                .expect("converse T-CONV geometry must exist (Eq. 5 <=> Eq. 8)");
            let pair = c.in_channels as u128 * c.out_channels as u128;
            (
                ConvWorkload {
                    phase,
                    layer_index: idx,
                    kind: WorkloadKind::TconvInput(tg),
                    in_channels: c.out_channels,
                    out_channels: c.in_channels,
                    macs_dense: pair * powd(tg.output, d) * powd(tg.kernel, d),
                    macs_useful: pair * (tg.useful_row_weight_sum() as u128).pow(d),
                    moved_values_dense: c.out_channels as u128 * powd(tg.expanded(), d),
                    moved_values_useful: c.out_channels as u128 * powd(tg.input, d),
                    weight_values: pair * powd(g.kernel, d),
                    output_values: c.in_channels as u128 * powd(g.input, d),
                    dims: d,
                },
                GemmShape {
                    m: powd(tg.output, d),
                    k: c.out_channels as u128 * powd(tg.kernel, d),
                    n: c.in_channels as u128,
                },
            )
        }
        (false, false, Layer::Tconv(t)) => {
            // Error through a T-CONV is a plain dense S-CONV.
            let g = t.geometry;
            let pair = t.in_channels as u128 * t.out_channels as u128;
            (
                dense(
                    phase,
                    idx,
                    d,
                    t.out_channels,
                    t.in_channels,
                    pair * powd(g.input, d) * powd(g.kernel, d),
                    t.out_channels as u128 * powd(g.output, d),
                    pair * powd(g.kernel, d),
                    t.in_channels as u128 * powd(g.input, d),
                ),
                GemmShape {
                    m: powd(g.input, d),
                    k: t.out_channels as u128 * powd(g.kernel, d),
                    n: t.in_channels as u128,
                },
            )
        }
        (false, false, Layer::Dconv(dc)) => {
            // Error through a D-CONV: each output-position error scatters
            // through the expanded kernel taps that produced it. The gather
            // formulation touches every (output position, expanded tap)
            // pair once, so the dense count equals the forward dense count.
            let g = dc.geometry;
            let pair = dc.in_channels as u128 * dc.out_channels as u128;
            let positions = g.rows.output as u128 * g.cols.output as u128;
            (
                dense(
                    phase,
                    idx,
                    d,
                    dc.out_channels,
                    dc.in_channels,
                    pair * g.total_multiplications_per_pair() as u128,
                    dc.out_channels as u128 * positions,
                    pair * g.kernel_taps() as u128,
                    dc.in_channels as u128 * g.rows.input as u128 * g.cols.input as u128,
                ),
                GemmShape {
                    m: positions,
                    k: dc.out_channels as u128
                        * g.rows.effective_kernel() as u128
                        * g.cols.effective_kernel() as u128,
                    n: dc.in_channels as u128,
                },
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dense(
    phase: Phase,
    layer_index: usize,
    dims: u32,
    in_channels: usize,
    out_channels: usize,
    macs: u128,
    moved: u128,
    weights: u128,
    outputs: u128,
) -> ConvWorkload {
    ConvWorkload {
        phase,
        layer_index,
        kind: WorkloadKind::Dense,
        in_channels,
        out_channels,
        macs_dense: macs,
        macs_useful: macs,
        moved_values_dense: moved,
        moved_values_useful: moved,
        weight_values: weights,
        output_values: outputs,
        dims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn graph_covers_all_phases_in_order() {
        let gan = benchmarks::dcgan();
        let graph = OpGraph::build(&gan);
        for phase in Phase::ALL {
            let ops = graph.phase_ops(phase);
            assert_eq!(ops.len(), gan.network_for(phase).layers.len());
            for (seq, op) in ops.iter().enumerate() {
                assert_eq!(op.phase, phase);
                assert_eq!(op.seq, seq);
                assert_eq!(op.bank, BankSlot::for_phase(phase));
                assert_eq!(graph.op(op.id), op);
            }
        }
        assert_eq!(graph.len(), 3 * 5 + 3 * 6);
        assert!(!graph.is_empty());
    }

    #[test]
    fn gemm_accounts_every_dense_mac() {
        for gan in benchmarks::all() {
            let graph = OpGraph::build(&gan);
            for op in graph.ops() {
                assert_eq!(
                    op.gemm.macs(),
                    op.workload.macs_dense,
                    "{} {} L{}",
                    gan.name,
                    op.phase,
                    op.layer_index
                );
            }
        }
    }

    #[test]
    fn backward_phases_run_layers_in_reverse() {
        let graph = OpGraph::build(&benchmarks::dcgan());
        let idx: Vec<usize> = graph
            .phase_ops(Phase::GBackward)
            .iter()
            .map(|op| op.layer_index)
            .collect();
        assert_eq!(idx, vec![4, 3, 2, 1, 0]);
        // seq still counts dataflow position.
        let seq: Vec<usize> = graph
            .phase_ops(Phase::GBackward)
            .iter()
            .map(|op| op.seq)
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn intra_phase_edges_chain_the_dataflow() {
        let graph = OpGraph::build(&benchmarks::cgan());
        for phase in Phase::ALL {
            let ops = graph.phase_ops(phase);
            for pair in ops.windows(2) {
                assert!(pair[0].consumers.contains(&pair[1].id));
                assert!(pair[1].producers.contains(&pair[0].id));
            }
        }
    }

    #[test]
    fn cross_phase_edges_follow_fig3() {
        let graph = OpGraph::build(&benchmarks::dcgan());
        let last = |p: Phase| graph.phase_ops(p).last().unwrap();
        let first = |p: Phase| &graph.phase_ops(p)[0];
        // G→ feeds D→ (the generated samples).
        assert!(last(Phase::GForward)
            .consumers
            .contains(&first(Phase::DForward).id));
        // D← feeds G← (the error crossing back to the generator).
        assert!(last(Phase::DBackward)
            .consumers
            .contains(&first(Phase::GBackward).id));
        // ∇weight phases consume both their forward activations and the
        // error stream.
        assert!(first(Phase::DWeightGrad)
            .producers
            .contains(&last(Phase::DForward).id));
        assert!(first(Phase::GWeightGrad)
            .producers
            .contains(&last(Phase::GForward).id));
    }

    #[test]
    fn bank_slots_match_the_b1_b6_map() {
        assert_eq!(BankSlot::for_phase(Phase::GForward).label(), "B1");
        assert_eq!(BankSlot::for_phase(Phase::GWeightGrad).label(), "B2");
        assert_eq!(BankSlot::for_phase(Phase::GBackward).label(), "B3");
        assert_eq!(BankSlot::for_phase(Phase::DForward).label(), "B4");
        assert_eq!(BankSlot::for_phase(Phase::DWeightGrad).label(), "B5");
        assert_eq!(BankSlot::for_phase(Phase::DBackward).label(), "B6");
    }

    #[test]
    fn standalone_view_matches_the_graph() {
        let gan = benchmarks::gpgan();
        let graph = OpGraph::build(&gan);
        for phase in Phase::ALL {
            let standalone = network_ops(gan.network_for(phase), phase);
            let in_graph = graph.phase_ops(phase);
            assert_eq!(standalone.len(), in_graph.len());
            for (a, b) in standalone.iter().zip(in_graph) {
                assert_eq!(a.workload, b.workload);
                assert_eq!(a.gemm, b.gemm);
                assert_eq!(a.layer_index, b.layer_index);
                assert_eq!(a.seq, b.seq);
            }
        }
    }
}
