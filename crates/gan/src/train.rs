//! A functional GAN trainer: real forward/backward/SGD over `f32` tensors.
//!
//! The accelerator model in the rest of the workspace reasons about
//! *shapes*; this module proves the substrate end-to-end by actually
//! training the minimax objective of Eq. 1–2 with minibatch SGD, exactly
//! the dataflow of Fig. 3: `G→`, `D→`, error computation at the output
//! layer, `D←`/`D-w`, and — when training the generator — `G←`/`G-w`.
//!
//! The discriminator ends in a raw logit; both losses use the numerically
//! stable sigmoid-BCE formulation, whose output-layer error is
//! `σ(logit) − target`.

use crate::ir::{GemmShape, OpId};
use crate::layer::{Layer, Norm};
use crate::phase::Phase;
use crate::topology::NetworkSpec;
use lergan_tensor::dconv::{
    dconv_input_grad_scatter, expand_dilated_kernel_into, im2col_dconv_batch_into,
    im2col_dconv_into,
};
use lergan_tensor::im2col::{im2col_batch_into, im2col_into};
use lergan_tensor::kernel::{gemm_buf, gemm_nt_buf, mmv_buf};
use lergan_tensor::parallel;
use lergan_tensor::workspace::with_thread_workspace;
use lergan_tensor::{Conv2d, DconvGeometry, SconvGeometry, TconvGeometry, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A layer that can run forward, backward and SGD updates.
///
/// `forward` caches whatever `backward` needs; `backward` accumulates
/// parameter gradients and returns the gradient w.r.t. the layer input.
///
/// Every method draws its scratch and result buffers from the caller's
/// [`Workspace`]: returned tensors are built on pooled buffers, and the
/// caller recycles them into the same workspace once consumed (see
/// [`Sequential::recycle`]). With that discipline, a steady-state training
/// step performs no heap allocation.
pub trait TrainableLayer {
    /// Forward pass for a single sample, caching activations. The returned
    /// tensor's buffer is drawn from `ws`.
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor;
    /// Backward pass; accumulates parameter gradients and returns `∇input`
    /// (buffer drawn from `ws`).
    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor;
    /// Applies accumulated gradients through `rule` (with `step` counting
    /// optimiser steps, for Adam's bias correction) and clears them. `ws`
    /// serves the optimiser's element-wise temporaries.
    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace);
    /// Clears accumulated gradients without applying them.
    fn zero_grads(&mut self);

    /// Snapshots every persistent parameter of the layer: weights, affine
    /// parameters, running statistics and lazily created optimiser moments.
    /// Activation caches and accumulated gradients are *not* captured —
    /// checkpoints are taken at step boundaries, where both are dead.
    /// Stateless layers return an empty state.
    fn capture_state(&self) -> LayerState {
        LayerState::empty()
    }

    /// Restores a state captured by [`capture_state`]. `layer` is the
    /// layer's position in its stack, used only for error reporting.
    /// Stateless layers accept only an empty state.
    ///
    /// [`capture_state`]: TrainableLayer::capture_state
    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(CheckpointError::UnexpectedEntries {
                layer,
                count: state.len(),
            })
        }
    }

    /// The im2col GEMM this layer's forward pass executes, when known
    /// statically: `m` output positions × `k` reduction length × `n` output
    /// channels. `None` for layers that run no GEMM (activations, reshapes,
    /// normalisation) or whose input extent is only fixed at run time.
    fn gemm_shape(&self) -> Option<GemmShape> {
        None
    }

    /// Batched forward over a sample-major `[batch, ...]` input: one packed
    /// pass instead of `batch` single-sample calls. Each sample's slice of
    /// the output is bit-identical to [`forward`](TrainableLayer::forward)
    /// on that sample; GEMM layers fuse the batch into one product with `m`
    /// multiplied by `batch`. Caches are kept separately from the
    /// single-sample path, so the two can interleave without thrashing.
    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let _ = (input, batch, ws);
        Err(TrainError::Unsupported {
            layer: "TrainableLayer",
        })
    }

    /// Batched backward: accumulates parameter gradients as the fixed-tree
    /// reduction ([`tree_reduce_in_place`]) of exact per-sample partials —
    /// an order that depends only on `batch`, never on the worker count —
    /// and returns the `[batch, ...]` input gradient, each sample's slice
    /// bit-identical to [`backward`](TrainableLayer::backward).
    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let _ = (grad_out, batch, ws);
        Err(TrainError::Unsupported {
            layer: "TrainableLayer",
        })
    }

    /// Snapshots the accumulated parameter gradients ("grad", or
    /// "grad_gamma"/"grad_beta" for affine norms). Stateless layers return
    /// an empty state. This is the probe bit-identity oracles use to
    /// compare batched gradient accumulation against per-sample runs.
    fn capture_grads(&self) -> LayerState {
        LayerState::empty()
    }
}

/// The persistent state of one layer as named tensors.
///
/// Keys are layer-defined ("weights", "opt.m", "running_mean", …);
/// optional state — Adam moments that have not been created yet — is
/// encoded by absence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerState {
    entries: Vec<(String, Tensor)>,
}

impl LayerState {
    /// A state with no entries (stateless layers).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the state holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of named tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Records `tensor` under `key`.
    pub fn push(&mut self, key: &str, tensor: Tensor) {
        self.entries.push((key.to_string(), tensor));
    }

    /// The tensor stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Tensor> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| t)
    }

    /// Mutable access to the tensor stored under `key`, if any. Mutating a
    /// captured state invalidates the owning [`GanCheckpoint`]'s checksum,
    /// which is exactly what corruption-detection tests rely on.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Tensor> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, t)| t)
    }

    /// Iterates the `(key, tensor)` entries in capture order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, t)| (k.as_str(), t))
    }

    /// Clones the tensor under `key`, requiring it to exist with `shape`.
    fn require(&self, layer: usize, key: &str, shape: &[usize]) -> Result<Tensor, CheckpointError> {
        match self.optional(layer, key, shape)? {
            Some(t) => Ok(t),
            None => Err(CheckpointError::MissingEntry {
                layer,
                key: key.to_string(),
            }),
        }
    }

    /// Clones the tensor under `key` if present, checking its shape.
    fn optional(
        &self,
        layer: usize,
        key: &str,
        shape: &[usize],
    ) -> Result<Option<Tensor>, CheckpointError> {
        match self.get(key) {
            None => Ok(None),
            Some(t) if t.shape() == shape => Ok(Some(t.clone())),
            Some(t) => Err(CheckpointError::ShapeMismatch {
                layer,
                key: key.to_string(),
                expected: shape.to_vec(),
                actual: t.shape().to_vec(),
            }),
        }
    }
}

/// Typed error for checkpoints that do not fit the network they are
/// restored into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint holds state for a different number of layers.
    LayerCountMismatch {
        /// Layers in the receiving stack.
        expected: usize,
        /// Layer states in the checkpoint.
        actual: usize,
    },
    /// A layer's state lacks a tensor the layer needs.
    MissingEntry {
        /// Layer index in the stack.
        layer: usize,
        /// The missing key.
        key: String,
    },
    /// A stored tensor's shape disagrees with the receiving parameter.
    ShapeMismatch {
        /// Layer index in the stack.
        layer: usize,
        /// The offending key.
        key: String,
        /// Shape of the receiving parameter.
        expected: Vec<usize>,
        /// Shape stored in the checkpoint.
        actual: Vec<usize>,
    },
    /// A stateless layer received a non-empty state.
    UnexpectedEntries {
        /// Layer index in the stack.
        layer: usize,
        /// Entries the state carried.
        count: usize,
    },
    /// The checkpoint's payload no longer matches its stored checksum —
    /// the snapshot was corrupted in flight or at rest. Restoring it would
    /// silently resume from garbage, so the restore is refused outright.
    Corrupted {
        /// Checksum recorded when the checkpoint was taken.
        expected: u64,
        /// Checksum recomputed over the payload at restore time.
        actual: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::LayerCountMismatch { expected, actual } => write!(
                f,
                "checkpoint mismatch: stack has {expected} layer(s), checkpoint has {actual}"
            ),
            CheckpointError::MissingEntry { layer, key } => {
                write!(f, "checkpoint mismatch: layer {layer} lacks \"{key}\"")
            }
            CheckpointError::ShapeMismatch {
                layer,
                key,
                expected,
                actual,
            } => write!(
                f,
                "checkpoint mismatch: layer {layer} \"{key}\" has shape {actual:?}, \
                 expected {expected:?}"
            ),
            CheckpointError::UnexpectedEntries { layer, count } => write!(
                f,
                "checkpoint mismatch: stateless layer {layer} received {count} tensor(s)"
            ),
            CheckpointError::Corrupted { expected, actual } => write!(
                f,
                "checkpoint corrupted: stored checksum {expected:#018x}, \
                 payload hashes to {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Typed error for malformed trainer inputs.
///
/// The batched training path ([`TrainableLayer::forward_batch`],
/// [`Sequential::forward_batch`], [`Gan::train_step_batched`]) surfaces
/// every shape violation as one of these variants instead of panicking;
/// the legacy single-sample methods keep their panicking contracts but
/// route the same checks through this type, so both paths report
/// identically worded diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// An input tensor's rank differs from what the layer expects.
    RankMismatch {
        /// Layer type that rejected the input.
        layer: &'static str,
        /// Expected rank.
        expected: usize,
        /// Rank received.
        actual: usize,
    },
    /// An operand's shape disagrees with the layer's parameters.
    ShapeMismatch {
        /// Layer type that rejected the operand.
        layer: &'static str,
        /// Shape (or shape prefix) the layer requires.
        expected: Vec<usize>,
        /// Shape received.
        actual: Vec<usize>,
    },
    /// [`Gan::train_step_batched`] was handed an empty batch.
    EmptyBatch,
    /// A batched backward pass ran without a preceding batched forward.
    BackwardBeforeForward {
        /// Layer type missing its forward caches.
        layer: &'static str,
    },
    /// The layer implements no batched path.
    Unsupported {
        /// Layer type lacking the implementation.
        layer: &'static str,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RankMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "{layer}: expected rank-{expected} input, got rank {actual}"),
            TrainError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "{layer}: operand shape {actual:?} incompatible with {expected:?}"),
            TrainError::EmptyBatch => write!(f, "batched train step requires at least one sample"),
            TrainError::BackwardBeforeForward { layer } => {
                write!(f, "{layer}: batched backward before batched forward")
            }
            TrainError::Unsupported { layer } => {
                write!(f, "{layer}: no batched implementation")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Panics with the error's message when a legacy (panicking-contract)
/// entry point hits a check shared with the batched `Result` path.
fn check(result: Result<(), TrainError>) {
    if let Err(e) = result {
        panic!("{e}");
    }
}

/// `shape` must have exactly `expected` axes.
fn expect_rank(layer: &'static str, expected: usize, shape: &[usize]) -> Result<(), TrainError> {
    if shape.len() == expected {
        Ok(())
    } else {
        Err(TrainError::RankMismatch {
            layer,
            expected,
            actual: shape.len(),
        })
    }
}

/// A single dimension (channel count, gradient width, …) must match.
fn expect_dim(layer: &'static str, expected: usize, actual: usize) -> Result<(), TrainError> {
    if expected == actual {
        Ok(())
    } else {
        Err(TrainError::ShapeMismatch {
            layer,
            expected: vec![expected],
            actual: vec![actual],
        })
    }
}

/// Reduces `count` per-sample partial buffers of length `len`, packed
/// contiguously in `parts`, into `parts[..len]` with a fixed balanced
/// binary tree: adjacent pairs `(0,1), (2,3), …` first, then pairs at
/// stride 2, 4, … until one buffer remains.
///
/// The tree's shape — and therefore every intermediate f32 rounding — is a
/// function of `count` alone, never of the worker count, so batched
/// gradients are bit-identical for every `LERGAN_THREADS` setting. This is
/// the reduction order the batched layers apply to per-sample weight
/// gradients and the oracle that bit-identity tests reproduce.
pub fn tree_reduce_in_place(parts: &mut [f32], count: usize, len: usize) {
    assert_eq!(parts.len(), count * len, "partial buffer length mismatch");
    let mut stride = 1;
    while stride < count {
        let mut i = 0;
        while i + stride < count {
            let (head, tail) = parts.split_at_mut((i + stride) * len);
            let dst = &mut head[i * len..i * len + len];
            let src = &tail[..len];
            for (a, &b) in dst.iter_mut().zip(src) {
                *a += b;
            }
            i += stride * 2;
        }
        stride *= 2;
    }
}

/// Shared mutable base pointer for batched per-sample stages.
///
/// The batched layers shard work by sample: worker `b` writes only the
/// `b`-th sample's slice of each output buffer. Those slices are disjoint
/// by construction, but a `Fn` closure dispatched over the parallel
/// substrate cannot hold `&mut` to them all — this wrapper erases the
/// borrow and hands each worker its slice back by offset.
///
/// Safety contract (enforced by every call site, not the type): concurrent
/// [`slice`](SlicePtr::slice) calls must use disjoint `[offset,
/// offset + len)` ranges, and the backing buffer must outlive the parallel
/// region — which it does, because the region helpers only return once
/// every worker has finished.
struct SlicePtr(*mut f32);

// SAFETY: the pointer is only dereferenced through `slice` under the
// disjointness contract above.
unsafe impl Send for SlicePtr {}
unsafe impl Sync for SlicePtr {}

impl SlicePtr {
    fn new(data: &mut [f32]) -> Self {
        SlicePtr(data.as_mut_ptr())
    }

    /// The `[offset, offset + len)` window of the backing buffer.
    ///
    /// # Safety
    ///
    /// Concurrent calls must cover disjoint ranges, and the backing buffer
    /// must remain live and otherwise untouched for the slice's lifetime.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

/// Builds the `[batch, per_sample...]` shape in a stack array (tensor
/// construction must stay heap-free in the steady state).
fn batched_shape(batch: usize, per_sample: &[usize]) -> ([usize; 4], usize) {
    debug_assert!(per_sample.len() < 4, "batched rank would exceed MAX_RANK");
    let mut s = [1usize; 4];
    s[0] = batch;
    s[1..=per_sample.len()].copy_from_slice(per_sample);
    (s, per_sample.len() + 1)
}

/// Relays the fused batched GEMM output `[OC, batch·O·O]` (per-sample
/// column blocks) into activation layout `[batch, OC, O·O]` — pure
/// `O·O`-contiguous row copies, sharded by sample, so the relayout can
/// never change a value.
fn relayout_channel_major(flat: &[f32], out: &mut [f32], batch: usize, oc: usize, oo: usize) {
    let bo = batch * oo;
    debug_assert_eq!(flat.len(), oc * bo);
    debug_assert_eq!(out.len(), oc * bo);
    let outp = SlicePtr::new(out);
    parallel::for_each_range(batch, 1, |range| {
        for b in range {
            // SAFETY: sample-disjoint planes of the output.
            let dst = unsafe { outp.slice(b * oc * oo, oc * oo) };
            for c in 0..oc {
                dst[c * oo..(c + 1) * oo]
                    .copy_from_slice(&flat[c * bo + b * oo..c * bo + (b + 1) * oo]);
            }
        }
    });
}

/// Copies sample `b`'s `[red, O·O]` column block out of the batched im2col
/// matrix `[red, batch·O·O]` into a contiguous buffer — bit-for-bit the
/// matrix the single-sample forward caches, so the weight-gradient GEMM
/// over it is *exactly* the single-sample call.
fn sample_cols_into(bcols: &[f32], b: usize, red: usize, oo: usize, dst: &mut [f32]) {
    let bo = bcols.len() / red;
    for r in 0..red {
        dst[r * oo..(r + 1) * oo].copy_from_slice(&bcols[r * bo + b * oo..r * bo + b * oo + oo]);
    }
}

fn he_init(rng: &mut StdRng, shape: &[usize], fan_in: usize) -> Tensor {
    let scale = (2.0 / fan_in as f32).sqrt();
    Tensor::from_fn(shape, |_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
}

/// Reuses `slot` as a `shape`-shaped activation cache, allocating only when
/// the shape changes — in steady state (fixed network geometry) never.
/// Contents are unspecified; the caller fully overwrites them.
fn cache_buf<'a>(slot: &'a mut Option<Tensor>, shape: &[usize]) -> &'a mut Tensor {
    if slot.as_ref().is_none_or(|t| t.shape() != shape) {
        *slot = Some(Tensor::zeros(shape));
    }
    slot.as_mut().expect("slot populated above")
}

/// The update rule applied to accumulated gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateRule {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with heavy-ball momentum.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (e.g. 0.9).
        beta: f32,
    },
    /// Adam (the optimiser DCGAN training typically uses).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (e.g. 0.9; DCGAN uses 0.5).
        beta1: f32,
        /// Second-moment decay (e.g. 0.999).
        beta2: f32,
        /// Numerical floor.
        eps: f32,
    },
}

impl UpdateRule {
    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        UpdateRule::Sgd { lr }
    }

    /// DCGAN-style Adam (β₁ = 0.5, β₂ = 0.999).
    pub fn dcgan_adam(lr: f32) -> Self {
        UpdateRule::Adam {
            lr,
            beta1: 0.5,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-parameter optimiser state (moments), created lazily.
#[derive(Debug, Default)]
struct OptState {
    m: Option<Tensor>,
    v: Option<Tensor>,
}

impl OptState {
    /// Records the moments that exist under `prefix.m` / `prefix.v`.
    fn capture_into(&self, prefix: &str, state: &mut LayerState) {
        if let Some(m) = &self.m {
            state.push(&format!("{prefix}.m"), m.clone());
        }
        if let Some(v) = &self.v {
            state.push(&format!("{prefix}.v"), v.clone());
        }
    }

    /// Restores moments from `prefix.m` / `prefix.v`; absence means the
    /// moment had not been created yet at capture time.
    fn restore_from(
        &mut self,
        prefix: &str,
        state: &LayerState,
        layer: usize,
        shape: &[usize],
    ) -> Result<(), CheckpointError> {
        self.m = state.optional(layer, &format!("{prefix}.m"), shape)?;
        self.v = state.optional(layer, &format!("{prefix}.v"), shape)?;
        Ok(())
    }

    /// Applies `rule` to `weights` given the accumulated `grad`, drawing
    /// Adam's element-wise temporary from `ws` (moments themselves are
    /// persistent state, created lazily on the first update).
    fn apply(
        &mut self,
        rule: &UpdateRule,
        step: u64,
        weights: &mut Tensor,
        grad: &Tensor,
        ws: &mut Workspace,
    ) {
        match *rule {
            UpdateRule::Sgd { lr } => weights.axpy_in_place(-lr, grad),
            UpdateRule::Momentum { lr, beta } => {
                let m = self.m.get_or_insert_with(|| Tensor::zeros(grad.shape()));
                m.scale_in_place(beta);
                m.axpy_in_place(1.0, grad);
                weights.axpy_in_place(-lr, m);
            }
            UpdateRule::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let m = self.m.get_or_insert_with(|| Tensor::zeros(grad.shape()));
                m.scale_in_place(beta1);
                m.axpy_in_place(1.0 - beta1, grad);
                let v = self.v.get_or_insert_with(|| Tensor::zeros(grad.shape()));
                // One pooled temporary serves both g² and the update.
                let mut tmp = ws.take(grad.len());
                for (t, &g) in tmp.iter_mut().zip(grad.data()) {
                    *t = g * g;
                }
                v.scale_in_place(beta2);
                v.axpy_slice_in_place(1.0 - beta2, &tmp);
                let t = step.max(1) as i32;
                let mc = 1.0 - beta1.powi(t);
                let vc = 1.0 - beta2.powi(t);
                for ((u, &mi), &vi) in tmp.iter_mut().zip(m.data()).zip(v.data()) {
                    *u = (mi / mc) / ((vi / vc).sqrt() + eps);
                }
                weights.axpy_slice_in_place(-lr, &tmp);
                ws.give(tmp);
            }
        }
    }
}

/// Fully-connected trainable layer (flattens its input).
#[derive(Debug)]
pub struct DenseLayer {
    weights: Tensor, // [out, in]
    grad: Tensor,
    cached_input: Option<Tensor>,
    cached_shape: Vec<usize>,
    /// Batched input cache `[batch, in]` (kept apart from the
    /// single-sample cache so the two paths can interleave).
    cached_input_b: Option<Tensor>,
    /// Per-sample input shape from the last batched forward.
    cached_shape_b: Vec<usize>,
    opt: OptState,
}

impl DenseLayer {
    /// Creates a dense layer with He-initialised weights.
    pub fn new(in_units: usize, out_units: usize, rng: &mut StdRng) -> Self {
        DenseLayer {
            weights: he_init(rng, &[out_units, in_units], in_units),
            grad: Tensor::zeros(&[out_units, in_units]),
            cached_input: None,
            cached_shape: Vec::new(),
            cached_input_b: None,
            cached_shape_b: Vec::new(),
            opt: OptState::default(),
        }
    }

    /// Output width.
    pub fn out_units(&self) -> usize {
        self.weights.shape()[0]
    }
}

impl TrainableLayer for DenseLayer {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        self.cached_shape.clear();
        self.cached_shape.extend_from_slice(input.shape());
        let cache = cache_buf(&mut self.cached_input, &[input.len()]);
        cache.data_mut().copy_from_slice(input.data());
        let (o, i) = (self.weights.shape()[0], self.weights.shape()[1]);
        let mut out = ws.take(o);
        mmv_buf(o, i, self.weights.data(), input.data(), &mut out);
        Tensor::from_vec(&[o], out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let (o, i) = (self.weights.shape()[0], self.weights.shape()[1]);
        check(expect_dim("DenseLayer", o, grad_out.len()));
        for oi in 0..o {
            let g = grad_out.data()[oi];
            let grow = &mut self.grad.data_mut()[oi * i..(oi + 1) * i];
            for (slot, &x) in grow.iter_mut().zip(input.data()) {
                *slot += g * x;
            }
        }
        let mut din = ws.take_zeroed(i);
        for oi in 0..o {
            let g = grad_out.data()[oi];
            let row = &self.weights.data()[oi * i..(oi + 1) * i];
            for (d, &w) in din.iter_mut().zip(row.iter()) {
                *d += g * w;
            }
        }
        Tensor::from_vec(&self.cached_shape, din)
    }

    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace) {
        self.opt.apply(rule, step, &mut self.weights, &self.grad, ws);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        self.grad.fill(0.0);
    }

    fn capture_state(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("weights", self.weights.clone());
        self.opt.capture_into("opt", &mut s);
        s
    }

    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        self.weights = state.require(layer, "weights", self.weights.shape())?;
        self.opt
            .restore_from("opt", state, layer, self.weights.shape())?;
        self.grad.fill(0.0);
        self.cached_input = None;
        self.cached_shape.clear();
        self.cached_input_b = None;
        self.cached_shape_b.clear();
        Ok(())
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        Some(GemmShape {
            m: 1,
            k: self.weights.shape()[1] as u128,
            n: self.weights.shape()[0] as u128,
        })
    }

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        let (o, i) = (self.weights.shape()[0], self.weights.shape()[1]);
        if input.shape()[0] != batch || input.len() != batch * i {
            return Err(TrainError::ShapeMismatch {
                layer: "DenseLayer",
                expected: vec![batch, i],
                actual: input.shape().to_vec(),
            });
        }
        self.cached_shape_b.clear();
        self.cached_shape_b.extend_from_slice(&input.shape()[1..]);
        let cache = cache_buf(&mut self.cached_input_b, &[batch, i]);
        cache.data_mut().copy_from_slice(input.data());
        // One packed GEMM with m = batch: row b reduces k ascending from
        // 0.0, exactly the single-sample `mmv_buf` chain for sample b.
        let mut out = ws.take(batch * o);
        gemm_nt_buf(batch, i, o, input.data(), self.weights.data(), &mut out);
        Ok(Tensor::from_vec(&[batch, o], out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let input = self
            .cached_input_b
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward {
                layer: "DenseLayer",
            })?;
        let (o, i) = (self.weights.shape()[0], self.weights.shape()[1]);
        if input.shape()[0] != batch {
            return Err(TrainError::BackwardBeforeForward {
                layer: "DenseLayer",
            });
        }
        if grad_out.len() != batch * o {
            return Err(TrainError::ShapeMismatch {
                layer: "DenseLayer",
                expected: vec![batch, o],
                actual: grad_out.shape().to_vec(),
            });
        }
        // ∇W: exact per-sample outer products, folded by the fixed tree.
        let wlen = o * i;
        let mut parts = ws.take(batch * wlen);
        {
            let pp = SlicePtr::new(&mut parts);
            let gd = grad_out.data();
            let xd = input.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint windows of `parts`.
                    let part = unsafe { pp.slice(b * wlen, wlen) };
                    let g = &gd[b * o..(b + 1) * o];
                    let x = &xd[b * i..(b + 1) * i];
                    for (oi, &gv) in g.iter().enumerate() {
                        for (slot, &xv) in part[oi * i..(oi + 1) * i].iter_mut().zip(x) {
                            *slot = gv * xv;
                        }
                    }
                }
            });
        }
        tree_reduce_in_place(&mut parts, batch, wlen);
        self.grad.axpy_slice_in_place(1.0, &parts[..wlen]);
        ws.give(parts);
        // ∇input: one packed GEMM, k (= output unit) ascending from 0.0 —
        // the single-sample accumulation chain.
        let mut din = ws.take(batch * i);
        gemm_buf(batch, o, i, grad_out.data(), self.weights.data(), &mut din);
        let (shape, rank) = batched_shape(batch, &self.cached_shape_b);
        Ok(Tensor::from_vec(&shape[..rank], din))
    }

    fn capture_grads(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("grad", self.grad.clone());
        s
    }
}

/// Strided-convolution trainable layer.
#[derive(Debug)]
pub struct ConvTrainLayer {
    op: Conv2d,
    /// The spec geometry (fixes the input extent), when built from one —
    /// lets [`TrainableLayer::gemm_shape`] answer statically.
    declared: Option<SconvGeometry>,
    weights: Tensor, // [oc, ic, k, k]
    grad: Tensor,
    /// im2col matrix `[IC·K·K, O·O]` of the last forward input, reused by
    /// the backward weight-gradient GEMM.
    cached_cols: Option<Tensor>,
    cached_extent: usize,
    /// Batched im2col matrix `[IC·K·K, batch·O·O]` (per-sample *column*
    /// blocks — the n-multiplied GEMM operand) from the last batched
    /// forward.
    cached_bcols: Option<Tensor>,
    /// Batch size of the last batched forward.
    cached_batch: usize,
    opt: OptState,
}

impl ConvTrainLayer {
    /// Creates the layer; panics never (inputs validated by `Conv2d::new`).
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Option<Self> {
        let op = Conv2d::new(in_channels, out_channels, kernel, stride, pad)?;
        let shape = [out_channels, in_channels, kernel, kernel];
        Some(ConvTrainLayer {
            op,
            declared: None,
            weights: he_init(rng, &shape, in_channels * kernel * kernel),
            grad: Tensor::zeros(&shape),
            cached_cols: None,
            cached_extent: 0,
            cached_bcols: None,
            cached_batch: 0,
            opt: OptState::default(),
        })
    }

    /// [`new`](ConvTrainLayer::new) from a full spec geometry, pinning the
    /// input extent so the layer's GEMM shape is known statically.
    pub fn from_geometry(
        in_channels: usize,
        out_channels: usize,
        geometry: SconvGeometry,
        rng: &mut StdRng,
    ) -> Option<Self> {
        let mut l = Self::new(
            in_channels,
            out_channels,
            geometry.kernel,
            geometry.stride,
            geometry.pad,
            rng,
        )?;
        l.declared = Some(geometry);
        Some(l)
    }
}

impl TrainableLayer for ConvTrainLayer {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let extent = input.shape()[1];
        self.cached_extent = extent;
        let geom = self.op.geometry(extent);
        let (oc, ic, k) = (
            self.weights.shape()[0],
            self.weights.shape()[1],
            self.weights.shape()[2],
        );
        check(expect_dim("ConvTrainLayer", ic, input.shape()[0]));
        let (red, oo) = (ic * k * k, geom.output * geom.output);
        // im2col + GEMM realisation of the loop-nest `Conv2d::forward`:
        // both accumulate (ci, ky, kx) ascending per output element, so
        // the results are bit-identical and the GEMM runs on the packed
        // kernel. The `[OC, IC·K·K]` weight matrix is the kernels tensor's
        // own row-major layout, so no reshape copy is made.
        let cols = cache_buf(&mut self.cached_cols, &[red, oo]);
        im2col_into(input, &geom, cols.data_mut());
        let mut out = ws.take(oc * oo);
        gemm_buf(oc, red, oo, self.weights.data(), cols.data(), &mut out);
        Tensor::from_vec(&[oc, geom.output, geom.output], out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("backward before forward");
        let (red, oo) = (cols.shape()[0], cols.shape()[1]);
        let oc = self.weights.shape()[0];
        assert_eq!(grad_out.len(), oc * oo, "∇output shape mismatch");
        // D-w path, the W-CONV of Fig. 6: every weight tap's gradient is a
        // dot product of ∇output with the matching im2col row — one GEMM
        // against the transposed column matrix cached by `forward`.
        let mut dw = ws.take(oc * red);
        gemm_nt_buf(oc, oo, red, grad_out.data(), cols.data(), &mut dw);
        self.grad.axpy_slice_in_place(1.0, &dw);
        ws.give(dw);
        self.op
            .input_grad_with(grad_out, &self.weights, self.cached_extent, ws)
    }

    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace) {
        self.opt.apply(rule, step, &mut self.weights, &self.grad, ws);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        self.grad.fill(0.0);
    }

    fn capture_state(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("weights", self.weights.clone());
        self.opt.capture_into("opt", &mut s);
        s
    }

    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        self.weights = state.require(layer, "weights", self.weights.shape())?;
        self.opt
            .restore_from("opt", state, layer, self.weights.shape())?;
        self.grad.fill(0.0);
        self.cached_cols = None;
        self.cached_extent = 0;
        self.cached_bcols = None;
        self.cached_batch = 0;
        Ok(())
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        let g = self.declared?;
        let k = self.weights.shape()[3];
        Some(GemmShape {
            m: (g.output as u128).pow(2),
            k: (self.weights.shape()[1] * k * k) as u128,
            n: self.weights.shape()[0] as u128,
        })
    }

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        expect_rank("ConvTrainLayer", 4, input.shape())?;
        let (oc, ic, k) = (
            self.weights.shape()[0],
            self.weights.shape()[1],
            self.weights.shape()[2],
        );
        if input.shape()[0] != batch
            || input.shape()[1] != ic
            || input.shape()[2] != input.shape()[3]
        {
            return Err(TrainError::ShapeMismatch {
                layer: "ConvTrainLayer",
                expected: vec![batch, ic],
                actual: input.shape().to_vec(),
            });
        }
        let extent = input.shape()[2];
        self.cached_extent = extent;
        self.cached_batch = batch;
        let geom = self.op.geometry(extent);
        let (red, oo) = (ic * k * k, geom.output * geom.output);
        let bo = batch * oo;
        let bcols = cache_buf(&mut self.cached_bcols, &[red, bo]);
        im2col_batch_into(input.data(), batch, ic, &geom, bcols.data_mut());
        // One GEMM with n = batch·O·O: each output element's reduction
        // chain matches the single-sample path term for term (ascending
        // im2col rows), so each sample's result is bit-identical — and the
        // widened n keeps the kernel's SIMD lanes (which run across output
        // columns) saturated even for small `OC`.
        let mut flat = ws.take(oc * bo);
        gemm_buf(oc, red, bo, self.weights.data(), bcols.data(), &mut flat);
        let mut out = ws.take(batch * oc * oo);
        relayout_channel_major(&flat, &mut out, batch, oc, oo);
        ws.give(flat);
        Ok(Tensor::from_vec(
            &[batch, oc, geom.output, geom.output],
            out,
        ))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let bcols = self
            .cached_bcols
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward {
                layer: "ConvTrainLayer",
            })?;
        if self.cached_batch != batch {
            return Err(TrainError::BackwardBeforeForward {
                layer: "ConvTrainLayer",
            });
        }
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        let red = bcols.shape()[0];
        let oo = bcols.shape()[1] / batch;
        if grad_out.len() != batch * oc * oo {
            return Err(TrainError::ShapeMismatch {
                layer: "ConvTrainLayer",
                expected: vec![batch, oc * oo],
                actual: grad_out.shape().to_vec(),
            });
        }
        // ∇W: per-sample GEMM partials (each the exact single-sample
        // chain, over the sample's column block copied contiguous), folded
        // by the fixed tree.
        let wlen = oc * red;
        let mut parts = ws.take(batch * wlen);
        {
            let pp = SlicePtr::new(&mut parts);
            let gd = grad_out.data();
            let ct = bcols.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint windows of `parts`.
                    let part = unsafe { pp.slice(b * wlen, wlen) };
                    with_thread_workspace(|tws| {
                        let mut cb = tws.take(red * oo);
                        sample_cols_into(ct, b, red, oo, &mut cb);
                        gemm_nt_buf(
                            oc,
                            oo,
                            red,
                            &gd[b * oc * oo..(b + 1) * oc * oo],
                            &cb,
                            part,
                        );
                        tws.give(cb);
                    });
                }
            });
        }
        tree_reduce_in_place(&mut parts, batch, wlen);
        self.grad.axpy_slice_in_place(1.0, &parts[..wlen]);
        ws.give(parts);
        // ∇input: the single-sample scatter per sample, each worker drawing
        // scratch from its own persistent thread workspace.
        let extent = self.cached_extent;
        let slen = ic * extent * extent;
        let mut din = ws.take(batch * slen);
        {
            let dp = SlicePtr::new(&mut din);
            let gd = grad_out.data();
            let op = &self.op;
            let weights = &self.weights;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint planes of `din`.
                    let d = unsafe { dp.slice(b * slen, slen) };
                    with_thread_workspace(|tws| {
                        op.input_grad_buf_vec(
                            &gd[b * oc * oo..(b + 1) * oc * oo],
                            weights,
                            extent,
                            tws,
                            d,
                        );
                    });
                }
            });
        }
        Ok(Tensor::from_vec(&[batch, ic, extent, extent], din))
    }

    fn capture_grads(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("grad", self.grad.clone());
        s
    }
}

/// Transposed-convolution trainable layer.
#[derive(Debug)]
pub struct TconvTrainLayer {
    geometry: TconvGeometry,
    inner: Conv2d, // stride-1 conv over the expanded input
    weights: Tensor,
    grad: Tensor,
    /// im2col matrix `[IC·K·K, O·O]` of the zero-inserted input from the
    /// last forward, reused by the backward weight-gradient GEMM.
    cached_cols: Option<Tensor>,
    /// Extent of the zero-inserted plane from the last forward.
    cached_extent: usize,
    /// Batched im2col matrix `[IC·K·K, batch·O·O]` (per-sample column
    /// blocks) of the zero-inserted inputs from the last batched forward.
    cached_bcols: Option<Tensor>,
    /// Batch size of the last batched forward.
    cached_batch: usize,
    opt: OptState,
}

impl TconvTrainLayer {
    /// Creates the layer for the given T-CONV geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        geometry: TconvGeometry,
        rng: &mut StdRng,
    ) -> Self {
        let k = geometry.kernel;
        let inner = Conv2d::new(in_channels, out_channels, k, 1, 0).expect("validated geometry");
        let shape = [out_channels, in_channels, k, k];
        TconvTrainLayer {
            geometry,
            inner,
            weights: he_init(rng, &shape, in_channels * k * k),
            grad: Tensor::zeros(&shape),
            cached_cols: None,
            cached_extent: 0,
            cached_bcols: None,
            cached_batch: 0,
            opt: OptState::default(),
        }
    }
}

impl TrainableLayer for TconvTrainLayer {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        // The zero-insertion realisation of Fig. 4 (the zero-free
        // equivalence is proven against it in lergan-core), executed as a
        // stride-1 im2col + GEMM over the expanded input — bit-identical
        // to `tconv_forward_zero_insert`.
        let g = self.geometry;
        let ic = input.shape()[0];
        assert_eq!(input.shape()[1], g.input, "input height mismatch");
        assert_eq!(input.shape()[2], g.input, "input width mismatch");
        let e = g.expanded();
        let (p, s) = (g.insertion_pad, g.converse_stride);
        // Scatter the input into the zero-inserted plane (pooled scratch).
        let mut exp = ws.take_zeroed(ic * e * e);
        for ci in 0..ic {
            for y in 0..g.input {
                let src = &input.data()[ci * g.input * g.input + y * g.input..][..g.input];
                let dst = &mut exp[ci * e * e + (p + y * s) * e + p..];
                for (x, &v) in src.iter().enumerate() {
                    dst[x * s] = v;
                }
            }
        }
        let expanded = Tensor::from_vec(&[ic, e, e], exp);
        let geom = SconvGeometry::new(e, g.kernel, 1, 0).expect("validated geometry");
        let oc = self.weights.shape()[0];
        let (red, oo) = (ic * g.kernel * g.kernel, geom.output * geom.output);
        let cols = cache_buf(&mut self.cached_cols, &[red, oo]);
        im2col_into(&expanded, &geom, cols.data_mut());
        ws.give_tensor(expanded);
        self.cached_extent = e;
        let mut out = ws.take(oc * oo);
        gemm_buf(oc, red, oo, self.weights.data(), cols.data(), &mut out);
        Tensor::from_vec(&[oc, geom.output, geom.output], out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("backward before forward");
        let (red, oo) = (cols.shape()[0], cols.shape()[1]);
        let oc = self.weights.shape()[0];
        assert_eq!(grad_out.len(), oc * oo, "∇output shape mismatch");
        // G-w: ∇z scans the zero-inserted input — one GEMM against the
        // column matrix cached by `forward`.
        let mut dw = ws.take(oc * red);
        gemm_nt_buf(oc, oo, red, grad_out.data(), cols.data(), &mut dw);
        self.grad.axpy_slice_in_place(1.0, &dw);
        ws.give(dw);
        // G←: dense S-CONV back through the expansion, then gather.
        let d_expanded = self
            .inner
            .input_grad_with(grad_out, &self.weights, self.cached_extent, ws);
        let g = self.geometry;
        let ic = self.weights.shape()[1];
        let e = self.cached_extent;
        let (p, s) = (g.insertion_pad, g.converse_stride);
        let mut din = ws.take(ic * g.input * g.input);
        let dex = d_expanded.data();
        for ci in 0..ic {
            for y in 0..g.input {
                let src = &dex[ci * e * e + (p + y * s) * e + p..];
                let dst = &mut din[ci * g.input * g.input + y * g.input..][..g.input];
                for (x, slot) in dst.iter_mut().enumerate() {
                    *slot = src[x * s];
                }
            }
        }
        ws.give_tensor(d_expanded);
        Tensor::from_vec(&[ic, g.input, g.input], din)
    }

    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace) {
        self.opt.apply(rule, step, &mut self.weights, &self.grad, ws);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        self.grad.fill(0.0);
    }

    fn capture_state(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("weights", self.weights.clone());
        self.opt.capture_into("opt", &mut s);
        s
    }

    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        self.weights = state.require(layer, "weights", self.weights.shape())?;
        self.opt
            .restore_from("opt", state, layer, self.weights.shape())?;
        self.grad.fill(0.0);
        self.cached_cols = None;
        self.cached_extent = 0;
        self.cached_bcols = None;
        self.cached_batch = 0;
        Ok(())
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        // The stride-1 conv over the expanded input: output positions ×
        // (in_channels · kernel²) reduction × out_channels.
        let g = &self.geometry;
        Some(GemmShape {
            m: (g.output as u128).pow(2),
            k: (self.weights.shape()[1] * g.kernel * g.kernel) as u128,
            n: self.weights.shape()[0] as u128,
        })
    }

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        expect_rank("TconvTrainLayer", 4, input.shape())?;
        let g = self.geometry;
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        if input.shape() != [batch, ic, g.input, g.input] {
            return Err(TrainError::ShapeMismatch {
                layer: "TconvTrainLayer",
                expected: vec![batch, ic, g.input, g.input],
                actual: input.shape().to_vec(),
            });
        }
        let e = g.expanded();
        let (p, s) = (g.insertion_pad, g.converse_stride);
        let geom = SconvGeometry::new(e, g.kernel, 1, 0).expect("validated geometry");
        let (red, oo) = (ic * g.kernel * g.kernel, geom.output * geom.output);
        let slen = ic * g.input * g.input;
        self.cached_extent = e;
        self.cached_batch = batch;
        let bo = batch * oo;
        let elen = ic * e * e;
        // Zero-inserted planes for the whole batch (pooled scratch),
        // scattered sample-parallel, then one row-sharded batched im2col.
        let mut exp_all = ws.take_zeroed(batch * elen);
        {
            let ep = SlicePtr::new(&mut exp_all);
            let idata = input.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint expanded planes.
                    let exp = unsafe { ep.slice(b * elen, elen) };
                    let sample = &idata[b * slen..(b + 1) * slen];
                    for ci in 0..ic {
                        for y in 0..g.input {
                            let src = &sample[ci * g.input * g.input + y * g.input..][..g.input];
                            let dst = &mut exp[ci * e * e + (p + y * s) * e + p..];
                            for (x, &v) in src.iter().enumerate() {
                                dst[x * s] = v;
                            }
                        }
                    }
                }
            });
        }
        let bcols = cache_buf(&mut self.cached_bcols, &[red, bo]);
        im2col_batch_into(&exp_all, batch, ic, &geom, bcols.data_mut());
        ws.give(exp_all);
        // One GEMM with n = batch·O·O — per-sample reduction chains are
        // the single-sample ones term for term (see `ConvTrainLayer`).
        let mut flat = ws.take(oc * bo);
        gemm_buf(oc, red, bo, self.weights.data(), bcols.data(), &mut flat);
        let mut out = ws.take(batch * oc * oo);
        relayout_channel_major(&flat, &mut out, batch, oc, oo);
        ws.give(flat);
        Ok(Tensor::from_vec(
            &[batch, oc, geom.output, geom.output],
            out,
        ))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let bcols = self
            .cached_bcols
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward {
                layer: "TconvTrainLayer",
            })?;
        if self.cached_batch != batch {
            return Err(TrainError::BackwardBeforeForward {
                layer: "TconvTrainLayer",
            });
        }
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        let red = bcols.shape()[0];
        let oo = bcols.shape()[1] / batch;
        if grad_out.len() != batch * oc * oo {
            return Err(TrainError::ShapeMismatch {
                layer: "TconvTrainLayer",
                expected: vec![batch, oc * oo],
                actual: grad_out.shape().to_vec(),
            });
        }
        // ∇W: per-sample GEMM partials (each the exact single-sample call
        // over the sample's column block copied contiguous), folded by the
        // fixed tree.
        let wlen = oc * red;
        let mut parts = ws.take(batch * wlen);
        {
            let pp = SlicePtr::new(&mut parts);
            let gd = grad_out.data();
            let ct = bcols.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint windows of `parts`.
                    let part = unsafe { pp.slice(b * wlen, wlen) };
                    with_thread_workspace(|tws| {
                        let mut cb = tws.take(red * oo);
                        sample_cols_into(ct, b, red, oo, &mut cb);
                        gemm_nt_buf(
                            oc,
                            oo,
                            red,
                            &gd[b * oc * oo..(b + 1) * oc * oo],
                            &cb,
                            part,
                        );
                        tws.give(cb);
                    });
                }
            });
        }
        tree_reduce_in_place(&mut parts, batch, wlen);
        self.grad.axpy_slice_in_place(1.0, &parts[..wlen]);
        ws.give(parts);
        // ∇input: dense S-CONV back through the expansion per sample, then
        // the stride gather — the exact single-sample chain.
        let g = self.geometry;
        let e = self.cached_extent;
        let (p, s) = (g.insertion_pad, g.converse_stride);
        let slen = ic * g.input * g.input;
        let mut din = ws.take(batch * slen);
        {
            let dp = SlicePtr::new(&mut din);
            let gd = grad_out.data();
            let inner = &self.inner;
            let weights = &self.weights;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint planes of `din`.
                    let d = unsafe { dp.slice(b * slen, slen) };
                    with_thread_workspace(|tws| {
                        let mut dex = tws.take(ic * e * e);
                        inner.input_grad_buf_vec(
                            &gd[b * oc * oo..(b + 1) * oc * oo],
                            weights,
                            e,
                            tws,
                            &mut dex,
                        );
                        for ci in 0..ic {
                            for y in 0..g.input {
                                let src = &dex[ci * e * e + (p + y * s) * e + p..];
                                let dst = &mut d[ci * g.input * g.input + y * g.input..][..g.input];
                                for (x, slot) in dst.iter_mut().enumerate() {
                                    *slot = src[x * s];
                                }
                            }
                        }
                        tws.give(dex);
                    });
                }
            });
        }
        Ok(Tensor::from_vec(&[batch, ic, g.input, g.input], din))
    }

    fn capture_grads(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("grad", self.grad.clone());
        s
    }
}

/// Dilated / asymmetric convolution trainable layer (D-CONV).
///
/// Runs the *zero-insertion* formulation — the effective-extent kernel is
/// materialised with `D − 1` zeros between taps and driven through a dense
/// im2col + GEMM — exactly the workload the analytics count as
/// `macs_dense`, and the exact dual of [`TconvTrainLayer`]'s expanded
/// input. The backward pass is zero-free: weight gradients gather only the
/// true taps, and the input gradient scatters through them directly.
#[derive(Debug)]
pub struct DconvTrainLayer {
    geometry: DconvGeometry,
    weights: Tensor, // [oc, ic, Kh, Kw] — true taps only
    grad: Tensor,
    /// Zero-inserted kernel `[OC, IC, Kh_eff, Kw_eff]`, rebuilt each
    /// forward (the taps move as the weights update).
    expanded: Option<Tensor>,
    /// im2col matrix `[IC·Kh_eff·Kw_eff, Oh·Ow]` of the last forward
    /// input, reused by the backward weight-gradient GEMM.
    cached_cols: Option<Tensor>,
    /// Batched im2col matrix `[IC·Kh_eff·Kw_eff, batch·Oh·Ow]` (per-sample
    /// column blocks) from the last batched forward.
    cached_bcols: Option<Tensor>,
    /// Batch size of the last batched forward.
    cached_batch: usize,
    opt: OptState,
}

impl DconvTrainLayer {
    /// Creates the layer for the given D-CONV geometry.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        geometry: DconvGeometry,
        rng: &mut StdRng,
    ) -> Self {
        let (kh, kw) = (geometry.rows.kernel, geometry.cols.kernel);
        let shape = [out_channels, in_channels, kh, kw];
        DconvTrainLayer {
            geometry,
            weights: he_init(rng, &shape, in_channels * kh * kw),
            grad: Tensor::zeros(&shape),
            expanded: None,
            cached_cols: None,
            cached_bcols: None,
            cached_batch: 0,
            opt: OptState::default(),
        }
    }
}

impl TrainableLayer for DconvTrainLayer {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let g = self.geometry;
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        assert_eq!(input.shape()[0], ic, "input channel mismatch");
        let (eh, ew) = (g.rows.effective_kernel(), g.cols.effective_kernel());
        let (oh, ow) = (g.rows.output, g.cols.output);
        let (red, oo) = (ic * eh * ew, oh * ow);
        let expanded = cache_buf(&mut self.expanded, &[oc, ic, eh, ew]);
        expand_dilated_kernel_into(&self.weights, &g, expanded.data_mut());
        let cols = cache_buf(&mut self.cached_cols, &[red, oo]);
        im2col_dconv_into(input, &g, cols.data_mut());
        let mut out = ws.take(oc * oo);
        gemm_buf(oc, red, oo, expanded.data(), cols.data(), &mut out);
        Tensor::from_vec(&[oc, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let g = self.geometry;
        let cols = self.cached_cols.as_ref().expect("backward before forward");
        let (red, oo) = (cols.shape()[0], cols.shape()[1]);
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        assert_eq!(grad_out.len(), oc * oo, "∇output shape mismatch");
        let (kh, kw) = (g.rows.kernel, g.cols.kernel);
        let (eh, ew) = (g.rows.effective_kernel(), g.cols.effective_kernel());
        let (dil_h, dil_w) = (g.rows.dilation, g.cols.dilation);
        // ∇W over the expanded layout — one GEMM against the cached
        // column matrix — then gather the true taps at their dilation
        // multiples. Off-tap slots are gradients of structural zeros.
        let mut dwbuf = ws.take(oc * red);
        gemm_nt_buf(oc, oo, red, grad_out.data(), cols.data(), &mut dwbuf);
        let gd = self.grad.data_mut();
        for p in 0..oc * ic {
            let src = &dwbuf[p * eh * ew..(p + 1) * eh * ew];
            let dst = &mut gd[p * kh * kw..(p + 1) * kh * kw];
            for jy in 0..kh {
                for jx in 0..kw {
                    dst[jy * kw + jx] += src[jy * dil_h * ew + jx * dil_w];
                }
            }
        }
        ws.give(dwbuf);
        // ∇input: zero-free scatter through the true taps only.
        let (h, w) = (g.rows.input, g.cols.input);
        let mut din = ws.take_zeroed(ic * h * w);
        dconv_input_grad_scatter(grad_out.data(), &self.weights, &g, &mut din);
        Tensor::from_vec(&[ic, h, w], din)
    }

    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace) {
        self.opt.apply(rule, step, &mut self.weights, &self.grad, ws);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        self.grad.fill(0.0);
    }

    fn capture_state(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("weights", self.weights.clone());
        self.opt.capture_into("opt", &mut s);
        s
    }

    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        self.weights = state.require(layer, "weights", self.weights.shape())?;
        self.opt
            .restore_from("opt", state, layer, self.weights.shape())?;
        self.grad.fill(0.0);
        self.expanded = None;
        self.cached_cols = None;
        self.cached_bcols = None;
        self.cached_batch = 0;
        Ok(())
    }

    fn gemm_shape(&self) -> Option<GemmShape> {
        // The dense GEMM over the zero-inserted kernel: output positions ×
        // (in_channels · effective kernel extent) × out_channels.
        let g = &self.geometry;
        let (eh, ew) = (g.rows.effective_kernel(), g.cols.effective_kernel());
        Some(GemmShape {
            m: (g.rows.output * g.cols.output) as u128,
            k: (self.weights.shape()[1] * eh * ew) as u128,
            n: self.weights.shape()[0] as u128,
        })
    }

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        expect_rank("DconvTrainLayer", 4, input.shape())?;
        let g = self.geometry;
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        if input.shape() != [batch, ic, g.rows.input, g.cols.input] {
            return Err(TrainError::ShapeMismatch {
                layer: "DconvTrainLayer",
                expected: vec![batch, ic, g.rows.input, g.cols.input],
                actual: input.shape().to_vec(),
            });
        }
        let (eh, ew) = (g.rows.effective_kernel(), g.cols.effective_kernel());
        let (oh, ow) = (g.rows.output, g.cols.output);
        let (red, oo) = (ic * eh * ew, oh * ow);
        // The zero-inserted kernel is shared by every sample: expand once.
        let expanded = cache_buf(&mut self.expanded, &[oc, ic, eh, ew]);
        expand_dilated_kernel_into(&self.weights, &g, expanded.data_mut());
        self.cached_batch = batch;
        let bo = batch * oo;
        let bcols = cache_buf(&mut self.cached_bcols, &[red, bo]);
        im2col_dconv_batch_into(input.data(), batch, ic, &g, bcols.data_mut());
        // One GEMM with n = batch·Oh·Ow — per-sample reduction chains are
        // the single-sample ones term for term (see `ConvTrainLayer`).
        let mut flat = ws.take(oc * bo);
        gemm_buf(oc, red, bo, expanded.data(), bcols.data(), &mut flat);
        let mut out = ws.take(batch * oc * oo);
        relayout_channel_major(&flat, &mut out, batch, oc, oo);
        ws.give(flat);
        Ok(Tensor::from_vec(&[batch, oc, oh, ow], out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let bcols = self
            .cached_bcols
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward {
                layer: "DconvTrainLayer",
            })?;
        if self.cached_batch != batch {
            return Err(TrainError::BackwardBeforeForward {
                layer: "DconvTrainLayer",
            });
        }
        let g = self.geometry;
        let (oc, ic) = (self.weights.shape()[0], self.weights.shape()[1]);
        let (kh, kw) = (g.rows.kernel, g.cols.kernel);
        let (eh, ew) = (g.rows.effective_kernel(), g.cols.effective_kernel());
        let (dil_h, dil_w) = (g.rows.dilation, g.cols.dilation);
        let red = bcols.shape()[0];
        let oo = bcols.shape()[1] / batch;
        if grad_out.len() != batch * oc * oo {
            return Err(TrainError::ShapeMismatch {
                layer: "DconvTrainLayer",
                expected: vec![batch, oc * oo],
                actual: grad_out.shape().to_vec(),
            });
        }
        // ∇W: per-sample partials over the *expanded* layout (each the
        // exact single-sample call over the sample's column block copied
        // contiguous), folded by the fixed tree, then a tap gather at the
        // dilation multiples. The gather is elementwise selection, so
        // gathering after the tree is exactly the tree over gathered
        // per-sample gradients.
        let wlen = oc * red;
        let mut parts = ws.take(batch * wlen);
        {
            let pp = SlicePtr::new(&mut parts);
            let gd = grad_out.data();
            let ct = bcols.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint windows of `parts`.
                    let part = unsafe { pp.slice(b * wlen, wlen) };
                    with_thread_workspace(|tws| {
                        let mut cb = tws.take(red * oo);
                        sample_cols_into(ct, b, red, oo, &mut cb);
                        gemm_nt_buf(
                            oc,
                            oo,
                            red,
                            &gd[b * oc * oo..(b + 1) * oc * oo],
                            &cb,
                            part,
                        );
                        tws.give(cb);
                    });
                }
            });
        }
        tree_reduce_in_place(&mut parts, batch, wlen);
        let gd = self.grad.data_mut();
        for p in 0..oc * ic {
            let src = &parts[p * eh * ew..(p + 1) * eh * ew];
            let dst = &mut gd[p * kh * kw..(p + 1) * kh * kw];
            for jy in 0..kh {
                for jx in 0..kw {
                    dst[jy * kw + jx] += src[jy * dil_h * ew + jx * dil_w];
                }
            }
        }
        ws.give(parts);
        // ∇input: the zero-free per-sample scatter through the true taps.
        let (h, w) = (g.rows.input, g.cols.input);
        let slen = ic * h * w;
        let mut din = ws.take_zeroed(batch * slen);
        {
            let dp = SlicePtr::new(&mut din);
            let gdata = grad_out.data();
            let weights = &self.weights;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint planes of `din`.
                    let d = unsafe { dp.slice(b * slen, slen) };
                    dconv_input_grad_scatter(
                        &gdata[b * oc * oo..(b + 1) * oc * oo],
                        weights,
                        &g,
                        d,
                    );
                }
            });
        }
        Ok(Tensor::from_vec(&[batch, ic, h, w], din))
    }

    fn capture_grads(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("grad", self.grad.clone());
        s
    }
}

/// Per-channel batch normalisation (DCGAN applies it after every
/// conv/T-CONV except the output layers).
///
/// This single-sample variant normalises over each channel's spatial
/// plane with running statistics for inference, and learns an affine
/// (γ, β) per channel — the standard formulation restricted to the
/// sample-at-a-time training loop this crate uses.
#[derive(Debug)]
pub struct BatchNorm {
    gamma: Tensor, // [C]
    beta: Tensor,  // [C]
    grad_gamma: Tensor,
    grad_beta: Tensor,
    opt_gamma: OptState,
    opt_beta: OptState,
    eps: f32,
    momentum: f32,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // caches
    normalized: Option<Tensor>,
    inv_std: Vec<f32>,
    /// Batched normalized cache `[batch, C, H, W]`.
    normalized_b: Option<Tensor>,
    /// Per-sample per-channel `[mean, var, inv_std]` triples from the last
    /// batched forward, laid out `(b·C + c)·3`.
    stats_b: Vec<f32>,
}

impl BatchNorm {
    /// Creates the layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            opt_gamma: OptState::default(),
            opt_beta: OptState::default(),
            eps: 1e-5,
            momentum: 0.1,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            normalized: None,
            inv_std: vec![0.0; channels],
            normalized_b: None,
            stats_b: Vec::new(),
        }
    }

    /// Running mean per channel (for inspection/inference).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }
}

impl TrainableLayer for BatchNorm {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        check(expect_rank("BatchNorm", 3, input.shape()));
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        check(expect_dim("BatchNorm", self.gamma.len(), c));
        let plane = h * w;
        let n = plane as f32;
        let mut out = ws.take(c * plane);
        let normalized = cache_buf(&mut self.normalized, &[c, h, w]);
        let ndata = normalized.data_mut();
        for ci in 0..c {
            let ip = &input.data()[ci * plane..(ci + 1) * plane];
            let mut mean = 0.0;
            for &v in ip {
                mean += v;
            }
            mean /= n;
            let mut var = 0.0;
            for &v in ip {
                let d = v - mean;
                var += d * d;
            }
            var /= n;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.inv_std[ci] = inv_std;
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
            let (g, b) = (self.gamma.data()[ci], self.beta.data()[ci]);
            let np = &mut ndata[ci * plane..(ci + 1) * plane];
            let op = &mut out[ci * plane..(ci + 1) * plane];
            for ((nslot, oslot), &v) in np.iter_mut().zip(op.iter_mut()).zip(ip) {
                let norm = (v - mean) * inv_std;
                *nslot = norm;
                *oslot = g * norm + b;
            }
        }
        Tensor::from_vec(&[c, h, w], out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let normalized = self.normalized.as_ref().expect("backward before forward");
        let (c, h, w) = (
            normalized.shape()[0],
            normalized.shape()[1],
            normalized.shape()[2],
        );
        assert_eq!(grad_out.shape(), normalized.shape(), "gradient mismatch");
        let plane = h * w;
        let n = plane as f32;
        let mut din = ws.take(c * plane);
        for ci in 0..c {
            let gp = &grad_out.data()[ci * plane..(ci + 1) * plane];
            let np = &normalized.data()[ci * plane..(ci + 1) * plane];
            let mut sum_dy = 0.0;
            let mut sum_dy_norm = 0.0;
            for (&dy, &norm) in gp.iter().zip(np) {
                sum_dy += dy;
                sum_dy_norm += dy * norm;
            }
            self.grad_beta.data_mut()[ci] += sum_dy;
            self.grad_gamma.data_mut()[ci] += sum_dy_norm;
            let g = self.gamma.data()[ci];
            let inv_std = self.inv_std[ci];
            let dp = &mut din[ci * plane..(ci + 1) * plane];
            for ((d, &dy), &norm) in dp.iter_mut().zip(gp).zip(np) {
                *d = g * inv_std / n * (n * dy - sum_dy - norm * sum_dy_norm);
            }
        }
        Tensor::from_vec(&[c, h, w], din)
    }

    fn apply_update(&mut self, rule: &UpdateRule, step: u64, ws: &mut Workspace) {
        self.opt_gamma
            .apply(rule, step, &mut self.gamma, &self.grad_gamma, ws);
        self.opt_beta
            .apply(rule, step, &mut self.beta, &self.grad_beta, ws);
        self.zero_grads();
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill(0.0);
        self.grad_beta.fill(0.0);
    }

    fn capture_state(&self) -> LayerState {
        let c = self.gamma.len();
        let mut s = LayerState::empty();
        s.push("gamma", self.gamma.clone());
        s.push("beta", self.beta.clone());
        s.push(
            "running_mean",
            Tensor::from_vec(&[c], self.running_mean.clone()),
        );
        s.push(
            "running_var",
            Tensor::from_vec(&[c], self.running_var.clone()),
        );
        self.opt_gamma.capture_into("opt_gamma", &mut s);
        self.opt_beta.capture_into("opt_beta", &mut s);
        s
    }

    fn restore_state(&mut self, state: &LayerState, layer: usize) -> Result<(), CheckpointError> {
        let shape = self.gamma.shape().to_vec();
        self.gamma = state.require(layer, "gamma", &shape)?;
        self.beta = state.require(layer, "beta", &shape)?;
        self.running_mean = state.require(layer, "running_mean", &shape)?.data().to_vec();
        self.running_var = state.require(layer, "running_var", &shape)?.data().to_vec();
        self.opt_gamma
            .restore_from("opt_gamma", state, layer, &shape)?;
        self.opt_beta.restore_from("opt_beta", state, layer, &shape)?;
        self.zero_grads();
        self.normalized = None;
        self.normalized_b = None;
        Ok(())
    }

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        expect_rank("BatchNorm", 4, input.shape())?;
        let (c, h, w) = (input.shape()[1], input.shape()[2], input.shape()[3]);
        expect_dim("BatchNorm", self.gamma.len(), c)?;
        if input.shape()[0] != batch {
            return Err(TrainError::ShapeMismatch {
                layer: "BatchNorm",
                expected: vec![batch, c, h, w],
                actual: input.shape().to_vec(),
            });
        }
        let plane = h * w;
        let n = plane as f32;
        let slen = c * plane;
        if self.stats_b.len() != batch * c * 3 {
            self.stats_b.resize(batch * c * 3, 0.0);
        }
        let mut out = ws.take(batch * slen);
        // Per-sample statistics, exactly the single-sample formulation —
        // each sample's normalisation is independent of the rest of the
        // batch, so outputs are bit-identical to sequential calls.
        let np = SlicePtr::new(cache_buf(&mut self.normalized_b, &[batch, c, h, w]).data_mut());
        {
            let outp = SlicePtr::new(&mut out);
            let sp = SlicePtr::new(&mut self.stats_b);
            let idata = input.data();
            let eps = self.eps;
            let gamma = self.gamma.data();
            let beta = self.beta.data();
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint slices of all three buffers.
                    let outs = unsafe { outp.slice(b * slen, slen) };
                    let norms = unsafe { np.slice(b * slen, slen) };
                    let stats = unsafe { sp.slice(b * c * 3, c * 3) };
                    let sample = &idata[b * slen..(b + 1) * slen];
                    for ci in 0..c {
                        let ip = &sample[ci * plane..(ci + 1) * plane];
                        let mut mean = 0.0;
                        for &v in ip {
                            mean += v;
                        }
                        mean /= n;
                        let mut var = 0.0;
                        for &v in ip {
                            let d = v - mean;
                            var += d * d;
                        }
                        var /= n;
                        let inv_std = 1.0 / (var + eps).sqrt();
                        stats[ci * 3] = mean;
                        stats[ci * 3 + 1] = var;
                        stats[ci * 3 + 2] = inv_std;
                        let (g, bta) = (gamma[ci], beta[ci]);
                        let npl = &mut norms[ci * plane..(ci + 1) * plane];
                        let opl = &mut outs[ci * plane..(ci + 1) * plane];
                        for ((nslot, oslot), &v) in npl.iter_mut().zip(opl.iter_mut()).zip(ip) {
                            let norm = (v - mean) * inv_std;
                            *nslot = norm;
                            *oslot = g * norm + bta;
                        }
                    }
                }
            });
        }
        // Serial batch-ascending EMA fold: bit-identical to feeding the
        // same samples through the single-sample path one at a time, and
        // independent of the worker count.
        for b in 0..batch {
            for ci in 0..c {
                let mean = self.stats_b[(b * c + ci) * 3];
                let var = self.stats_b[(b * c + ci) * 3 + 1];
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
            }
        }
        Ok(Tensor::from_vec(&[batch, c, h, w], out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let normalized = self
            .normalized_b
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward { layer: "BatchNorm" })?;
        if normalized.shape()[0] != batch || grad_out.shape() != normalized.shape() {
            return Err(TrainError::ShapeMismatch {
                layer: "BatchNorm",
                expected: normalized.shape().to_vec(),
                actual: grad_out.shape().to_vec(),
            });
        }
        let (c, h, w) = (
            normalized.shape()[1],
            normalized.shape()[2],
            normalized.shape()[3],
        );
        let plane = h * w;
        let n = plane as f32;
        let slen = c * plane;
        let mut din = ws.take(batch * slen);
        // Per-sample `[Σdy | Σdy·norm]` pairs, folded by the fixed tree
        // into the (β, γ) gradients.
        let mut parts = ws.take(batch * 2 * c);
        {
            let dp = SlicePtr::new(&mut din);
            let pp = SlicePtr::new(&mut parts);
            let nd = normalized.data();
            let gd = grad_out.data();
            let gamma = self.gamma.data();
            let stats = &self.stats_b;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint slices of both buffers.
                    let d = unsafe { dp.slice(b * slen, slen) };
                    let part = unsafe { pp.slice(b * 2 * c, 2 * c) };
                    for ci in 0..c {
                        let gp = &gd[b * slen + ci * plane..][..plane];
                        let npl = &nd[b * slen + ci * plane..][..plane];
                        let mut sum_dy = 0.0;
                        let mut sum_dy_norm = 0.0;
                        for (&dy, &norm) in gp.iter().zip(npl) {
                            sum_dy += dy;
                            sum_dy_norm += dy * norm;
                        }
                        part[ci] = sum_dy;
                        part[c + ci] = sum_dy_norm;
                        let g = gamma[ci];
                        let inv_std = stats[(b * c + ci) * 3 + 2];
                        let dpl = &mut d[ci * plane..(ci + 1) * plane];
                        for ((slot, &dy), &norm) in dpl.iter_mut().zip(gp).zip(npl) {
                            *slot = g * inv_std / n * (n * dy - sum_dy - norm * sum_dy_norm);
                        }
                    }
                }
            });
        }
        tree_reduce_in_place(&mut parts, batch, 2 * c);
        for ci in 0..c {
            self.grad_beta.data_mut()[ci] += parts[ci];
            self.grad_gamma.data_mut()[ci] += parts[c + ci];
        }
        ws.give(parts);
        Ok(Tensor::from_vec(&[batch, c, h, w], din))
    }

    fn capture_grads(&self) -> LayerState {
        let mut s = LayerState::empty();
        s.push("grad_gamma", self.grad_gamma.clone());
        s.push("grad_beta", self.grad_beta.clone());
        s
    }
}

/// Per-position pixelwise feature normalisation (ProGAN-style, the `pn`
/// topology tag): each spatial position's channel vector is scaled to unit
/// RMS, `y_c = x_c / sqrt(mean_c x_c² + ε)`. Parameter-free — unlike
/// [`BatchNorm`] it carries no optimiser state and checkpoints empty.
#[derive(Debug)]
pub struct PixelNorm {
    eps: f32,
    // caches
    normalized: Option<Tensor>,
    inv_norm: Vec<f32>, // per spatial position
    /// Batched normalized cache `[batch, C, H, W]`.
    normalized_b: Option<Tensor>,
    /// Per-sample per-position inverse norms, `batch · plane` long.
    inv_norm_b: Vec<f32>,
}

impl PixelNorm {
    /// Creates the layer.
    pub fn new() -> Self {
        PixelNorm {
            eps: 1e-8,
            normalized: None,
            inv_norm: Vec::new(),
            normalized_b: None,
            inv_norm_b: Vec::new(),
        }
    }
}

impl Default for PixelNorm {
    fn default() -> Self {
        Self::new()
    }
}

impl TrainableLayer for PixelNorm {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        check(expect_rank("PixelNorm", 3, input.shape()));
        let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let plane = h * w;
        let cn = c as f32;
        self.inv_norm.resize(plane, 0.0);
        let mut out = ws.take(c * plane);
        let normalized = cache_buf(&mut self.normalized, input.shape());
        let ndata = normalized.data_mut();
        let data = input.data();
        for p in 0..plane {
            let mut ss = 0.0;
            for ci in 0..c {
                let v = data[ci * plane + p];
                ss += v * v;
            }
            let inv = 1.0 / (ss / cn + self.eps).sqrt();
            self.inv_norm[p] = inv;
            for ci in 0..c {
                let y = data[ci * plane + p] * inv;
                ndata[ci * plane + p] = y;
                out[ci * plane + p] = y;
            }
        }
        Tensor::from_vec(input.shape(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let normalized = self.normalized.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), normalized.shape(), "gradient mismatch");
        let c = normalized.shape()[0];
        let plane = normalized.shape()[1] * normalized.shape()[2];
        let cn = c as f32;
        let mut din = ws.take(c * plane);
        let nd = normalized.data();
        let gd = grad_out.data();
        // dx_k = r·(dy_k − y_k·(Σ_c dy_c y_c)/C), with r cached from the
        // forward — the exact Jacobian of the unit-RMS rescale.
        for p in 0..plane {
            let mut dot = 0.0;
            for ci in 0..c {
                dot += gd[ci * plane + p] * nd[ci * plane + p];
            }
            let inv = self.inv_norm[p];
            for ci in 0..c {
                din[ci * plane + p] = inv * (gd[ci * plane + p] - nd[ci * plane + p] * dot / cn);
            }
        }
        Tensor::from_vec(normalized.shape(), din)
    }

    fn apply_update(&mut self, _rule: &UpdateRule, _step: u64, _ws: &mut Workspace) {}
    fn zero_grads(&mut self) {}

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        expect_rank("PixelNorm", 4, input.shape())?;
        if input.shape()[0] != batch {
            return Err(TrainError::ShapeMismatch {
                layer: "PixelNorm",
                expected: vec![batch],
                actual: input.shape().to_vec(),
            });
        }
        let (c, h, w) = (input.shape()[1], input.shape()[2], input.shape()[3]);
        let plane = h * w;
        let cn = c as f32;
        let slen = c * plane;
        if self.inv_norm_b.len() != batch * plane {
            self.inv_norm_b.resize(batch * plane, 0.0);
        }
        let mut out = ws.take(batch * slen);
        let np = SlicePtr::new(cache_buf(&mut self.normalized_b, &[batch, c, h, w]).data_mut());
        {
            let outp = SlicePtr::new(&mut out);
            let ip = SlicePtr::new(&mut self.inv_norm_b);
            let data = input.data();
            let eps = self.eps;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint slices of all three buffers.
                    let outs = unsafe { outp.slice(b * slen, slen) };
                    let norms = unsafe { np.slice(b * slen, slen) };
                    let invs = unsafe { ip.slice(b * plane, plane) };
                    let sample = &data[b * slen..(b + 1) * slen];
                    for p in 0..plane {
                        let mut ss = 0.0;
                        for ci in 0..c {
                            let v = sample[ci * plane + p];
                            ss += v * v;
                        }
                        let inv = 1.0 / (ss / cn + eps).sqrt();
                        invs[p] = inv;
                        for ci in 0..c {
                            let y = sample[ci * plane + p] * inv;
                            norms[ci * plane + p] = y;
                            outs[ci * plane + p] = y;
                        }
                    }
                }
            });
        }
        Ok(Tensor::from_vec(&[batch, c, h, w], out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let normalized = self
            .normalized_b
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward { layer: "PixelNorm" })?;
        if normalized.shape()[0] != batch || grad_out.shape() != normalized.shape() {
            return Err(TrainError::ShapeMismatch {
                layer: "PixelNorm",
                expected: normalized.shape().to_vec(),
                actual: grad_out.shape().to_vec(),
            });
        }
        let (c, h, w) = (
            normalized.shape()[1],
            normalized.shape()[2],
            normalized.shape()[3],
        );
        let plane = h * w;
        let cn = c as f32;
        let slen = c * plane;
        let mut din = ws.take(batch * slen);
        {
            let dp = SlicePtr::new(&mut din);
            let nd = normalized.data();
            let gd = grad_out.data();
            let invs = &self.inv_norm_b;
            parallel::for_each_range(batch, 1, |range| {
                for b in range {
                    // SAFETY: sample-disjoint slices of `din`.
                    let d = unsafe { dp.slice(b * slen, slen) };
                    for p in 0..plane {
                        let mut dot = 0.0;
                        for ci in 0..c {
                            dot += gd[b * slen + ci * plane + p] * nd[b * slen + ci * plane + p];
                        }
                        let inv = invs[b * plane + p];
                        for ci in 0..c {
                            d[ci * plane + p] = inv
                                * (gd[b * slen + ci * plane + p]
                                    - nd[b * slen + ci * plane + p] * dot / cn);
                        }
                    }
                }
            });
        }
        Ok(Tensor::from_vec(&[batch, c, h, w], din))
    }
}

/// Leaky-ReLU activation (the paper's DCGAN uses slope 0.2 in D).
#[derive(Debug)]
pub struct LeakyRelu {
    alpha: f32,
    cached_input: Option<Tensor>,
    /// Batched input cache (kept apart from the single-sample cache).
    cached_input_b: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates the activation with the given negative slope.
    pub fn new(alpha: f32) -> Self {
        LeakyRelu {
            alpha,
            cached_input: None,
            cached_input_b: None,
        }
    }
}

impl TrainableLayer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = cache_buf(&mut self.cached_input, input.shape());
        cache.data_mut().copy_from_slice(input.data());
        let a = self.alpha;
        let mut out = ws.take(input.len());
        for (o, &x) in out.iter_mut().zip(input.data()) {
            *o = if x > 0.0 { x } else { a * x };
        }
        Tensor::from_vec(input.shape(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        assert_eq!(input.shape(), grad_out.shape(), "gradient shape mismatch");
        let a = self.alpha;
        let mut din = ws.take(grad_out.len());
        for ((d, &x), &g) in din.iter_mut().zip(input.data()).zip(grad_out.data()) {
            *d = if x > 0.0 { g } else { a * g };
        }
        Tensor::from_vec(input.shape(), din)
    }

    fn apply_update(&mut self, _rule: &UpdateRule, _step: u64, _ws: &mut Workspace) {}
    fn zero_grads(&mut self) {}

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        if input.shape()[0] != batch {
            return Err(TrainError::ShapeMismatch {
                layer: "LeakyRelu",
                expected: vec![batch],
                actual: input.shape().to_vec(),
            });
        }
        let cache = cache_buf(&mut self.cached_input_b, input.shape());
        cache.data_mut().copy_from_slice(input.data());
        let slen = input.len() / batch;
        let a = self.alpha;
        let mut out = ws.take(input.len());
        {
            let data = input.data();
            parallel::for_each_unit_chunk_mut(&mut out, slen, 1, |first, chunk| {
                let (off, n) = (first * slen, chunk.len());
                for (o, &x) in chunk.iter_mut().zip(&data[off..off + n]) {
                    *o = if x > 0.0 { x } else { a * x };
                }
            });
        }
        Ok(Tensor::from_vec(input.shape(), out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let input = self
            .cached_input_b
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward { layer: "LeakyRelu" })?;
        if input.shape()[0] != batch || grad_out.shape() != input.shape() {
            return Err(TrainError::ShapeMismatch {
                layer: "LeakyRelu",
                expected: input.shape().to_vec(),
                actual: grad_out.shape().to_vec(),
            });
        }
        let slen = input.len() / batch;
        let a = self.alpha;
        let mut din = ws.take(grad_out.len());
        {
            let xd = input.data();
            let gd = grad_out.data();
            parallel::for_each_unit_chunk_mut(&mut din, slen, 1, |first, chunk| {
                let (off, n) = (first * slen, chunk.len());
                for ((d, &x), &g) in chunk
                    .iter_mut()
                    .zip(&xd[off..off + n])
                    .zip(&gd[off..off + n])
                {
                    *d = if x > 0.0 { g } else { a * g };
                }
            });
        }
        Ok(Tensor::from_vec(input.shape(), din))
    }
}

/// Hyperbolic-tangent activation (generator output).
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
    /// Batched output cache (kept apart from the single-sample cache).
    cached_output_b: Option<Tensor>,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrainableLayer for Tanh {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut out = ws.take(input.len());
        for (o, &x) in out.iter_mut().zip(input.data()) {
            *o = x.tanh();
        }
        let cache = cache_buf(&mut self.cached_output, input.shape());
        cache.data_mut().copy_from_slice(&out);
        Tensor::from_vec(input.shape(), out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward before forward");
        assert_eq!(out.shape(), grad_out.shape(), "gradient shape mismatch");
        let mut din = ws.take(grad_out.len());
        for ((d, &y), &g) in din.iter_mut().zip(out.data()).zip(grad_out.data()) {
            *d = g * (1.0 - y * y);
        }
        Tensor::from_vec(out.shape(), din)
    }

    fn apply_update(&mut self, _rule: &UpdateRule, _step: u64, _ws: &mut Workspace) {}
    fn zero_grads(&mut self) {}

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        if input.shape()[0] != batch {
            return Err(TrainError::ShapeMismatch {
                layer: "Tanh",
                expected: vec![batch],
                actual: input.shape().to_vec(),
            });
        }
        let slen = input.len() / batch;
        let mut out = ws.take(input.len());
        {
            let data = input.data();
            parallel::for_each_unit_chunk_mut(&mut out, slen, 1, |first, chunk| {
                let (off, n) = (first * slen, chunk.len());
                for (o, &x) in chunk.iter_mut().zip(&data[off..off + n]) {
                    *o = x.tanh();
                }
            });
        }
        let cache = cache_buf(&mut self.cached_output_b, input.shape());
        cache.data_mut().copy_from_slice(&out);
        Ok(Tensor::from_vec(input.shape(), out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        let out = self
            .cached_output_b
            .as_ref()
            .ok_or(TrainError::BackwardBeforeForward { layer: "Tanh" })?;
        if out.shape()[0] != batch || grad_out.shape() != out.shape() {
            return Err(TrainError::ShapeMismatch {
                layer: "Tanh",
                expected: out.shape().to_vec(),
                actual: grad_out.shape().to_vec(),
            });
        }
        let slen = out.len() / batch;
        let mut din = ws.take(grad_out.len());
        {
            let yd = out.data();
            let gd = grad_out.data();
            parallel::for_each_unit_chunk_mut(&mut din, slen, 1, |first, chunk| {
                let (off, n) = (first * slen, chunk.len());
                for ((d, &y), &g) in chunk
                    .iter_mut()
                    .zip(&yd[off..off + n])
                    .zip(&gd[off..off + n])
                {
                    *d = g * (1.0 - y * y);
                }
            });
        }
        Ok(Tensor::from_vec(out.shape(), din))
    }
}

/// Reshapes between flat FC outputs and `[C, H, W]` feature maps.
#[derive(Debug)]
pub struct Reshape {
    from: Vec<usize>,
    to: Vec<usize>,
}

impl Reshape {
    /// Creates the reshape; `from` and `to` must have equal element counts.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn new(from: &[usize], to: &[usize]) -> Self {
        assert_eq!(
            from.iter().product::<usize>(),
            to.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        Reshape {
            from: from.to_vec(),
            to: to.to_vec(),
        }
    }
}

impl TrainableLayer for Reshape {
    fn forward(&mut self, input: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut out = ws.take(input.len());
        out.copy_from_slice(input.data());
        Tensor::from_vec(&self.to, out)
    }

    fn backward(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut din = ws.take(grad_out.len());
        din.copy_from_slice(grad_out.data());
        Tensor::from_vec(&self.from, din)
    }

    fn apply_update(&mut self, _rule: &UpdateRule, _step: u64, _ws: &mut Workspace) {}
    fn zero_grads(&mut self) {}

    fn forward_batch(
        &mut self,
        input: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        let per: usize = self.from.iter().product();
        if input.shape()[0] != batch || input.len() != batch * per {
            return Err(TrainError::ShapeMismatch {
                layer: "Reshape",
                expected: vec![batch, per],
                actual: input.shape().to_vec(),
            });
        }
        let mut out = ws.take(input.len());
        out.copy_from_slice(input.data());
        let (shape, rank) = batched_shape(batch, &self.to);
        Ok(Tensor::from_vec(&shape[..rank], out))
    }

    fn backward_batch(
        &mut self,
        grad_out: &Tensor,
        batch: usize,
        ws: &mut Workspace,
    ) -> Result<Tensor, TrainError> {
        if batch == 0 {
            return Err(TrainError::EmptyBatch);
        }
        let per: usize = self.to.iter().product();
        if grad_out.shape()[0] != batch || grad_out.len() != batch * per {
            return Err(TrainError::ShapeMismatch {
                layer: "Reshape",
                expected: vec![batch, per],
                actual: grad_out.shape().to_vec(),
            });
        }
        let mut din = ws.take(grad_out.len());
        din.copy_from_slice(grad_out.data());
        let (shape, rank) = batched_shape(batch, &self.from);
        Ok(Tensor::from_vec(&shape[..rank], din))
    }
}

/// A sequential stack of trainable layers, owning the [`Workspace`] its
/// layers draw scratch and result buffers from.
///
/// Intermediate activations and gradients are recycled into that pool as
/// soon as the next layer has consumed them; callers recycle the final
/// output via [`recycle`](Sequential::recycle). A training loop honouring
/// that contract allocates nothing after its first (warmup) step.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn TrainableLayer>>,
    skips: Vec<SkipTap>,
    ws: Workspace,
}

/// One residual connection inside a [`Sequential`], in stack-position
/// space: the output of stack layer `from` is added element-wise to the
/// input of stack layer `to`. The stash buffers persist across steps
/// (zero-alloc steady state) and are dead outside a forward/backward pair,
/// so checkpoints ignore them.
#[derive(Debug, Default)]
struct SkipTap {
    from: usize,
    to: usize,
    stash: Option<Tensor>,
    grad_stash: Option<Tensor>,
    /// Batched-path stashes, kept apart from the single-sample ones so the
    /// two paths can interleave without thrashing the cached shapes.
    stash_b: Option<Tensor>,
    grad_stash_b: Option<Tensor>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("skips", &self.skips.len())
            .field("ws", &self.ws)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn TrainableLayer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer at stack position `index` (see [`OpBinding::train_index`]).
    pub fn layer(&self, index: usize) -> &dyn TrainableLayer {
        &*self.layers[index]
    }

    /// Returns a tensor this stack produced (a [`forward`]/[`backward`]
    /// result) to its buffer pool. Dropping outputs instead is correct but
    /// forgoes reuse — recycling is what keeps the steady-state training
    /// loop allocation-free.
    ///
    /// [`forward`]: Sequential::forward
    /// [`backward`]: Sequential::backward
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.give_tensor(t);
    }

    /// Registers a residual connection: the output of stack layer `from`
    /// is added element-wise to the input of stack layer `to` on every
    /// forward pass, with the matching gradient routing on backward. The
    /// two activation shapes must agree (validated by the topology
    /// parser's skip resolution when built from a spec).
    ///
    /// # Panics
    ///
    /// Panics unless `from < to < len`.
    pub fn add_skip(&mut self, from: usize, to: usize) {
        assert!(from < to, "skip must flow forward ({from} -> {to})");
        assert!(to < self.layers.len(), "skip target {to} out of range");
        self.skips.push(SkipTap {
            from,
            to,
            ..SkipTap::default()
        });
    }

    /// Forward through all layers.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let Sequential { layers, skips, ws } = self;
        if layers.is_empty() {
            return input.clone();
        }
        let mut x = layers[0].forward(input, ws);
        for tap in skips.iter_mut().filter(|t| t.from == 0) {
            let s = cache_buf(&mut tap.stash, x.shape());
            s.data_mut().copy_from_slice(x.data());
        }
        for (li, l) in layers.iter_mut().enumerate().skip(1) {
            for tap in skips.iter_mut().filter(|t| t.to == li) {
                let stash = tap.stash.as_ref().expect("skip source precedes target");
                x.axpy_in_place(1.0, stash);
            }
            let y = l.forward(&x, ws);
            ws.give_tensor(x);
            x = y;
            for tap in skips.iter_mut().filter(|t| t.from == li) {
                let s = cache_buf(&mut tap.stash, x.shape());
                s.data_mut().copy_from_slice(x.data());
            }
        }
        x
    }

    /// Backward through all layers; returns `∇input`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let Sequential { layers, skips, ws } = self;
        let n = layers.len();
        if n == 0 {
            return grad_out.clone();
        }
        let mut g = layers[n - 1].backward(grad_out, ws);
        for tap in skips.iter_mut().filter(|t| t.to == n - 1) {
            let s = cache_buf(&mut tap.grad_stash, g.shape());
            s.data_mut().copy_from_slice(g.data());
        }
        for li in (0..n - 1).rev() {
            // The output of layer `li` also fed every skip tapped here:
            // fold the branch gradients stashed at their targets back in
            // before descending through the layer.
            for tap in skips.iter_mut().filter(|t| t.from == li) {
                let gs = tap.grad_stash.as_ref().expect("skip target follows source");
                g.axpy_in_place(1.0, gs);
            }
            let h = layers[li].backward(&g, ws);
            ws.give_tensor(g);
            g = h;
            for tap in skips.iter_mut().filter(|t| t.to == li) {
                let s = cache_buf(&mut tap.grad_stash, g.shape());
                s.data_mut().copy_from_slice(g.data());
            }
        }
        g
    }

    /// Forward through all layers with a leading batch dimension: every
    /// layer sees the whole `[B, …]` activation and issues one packed GEMM
    /// (or one parallel elementwise sweep) instead of `B` single-sample
    /// passes. Buffer recycling matches [`forward`](Sequential::forward),
    /// so the batched loop is also allocation-free after warmup.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] when a layer rejects the batch shape or has
    /// no batched implementation.
    pub fn forward_batch(&mut self, input: &Tensor, batch: usize) -> Result<Tensor, TrainError> {
        let Sequential { layers, skips, ws } = self;
        if layers.is_empty() {
            return Ok(input.clone());
        }
        let mut x = layers[0].forward_batch(input, batch, ws)?;
        for tap in skips.iter_mut().filter(|t| t.from == 0) {
            let s = cache_buf(&mut tap.stash_b, x.shape());
            s.data_mut().copy_from_slice(x.data());
        }
        for (li, l) in layers.iter_mut().enumerate().skip(1) {
            for tap in skips.iter_mut().filter(|t| t.to == li) {
                let stash = tap.stash_b.as_ref().expect("skip source precedes target");
                x.axpy_in_place(1.0, stash);
            }
            let y = l.forward_batch(&x, batch, ws)?;
            ws.give_tensor(x);
            x = y;
            for tap in skips.iter_mut().filter(|t| t.from == li) {
                let s = cache_buf(&mut tap.stash_b, x.shape());
                s.data_mut().copy_from_slice(x.data());
            }
        }
        Ok(x)
    }

    /// Batched counterpart of [`backward`](Sequential::backward): descends
    /// the stack once with the whole `[B, …]` gradient, accumulating each
    /// layer's `∇W` through per-sample partials folded by the fixed
    /// reduction tree (see [`tree_reduce_in_place`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] when a layer rejects the gradient shape,
    /// was not batch-forwarded first, or has no batched implementation.
    pub fn backward_batch(&mut self, grad_out: &Tensor, batch: usize) -> Result<Tensor, TrainError> {
        let Sequential { layers, skips, ws } = self;
        let n = layers.len();
        if n == 0 {
            return Ok(grad_out.clone());
        }
        let mut g = layers[n - 1].backward_batch(grad_out, batch, ws)?;
        for tap in skips.iter_mut().filter(|t| t.to == n - 1) {
            let s = cache_buf(&mut tap.grad_stash_b, g.shape());
            s.data_mut().copy_from_slice(g.data());
        }
        for li in (0..n - 1).rev() {
            for tap in skips.iter_mut().filter(|t| t.from == li) {
                let gs = tap
                    .grad_stash_b
                    .as_ref()
                    .expect("skip target follows source");
                g.axpy_in_place(1.0, gs);
            }
            let h = layers[li].backward_batch(&g, batch, ws)?;
            ws.give_tensor(g);
            g = h;
            for tap in skips.iter_mut().filter(|t| t.to == li) {
                let s = cache_buf(&mut tap.grad_stash_b, g.shape());
                s.data_mut().copy_from_slice(g.data());
            }
        }
        Ok(g)
    }

    /// Snapshots every layer's accumulated gradients, in stack order — the
    /// bit-identity oracle hook for the batched trainer's tests.
    pub fn capture_grads(&self) -> Vec<LayerState> {
        self.layers.iter().map(|l| l.capture_grads()).collect()
    }

    /// Applies and clears all accumulated gradients through `rule`.
    pub fn apply_update(&mut self, rule: &UpdateRule, step: u64) {
        let Sequential { layers, ws, .. } = self;
        for l in layers {
            l.apply_update(rule, step, ws);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for l in &mut self.layers {
            l.zero_grads();
        }
    }

    /// Snapshots the persistent state of every layer, in stack order.
    pub fn capture_state(&self) -> Vec<LayerState> {
        self.layers.iter().map(|l| l.capture_state()).collect()
    }

    /// Restores a snapshot taken by [`capture_state`] into this stack.
    /// Fails with a typed [`CheckpointError`] — leaving already-restored
    /// layers restored — when the snapshot does not fit the architecture.
    ///
    /// [`capture_state`]: Sequential::capture_state
    pub fn restore_state(&mut self, states: &[LayerState]) -> Result<(), CheckpointError> {
        if states.len() != self.layers.len() {
            return Err(CheckpointError::LayerCountMismatch {
                expected: self.layers.len(),
                actual: states.len(),
            });
        }
        for (i, (layer, state)) in self.layers.iter_mut().zip(states).enumerate() {
            layer.restore_state(state, i)?;
        }
        Ok(())
    }
}

/// A full trainer snapshot: both stacks' parameters and optimiser moments,
/// the optimiser step counter and the noise RNG position. Restoring one
/// into an architecturally identical [`Gan`] resumes training bit-exactly —
/// the property that lets a fault-triggered remap checkpoint mid-epoch,
/// rebuild the hardware mapping around the fault, and continue instead of
/// restarting (see `lergan_core::SystemFaults`).
#[derive(Debug, Clone, PartialEq)]
pub struct GanCheckpoint {
    /// Per-layer state of the generator stack.
    pub generator: Vec<LayerState>,
    /// Per-layer state of the discriminator stack.
    pub discriminator: Vec<LayerState>,
    /// Optimiser steps taken (drives Adam's bias correction).
    pub step: u64,
    /// Noise-generator position (SplitMix64 state).
    pub rng_state: u64,
    /// FNV-1a digest over the full payload (keys, shapes, tensor bits,
    /// step and RNG state), recorded at capture time. [`Gan::restore`]
    /// recomputes it and refuses a mismatching snapshot with
    /// [`CheckpointError::Corrupted`] — a bit flip in a stored moment
    /// would otherwise resume training from silently wrong state.
    pub checksum: u64,
}

impl GanCheckpoint {
    /// Recomputes the payload digest (everything except the stored
    /// [`checksum`](Self::checksum) field itself). Equal payloads hash
    /// equal, so bit-identical checkpoints keep bit-identical digests.
    pub fn payload_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for stack in [&self.generator, &self.discriminator] {
            eat(&(stack.len() as u64).to_le_bytes());
            for layer in stack.iter() {
                eat(&(layer.len() as u64).to_le_bytes());
                for (key, tensor) in layer.entries() {
                    eat(&(key.len() as u64).to_le_bytes());
                    eat(key.as_bytes());
                    eat(&(tensor.shape().len() as u64).to_le_bytes());
                    for &d in tensor.shape() {
                        eat(&(d as u64).to_le_bytes());
                    }
                    for &v in tensor.data() {
                        eat(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
        eat(&self.step.to_le_bytes());
        eat(&self.rng_state.to_le_bytes());
        h
    }

    /// Checks the stored checksum against the payload, returning
    /// [`CheckpointError::Corrupted`] on mismatch.
    pub fn verify(&self) -> Result<(), CheckpointError> {
        let actual = self.payload_digest();
        if actual == self.checksum {
            Ok(())
        } else {
            Err(CheckpointError::Corrupted {
                expected: self.checksum,
                actual,
            })
        }
    }
}

/// Periodic checkpoint cadence: retains the most recent [`GanCheckpoint`],
/// refreshed every `every` optimiser steps.
///
/// This is the policy half of checkpoint-rollback recovery: a runtime
/// calls [`maybe_take`](Self::maybe_take) at every step boundary, and on
/// an uncorrectable hardware fault restores [`last`](Self::last) and
/// replays the steps since — the cadence bounds how much work a rollback
/// can lose.
#[derive(Debug, Clone)]
pub struct AutoCheckpoint {
    every: u64,
    taken: u64,
    last: Option<GanCheckpoint>,
}

impl AutoCheckpoint {
    /// A cadence of one checkpoint every `every` steps (the first call to
    /// [`maybe_take`](Self::maybe_take) always snapshots).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn every(every: u64) -> Self {
        assert!(every > 0, "checkpoint cadence must be at least 1 step");
        AutoCheckpoint {
            every,
            taken: 0,
            last: None,
        }
    }

    /// Snapshots `gan` if the cadence is due: no checkpoint exists yet, or
    /// `every` steps have passed since the last one. Call at a step
    /// boundary (between [`Gan::train_step`]s). Returns whether a
    /// checkpoint was taken.
    pub fn maybe_take(&mut self, gan: &Gan) -> bool {
        let due = match &self.last {
            None => true,
            Some(prev) => gan.step() >= prev.step + self.every,
        };
        if due {
            self.last = Some(gan.checkpoint());
            self.taken += 1;
        }
        due
    }

    /// The most recent checkpoint, if any was taken.
    pub fn last(&self) -> Option<&GanCheckpoint> {
        self.last.as_ref()
    }

    /// Checkpoints taken so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }
}

/// Builds a trainable network from a parsed [`NetworkSpec`] (2-D networks
/// only), inserting leaky-ReLU activations between layers and `tanh` after
/// the final layer of a generator.
///
/// # Panics
///
/// Panics if the spec is volumetric (`dims != 2`).
pub fn build_trainable(spec: &NetworkSpec, is_generator: bool, rng: &mut StdRng) -> Sequential {
    build_trainable_with(spec, is_generator, false, rng)
}

/// [`build_trainable`] with optional DCGAN-style batch normalisation after
/// every conv-like hidden layer.
///
/// # Panics
///
/// Panics if the spec is volumetric (`dims != 2`).
pub fn build_trainable_with(
    spec: &NetworkSpec,
    is_generator: bool,
    batch_norm: bool,
    rng: &mut StdRng,
) -> Sequential {
    build_trainable_bound(spec, is_generator, batch_norm, rng).0
}

/// Binding from one forward-phase [`PhaseOp`](crate::ir::PhaseOp) to the
/// trainer layer realising it inside a [`Sequential`] stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpBinding {
    /// Id of the op inside its per-phase op list
    /// ([`crate::ir::network_ops`] of the network's forward phase).
    pub op: OpId,
    /// Index of the layer inside the parsed [`NetworkSpec`].
    pub layer_index: usize,
    /// Stack position of the realising parameterised layer inside the
    /// returned [`Sequential`] (reshapes/activations/norms occupy the
    /// positions in between).
    pub train_index: usize,
}

/// [`build_trainable_with`], additionally returning the stable
/// op-id ↔ train-layer correspondence: the `Sequential` is constructed by
/// walking the forward ops of the op-graph IR, and each op's realising
/// layer is recorded in an [`OpBinding`]. This is what lets per-op
/// schedule statistics be joined against the functional trainer.
///
/// # Panics
///
/// Panics if the spec is volumetric (`dims != 2`).
pub fn build_trainable_bound(
    spec: &NetworkSpec,
    is_generator: bool,
    batch_norm: bool,
    rng: &mut StdRng,
) -> (Sequential, Vec<OpBinding>) {
    assert_eq!(spec.dims, 2, "functional training supports 2-D networks");
    let phase = if is_generator {
        Phase::GForward
    } else {
        Phase::DForward
    };
    let ops = crate::ir::network_ops(spec, phase);
    let mut net = Sequential::new();
    let mut bindings = Vec::with_capacity(ops.len());
    let n = spec.layers.len();
    for op in &ops {
        let i = op.layer_index;
        let layer = &spec.layers[i];
        bindings.push(OpBinding {
            op: op.id,
            layer_index: i,
            train_index: net.len(),
        });
        match layer {
            Layer::Fc(f) => {
                net.push(Box::new(DenseLayer::new(f.in_units, f.out_units, rng)));
                // If the next layer is conv-like, reshape to its input map.
                if let Some(next) = spec.layers.get(i + 1) {
                    if !matches!(next, Layer::Fc(_)) {
                        let c = next.fan_in_channels();
                        let s = next.in_spatial();
                        net.push(Box::new(Reshape::new(&[f.out_units], &[c, s, s])));
                    }
                }
            }
            Layer::Conv(c) => {
                net.push(Box::new(
                    ConvTrainLayer::from_geometry(c.in_channels, c.out_channels, c.geometry, rng)
                        .expect("spec geometry is valid"),
                ));
            }
            Layer::Tconv(t) => {
                net.push(Box::new(TconvTrainLayer::new(
                    t.in_channels,
                    t.out_channels,
                    t.geometry,
                    rng,
                )));
            }
            Layer::Dconv(d) => {
                net.push(Box::new(DconvTrainLayer::new(
                    d.in_channels,
                    d.out_channels,
                    d.geometry,
                    rng,
                )));
            }
        }
        let last = i + 1 == n;
        let conv_like = !matches!(layer, Layer::Fc(_));
        match spec.norm_of(i) {
            // Untagged layers keep the historical contract: normalise
            // every hidden conv-like layer iff the caller asked for it.
            Norm::Legacy => {
                if batch_norm && !last && conv_like {
                    net.push(Box::new(BatchNorm::new(layer.fan_out_channels())));
                }
            }
            Norm::Batch => {
                if conv_like {
                    net.push(Box::new(BatchNorm::new(layer.fan_out_channels())));
                }
            }
            Norm::Pixel => {
                if conv_like {
                    net.push(Box::new(PixelNorm::new()));
                }
            }
            Norm::None => {}
        }
        if last && is_generator {
            net.push(Box::new(Tanh::new()));
        } else if !last {
            net.push(Box::new(LeakyRelu::new(0.2)));
        }
    }
    for sk in &spec.skips {
        // Tap the full output of the block realising `from` — conv plus
        // its norm and activation, i.e. the stack slot just before the
        // block realising `from + 1` — and land it on the parameterised
        // layer realising `to`, matching the IR's skip dataflow edge.
        let tap = bindings[sk.from + 1].train_index - 1;
        net.add_skip(tap, bindings[sk.to].train_index);
    }
    (net, bindings)
}

/// Statistics from one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Discriminator BCE loss averaged over the batch.
    pub d_loss: f32,
    /// Generator non-saturating loss averaged over the batch.
    pub g_loss: f32,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

fn bce_with_logit(logit: f32, target: f32) -> f32 {
    // Numerically stable: max(x,0) - x*t + ln(1 + e^{-|x|}).
    logit.max(0.0) - logit * target + (1.0 + (-logit.abs()).exp()).ln()
}

/// A trainable GAN: generator + discriminator + optimisation state.
#[derive(Debug)]
pub struct Gan {
    /// The generator stack.
    pub generator: Sequential,
    /// The discriminator stack (ends in a single raw logit).
    pub discriminator: Sequential,
    noise_dim: usize,
    rule: UpdateRule,
    step: u64,
    rng: StdRng,
    /// Pool for the trainer's own buffers (noise vectors, loss-gradient
    /// seeds) — per-stack buffers live in each stack's own workspace.
    scratch: Workspace,
}

/// Samples a uniform noise vector in `[-1, 1]` into a pooled buffer.
fn sample_noise_into(rng: &mut StdRng, dim: usize, ws: &mut Workspace) -> Tensor {
    let mut buf = ws.take(dim);
    for slot in buf.iter_mut() {
        *slot = rng.gen::<f32>() * 2.0 - 1.0;
    }
    Tensor::from_vec(&[dim], buf)
}

/// Samples `batch` noise vectors into one `[batch, dim]` tensor, filling
/// samples in ascending order — the RNG consumes exactly the stream that
/// `batch` successive [`sample_noise_into`] calls would, which is what
/// keeps [`Gan::train_step_batched`] on the same noise sequence as the
/// sequential trainer.
fn sample_noise_batch_into(rng: &mut StdRng, dim: usize, batch: usize, ws: &mut Workspace) -> Tensor {
    let mut buf = ws.take(batch * dim);
    for slot in buf.iter_mut() {
        *slot = rng.gen::<f32>() * 2.0 - 1.0;
    }
    Tensor::from_vec(&[batch, dim], buf)
}

/// Stacks same-shaped samples into one `[B, …]` batch tensor for
/// [`Gan::train_step_batched`]. A setup helper, not a steady-state path —
/// it allocates the batch buffer.
///
/// # Panics
///
/// Panics if `samples` is empty, the shapes disagree, or a sample already
/// has the maximum tensor rank (no room for the batch dimension).
pub fn pack_batch(samples: &[Tensor]) -> Tensor {
    assert!(!samples.is_empty(), "pack_batch needs at least one sample");
    let shape = samples[0].shape();
    let slen = samples[0].len();
    let mut data = Vec::with_capacity(samples.len() * slen);
    for s in samples {
        assert_eq!(s.shape(), shape, "pack_batch samples must share a shape");
        data.extend_from_slice(s.data());
    }
    let (bshape, rank) = batched_shape(samples.len(), shape);
    Tensor::from_vec(&bshape[..rank], data)
}

impl Gan {
    /// Creates a GAN from two stacks.
    pub fn new(
        generator: Sequential,
        discriminator: Sequential,
        noise_dim: usize,
        lr: f32,
        seed: u64,
    ) -> Self {
        Gan {
            generator,
            discriminator,
            noise_dim,
            rule: UpdateRule::sgd(lr),
            step: 0,
            rng: StdRng::seed_from_u64(seed),
            scratch: Workspace::new(),
        }
    }

    /// Replaces the update rule (momentum, Adam, …).
    pub fn with_optimizer(mut self, rule: UpdateRule) -> Self {
        self.rule = rule;
        self
    }

    /// Optimiser steps taken so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Snapshots the full trainer state. Call between [`train_step`]s:
    /// gradients and activation caches are dead there, so parameters,
    /// optimiser moments, the step counter and the RNG position are the
    /// complete state of the computation.
    ///
    /// [`train_step`]: Gan::train_step
    pub fn checkpoint(&self) -> GanCheckpoint {
        let mut ckpt = GanCheckpoint {
            generator: self.generator.capture_state(),
            discriminator: self.discriminator.capture_state(),
            step: self.step,
            rng_state: self.rng.state(),
            checksum: 0,
        };
        ckpt.checksum = ckpt.payload_digest();
        ckpt
    }

    /// Restores a [`checkpoint`] into this trainer. The receiving GAN must
    /// have the same architecture (it may have different weights — they are
    /// overwritten). After a successful restore the next [`train_step`]
    /// produces bit-identical results to the one that would have followed
    /// the checkpoint.
    ///
    /// [`checkpoint`]: Gan::checkpoint
    /// [`train_step`]: Gan::train_step
    pub fn restore(&mut self, ckpt: &GanCheckpoint) -> Result<(), CheckpointError> {
        ckpt.verify()?;
        self.generator.restore_state(&ckpt.generator)?;
        self.discriminator.restore_state(&ckpt.discriminator)?;
        self.step = ckpt.step;
        self.rng.set_state(ckpt.rng_state);
        Ok(())
    }

    /// Samples a uniform noise vector in `[-1, 1]`.
    pub fn sample_noise(&mut self) -> Tensor {
        sample_noise_into(&mut self.rng, self.noise_dim, &mut self.scratch)
    }

    /// Generates one sample from fresh noise (no gradients retained).
    pub fn generate(&mut self) -> Tensor {
        let noise = sample_noise_into(&mut self.rng, self.noise_dim, &mut self.scratch);
        let out = self.generator.forward(&noise);
        self.scratch.give_tensor(noise);
        out
    }

    /// A `[1]` loss-gradient seed drawn from the trainer's scratch pool.
    fn seed_grad(&mut self, v: f32) -> Tensor {
        let mut buf = self.scratch.take(1);
        buf[0] = v;
        Tensor::from_vec(&[1], buf)
    }

    /// Runs one minibatch training step (Fig. 3's full dataflow: train D on
    /// real+fake, then train G through the frozen D).
    pub fn train_step(&mut self, reals: &[Tensor]) -> StepStats {
        let m = reals.len().max(1) as f32;
        // Every buffer taken below is recycled to the pool it came from —
        // stack outputs to their stack, noise and seeds to the trainer's
        // scratch — so the step's take/give sequence is identical every
        // iteration and steady-state heap traffic is zero.
        // ---- Train the discriminator (Eq. 1). ----
        let mut d_loss = 0.0;
        for real in reals {
            // Real sample, target 1.
            let logit = self.discriminator.forward(real);
            let l = logit.data()[0];
            self.discriminator.recycle(logit);
            d_loss += bce_with_logit(l, 1.0);
            let grad = self.seed_grad((sigmoid(l) - 1.0) / m);
            let din = self.discriminator.backward(&grad);
            self.scratch.give_tensor(grad);
            self.discriminator.recycle(din);
            // Fake sample, target 0.
            let noise = sample_noise_into(&mut self.rng, self.noise_dim, &mut self.scratch);
            let fake = self.generator.forward(&noise);
            self.scratch.give_tensor(noise);
            let logit = self.discriminator.forward(&fake);
            self.generator.recycle(fake);
            let l = logit.data()[0];
            self.discriminator.recycle(logit);
            d_loss += bce_with_logit(l, 0.0);
            let grad = self.seed_grad(sigmoid(l) / m);
            let din = self.discriminator.backward(&grad);
            self.scratch.give_tensor(grad);
            self.discriminator.recycle(din);
        }
        self.step += 1;
        self.discriminator.apply_update(&self.rule, self.step);
        self.generator.zero_grads(); // G gradients from the D pass are discarded.

        // ---- Train the generator (non-saturating form of Eq. 2). ----
        let mut g_loss = 0.0;
        for _ in 0..reals.len() {
            let noise = sample_noise_into(&mut self.rng, self.noise_dim, &mut self.scratch);
            let fake = self.generator.forward(&noise);
            self.scratch.give_tensor(noise);
            let logit = self.discriminator.forward(&fake);
            self.generator.recycle(fake);
            let l = logit.data()[0];
            self.discriminator.recycle(logit);
            g_loss += bce_with_logit(l, 1.0);
            let grad = self.seed_grad((sigmoid(l) - 1.0) / m);
            let d_input_grad = self.discriminator.backward(&grad);
            self.scratch.give_tensor(grad);
            let g_input_grad = self.generator.backward(&d_input_grad);
            self.discriminator.recycle(d_input_grad);
            self.generator.recycle(g_input_grad);
        }
        self.generator.apply_update(&self.rule, self.step);
        self.discriminator.zero_grads(); // D gradients from the G pass are discarded.

        StepStats {
            d_loss: d_loss / (2.0 * m),
            g_loss: g_loss / m,
        }
    }

    /// Turns a `[batch, 1]` logit tensor into the matching `[batch, 1]`
    /// loss-gradient seed batch, accumulating the BCE loss (b-ascending,
    /// one fixed order regardless of thread count) into `loss`.
    fn seed_grads_batch(&mut self, logits: &Tensor, target: f32, loss: &mut f32) -> Tensor {
        let batch = logits.len();
        let m = batch as f32;
        let mut buf = self.scratch.take(batch);
        for (slot, &l) in buf.iter_mut().zip(logits.data()) {
            *loss += bce_with_logit(l, target);
            *slot = (sigmoid(l) - target) / m;
        }
        Tensor::from_vec(&[batch, 1], buf)
    }

    /// Runs one minibatch training step over a packed `[B, …]` real batch
    /// (see [`pack_batch`]): the same two-phase dataflow as
    /// [`train_step`](Gan::train_step), but each network pass covers the
    /// whole batch with one packed GEMM per layer instead of `B`
    /// single-sample passes.
    ///
    /// The RNG stream is identical to the sequential trainer's (`B` noise
    /// draws in the D phase, then `B` in the G phase, samples ascending),
    /// so checkpoints interoperate between the two trainers. Gradients are
    /// exact per-sample partials folded by a fixed reduction tree
    /// ([`tree_reduce_in_place`]), so the step is bit-deterministic across
    /// runs and thread counts — though not bit-identical to `B` iterations
    /// of the sequential per-sample loop, whose loss-seed interleaving and
    /// sequential-accumulation order differ.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] when the batch is empty, a shape disagrees
    /// with the stacks, or a layer lacks a batched implementation. The
    /// trainer state is unspecified-but-valid after an error (a partial
    /// phase may have accumulated gradients); restore a checkpoint to
    /// resume bit-exactly.
    pub fn train_step_batched(&mut self, reals: &Tensor) -> Result<StepStats, TrainError> {
        if reals.shape().is_empty() || reals.shape()[0] == 0 {
            return Err(TrainError::EmptyBatch);
        }
        let batch = reals.shape()[0];
        let m = batch as f32;

        // ---- Train the discriminator (Eq. 1). ----
        let mut d_loss = 0.0;
        // Real batch, target 1.
        let logits = self.discriminator.forward_batch(reals, batch)?;
        let seeds = self.seed_grads_batch(&logits, 1.0, &mut d_loss);
        self.discriminator.recycle(logits);
        let din = self.discriminator.backward_batch(&seeds, batch)?;
        self.scratch.give_tensor(seeds);
        self.discriminator.recycle(din);
        // Fake batch, target 0.
        let noise = sample_noise_batch_into(&mut self.rng, self.noise_dim, batch, &mut self.scratch);
        let fakes = self.generator.forward_batch(&noise, batch)?;
        self.scratch.give_tensor(noise);
        let logits = self.discriminator.forward_batch(&fakes, batch)?;
        self.generator.recycle(fakes);
        let seeds = self.seed_grads_batch(&logits, 0.0, &mut d_loss);
        self.discriminator.recycle(logits);
        let din = self.discriminator.backward_batch(&seeds, batch)?;
        self.scratch.give_tensor(seeds);
        self.discriminator.recycle(din);
        self.step += 1;
        self.discriminator.apply_update(&self.rule, self.step);
        self.generator.zero_grads(); // G gradients from the D pass are discarded.

        // ---- Train the generator (non-saturating form of Eq. 2). ----
        let mut g_loss = 0.0;
        let noise = sample_noise_batch_into(&mut self.rng, self.noise_dim, batch, &mut self.scratch);
        let fakes = self.generator.forward_batch(&noise, batch)?;
        self.scratch.give_tensor(noise);
        let logits = self.discriminator.forward_batch(&fakes, batch)?;
        self.generator.recycle(fakes);
        let seeds = self.seed_grads_batch(&logits, 1.0, &mut g_loss);
        self.discriminator.recycle(logits);
        let d_input_grad = self.discriminator.backward_batch(&seeds, batch)?;
        self.scratch.give_tensor(seeds);
        let g_input_grad = self.generator.backward_batch(&d_input_grad, batch)?;
        self.discriminator.recycle(d_input_grad);
        self.generator.recycle(g_input_grad);
        self.generator.apply_update(&self.rule, self.step);
        self.discriminator.zero_grads(); // D gradients from the G pass are discarded.

        Ok(StepStats {
            d_loss: d_loss / (2.0 * m),
            g_loss: g_loss / m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::parse_network;

    fn tiny_generator(rng: &mut StdRng) -> Sequential {
        let mut g = Sequential::new();
        let geom = TconvGeometry::for_upsampling(4, 3, 2).unwrap();
        g.push(Box::new(DenseLayer::new(4, 8 * 16, rng)));
        g.push(Box::new(Reshape::new(&[8 * 16], &[8, 4, 4])));
        g.push(Box::new(LeakyRelu::new(0.2)));
        g.push(Box::new(TconvTrainLayer::new(8, 1, geom, rng)));
        g.push(Box::new(Tanh::new()));
        g
    }

    fn tiny_discriminator(rng: &mut StdRng) -> Sequential {
        let mut d = Sequential::new();
        d.push(Box::new(ConvTrainLayer::new(1, 4, 3, 2, 1, rng).unwrap()));
        d.push(Box::new(LeakyRelu::new(0.2)));
        d.push(Box::new(DenseLayer::new(4 * 16, 1, rng)));
        d
    }

    fn blob_sample(rng: &mut StdRng) -> Tensor {
        // "Real data": 8x8 images whose pixels are all ~0.6.
        let v = 0.6 + (rng.gen::<f32>() - 0.5) * 0.1;
        Tensor::filled(&[1, 8, 8], v)
    }

    #[test]
    fn gan_learns_constant_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.05, 42);

        let initial_mean = {
            let s = gan.generate();
            s.sum() / s.len() as f32
        };
        for _ in 0..300 {
            let reals: Vec<Tensor> = (0..4).map(|_| blob_sample(&mut rng)).collect();
            gan.train_step(&reals);
        }
        let trained_mean = {
            let mut acc = 0.0;
            for _ in 0..8 {
                let s = gan.generate();
                acc += s.sum() / s.len() as f32;
            }
            acc / 8.0
        };
        // The generator's mean pixel should move toward 0.6.
        assert!(
            (trained_mean - 0.6).abs() < (initial_mean - 0.6).abs(),
            "generator mean moved {initial_mean:.3} -> {trained_mean:.3}, away from 0.6"
        );
        assert!(
            (trained_mean - 0.6).abs() < 0.3,
            "generator mean {trained_mean:.3} should approach 0.6"
        );
    }

    #[test]
    fn discriminator_separates_obvious_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = tiny_discriminator(&mut rng);
        // Train D alone: positives are +0.8 images, negatives are -0.8.
        for _ in 0..80 {
            let pos = Tensor::filled(&[1, 8, 8], 0.8);
            let logit = d.forward(&pos).data()[0];
            d.backward(&Tensor::from_vec(&[1], vec![sigmoid(logit) - 1.0]));
            let neg = Tensor::filled(&[1, 8, 8], -0.8);
            let logit = d.forward(&neg).data()[0];
            d.backward(&Tensor::from_vec(&[1], vec![sigmoid(logit)]));
            d.apply_update(&UpdateRule::sgd(0.05), 1);
        }
        let pos_logit = d.forward(&Tensor::filled(&[1, 8, 8], 0.8)).data()[0];
        let neg_logit = d.forward(&Tensor::filled(&[1, 8, 8], -0.8)).data()[0];
        assert!(
            pos_logit > neg_logit + 1.0,
            "D failed to separate: {pos_logit} vs {neg_logit}"
        );
    }

    #[test]
    fn auto_checkpoint_cadence_and_rollback_replay() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.05, 17);
        let mut cadence = AutoCheckpoint::every(3);

        // Reference: 7 uninterrupted steps, checkpoints at steps 0, 3, 6.
        let mut data_rng = StdRng::seed_from_u64(100);
        let mut batches = Vec::new();
        for _ in 0..7 {
            assert_eq!(cadence.maybe_take(&gan), gan.step().is_multiple_of(3));
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut data_rng)).collect();
            batches.push(reals.clone());
            gan.train_step(&reals);
        }
        assert_eq!(cadence.taken(), 3);
        let last = cadence.last().expect("cadence took checkpoints");
        assert_eq!(last.step, 6);
        let reference = gan.checkpoint();

        // Rollback: restore the last checkpoint and replay the step since.
        gan.restore(last).unwrap();
        assert_eq!(gan.step(), 6);
        gan.train_step(&batches[6]);
        assert_eq!(
            gan.checkpoint(),
            reference,
            "replay from the cadence checkpoint must be bit-exact"
        );
    }

    #[test]
    fn dense_layer_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ws = Workspace::new();
        let mut l = DenseLayer::new(3, 2, &mut rng);
        let x = Tensor::from_vec(&[3], vec![0.5, -0.3, 0.8]);
        let dout = Tensor::from_vec(&[2], vec![1.0, -0.5]);
        let _ = l.forward(&x, &mut ws);
        let din = l.backward(&dout, &mut ws);
        // din = W^T dout.
        let w = l.weights.clone();
        for i in 0..3 {
            let expect = w[&[0, i]] * 1.0 + w[&[1, i]] * (-0.5);
            assert!((din.data()[i] - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn tconv_layer_round_trip_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ws = Workspace::new();
        let geom = TconvGeometry::for_upsampling(4, 3, 2).unwrap();
        let mut l = TconvTrainLayer::new(2, 3, geom, &mut rng);
        let x = Tensor::ones(&[2, 4, 4]);
        let y = l.forward(&x, &mut ws);
        assert_eq!(y.shape(), &[3, 8, 8]);
        let din = l.backward(&Tensor::ones(&[3, 8, 8]), &mut ws);
        assert_eq!(din.shape(), &[2, 4, 4]);
    }

    #[test]
    fn build_trainable_with_batchnorm_runs() {
        let spec = parse_network("tiny", "16f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = build_trainable_with(&spec, true, true, &mut rng);
        let out = net.forward(&Tensor::ones(&[16]));
        assert_eq!(out.shape(), &[1, 16, 16]);
        let din = net.backward(&Tensor::ones(&[1, 16, 16]));
        assert_eq!(din.len(), 16);
        net.apply_update(&UpdateRule::sgd(0.01), 1);
    }

    #[test]
    fn build_trainable_from_tiny_spec() {
        // A miniature DCGAN-shaped generator spec.
        let spec = parse_network("tiny", "16f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = build_trainable(&spec, true, &mut rng);
        let noise = Tensor::ones(&[16]);
        let out = net.forward(&noise);
        assert_eq!(out.shape(), &[1, 16, 16]);
        // tanh bounds the output.
        assert!(out.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn batchnorm_normalizes_and_round_trips_gradients() {
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(2);
        let input = Tensor::from_fn(&[2, 4, 4], |i| {
            (i[0] as f32 + 1.0) * (i[1] * 4 + i[2]) as f32 * 0.25 + 3.0
        });
        let out = bn.forward(&input, &mut ws);
        // Each channel of the output is ~zero-mean, ~unit-variance
        // (gamma=1, beta=0 initially).
        for ci in 0..2 {
            let mut mean = 0.0;
            let mut var = 0.0;
            for y in 0..4 {
                for x in 0..4 {
                    mean += out[&[ci, y, x]];
                }
            }
            mean /= 16.0;
            for y in 0..4 {
                for x in 0..4 {
                    let d = out[&[ci, y, x]] - mean;
                    var += d * d;
                }
            }
            var /= 16.0;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
        // Gradient of a constant loss w.r.t. input sums to ~zero per
        // channel (normalisation removes the mean direction).
        let din = bn.backward(&Tensor::ones(&[2, 4, 4]), &mut ws);
        for ci in 0..2 {
            let mut s = 0.0;
            for y in 0..4 {
                for x in 0..4 {
                    s += din[&[ci, y, x]];
                }
            }
            assert!(s.abs() < 1e-3, "channel {ci} grad sum {s}");
        }
    }

    #[test]
    fn batchnorm_gradient_check() {
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(1);
        let input = Tensor::from_fn(&[1, 3, 3], |i| ((i[1] * 3 + i[2]) as f32).sin());
        let dout = Tensor::from_fn(&[1, 3, 3], |i| ((i[1] + i[2]) as f32).cos() * 0.5);
        let _ = bn.forward(&input, &mut ws);
        let din = bn.backward(&dout, &mut ws);
        // Finite differences through the full normalise-and-scale path.
        let loss = |inp: &Tensor| -> f32 {
            let mut probe_ws = Workspace::new();
            let mut probe = BatchNorm::new(1);
            probe
                .forward(inp, &mut probe_ws)
                .zip_with(&dout, |a, b| a * b)
                .sum()
        };
        let eps = 1e-3;
        for probe_idx in [[0usize, 0, 0], [0, 1, 2], [0, 2, 1]] {
            let mut plus = input.clone();
            plus[&probe_idx[..]] += eps;
            let mut minus = input.clone();
            minus[&probe_idx[..]] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (din[&probe_idx] - fd).abs() < 1e-2,
                "analytic {} vs fd {fd} at {probe_idx:?}",
                din[&probe_idx]
            );
        }
    }

    #[test]
    fn batchnorm_learns_affine_parameters() {
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(1);
        let input = Tensor::from_fn(&[1, 4, 4], |i| (i[1] * 4 + i[2]) as f32 * 0.1);
        // Push outputs toward a constant 2.0: beta must rise.
        for step in 1..=50u64 {
            let out = bn.forward(&input, &mut ws);
            let grad = out.map(|y| 2.0 * (y - 2.0) / 16.0);
            let _ = bn.backward(&grad, &mut ws);
            bn.apply_update(&UpdateRule::sgd(0.2), step, &mut ws);
        }
        let beta = bn.beta.data()[0];
        assert!(beta > 1.0, "beta should approach 2.0, got {beta}");
        assert!(bn.running_mean()[0] != 0.0);
    }

    #[test]
    fn optimizers_all_reduce_a_simple_loss() {
        // Fit y = W x to a fixed target with each rule; all must reduce
        // the squared error, and the adaptive rules at least as fast as
        // plain SGD on this conditioning.
        for rule in [
            UpdateRule::sgd(0.05),
            UpdateRule::Momentum {
                lr: 0.05,
                beta: 0.9,
            },
            UpdateRule::dcgan_adam(0.05),
        ] {
            let mut rng = StdRng::seed_from_u64(11);
            let mut ws = Workspace::new();
            let mut layer = DenseLayer::new(4, 1, &mut rng);
            let x = Tensor::from_vec(&[4], vec![0.5, -0.2, 0.8, 0.1]);
            let target = 1.5f32;
            let mut first_loss = None;
            let mut last_loss = 0.0;
            for step in 1..=60u64 {
                let y = layer.forward(&x, &mut ws).data()[0];
                let err = y - target;
                last_loss = err * err;
                first_loss.get_or_insert(last_loss);
                layer.backward(&Tensor::from_vec(&[1], vec![2.0 * err]), &mut ws);
                layer.apply_update(&rule, step, &mut ws);
            }
            assert!(
                last_loss < first_loss.unwrap() * 0.05,
                "{rule:?}: loss {} -> {last_loss}",
                first_loss.unwrap()
            );
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ws = Workspace::new();
        let mut layer = DenseLayer::new(2, 1, &mut rng);
        let rule = UpdateRule::Momentum { lr: 0.1, beta: 0.9 };
        let x = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        // Constant gradient direction: updates should grow while velocity
        // accumulates (second step moves farther than the first).
        let w0 = layer.weights.clone();
        let _ = layer.forward(&x, &mut ws);
        layer.backward(&Tensor::from_vec(&[1], vec![1.0]), &mut ws);
        layer.apply_update(&rule, 1, &mut ws);
        let w1 = layer.weights.clone();
        let _ = layer.forward(&x, &mut ws);
        layer.backward(&Tensor::from_vec(&[1], vec![1.0]), &mut ws);
        layer.apply_update(&rule, 2, &mut ws);
        let w2 = layer.weights.clone();
        let d1 = (w1.data()[0] - w0.data()[0]).abs();
        let d2 = (w2.data()[0] - w1.data()[0]).abs();
        assert!(d2 > d1 * 1.5, "momentum should accelerate: {d1} vs {d2}");
    }

    #[test]
    fn gan_trains_with_adam() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.0, 43).with_optimizer(UpdateRule::dcgan_adam(0.01));
        let mut last = 0.0;
        for _ in 0..30 {
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut rng)).collect();
            last = gan.train_step(&reals).d_loss;
        }
        assert!(last.is_finite() && last > 0.0);
    }

    fn loss_bits(stats: &StepStats) -> (u32, u32) {
        (stats.d_loss.to_bits(), stats.g_loss.to_bits())
    }

    #[test]
    fn checkpoint_restore_resumes_bit_exactly() {
        // Reference run: 5 Adam steps straight through.
        let mut rng = StdRng::seed_from_u64(31);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut reference = Gan::new(g, d, 4, 0.0, 77).with_optimizer(UpdateRule::dcgan_adam(0.01));
        let mut data_rng = StdRng::seed_from_u64(500);
        let mut reference_tail = Vec::new();
        for step in 0..5 {
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut data_rng)).collect();
            let stats = reference.train_step(&reals);
            if step >= 2 {
                reference_tail.push(loss_bits(&stats));
            }
        }

        // Checkpointed run: 2 steps, snapshot, restore into a GAN built
        // with *different* init and noise seeds (everything must come from
        // the checkpoint), then 3 more steps on the same data stream.
        let mut rng = StdRng::seed_from_u64(31);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.0, 77).with_optimizer(UpdateRule::dcgan_adam(0.01));
        let mut data_rng = StdRng::seed_from_u64(500);
        let mut consumed = Vec::new();
        for _ in 0..2 {
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut data_rng)).collect();
            gan.train_step(&reals);
            consumed.push(reals);
        }
        let ckpt = gan.checkpoint();
        assert_eq!(ckpt.step, 2);
        drop(gan);

        let mut other_rng = StdRng::seed_from_u64(999);
        let g = tiny_generator(&mut other_rng);
        let d = tiny_discriminator(&mut other_rng);
        let mut resumed =
            Gan::new(g, d, 4, 0.0, 12345).with_optimizer(UpdateRule::dcgan_adam(0.01));
        resumed.restore(&ckpt).expect("architectures match");
        assert_eq!(resumed.step(), 2);
        let mut resumed_tail = Vec::new();
        for _ in 0..3 {
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut data_rng)).collect();
            resumed_tail.push(loss_bits(&resumed.train_step(&reals)));
        }
        assert_eq!(
            reference_tail, resumed_tail,
            "resume after restore must be bit-exact"
        );
    }

    #[test]
    fn corrupted_checkpoint_is_refused_not_restored() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.0, 88).with_optimizer(UpdateRule::dcgan_adam(0.01));
        let mut data_rng = StdRng::seed_from_u64(600);
        for _ in 0..2 {
            let reals: Vec<Tensor> = (0..2).map(|_| blob_sample(&mut data_rng)).collect();
            gan.train_step(&reals);
        }
        let clean = gan.checkpoint();
        clean.verify().expect("fresh checkpoints verify");

        // Flip a single mantissa bit in the first stored tensor we find —
        // the smallest corruption a storage or transfer fault can inflict.
        let mut bad = clean.clone();
        let layer = bad
            .generator
            .iter_mut()
            .find(|s| !s.is_empty())
            .expect("the generator has parameters");
        let key = layer
            .entries()
            .next()
            .map(|(k, _)| k.to_string())
            .unwrap();
        let tensor = layer.get_mut(&key).unwrap();
        tensor.data_mut()[0] = f32::from_bits(tensor.data()[0].to_bits() ^ 1);

        match bad.verify() {
            Err(CheckpointError::Corrupted { expected, actual }) => {
                assert_eq!(expected, clean.checksum);
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
        // restore() refuses the snapshot and leaves the trainer resumable.
        let before = gan.checkpoint();
        assert!(matches!(
            gan.restore(&bad),
            Err(CheckpointError::Corrupted { .. })
        ));
        assert_eq!(gan.checkpoint(), before, "refused restore mutates nothing");
        gan.restore(&clean).expect("the clean twin still restores");

        // Metadata corruption (step / RNG position) is caught too.
        let mut skewed = clean.clone();
        skewed.step += 1;
        assert!(matches!(
            skewed.verify(),
            Err(CheckpointError::Corrupted { .. })
        ));
        let mut reseeded = clean;
        reseeded.rng_state ^= 0x8000_0000_0000_0000;
        assert!(matches!(
            reseeded.verify(),
            Err(CheckpointError::Corrupted { .. })
        ));
    }

    #[test]
    fn checkpoint_round_trips_batchnorm_running_stats() {
        let spec = parse_network("tiny", "16f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut net = build_trainable_with(&spec, true, true, &mut rng);
        // A few updates so running stats, moments and affines all move.
        for step in 1..=3u64 {
            let out = net.forward(&Tensor::ones(&[16]));
            net.backward(&out.map(|y| y * 0.1));
            net.apply_update(&UpdateRule::dcgan_adam(0.05), step);
        }
        let probe = net.forward(&Tensor::filled(&[16], 0.5));
        let snapshot = net.capture_state();

        let mut other_rng = StdRng::seed_from_u64(4242);
        let mut twin = build_trainable_with(&spec, true, true, &mut other_rng);
        twin.restore_state(&snapshot).expect("same architecture");
        let twin_probe = twin.forward(&Tensor::filled(&[16], 0.5));
        // BatchNorm's forward updates running stats, so equality of this
        // output proves gamma/beta/moments *and* the running statistics all
        // round-tripped bit-exactly.
        let lhs: Vec<u32> = probe.data().iter().map(|v| v.to_bits()).collect();
        let rhs: Vec<u32> = twin_probe.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut small = Sequential::new();
        small.push(Box::new(DenseLayer::new(4, 2, &mut rng)));
        let snapshot = small.capture_state();

        // Wrong layer count.
        let mut deeper = Sequential::new();
        deeper.push(Box::new(DenseLayer::new(4, 2, &mut rng)));
        deeper.push(Box::new(LeakyRelu::new(0.2)));
        assert_eq!(
            deeper.restore_state(&snapshot),
            Err(CheckpointError::LayerCountMismatch {
                expected: 2,
                actual: 1
            })
        );

        // Wrong parameter shape.
        let mut wider = Sequential::new();
        wider.push(Box::new(DenseLayer::new(8, 2, &mut rng)));
        match wider.restore_state(&snapshot) {
            Err(CheckpointError::ShapeMismatch { layer: 0, key, .. }) => {
                assert_eq!(key, "weights");
            }
            other => panic!("expected a shape mismatch, got {other:?}"),
        }

        // State offered to a stateless layer.
        let mut stateless = Sequential::new();
        stateless.push(Box::new(LeakyRelu::new(0.2)));
        assert_eq!(
            stateless.restore_state(&snapshot),
            Err(CheckpointError::UnexpectedEntries { layer: 0, count: 1 })
        );

        // Errors render as readable messages.
        let err = CheckpointError::MissingEntry {
            layer: 3,
            key: "weights".into(),
        };
        assert!(err.to_string().contains("layer 3"));
    }

    #[test]
    fn sequential_backward_matches_layer_order() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new();
        net.push(Box::new(DenseLayer::new(4, 4, &mut rng)));
        net.push(Box::new(LeakyRelu::new(0.2)));
        net.push(Box::new(DenseLayer::new(4, 1, &mut rng)));
        assert_eq!(net.len(), 3);
        let x = Tensor::from_vec(&[4], vec![0.1, 0.2, 0.3, 0.4]);
        let y = net.forward(&x);
        assert_eq!(y.len(), 1);
        let din = net.backward(&Tensor::from_vec(&[1], vec![1.0]));
        assert_eq!(din.len(), 4);
    }

    fn det(shape: &[usize], seed: u32) -> Tensor {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(7);
        Tensor::from_fn(shape, |_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        })
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} ({x} vs {y})");
        }
    }

    /// Folds per-sample gradient snapshots with the same fixed tree the
    /// batched path uses and bit-compares against the batched stack's
    /// accumulated gradients.
    fn assert_grads_match_tree(batched: &[LayerState], per_sample: &[Vec<LayerState>]) {
        let batch = per_sample.len();
        for (li, bstate) in batched.iter().enumerate() {
            for (key, btensor) in bstate.entries() {
                let len = btensor.len();
                let mut parts = vec![0.0; batch * len];
                for (b, states) in per_sample.iter().enumerate() {
                    let t = states[li].get(key).expect("oracle captured the same keys");
                    parts[b * len..(b + 1) * len].copy_from_slice(t.data());
                }
                tree_reduce_in_place(&mut parts, batch, len);
                assert_bits_eq(btensor.data(), &parts[..len], &format!("layer {li} {key}"));
            }
        }
    }

    /// Runs one batched forward/backward over `net` and checks every output
    /// row, input-gradient row, accumulated gradient and persistent state
    /// bit-matches the per-sample oracle (`oracle` must be an identically
    /// initialised twin) at each requested thread count.
    fn check_batched_against_oracle(
        spec: &NetworkSpec,
        is_generator: bool,
        batch_norm: bool,
        inputs: &[Tensor],
        seed_shape: &[usize],
    ) {
        let batch = inputs.len();
        let packed = pack_batch(inputs);
        let seeds: Vec<Tensor> = (0..batch)
            .map(|b| det(seed_shape, 40 + b as u32))
            .collect();
        let packed_seeds = pack_batch(&seeds);
        for threads in [1usize, 2, 8] {
            parallel::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(11);
                let mut net = build_trainable_with(spec, is_generator, batch_norm, &mut rng);
                let mut rng = StdRng::seed_from_u64(11);
                let mut oracle = build_trainable_with(spec, is_generator, batch_norm, &mut rng);

                let out = net.forward_batch(&packed, batch).unwrap();
                let din = net.backward_batch(&packed_seeds, batch).unwrap();
                let slen = out.len() / batch;
                let dlen = din.len() / batch;
                let mut partials = Vec::new();
                for (b, input) in inputs.iter().enumerate() {
                    oracle.zero_grads();
                    let o = oracle.forward(input);
                    assert_bits_eq(
                        &out.data()[b * slen..(b + 1) * slen],
                        o.data(),
                        &format!("threads {threads} forward sample {b}"),
                    );
                    let d = oracle.backward(&seeds[b]);
                    assert_bits_eq(
                        &din.data()[b * dlen..(b + 1) * dlen],
                        d.data(),
                        &format!("threads {threads} input grad sample {b}"),
                    );
                    oracle.recycle(o);
                    oracle.recycle(d);
                    partials.push(oracle.capture_grads());
                }
                assert_grads_match_tree(&net.capture_grads(), &partials);
                // Persistent state (BatchNorm running statistics fold in
                // sample order on both paths; weights are untouched).
                for (li, (ls, rs)) in net
                    .capture_state()
                    .iter()
                    .zip(oracle.capture_state().iter())
                    .enumerate()
                {
                    for (key, lt) in ls.entries() {
                        let rt = rs.get(key).expect("twin state keys agree");
                        assert_bits_eq(
                            lt.data(),
                            rt.data(),
                            &format!("threads {threads} state layer {li} {key}"),
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn batched_generator_stack_matches_per_sample_oracle() {
        let spec = parse_network("tiny", "16f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
        // Batch of 5: a non-power-of-two exercises the ragged tree edge.
        let inputs: Vec<Tensor> = (0..5).map(|b| det(&[16], 7 + b as u32)).collect();
        check_batched_against_oracle(&spec, true, true, &inputs, &[1, 16, 16]);
    }

    #[test]
    fn batched_extended_grammar_stack_matches_per_sample_oracle() {
        // Dilated conv, a skip edge and bn/pn norm tags in one stack.
        let spec = parse_network(
            "ext",
            "(1c-8c)(3k1s)-8c3k1s2d-8c3k1sbn+2-8c3k1s-8c3k1spn-f1",
            2,
            8,
        )
        .unwrap();
        let inputs: Vec<Tensor> = (0..3).map(|b| det(&[1, 8, 8], 17 + b as u32)).collect();
        check_batched_against_oracle(&spec, false, false, &inputs, &[1]);
    }

    #[test]
    fn batched_step_is_thread_invariant() {
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let run = parallel::with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(21);
                let g = tiny_generator(&mut rng);
                let d = tiny_discriminator(&mut rng);
                let mut gan =
                    Gan::new(g, d, 4, 0.0, 91).with_optimizer(UpdateRule::dcgan_adam(0.01));
                let mut data_rng = StdRng::seed_from_u64(700);
                let mut tail = Vec::new();
                for _ in 0..3 {
                    let reals: Vec<Tensor> = (0..4).map(|_| blob_sample(&mut data_rng)).collect();
                    let stats = gan.train_step_batched(&pack_batch(&reals)).unwrap();
                    tail.push(loss_bits(&stats));
                }
                (tail, gan.checkpoint())
            });
            runs.push(run);
        }
        for (tail, ckpt) in &runs[1..] {
            assert_eq!(tail, &runs[0].0, "losses must not depend on threads");
            assert_eq!(ckpt, &runs[0].1, "checkpoints must not depend on threads");
        }
    }

    #[test]
    fn batched_step_consumes_the_sequential_noise_stream() {
        fn mk() -> Gan {
            let mut rng = StdRng::seed_from_u64(33);
            let g = tiny_generator(&mut rng);
            let d = tiny_discriminator(&mut rng);
            Gan::new(g, d, 4, 0.0, 55).with_optimizer(UpdateRule::dcgan_adam(0.01))
        }
        let mut seq = mk();
        let mut bat = mk();
        let mut data_rng = StdRng::seed_from_u64(800);
        let reals: Vec<Tensor> = (0..3).map(|_| blob_sample(&mut data_rng)).collect();
        seq.train_step(&reals);
        bat.train_step_batched(&pack_batch(&reals)).unwrap();
        // Same number of draws in the same order: checkpoints from the two
        // trainers stay interchangeable mid-run.
        assert_eq!(seq.checkpoint().rng_state, bat.checkpoint().rng_state);
        assert_eq!(seq.step(), bat.step());
    }

    #[test]
    fn batched_run_checkpoint_restore_is_bit_exact() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut reference = Gan::new(g, d, 4, 0.0, 77).with_optimizer(UpdateRule::dcgan_adam(0.01));
        let mut data_rng = StdRng::seed_from_u64(500);
        let mut batches = Vec::new();
        for _ in 0..4 {
            let reals: Vec<Tensor> = (0..4).map(|_| blob_sample(&mut data_rng)).collect();
            batches.push(pack_batch(&reals));
        }
        let mut reference_tail = Vec::new();
        for (i, b) in batches.iter().enumerate() {
            let stats = reference.train_step_batched(b).unwrap();
            if i >= 2 {
                reference_tail.push(loss_bits(&stats));
            }
        }
        // Replay: 2 steps, checkpoint, restore into a differently seeded
        // twin, finish on the same batches.
        let mut rng = StdRng::seed_from_u64(31);
        let g = tiny_generator(&mut rng);
        let d = tiny_discriminator(&mut rng);
        let mut gan = Gan::new(g, d, 4, 0.0, 77).with_optimizer(UpdateRule::dcgan_adam(0.01));
        gan.train_step_batched(&batches[0]).unwrap();
        gan.train_step_batched(&batches[1]).unwrap();
        let ckpt = gan.checkpoint();

        let mut other_rng = StdRng::seed_from_u64(999);
        let g = tiny_generator(&mut other_rng);
        let d = tiny_discriminator(&mut other_rng);
        let mut resumed =
            Gan::new(g, d, 4, 0.0, 12345).with_optimizer(UpdateRule::dcgan_adam(0.01));
        resumed.restore(&ckpt).expect("architectures match");
        let mut resumed_tail = Vec::new();
        for b in &batches[2..] {
            resumed_tail.push(loss_bits(&resumed.train_step_batched(b).unwrap()));
        }
        assert_eq!(reference_tail, resumed_tail, "batched resume is bit-exact");
        assert_eq!(resumed.checkpoint(), reference.checkpoint());
    }

    #[test]
    fn batched_shape_errors_are_typed() {
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(2);
        match bn.forward_batch(&Tensor::ones(&[2, 2, 2]), 2, &mut ws) {
            Err(TrainError::RankMismatch {
                layer,
                expected,
                actual,
            }) => {
                assert_eq!(layer, "BatchNorm");
                assert_eq!((expected, actual), (4, 3));
            }
            other => panic!("expected a rank mismatch, got {other:?}"),
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut dense = DenseLayer::new(3, 2, &mut rng);
        assert!(matches!(
            dense.forward_batch(&Tensor::ones(&[2, 4]), 2, &mut ws),
            Err(TrainError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            dense.forward_batch(&Tensor::ones(&[1, 3]), 0, &mut ws),
            Err(TrainError::EmptyBatch)
        ));
        assert!(matches!(
            dense.backward_batch(&Tensor::ones(&[2, 2]), 2, &mut ws),
            Err(TrainError::BackwardBeforeForward { .. })
        ));
        // Errors render as readable messages.
        let err = TrainError::Unsupported { layer: "Gate" };
        assert!(err.to_string().contains("no batched implementation"));
        let err = TrainError::RankMismatch {
            layer: "BatchNorm",
            expected: 3,
            actual: 2,
        };
        assert!(err.to_string().contains("expected rank-3"));
    }

    #[test]
    #[should_panic(expected = "BatchNorm: expected rank-3 input")]
    fn poisoned_shape_panics_with_typed_message() {
        // The legacy panicking contract survives the typed-error routing:
        // the assert became a TrainError rendered through the same panic.
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(2);
        let _ = bn.forward(&Tensor::ones(&[2, 2]), &mut ws);
    }

    #[test]
    fn tree_reduce_matches_manual_fold() {
        // count=5 (ragged), len=3: tree order is ((0+1)+(2+3))+4.
        let mut parts = vec![
            1.0, 10.0, 100.0, // s0
            2.0, 20.0, 200.0, // s1
            3.0, 30.0, 300.0, // s2
            4.0, 40.0, 400.0, // s3
            5.0, 50.0, 500.0, // s4
        ];
        tree_reduce_in_place(&mut parts, 5, 3);
        assert_eq!(&parts[..3], &[15.0, 150.0, 1500.0]);
    }

    #[test]
    fn pack_batch_stacks_and_validates() {
        let a = det(&[2, 3], 1);
        let b = det(&[2, 3], 2);
        let packed = pack_batch(&[a.clone(), b.clone()]);
        assert_eq!(packed.shape(), &[2, 2, 3]);
        assert_bits_eq(&packed.data()[..6], a.data(), "sample 0");
        assert_bits_eq(&packed.data()[6..], b.data(), "sample 1");
    }
}
