//! Per-(phase, layer) convolution workloads.
//!
//! Each training phase performs one convolution-shaped operation per layer
//! (Fig. 3, Eq. 3–4). What matters to the accelerator is *where the zeros
//! are*:
//!
//! | phase | S-CONV layer | T-CONV layer | FC layer |
//! |---|---|---|---|
//! | forward | dense | zeros in input (T-CONV) | dense |
//! | error transfer | zeros in input (T-CONV-shaped, Eq. 3) | dense (S-CONV-shaped) | dense |
//! | ∇weight | zeros in kernel (W-CONV-S, Fig. 6) | zeros in input | dense |
//!
//! This matches Sec. V "Interface": a T-CONV generator with an S-CONV
//! discriminator needs `ZFDR_T` for G→, G-w and D←, and `ZFDR_WS` for D-w;
//! G← and D→ stay dense. A DiscoGAN-style generator containing both kinds
//! needs ZFDR in five phases.

use crate::phase::Phase;
use crate::topology::NetworkSpec;
use lergan_tensor::{DconvGeometry, TconvGeometry, WconvGeometry};

/// Where the zeros are in one convolution workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// No inserted zeros; a plain dense MMV workload.
    Dense,
    /// Zeros inserted in the *input* plane; removable by T-CONV ZFDR.
    TconvInput(TconvGeometry),
    /// Zeros inserted in the *kernel* (`∇output`); removable by W-CONV-S
    /// ZFDR.
    WconvKernel(WconvGeometry),
    /// Zeros inserted in the *kernel* by dilation (the EcoFlow dual of
    /// T-CONV's input insertion); removable by D-CONV ZFDR.
    DconvKernel(DconvGeometry),
}

impl WorkloadKind {
    /// Whether this workload inserts zeros into its input plane.
    pub fn is_zero_inserted_input(&self) -> bool {
        matches!(self, WorkloadKind::TconvInput(_))
    }

    /// Whether this workload inserts zeros into its kernel.
    pub fn is_zero_inserted_kernel(&self) -> bool {
        matches!(
            self,
            WorkloadKind::WconvKernel(_) | WorkloadKind::DconvKernel(_)
        )
    }
}

/// One convolution-shaped operation executed by a phase on a layer.
///
/// All counts are **per sample**; the simulator multiplies by the batch
/// size. "Dense" quantities include all the zero-touching work of the
/// naive formulation; "useful" quantities count only arithmetic and traffic
/// on true values — the work that survives ZFDR.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvWorkload {
    /// The phase this workload belongs to.
    pub phase: Phase,
    /// Index of the layer inside its network.
    pub layer_index: usize,
    /// Zero structure.
    pub kind: WorkloadKind,
    /// Channels of the moving operand fed in.
    pub in_channels: usize,
    /// Channels of the produced result.
    pub out_channels: usize,
    /// Multiply-accumulates of the naive formulation.
    pub macs_dense: u128,
    /// Multiply-accumulates touching useful values only.
    pub macs_useful: u128,
    /// Values moved per sample (activations/gradients), zeros included.
    pub moved_values_dense: u128,
    /// Values moved per sample, zeros removed.
    pub moved_values_useful: u128,
    /// Stationary weight-like operand values held in CArrays.
    pub weight_values: u128,
    /// Result values produced per sample.
    pub output_values: u128,
    /// Spatial dimensionality inherited from the network.
    pub dims: u32,
}

impl ConvWorkload {
    /// Fraction of naive multiplications that touch only zeros.
    pub fn zero_mac_fraction(&self) -> f64 {
        if self.macs_dense == 0 {
            return 0.0;
        }
        1.0 - self.macs_useful as f64 / self.macs_dense as f64
    }

    /// Ratio of dense to useful moved values (the SArray space/traffic
    /// saving ZFDR realises on this workload).
    pub fn moved_saving(&self) -> f64 {
        if self.moved_values_useful == 0 {
            return 1.0;
        }
        self.moved_values_dense as f64 / self.moved_values_useful as f64
    }
}

/// Builds the workload list for `phase` over `net`.
///
/// Backward phases list layers in reverse (dataflow) order. This is the
/// analytic projection of the op-graph IR: each [`crate::ir::PhaseOp`]
/// contributes its [`ConvWorkload`], in dataflow order.
pub fn phase_workloads(net: &NetworkSpec, phase: Phase) -> Vec<ConvWorkload> {
    crate::ir::network_ops(net, phase)
        .into_iter()
        .map(|op| op.workload)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::parse_network;

    fn dcgan_gen() -> NetworkSpec {
        parse_network("g", "100f-(1024t-512t-256t-128t)(5k2s)-t3", 2, 64).unwrap()
    }

    fn dcgan_disc() -> NetworkSpec {
        parse_network("d", "(3c-128c-256c-512c-1024c)(5k2s)-f1", 2, 64).unwrap()
    }

    #[test]
    fn gforward_tconvs_are_zero_inserted() {
        let ws = phase_workloads(&dcgan_gen(), Phase::GForward);
        assert_eq!(ws.len(), 5);
        assert!(matches!(ws[0].kind, WorkloadKind::Dense)); // the FC
        for w in &ws[1..] {
            assert!(w.kind.is_zero_inserted_input());
            assert!(w.macs_useful < w.macs_dense);
        }
    }

    #[test]
    fn dcgan_gforward_space_saving_is_5_2x() {
        // Fig. 16: "ZFDR saves up to 5.2x SArray space for storing inputs
        // (in the case of DCGAN)".
        let ws = phase_workloads(&dcgan_gen(), Phase::GForward);
        let dense: u128 = ws.iter().map(|w| w.moved_values_dense).sum();
        let useful: u128 = ws.iter().map(|w| w.moved_values_useful).sum();
        let saving = dense as f64 / useful as f64;
        assert!(
            (saving - 5.2).abs() < 0.15,
            "DCGAN G-forward input saving {saving:.2} (paper: 5.2x)"
        );
    }

    #[test]
    fn dforward_is_dense() {
        let ws = phase_workloads(&dcgan_disc(), Phase::DForward);
        assert!(ws.iter().all(|w| matches!(w.kind, WorkloadKind::Dense)));
    }

    #[test]
    fn dbackward_is_tconv_shaped() {
        let ws = phase_workloads(&dcgan_disc(), Phase::DBackward);
        // Reverse order: FC first, then the five convs.
        assert!(matches!(ws[0].kind, WorkloadKind::Dense));
        let zero_ins = ws
            .iter()
            .filter(|w| w.kind.is_zero_inserted_input())
            .count();
        assert_eq!(zero_ins, 5);
    }

    #[test]
    fn dweightgrad_is_wconv() {
        let ws = phase_workloads(&dcgan_disc(), Phase::DWeightGrad);
        let wconvs = ws
            .iter()
            .filter(|w| w.kind.is_zero_inserted_kernel())
            .count();
        assert_eq!(wconvs, 5);
    }

    #[test]
    fn gbackward_is_dense_for_pure_tconv_generator() {
        let ws = phase_workloads(&dcgan_gen(), Phase::GBackward);
        assert!(ws.iter().all(|w| matches!(w.kind, WorkloadKind::Dense)));
    }

    #[test]
    fn gweightgrad_is_zero_inserted_input() {
        let ws = phase_workloads(&dcgan_gen(), Phase::GWeightGrad);
        let zi = ws
            .iter()
            .filter(|w| w.kind.is_zero_inserted_input())
            .count();
        assert_eq!(zi, 4);
    }

    #[test]
    fn backward_orders_layers_in_reverse() {
        let ws = phase_workloads(&dcgan_gen(), Phase::GBackward);
        let idx: Vec<usize> = ws.iter().map(|w| w.layer_index).collect();
        assert_eq!(idx, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn zero_fraction_of_conv1_matches_paper() {
        let ws = phase_workloads(&dcgan_gen(), Phase::GForward);
        // Layer index 1 is CONV1 (after the FC).
        let conv1 = ws.iter().find(|w| w.layer_index == 1).unwrap();
        assert!((conv1.zero_mac_fraction() - (1.0 - 0.1806)).abs() < 1e-3);
    }

    #[test]
    fn moved_saving_at_least_one() {
        for net in [dcgan_gen(), dcgan_disc()] {
            for phase in Phase::ALL {
                for w in phase_workloads(&net, phase) {
                    assert!(w.moved_saving() >= 1.0, "{phase} layer {}", w.layer_index);
                }
            }
        }
    }
}
