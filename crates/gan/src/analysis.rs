//! Zero analytics across networks and phases (Sec. III-A).
//!
//! These aggregates quantify the paper's motivating observation: the
//! special convolutions of GAN training spend most of their multiplications
//! and much of their storage/traffic on inserted zeros.

use crate::phase::Phase;
use crate::topology::GanSpec;
use crate::workload::WorkloadKind;

/// Zero-work summary of one phase of one GAN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseZeroSummary {
    /// The phase summarised.
    pub phase: Phase,
    /// Naive multiply-accumulates (zeros included), per sample.
    pub macs_dense: u128,
    /// Useful multiply-accumulates, per sample.
    pub macs_useful: u128,
    /// Values moved per sample, zeros included.
    pub moved_dense: u128,
    /// Values moved per sample, zeros removed.
    pub moved_useful: u128,
    /// Number of layers whose workload inserts zeros.
    pub zero_inserted_layers: usize,
}

impl PhaseZeroSummary {
    /// Fraction of naive MACs that are zero-touching.
    pub fn zero_mac_fraction(&self) -> f64 {
        if self.macs_dense == 0 {
            return 0.0;
        }
        1.0 - self.macs_useful as f64 / self.macs_dense as f64
    }

    /// SArray space / traffic saving from dropping zeros (≥ 1).
    pub fn space_saving(&self) -> f64 {
        if self.moved_useful == 0 {
            return 1.0;
        }
        self.moved_dense as f64 / self.moved_useful as f64
    }
}

/// Summarises the zero structure of one phase.
pub fn summarize_phase(gan: &GanSpec, phase: Phase) -> PhaseZeroSummary {
    let ws = gan.workloads(phase);
    PhaseZeroSummary {
        phase,
        macs_dense: ws.iter().map(|w| w.macs_dense).sum(),
        macs_useful: ws.iter().map(|w| w.macs_useful).sum(),
        moved_dense: ws.iter().map(|w| w.moved_values_dense).sum(),
        moved_useful: ws.iter().map(|w| w.moved_values_useful).sum(),
        zero_inserted_layers: ws
            .iter()
            .filter(|w| !matches!(w.kind, WorkloadKind::Dense))
            .count(),
    }
}

/// Summarises all six phases of a GAN.
pub fn summarize_gan(gan: &GanSpec) -> Vec<PhaseZeroSummary> {
    Phase::ALL
        .into_iter()
        .map(|p| summarize_phase(gan, p))
        .collect()
}

/// Average SArray input-space saving across the phases that actually use
/// ZFDR — the quantity Fig. 16 reports as "saves 3.86× SArray space on
/// average".
pub fn average_space_saving(gans: &[GanSpec]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for gan in gans {
        for phase in gan.zfdr_phases() {
            total += summarize_phase(gan, phase).space_saving();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dcgan_gforward_summary() {
        let g = benchmarks::dcgan();
        let s = summarize_phase(&g, Phase::GForward);
        assert_eq!(s.zero_inserted_layers, 4);
        assert!(s.zero_mac_fraction() > 0.5);
        assert!((s.space_saving() - 5.2).abs() < 0.15);
    }

    #[test]
    fn dense_phases_have_no_saving() {
        let g = benchmarks::dcgan();
        let s = summarize_phase(&g, Phase::DForward);
        assert_eq!(s.zero_inserted_layers, 0);
        assert_eq!(s.space_saving(), 1.0);
        assert_eq!(s.zero_mac_fraction(), 0.0);
    }

    #[test]
    fn average_saving_is_near_3_86() {
        // Fig. 16: "saves 3.86x SArray space on average".
        let saving = average_space_saving(&benchmarks::all());
        assert!(
            (2.5..=5.5).contains(&saving),
            "average space saving {saving:.2} out of plausible range (paper: 3.86x)"
        );
    }

    #[test]
    fn summaries_cover_all_phases() {
        let g = benchmarks::cgan();
        let all = summarize_gan(&g);
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|s| s.macs_dense >= s.macs_useful));
    }
}
