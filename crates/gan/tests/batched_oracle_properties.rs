//! Property tests for the batched trainer's bit-identity contract.
//!
//! For randomly drawn topologies — DCGAN-style generator stacks and
//! extended-grammar discriminator stacks mixing dilated convolutions,
//! skip edges and norm variants — one batched forward/backward must
//! reproduce, bit for bit, the per-sample oracle: every output row and
//! input-gradient row equals the single-sample path's, and every
//! accumulated weight gradient equals the per-sample partials folded
//! through the fixed reduction tree. Checked at 1, 2 and 8 worker
//! threads, so the contract covers the data-parallel sharding too.

use lergan_gan::topology::parse_network;
use lergan_gan::train::{build_trainable_with, pack_batch, tree_reduce_in_place};
use lergan_tensor::{parallel, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn det(shape: &[usize], seed: u32) -> Tensor {
    let mut state = seed.wrapping_mul(747796405).wrapping_add(1);
    Tensor::from_fn(shape, |_| {
        state = state.wrapping_mul(1664525).wrapping_add(1013904223);
        ((state >> 16) as f32 / 65536.0) - 0.5
    })
}

fn bits_eq(a: &[f32], b: &[f32]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "element {} ({} vs {})", i, x, y);
    }
    Ok(())
}

/// Runs the batched stack against its per-sample twin at each thread
/// count and bit-compares outputs, input gradients and tree-reduced
/// weight gradients.
fn check(
    notation: &str,
    is_generator: bool,
    extent: usize,
    input_shape: &[usize],
    seed_shape: &[usize],
    batch: usize,
    case_seed: u32,
) -> Result<(), TestCaseError> {
    let spec = parse_network("prop", notation, 2, extent).unwrap();
    let inputs: Vec<Tensor> = (0..batch)
        .map(|b| det(input_shape, case_seed + b as u32))
        .collect();
    let seeds: Vec<Tensor> = (0..batch)
        .map(|b| det(seed_shape, case_seed + 100 + b as u32))
        .collect();
    let packed = pack_batch(&inputs);
    let packed_seeds = pack_batch(&seeds);
    for threads in [1usize, 2, 8] {
        parallel::with_threads(threads, || -> Result<(), TestCaseError> {
            let mut rng = StdRng::seed_from_u64(u64::from(case_seed));
            let mut net = build_trainable_with(&spec, is_generator, false, &mut rng);
            let mut rng = StdRng::seed_from_u64(u64::from(case_seed));
            let mut oracle = build_trainable_with(&spec, is_generator, false, &mut rng);

            let out = net.forward_batch(&packed, batch).unwrap();
            let din = net.backward_batch(&packed_seeds, batch).unwrap();
            let slen = out.len() / batch;
            let dlen = din.len() / batch;
            let mut partials = Vec::new();
            for (b, input) in inputs.iter().enumerate() {
                oracle.zero_grads();
                let o = oracle.forward(input);
                bits_eq(&out.data()[b * slen..(b + 1) * slen], o.data())?;
                let d = oracle.backward(&seeds[b]);
                bits_eq(&din.data()[b * dlen..(b + 1) * dlen], d.data())?;
                oracle.recycle(o);
                oracle.recycle(d);
                partials.push(oracle.capture_grads());
            }
            for (li, bstate) in net.capture_grads().iter().enumerate() {
                for (key, btensor) in bstate.entries() {
                    let len = btensor.len();
                    let mut parts = vec![0.0; batch * len];
                    for (b, states) in partials.iter().enumerate() {
                        let t = states[li].get(key).expect("twin captured the same keys");
                        parts[b * len..(b + 1) * len].copy_from_slice(t.data());
                    }
                    tree_reduce_in_place(&mut parts, batch, len);
                    bits_eq(btensor.data(), &parts[..len])?;
                }
            }
            Ok(())
        })?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random DCGAN-style generator stacks: FC reshape, two stride-2
    /// T-CONV upsampling stages, stride-1 T-CONV head.
    #[test]
    fn random_generator_stacks_match_per_sample_oracle(
        c1 in 2usize..7,
        c2 in 2usize..5,
        noise in prop_oneof![Just(4usize), Just(8)],
        batch in 2usize..6,
        case_seed in 0u32..1000,
    ) {
        let notation = format!("{noise}f-({c1}t-{c2}t)(3k2s)-t1");
        check(&notation, true, 8, &[noise], &[1, 8, 8], batch, case_seed)?;
    }

    /// Random extended-grammar discriminator stacks: stride-1 conv core
    /// plus optional dilated conv, norm-tagged conv and skip edge, FC
    /// head.
    #[test]
    fn random_extended_stacks_match_per_sample_oracle(
        c in 3usize..9,
        dilated in prop_oneof![Just(false), Just(true)],
        norm in prop_oneof![Just(""), Just("bn"), Just("pn")],
        skip in prop_oneof![Just(false), Just(true)],
        batch in 2usize..5,
        case_seed in 0u32..1000,
    ) {
        let mut mid = String::new();
        if dilated {
            mid.push_str(&format!("-{c}c3k1s2d"));
        }
        // The skip edge jumps two layers, so two same-shape convs always
        // follow its source.
        mid.push_str(&format!("-{c}c3k1s{norm}"));
        if skip {
            mid.push_str("+2");
        }
        mid.push_str(&format!("-{c}c3k1s-{c}c3k1s"));
        let notation = format!("(1c-{c}c)(3k1s){mid}-f1");
        check(&notation, false, 8, &[1, 8, 8], &[1], batch, case_seed)?;
    }
}
