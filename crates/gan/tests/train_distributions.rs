//! Functional training against the synthetic distributions: a few dozen
//! adversarial steps must move the generator's signature toward the data
//! (full convergence is exercised by `examples/train_synthetic_gan`).

use lergan_gan::data::{generator_signature, Distribution, Sampler};
use lergan_gan::topology::parse_network;
use lergan_gan::train::{build_trainable_with, Gan, UpdateRule};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_gan(seed: u64, adam: bool) -> Gan {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_spec = parse_network("g", "8f-(8t-4t)(3k2s)-t1", 2, 12).unwrap();
    let disc_spec = parse_network("d", "(1c-8c)(3k2s)-f1", 2, 12).unwrap();
    let g = build_trainable_with(&gen_spec, true, false, &mut rng);
    let d = build_trainable_with(&disc_spec, false, false, &mut rng);
    let gan = Gan::new(g, d, 8, 0.03, seed + 1);
    if adam {
        gan.with_optimizer(UpdateRule::dcgan_adam(0.01))
    } else {
        gan
    }
}

fn improvement(distribution: Distribution, seed: u64, adam: bool) -> (f32, f32) {
    let mut gan = tiny_gan(seed, adam);
    let mut sampler = Sampler::new(distribution, 12, 0.05, seed);
    let before = generator_signature(&mut gan, distribution, 6);
    for _ in 0..60 {
        let reals = sampler.batch(4);
        gan.train_step(&reals);
    }
    let after = generator_signature(&mut gan, distribution, 6);
    (before, after)
}

#[test]
fn sgd_moves_generator_toward_stripes() {
    let (before, after) = improvement(Distribution::Stripes, 7, false);
    assert!(
        after > before,
        "stripe signature should rise: {before:.3} -> {after:.3}"
    );
}

#[test]
fn adam_moves_generator_toward_blob() {
    let (before, after) = improvement(Distribution::Blob, 11, true);
    assert!(
        after > before,
        "blob signature should rise: {before:.3} -> {after:.3}"
    );
}

#[test]
fn discriminator_rejects_noise_after_training() {
    let mut gan = tiny_gan(3, false);
    let mut sampler = Sampler::new(Distribution::Checkerboard, 12, 0.05, 9);
    for _ in 0..60 {
        let reals = sampler.batch(4);
        gan.train_step(&reals);
    }
    // The discriminator must score real data above fresh generator output
    // (it has had 60 steps of advantage).
    let real = sampler.sample();
    let fake = gan.generate();
    let real_logit = gan.discriminator.forward(&real).data()[0];
    let fake_logit = gan.discriminator.forward(&fake).data()[0];
    assert!(
        real_logit > fake_logit,
        "D should prefer real ({real_logit:.3}) over fake ({fake_logit:.3})"
    );
}
