//! The op-graph IR and the functional trainer must describe the *same*
//! network: every forward [`PhaseOp`]'s GEMM shape has to match what the
//! built [`Sequential`] actually computes (its im2col shapes), and the
//! useful-MAC counts of the zero-inserted ops have to equal a literal
//! nonzero count over the materialised im2col matrix.

use lergan_gan::ir::{self, OpGraph};
use lergan_gan::train::build_trainable_bound;
use lergan_gan::{benchmarks, GanSpec, Phase, WorkloadKind};
use lergan_tensor::im2col::im2col;
use lergan_tensor::zero_insert::expand_tconv_input;
use lergan_tensor::{SconvGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks one GAN: build the graph and both trainers, then walk the
/// op ↔ train-layer bindings comparing GEMM shapes.
fn check_trainer_correspondence(gan: &GanSpec) {
    let graph = OpGraph::build(gan);
    for (is_generator, phase) in [(true, Phase::GForward), (false, Phase::DForward)] {
        let net = gan.network_for(phase);
        let mut rng = StdRng::seed_from_u64(11);
        let (seq, bindings) = build_trainable_bound(net, is_generator, false, &mut rng);
        let ops = graph.phase_ops(phase);
        assert_eq!(
            bindings.len(),
            ops.len(),
            "{}: every forward op is bound to a trainer layer",
            gan.name
        );
        for (binding, op) in bindings.iter().zip(ops) {
            assert_eq!(binding.op.0, op.id.0 - ops[0].id.0, "ids run from zero");
            assert_eq!(binding.layer_index, op.layer_index);
            let trainer_gemm = seq
                .layer(binding.train_index)
                .gemm_shape()
                .unwrap_or_else(|| {
                    panic!(
                        "{} {} L{}: bound trainer layer must expose a GEMM shape",
                        gan.name, phase, op.layer_index
                    )
                });
            assert_eq!(
                trainer_gemm, op.gemm,
                "{} {} L{}: IR GEMM vs trainer im2col GEMM",
                gan.name, phase, op.layer_index
            );
        }
    }
}

#[test]
fn every_2d_benchmark_trainer_matches_the_ir() {
    for gan in benchmarks::all().into_iter().chain(benchmarks::extended()) {
        if gan.generator.dims != 2 {
            continue; // the functional trainer is 2-D only
        }
        check_trainer_correspondence(&gan);
    }
    // The skip above must not silently empty the loop.
    assert!(benchmarks::all().iter().any(|g| g.generator.dims == 2));
}

/// Counts nonzero entries of the im2col matrix of an all-ones input run
/// through the zero-inserting T-CONV expansion — the ground-truth useful
/// MAC count per (in, out) channel pair.
fn tconv_useful_macs_by_im2col(geom: &lergan_tensor::TconvGeometry) -> u128 {
    let ones = Tensor::from_fn(&[1, geom.input, geom.input], |_| 1.0);
    let expanded = expand_tconv_input(&ones, geom);
    let e = expanded.shape()[1];
    // The T-CONV over the expanded plane is a stride-1, pad-0 S-CONV.
    let sconv = SconvGeometry::new(e, geom.kernel, 1, 0)
        .expect("expanded plane admits the stride-1 conv");
    assert_eq!(sconv.output, geom.output, "expansion reproduces the output extent");
    let cols = im2col(&expanded, &sconv);
    cols.data().iter().filter(|&&v| v != 0.0).count() as u128
}

/// Counts nonzero products of the zero-inserted D-CONV formulation on an
/// all-ones input: im2col entries gated by the expanded kernel's tap
/// structure — the ground-truth useful MAC count per channel pair.
fn dconv_useful_macs_by_im2col(geom: &lergan_tensor::DconvGeometry) -> u128 {
    use lergan_tensor::dconv::{expand_dilated_kernel, im2col_dconv};
    let ones = Tensor::from_fn(&[1, geom.rows.input, geom.cols.input], |_| 1.0);
    let cols = im2col_dconv(&ones, geom);
    let taps = expand_dilated_kernel(
        &Tensor::from_fn(&[1, 1, geom.rows.kernel, geom.cols.kernel], |_| 1.0),
        geom,
    );
    let (eh, ew) = (geom.rows.effective_kernel(), geom.cols.effective_kernel());
    let positions = geom.rows.output * geom.cols.output;
    let mut useful = 0u128;
    for r in 0..eh * ew {
        if taps.data()[r] == 0.0 {
            continue;
        }
        useful += cols.data()[r * positions..(r + 1) * positions]
            .iter()
            .filter(|&&v| v != 0.0)
            .count() as u128;
    }
    useful
}

#[test]
fn useful_mac_counts_match_materialised_im2col_zeros() {
    for gan in benchmarks::all().into_iter().chain(benchmarks::extended()) {
        if gan.generator.dims != 2 {
            continue;
        }
        let graph = OpGraph::build(&gan);
        for op in graph.ops() {
            match &op.workload.kind {
                WorkloadKind::TconvInput(geom) => {
                    let pair =
                        op.workload.in_channels as u128 * op.workload.out_channels as u128;
                    let per_pair = tconv_useful_macs_by_im2col(geom);
                    assert_eq!(
                        op.workload.macs_useful,
                        pair * per_pair,
                        "{} {} L{}: analytic useful MACs vs counted nonzeros",
                        gan.name,
                        op.phase,
                        op.layer_index
                    );
                }
                WorkloadKind::Dense => {
                    assert_eq!(
                        op.workload.macs_useful, op.workload.macs_dense,
                        "{} {} L{}: dense ops have no zeros to skip",
                        gan.name, op.phase, op.layer_index
                    );
                    assert_eq!(op.gemm.macs(), op.workload.macs_useful);
                }
                WorkloadKind::WconvKernel(_) => {
                    // W-CONV-S usefulness is validated exhaustively against
                    // the pattern enumeration in lergan-core's zfdr tests;
                    // here just keep it within the dense envelope.
                    assert!(op.workload.macs_useful <= op.workload.macs_dense);
                }
                WorkloadKind::DconvKernel(geom) => {
                    let pair =
                        op.workload.in_channels as u128 * op.workload.out_channels as u128;
                    assert_eq!(
                        op.workload.macs_useful,
                        pair * dconv_useful_macs_by_im2col(geom),
                        "{} {} L{}: analytic useful MACs vs counted nonzeros",
                        gan.name,
                        op.phase,
                        op.layer_index
                    );
                    assert_eq!(
                        op.workload.macs_dense,
                        pair * geom.total_multiplications_per_pair() as u128,
                        "{} {} L{}: dense MACs cover the zero-inserted kernel",
                        gan.name,
                        op.phase,
                        op.layer_index
                    );
                }
            }
        }
    }
}

/// Random DCGAN-shaped generator/discriminator pairs in the compact
/// Table V notation.
fn random_gan() -> impl Strategy<Value = GanSpec> {
    (1usize..4, 3usize..7, 1usize..3, 0usize..3, 1usize..4).prop_filter_map(
        "topology parses and maps",
        |(depth, kernel, stride, base_ch_log, seed_units)| {
            let item = 8 << (depth - 1) as u32;
            let base = 8 << base_ch_log;
            let gen_chain: Vec<String> = (0..depth)
                .map(|i| format!("{}t", base << (depth - 1 - i)))
                .collect();
            let disc_chain: Vec<String> = std::iter::once("3c".to_string())
                .chain((0..depth.saturating_sub(1)).map(|i| format!("{}c", base << i)))
                .collect();
            GanSpec::parse(
                &format!("rand-{depth}-{kernel}-{stride}-{base}"),
                &format!(
                    "{}f-({})({kernel}k{stride}s)-t3",
                    100 * seed_units,
                    gen_chain.join("-")
                ),
                &format!("({})({kernel}k{stride}s)-f1", disc_chain.join("-")),
                &[item, item],
            )
            .ok()
        },
    )
}

/// Random topologies drawn from the *extended* grammar: a tconv upsample
/// into a dilated residual block with an optional norm tag, and a
/// discriminator whose dilated block may use an asymmetric `3x5` kernel.
fn random_extended_gan() -> impl Strategy<Value = GanSpec> {
    (
        1usize..4,  // latent units (×100)
        0usize..2,  // generator head channels log
        0usize..3,  // block channels log
        2usize..4,  // dilation
        0usize..4,  // norm tag
        0usize..2,  // asymmetric discriminator kernel
        0usize..2,  // item extent log
    )
        .prop_filter_map(
            "extended topology parses and maps",
            |(z, a_log, b_log, dil, norm_idx, asym, item_log)| {
                let item = 16 << item_log;
                let a = 32 << a_log;
                let b = 8 << b_log;
                let norm = ["", "bn", "pn", "nn"][norm_idx];
                let kern = if asym == 1 { "3x5" } else { "3" };
                GanSpec::parse(
                    &format!("ext-{z}-{a}-{b}-{dil}{norm}-{kern}-{item}"),
                    &format!(
                        "{}f-{a}t4k2s-{b}c3k1s{dil}d{norm}+2-{b}c3k1s-{b}c3k1s-t3",
                        100 * z
                    ),
                    &format!(
                        "3c4k2s-{b}c{kern}k1s{dil}d{norm}+2-{b}c3k1s-{b}c3k1s-{a}c4k2s-f1"
                    ),
                    &[item, item],
                )
                .ok()
            },
        )
}

/// Deterministic pseudo-random input for the first layer of `net`.
fn seed_input(net: &lergan_gan::NetworkSpec) -> Tensor {
    let first = &net.layers[0];
    let shape: Vec<usize> = match first {
        lergan_gan::Layer::Fc(f) => vec![f.in_units],
        _ => vec![first.fan_in_channels(), first.in_spatial(), first.in_spatial()],
    };
    let len: usize = shape.iter().product();
    let data: Vec<f32> = (0..len)
        .map(|i| (i.wrapping_mul(2654435761) % 997) as f32 / 997.0 - 0.5)
        .collect();
    Tensor::from_vec(&shape, data)
}

/// Builds the phase's trainer fresh, runs one forward/backward, and
/// returns the exact bit patterns of the output and the input gradient.
fn forward_backward_bits(
    gan: &GanSpec,
    is_generator: bool,
    phase: Phase,
    threads: usize,
) -> (Vec<u32>, Vec<u32>) {
    lergan_tensor::parallel::with_threads(threads, || {
        let net = gan.network_for(phase);
        let mut rng = StdRng::seed_from_u64(7);
        let (mut seq, _) = build_trainable_bound(net, is_generator, true, &mut rng);
        let x = seed_input(net);
        let y = seq.forward(&x);
        let gdata: Vec<f32> = (0..y.len())
            .map(|i| (i.wrapping_mul(40503) % 613) as f32 / 613.0 - 0.5)
            .collect();
        let g = Tensor::from_vec(y.shape(), gdata);
        let din = seq.backward(&g);
        (
            y.data().iter().map(|v| v.to_bits()).collect(),
            din.data().iter().map(|v| v.to_bits()).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_topologies_bind_ir_to_trainer(gan in random_gan()) {
        let graph = OpGraph::build(&gan);
        // GEMM accounting holds for every op of every phase.
        for op in graph.ops() {
            prop_assert_eq!(op.gemm.macs(), op.workload.macs_dense);
        }
        // The standalone per-phase view used by the trainer matches the
        // stitched graph.
        for phase in Phase::ALL {
            let standalone = ir::network_ops(gan.network_for(phase), phase);
            let in_graph = graph.phase_ops(phase);
            prop_assert_eq!(standalone.len(), in_graph.len());
            for (a, b) in standalone.iter().zip(in_graph) {
                prop_assert_eq!(&a.workload, &b.workload);
                prop_assert_eq!(a.gemm, b.gemm);
            }
        }
        check_trainer_correspondence(&gan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The extended grammar — dilation, skip edges, norm variants — binds
    /// op ids to trainer layers exactly like the DCGAN-shaped chains do,
    /// and the trainer's arithmetic is bit-deterministic across the
    /// parallel substrate's thread counts.
    #[test]
    fn extended_grammar_binds_and_is_thread_deterministic(gan in random_extended_gan()) {
        // Op-id ↔ train-layer binding over the extended op algebra.
        check_trainer_correspondence(&gan);
        // GEMM accounting still covers every op of every phase.
        let graph = OpGraph::build(&gan);
        for op in graph.ops() {
            prop_assert!(op.workload.macs_useful <= op.workload.macs_dense);
            prop_assert_eq!(op.gemm.macs(), op.workload.macs_dense);
        }
        // Bit-determinism at LERGAN_THREADS 1/2/8 (pinned per call, so
        // concurrent proptest cases cannot race on the environment).
        for (is_generator, phase) in [(true, Phase::GForward), (false, Phase::DForward)] {
            let one = forward_backward_bits(&gan, is_generator, phase, 1);
            let two = forward_backward_bits(&gan, is_generator, phase, 2);
            let eight = forward_backward_bits(&gan, is_generator, phase, 8);
            prop_assert_eq!(&one, &two, "{} {}: 1 vs 2 threads", gan.name, phase);
            prop_assert_eq!(&one, &eight, "{} {}: 1 vs 8 threads", gan.name, phase);
        }
    }

    /// Rendering a parsed network back to compact notation and reparsing
    /// it reproduces the layers, skip edges and norm tags exactly — over
    /// the full extended grammar, not just the hand-picked unit cases.
    #[test]
    fn rendered_notation_round_trips(gan in random_extended_gan()) {
        use lergan_gan::topology::{parse_network, render_notation};
        for net in [&gan.generator, &gan.discriminator] {
            let rendered = render_notation(net);
            let reparsed = parse_network(&net.name, &rendered, net.dims, gan.item_size[0])
                .unwrap_or_else(|e| panic!("`{rendered}`: {e}"));
            prop_assert_eq!(&reparsed.layers, &net.layers, "via `{}`", rendered);
            prop_assert_eq!(&reparsed.skips, &net.skips, "via `{}`", rendered);
            prop_assert_eq!(&reparsed.norms, &net.norms, "via `{}`", rendered);
        }
    }
}
