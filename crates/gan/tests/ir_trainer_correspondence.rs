//! The op-graph IR and the functional trainer must describe the *same*
//! network: every forward [`PhaseOp`]'s GEMM shape has to match what the
//! built [`Sequential`] actually computes (its im2col shapes), and the
//! useful-MAC counts of the zero-inserted ops have to equal a literal
//! nonzero count over the materialised im2col matrix.

use lergan_gan::ir::{self, OpGraph};
use lergan_gan::train::build_trainable_bound;
use lergan_gan::{benchmarks, GanSpec, Phase, WorkloadKind};
use lergan_tensor::im2col::im2col;
use lergan_tensor::zero_insert::expand_tconv_input;
use lergan_tensor::{SconvGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks one GAN: build the graph and both trainers, then walk the
/// op ↔ train-layer bindings comparing GEMM shapes.
fn check_trainer_correspondence(gan: &GanSpec) {
    let graph = OpGraph::build(gan);
    for (is_generator, phase) in [(true, Phase::GForward), (false, Phase::DForward)] {
        let net = gan.network_for(phase);
        let mut rng = StdRng::seed_from_u64(11);
        let (seq, bindings) = build_trainable_bound(net, is_generator, false, &mut rng);
        let ops = graph.phase_ops(phase);
        assert_eq!(
            bindings.len(),
            ops.len(),
            "{}: every forward op is bound to a trainer layer",
            gan.name
        );
        for (binding, op) in bindings.iter().zip(ops) {
            assert_eq!(binding.op.0, op.id.0 - ops[0].id.0, "ids run from zero");
            assert_eq!(binding.layer_index, op.layer_index);
            let trainer_gemm = seq
                .layer(binding.train_index)
                .gemm_shape()
                .unwrap_or_else(|| {
                    panic!(
                        "{} {} L{}: bound trainer layer must expose a GEMM shape",
                        gan.name, phase, op.layer_index
                    )
                });
            assert_eq!(
                trainer_gemm, op.gemm,
                "{} {} L{}: IR GEMM vs trainer im2col GEMM",
                gan.name, phase, op.layer_index
            );
        }
    }
}

#[test]
fn every_2d_benchmark_trainer_matches_the_ir() {
    for gan in benchmarks::all() {
        if gan.generator.dims != 2 {
            continue; // the functional trainer is 2-D only
        }
        check_trainer_correspondence(&gan);
    }
    // The skip above must not silently empty the loop.
    assert!(benchmarks::all().iter().any(|g| g.generator.dims == 2));
}

/// Counts nonzero entries of the im2col matrix of an all-ones input run
/// through the zero-inserting T-CONV expansion — the ground-truth useful
/// MAC count per (in, out) channel pair.
fn tconv_useful_macs_by_im2col(geom: &lergan_tensor::TconvGeometry) -> u128 {
    let ones = Tensor::from_fn(&[1, geom.input, geom.input], |_| 1.0);
    let expanded = expand_tconv_input(&ones, geom);
    let e = expanded.shape()[1];
    // The T-CONV over the expanded plane is a stride-1, pad-0 S-CONV.
    let sconv = SconvGeometry::new(e, geom.kernel, 1, 0)
        .expect("expanded plane admits the stride-1 conv");
    assert_eq!(sconv.output, geom.output, "expansion reproduces the output extent");
    let cols = im2col(&expanded, &sconv);
    cols.data().iter().filter(|&&v| v != 0.0).count() as u128
}

#[test]
fn useful_mac_counts_match_materialised_im2col_zeros() {
    for gan in benchmarks::all() {
        if gan.generator.dims != 2 {
            continue;
        }
        let graph = OpGraph::build(&gan);
        for op in graph.ops() {
            match &op.workload.kind {
                WorkloadKind::TconvInput(geom) => {
                    let pair =
                        op.workload.in_channels as u128 * op.workload.out_channels as u128;
                    let per_pair = tconv_useful_macs_by_im2col(geom);
                    assert_eq!(
                        op.workload.macs_useful,
                        pair * per_pair,
                        "{} {} L{}: analytic useful MACs vs counted nonzeros",
                        gan.name,
                        op.phase,
                        op.layer_index
                    );
                }
                WorkloadKind::Dense => {
                    assert_eq!(
                        op.workload.macs_useful, op.workload.macs_dense,
                        "{} {} L{}: dense ops have no zeros to skip",
                        gan.name, op.phase, op.layer_index
                    );
                    assert_eq!(op.gemm.macs(), op.workload.macs_useful);
                }
                WorkloadKind::WconvKernel(_) => {
                    // W-CONV-S usefulness is validated exhaustively against
                    // the pattern enumeration in lergan-core's zfdr tests;
                    // here just keep it within the dense envelope.
                    assert!(op.workload.macs_useful <= op.workload.macs_dense);
                }
            }
        }
    }
}

/// Random DCGAN-shaped generator/discriminator pairs in the compact
/// Table V notation.
fn random_gan() -> impl Strategy<Value = GanSpec> {
    (1usize..4, 3usize..7, 1usize..3, 0usize..3, 1usize..4).prop_filter_map(
        "topology parses and maps",
        |(depth, kernel, stride, base_ch_log, seed_units)| {
            let item = 8 << (depth - 1) as u32;
            let base = 8 << base_ch_log;
            let gen_chain: Vec<String> = (0..depth)
                .map(|i| format!("{}t", base << (depth - 1 - i)))
                .collect();
            let disc_chain: Vec<String> = std::iter::once("3c".to_string())
                .chain((0..depth.saturating_sub(1)).map(|i| format!("{}c", base << i)))
                .collect();
            GanSpec::parse(
                &format!("rand-{depth}-{kernel}-{stride}-{base}"),
                &format!(
                    "{}f-({})({kernel}k{stride}s)-t3",
                    100 * seed_units,
                    gen_chain.join("-")
                ),
                &format!("({})({kernel}k{stride}s)-f1", disc_chain.join("-")),
                &[item, item],
            )
            .ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_topologies_bind_ir_to_trainer(gan in random_gan()) {
        let graph = OpGraph::build(&gan);
        // GEMM accounting holds for every op of every phase.
        for op in graph.ops() {
            prop_assert_eq!(op.gemm.macs(), op.workload.macs_dense);
        }
        // The standalone per-phase view used by the trainer matches the
        // stitched graph.
        for phase in Phase::ALL {
            let standalone = ir::network_ops(gan.network_for(phase), phase);
            let in_graph = graph.phase_ops(phase);
            prop_assert_eq!(standalone.len(), in_graph.len());
            for (a, b) in standalone.iter().zip(in_graph) {
                prop_assert_eq!(&a.workload, &b.workload);
                prop_assert_eq!(a.gemm, b.gemm);
            }
        }
        check_trainer_correspondence(&gan);
    }
}
