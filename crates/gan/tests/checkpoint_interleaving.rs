//! Two training jobs time-sharing one trainer via checkpoint/restore.
//!
//! This is the functional contract the serving runtime leans on: a fleet
//! pair that alternates between tenants by snapshotting one job and
//! restoring another must produce, for *each* job, the bit-exact
//! trajectory that job would have produced on a dedicated trainer. The
//! tests here pin that contract — round-robin and irregular interleaving
//! orders, checkpoint snapshot isolation (no buffer aliasing between a
//! stored snapshot and the live trainer), and typed failure on
//! architecture mismatch.

use lergan_gan::topology::parse_network;
use lergan_gan::train::{build_trainable_with, CheckpointError, Gan, GanCheckpoint, UpdateRule};
use lergan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The cheap 16-pixel DCGAN-class trainer the recovery and serving sweeps
/// use, seeded so weight init, noise and batches are fully reproducible.
fn trainer(seed: u64) -> Gan {
    let g_spec = parse_network("g", "8f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
    let d_spec = parse_network("d", "(1c-8c)(3k2s)-f1", 2, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let g = build_trainable_with(&g_spec, true, false, &mut rng);
    let d = build_trainable_with(&d_spec, false, false, &mut rng);
    Gan::new(g, d, 8, 0.0, seed.wrapping_add(1)).with_optimizer(UpdateRule::dcgan_adam(0.01))
}

/// One real batch from a job's private data stream.
fn batch(rng: &mut StdRng) -> Vec<Tensor> {
    (0..2)
        .map(|_| {
            let v = 0.5 + (rng.gen::<f32>() - 0.5) * 0.2;
            Tensor::filled(&[1, 16, 16], v)
        })
        .collect()
}

/// A job's full dedicated-trainer trajectory: the checkpoint after every
/// step, which is the reference an interleaved run must reproduce.
fn dedicated_trajectory(seed: u64, steps: usize) -> Vec<GanCheckpoint> {
    let mut gan = trainer(seed);
    let mut data = StdRng::seed_from_u64(seed ^ 0xDA7A);
    (0..steps)
        .map(|_| {
            gan.train_step(&batch(&mut data));
            gan.checkpoint()
        })
        .collect()
}

/// One suspended job: its last checkpoint plus its private data stream.
struct Suspended {
    ckpt: GanCheckpoint,
    data: StdRng,
    steps_done: usize,
}

impl Suspended {
    fn new(seed: u64) -> Self {
        Suspended {
            ckpt: trainer(seed).checkpoint(),
            data: StdRng::seed_from_u64(seed ^ 0xDA7A),
            steps_done: 0,
        }
    }

    /// Resumes this job on `shared` for one step, then suspends it again.
    fn step_on(&mut self, shared: &mut Gan) {
        shared.restore(&self.ckpt).unwrap();
        shared.train_step(&batch(&mut self.data));
        self.ckpt = shared.checkpoint();
        self.steps_done += 1;
    }
}

#[test]
fn alternating_jobs_on_one_trainer_match_dedicated_runs_bit_exactly() {
    const STEPS: usize = 5;
    let ref_a = dedicated_trajectory(11, STEPS);
    let ref_b = dedicated_trajectory(22, STEPS);

    // The shared trainer starts as a third, unrelated job's weights: the
    // restore must overwrite every bit of state that matters.
    let mut shared = trainer(99);
    let mut a = Suspended::new(11);
    let mut b = Suspended::new(22);
    for step in 0..STEPS {
        a.step_on(&mut shared);
        b.step_on(&mut shared);
        assert_eq!(a.ckpt, ref_a[step], "job A diverged at step {step}");
        assert_eq!(b.ckpt, ref_b[step], "job B diverged at step {step}");
    }
    assert_eq!(a.ckpt, *ref_a.last().unwrap());
    assert_eq!(b.ckpt, *ref_b.last().unwrap());
    assert_ne!(a.ckpt, b.ckpt, "distinct seeds must yield distinct trajectories");
}

#[test]
fn irregular_interleaving_orders_do_not_change_either_trajectory() {
    // A bursty schedule (A A B A B B A B) must land on the same final
    // checkpoints as strict alternation: each job's trajectory depends
    // only on its own checkpoint chain, never on who ran in between.
    const SCHEDULE: [u8; 8] = [0, 0, 1, 0, 1, 1, 0, 1];
    let steps_a = SCHEDULE.iter().filter(|&&s| s == 0).count();
    let steps_b = SCHEDULE.len() - steps_a;
    let ref_a = dedicated_trajectory(11, steps_a);
    let ref_b = dedicated_trajectory(22, steps_b);

    let mut shared = trainer(99);
    let mut a = Suspended::new(11);
    let mut b = Suspended::new(22);
    for &slot in &SCHEDULE {
        let job = if slot == 0 { &mut a } else { &mut b };
        job.step_on(&mut shared);
    }
    assert_eq!(a.steps_done, steps_a);
    assert_eq!(b.steps_done, steps_b);
    assert_eq!(a.ckpt, *ref_a.last().unwrap(), "job A sensitive to schedule");
    assert_eq!(b.ckpt, *ref_b.last().unwrap(), "job B sensitive to schedule");
}

#[test]
fn stored_checkpoints_do_not_alias_the_live_trainer() {
    // A snapshot must be a deep copy: training the shared trainer after
    // taking it must not mutate the stored bytes, or a suspended tenant's
    // state would be corrupted by whoever runs next.
    let mut shared = trainer(11);
    let mut data = StdRng::seed_from_u64(0xFEED);
    shared.train_step(&batch(&mut data));
    let snapshot = shared.checkpoint();
    let frozen = snapshot.clone();

    // Drive the live trainer far away from the snapshot.
    for _ in 0..3 {
        shared.train_step(&batch(&mut data));
    }
    assert_eq!(snapshot, frozen, "snapshot mutated by later training");
    assert_ne!(shared.checkpoint(), snapshot, "training must move the live state");

    // Restoring rewinds the live trainer onto the stored bytes exactly.
    shared.restore(&snapshot).unwrap();
    assert_eq!(shared.checkpoint(), frozen, "restore must be bit-exact");
}

#[test]
fn restoring_into_a_mismatched_architecture_fails_typed() {
    let donor = trainer(11).checkpoint();
    // A different discriminator depth: restore must refuse, not clobber.
    let g_spec = parse_network("g", "8f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
    let d_spec = parse_network("d", "(1c-4c-8c)(3k2s)-f1", 2, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let g = build_trainable_with(&g_spec, true, false, &mut rng);
    let d = build_trainable_with(&d_spec, false, false, &mut rng);
    let mut other = Gan::new(g, d, 8, 0.0, 8);
    let err = other.restore(&donor).unwrap_err();
    assert!(
        matches!(err, CheckpointError::LayerCountMismatch { .. }),
        "expected a typed layer-count mismatch, got {err:?}"
    );
}
