//! Property tests for topology parsing and workload characterisation.

use lergan_gan::topology::parse_network;
use lergan_gan::workload::{phase_workloads, WorkloadKind};
use lergan_gan::{benchmarks, Layer, Phase};
use proptest::prelude::*;

/// Random DCGAN-style generator notations: `Nf-(C1t-C2t-…)(WkSs)-tK`.
fn generator_notation() -> impl Strategy<Value = (String, usize)> {
    (
        2usize..5, // T-CONV layer count
        1usize..4, // channel scale
        prop_oneof![Just(4usize), Just(5)],
        Just(2usize), // stride
        prop_oneof![Just(1usize), Just(3)],
    )
        .prop_map(|(layers, scale, kernel, stride, out_ch)| {
            let chans: Vec<String> = (0..layers)
                .map(|i| format!("{}t", (scale * 32) << (layers - 1 - i)))
                .collect();
            let item = 8 << layers; // start extent 8, doubled per layer
            (
                format!("100f-({})({kernel}k{stride}s)-t{out_ch}", chans.join("-")),
                item,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_generators_parse_consistently((notation, item) in generator_notation()) {
        let net = parse_network("prop", &notation, 2, item).unwrap();
        // FC first, then T-CONVs chained by channels and doubling spatial.
        prop_assert!(matches!(net.layers[0], Layer::Fc(_)));
        let mut prev_out_ch = None;
        let mut prev_out_sp = None;
        for layer in &net.layers[1..] {
            let Layer::Tconv(t) = layer else {
                return Err(TestCaseError::fail("expected T-CONV"));
            };
            if let Some(c) = prev_out_ch {
                prop_assert_eq!(t.in_channels, c);
            }
            if let Some(s) = prev_out_sp {
                prop_assert_eq!(t.geometry.input, s);
            }
            prop_assert_eq!(t.geometry.output, t.geometry.input * 2);
            prev_out_ch = Some(t.out_channels);
            prev_out_sp = Some(t.geometry.output);
        }
        prop_assert_eq!(prev_out_sp.unwrap(), item);
    }

    #[test]
    fn useful_never_exceeds_dense((notation, item) in generator_notation()) {
        let net = parse_network("prop", &notation, 2, item).unwrap();
        for phase in Phase::ALL {
            for w in phase_workloads(&net, phase) {
                prop_assert!(w.macs_useful <= w.macs_dense);
                prop_assert!(w.moved_values_useful <= w.moved_values_dense);
                prop_assert!(w.moved_saving() >= 1.0);
                prop_assert!(w.output_values > 0);
            }
        }
    }

    #[test]
    fn dense_workloads_have_equal_counts((notation, item) in generator_notation()) {
        let net = parse_network("prop", &notation, 2, item).unwrap();
        for phase in Phase::ALL {
            for w in phase_workloads(&net, phase) {
                if matches!(w.kind, WorkloadKind::Dense) {
                    prop_assert_eq!(w.macs_useful, w.macs_dense);
                    prop_assert_eq!(w.moved_values_useful, w.moved_values_dense);
                }
            }
        }
    }

    #[test]
    fn workload_count_matches_layer_count((notation, item) in generator_notation()) {
        let net = parse_network("prop", &notation, 2, item).unwrap();
        for phase in Phase::ALL {
            prop_assert_eq!(phase_workloads(&net, phase).len(), net.layers.len());
        }
    }
}

#[test]
fn benchmark_backward_workloads_are_converse_shaped() {
    // D← over an S-CONV layer must carry the converse T-CONV geometry:
    // same kernel, swapped extents, identical remainder.
    for gan in benchmarks::all() {
        for w in gan.workloads(Phase::DBackward) {
            let WorkloadKind::TconvInput(tg) = w.kind else {
                continue;
            };
            let Layer::Conv(c) = gan.discriminator.layers[w.layer_index] else {
                panic!("T-CONV-shaped backward workload on a non-conv layer");
            };
            assert_eq!(tg.kernel, c.geometry.kernel);
            assert_eq!(tg.input, c.geometry.output);
            assert_eq!(tg.output, c.geometry.input);
            assert_eq!(tg.remainder, c.geometry.remainder, "{}", gan.name);
        }
    }
}

#[test]
fn forward_and_weight_grad_share_zero_structure() {
    // A T-CONV layer's forward and ∇weight workloads gather the same
    // useful row-weight sum (the same expanded-input zero pattern).
    let gan = benchmarks::dcgan();
    let fwd = gan.workloads(Phase::GForward);
    let wgrad = gan.workloads(Phase::GWeightGrad);
    for f in fwd.iter().filter(|w| w.kind.is_zero_inserted_input()) {
        let g = wgrad
            .iter()
            .find(|w| w.layer_index == f.layer_index)
            .unwrap();
        let (WorkloadKind::TconvInput(a), WorkloadKind::TconvInput(b)) = (&f.kind, &g.kind) else {
            panic!("expected matching T-CONV workloads");
        };
        assert_eq!(a, b);
        assert_eq!(f.macs_useful, g.macs_useful);
    }
}
