//! Diagnostic: prints per-benchmark latency/energy for every platform.
//! Run with `cargo test -p lergan-baselines --test calibration_dump -- --nocapture --ignored`.

use lergan_baselines::{FpgaGan, GpuPlatform, Prime};
use lergan_core::{Connection, LerGan, ReplicaDegree, ReshapeScheme};
use lergan_gan::benchmarks;

#[test]
#[ignore = "diagnostic output only"]
fn dump_platform_numbers() {
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "benchmark",
        "LerGAN(ms)",
        "PRIME(ms)",
        "GPU(ms)",
        "FPGA(ms)",
        "xPRIME",
        "xGPU",
        "xFPGA",
        "eGPU",
        "eFPGA",
        "ePRIME"
    );
    let mut s_prime = 0.0;
    let mut s_gpu = 0.0;
    let mut s_fpga = 0.0;
    let mut e_gpu = 0.0;
    let mut e_fpga = 0.0;
    let mut e_prime = 0.0;
    let gans = benchmarks::all();
    for gan in &gans {
        let lergan = LerGan::builder(gan)
            .replica_degree(ReplicaDegree::Low)
            .build()
            .unwrap()
            .train_iterations(1);
        let prime = Prime::new().train_iteration(gan);
        let gpu = GpuPlatform::new().train_iteration(gan);
        let fpga = FpgaGan::new().train_iteration(gan);
        let sp = prime.iteration_latency_ns / lergan.iteration_latency_ns;
        let sg = gpu.iteration_latency_ns / lergan.iteration_latency_ns;
        let sf = fpga.iteration_latency_ns / lergan.iteration_latency_ns;
        let eg = gpu.iteration_energy_pj / lergan.total_energy_pj;
        let ef = lergan.total_energy_pj / fpga.iteration_energy_pj;
        let ep = prime.iteration_energy_pj / lergan.total_energy_pj;
        s_prime += sp;
        s_gpu += sg;
        s_fpga += sf;
        e_gpu += eg;
        e_fpga += ef;
        e_prime += ep;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>12.3} {:>12.3} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2}",
            gan.name,
            lergan.iteration_latency_ns / 1e6,
            prime.iteration_latency_ns / 1e6,
            gpu.iteration_latency_ns / 1e6,
            fpga.iteration_latency_ns / 1e6,
            sp,
            sg,
            sf,
            eg,
            ef,
            ep
        );
    }
    let n = gans.len() as f64;
    println!(
        "AVG: speedup vs PRIME {:.2} (paper 7.46), GPU {:.2} (21.42), FPGA {:.2} (47.2)",
        s_prime / n,
        s_gpu / n,
        s_fpga / n
    );
    println!(
        "AVG: energy saving vs GPU {:.2} (9.75), PRIME {:.2} (7.68); energy ratio vs FPGA {:.2} (1.04)",
        e_gpu / n,
        e_prime / n,
        e_fpga / n
    );

    // ZFDR/3D decomposition (Fig. 17/18 shape).
    let gan = benchmarks::dcgan();
    for (label, scheme, conn) in [
        ("ZFDR+3D", ReshapeScheme::Zfdr, Connection::ThreeD),
        ("ZFDR+2D", ReshapeScheme::Zfdr, Connection::HTree),
        ("NR+3D", ReshapeScheme::Normal, Connection::ThreeD),
        ("NR+2D", ReshapeScheme::Normal, Connection::HTree),
    ] {
        let r = LerGan::builder(&gan)
            .reshape_scheme(scheme)
            .connection(conn)
            .build()
            .unwrap()
            .train_iterations(1);
        println!(
            "DCGAN {label:<8}: {:.3} ms  (compute {:.1}%, comm {:.1}%, other {:.1}%)",
            r.iteration_latency_ns / 1e6,
            r.energy_breakdown.share("compute") * 100.0,
            r.energy_breakdown.share("communication") * 100.0,
            r.energy_breakdown.share("other") * 100.0
        );
        println!(
            "          tile: adc {:.1}% switch {:.1}% other {:.1}%",
            r.tile_breakdown.adc_share() * 100.0,
            r.tile_breakdown.cell_switching_share() * 100.0,
            r.tile_breakdown.other_share() * 100.0
        );
    }
}

#[test]
#[ignore = "diagnostic output only"]
fn dump_cgan_profile() {
    let gan = benchmarks::cgan();
    let r = LerGan::builder(&gan).build().unwrap().train_iterations(1);
    println!("cGAN iteration: {:.3} ms", r.iteration_latency_ns / 1e6);
    println!("{}", r.phase_latency);
    println!("counts: {:?}", r.counts);
    let gan = benchmarks::dcgan();
    let r = LerGan::builder(&gan).build().unwrap().train_iterations(1);
    println!("DCGAN iteration: {:.3} ms", r.iteration_latency_ns / 1e6);
    println!("{}", r.phase_latency);
}
