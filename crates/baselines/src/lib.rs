//! Analytical GPU, FPGA-GAN and PRIME baseline models for the LerGAN
//! evaluation (Sec. VI-A's comparison points).
//!
//! * [`prime`] — "GANs running on modified ReRAM-based NN accelerator:
//!   PRIME": the *same* ReRAM tile and H-tree models as LerGAN, but with
//!   normal (zero-inserted) reshaping and no 3D connection. The `NS`
//!   variants grant PRIME the same CArray space LerGAN uses, spent on
//!   plain weight duplication.
//! * [`gpu`] — an NVIDIA Titan X-class roofline model: dense (zero
//!   touching) FLOPs against peak throughput, and off-chip DRAM traffic
//!   for weights, activations and the generator↔discriminator
//!   intermediates.
//! * [`fpga`] — the FPGA GAN accelerator of Song et al. \[47\] on a
//!   VCU118-class part: zero-skipping dataflow (it removes zero
//!   operations, like ZFDR) but DSP-limited throughput and DDR-streamed
//!   weights; very low power, hence the paper's ≈1.04× energy parity with
//!   LerGAN despite the 47.2× speed difference.
//!
//! Every model consumes the same per-(phase, layer) workload descriptions
//! as the LerGAN simulator, so "who wins and why" falls out of workload
//! structure; [`calib`] holds the (fleet-level, benchmark-independent)
//! device constants.

pub mod calib;
pub mod fpga;
pub mod gpu;
pub mod prime;

pub use fpga::FpgaGan;
pub use gpu::GpuPlatform;
pub use prime::Prime;

/// A baseline's training-cost estimate, comparable with
/// [`lergan_core::TrainingReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Model name.
    pub name: String,
    /// Latency of one training iteration (ns).
    pub iteration_latency_ns: f64,
    /// Energy of one training iteration (pJ).
    pub iteration_energy_pj: f64,
}

impl BaselineReport {
    /// Speedup of `other` over this baseline.
    pub fn speedup_of(&self, other_latency_ns: f64) -> f64 {
        self.iteration_latency_ns / other_latency_ns
    }

    /// Energy saving of `other` over this baseline.
    pub fn energy_saving_of(&self, other_energy_pj: f64) -> f64 {
        self.iteration_energy_pj / other_energy_pj
    }
}

/// The two passes of one training iteration and the phases each runs, in
/// the convention shared by the LerGAN simulator and every baseline: the
/// discriminator half runs G→, D→, D←, D-w; the generator half runs G→,
/// D→, D←, G←, G-w.
pub fn iteration_phases() -> [Vec<lergan_gan::Phase>; 2] {
    use lergan_gan::Phase;
    [
        vec![
            Phase::GForward,
            Phase::DForward,
            Phase::DBackward,
            Phase::DWeightGrad,
        ],
        vec![
            Phase::GForward,
            Phase::DForward,
            Phase::DBackward,
            Phase::GBackward,
            Phase::GWeightGrad,
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_ratios() {
        let r = BaselineReport {
            name: "x".into(),
            iteration_latency_ns: 100.0,
            iteration_energy_pj: 50.0,
        };
        assert_eq!(r.speedup_of(10.0), 10.0);
        assert_eq!(r.energy_saving_of(5.0), 10.0);
    }

    #[test]
    fn iteration_has_nine_phase_runs() {
        let [a, b] = iteration_phases();
        assert_eq!(a.len() + b.len(), 9);
    }
}
