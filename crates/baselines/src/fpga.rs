//! Model of the FPGA-based GAN accelerator of Song et al. \[47\].
//!
//! That design's contribution is a dataflow that *removes zero operations
//! and increases data reuse* — so, unlike the GPU, it is charged only the
//! **useful** MACs of each workload. Its limits are the DSP budget (a
//! couple of 16-bit TMAC/s against LerGAN's thousands of in-situ
//! crossbars) and DDR-streamed weights. Its strength is power: a ~26 W
//! board, which is how it stays within ~4 % of LerGAN's energy while
//! being ~47× slower.

use crate::calib::FpgaCalib;
use crate::{iteration_phases, BaselineReport};
use lergan_gan::GanSpec;

/// The FPGA GAN accelerator model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpgaGan {
    calib: FpgaCalib,
}

impl FpgaGan {
    /// Creates the model with default (VCU118) calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the model with explicit calibration.
    pub fn with_calib(calib: FpgaCalib) -> Self {
        FpgaGan { calib }
    }

    /// Estimates one training iteration.
    pub fn train_iteration(&self, gan: &GanSpec) -> BaselineReport {
        let c = &self.calib;
        let batch = gan.batch_size as f64;
        let mut latency = 0.0f64;
        for phases in iteration_phases() {
            for phase in phases {
                for w in gan.workloads(phase) {
                    // Zero-skipping dataflow: only useful MACs execute.
                    let macs = w.macs_useful as f64 * batch;
                    let compute_ns = macs / (c.peak_macs * c.efficiency) * 1e9;
                    // 16-bit traffic; weights stream per phase, zero-free
                    // activations stream per sample.
                    let bytes = 2.0
                        * (w.moved_values_useful as f64 * batch
                            + w.weight_values as f64
                            + w.output_values as f64 * batch);
                    let mem_ns = bytes / c.mem_bw * 1e9;
                    latency += compute_ns.max(mem_ns) + c.layer_overhead_ns;
                }
            }
        }
        let energy_pj = latency * c.power_w;
        BaselineReport {
            name: "FPGA-GAN".to_string(),
            iteration_latency_ns: latency,
            iteration_energy_pj: energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuPlatform;
    use lergan_gan::benchmarks;

    #[test]
    fn fpga_is_slower_but_leaner_than_gpu() {
        let fpga = FpgaGan::new();
        let gpu = GpuPlatform::new();
        for gan in [benchmarks::dcgan(), benchmarks::cgan()] {
            let f = fpga.train_iteration(&gan);
            let g = gpu.train_iteration(&gan);
            assert!(
                f.iteration_latency_ns > g.iteration_latency_ns,
                "{}: FPGA should trail the GPU in raw speed",
                gan.name
            );
            assert!(
                f.iteration_energy_pj < g.iteration_energy_pj,
                "{}: FPGA should beat the GPU on energy",
                gan.name
            );
        }
    }

    #[test]
    fn zero_skipping_helps_tconv_heavy_gans() {
        // The FPGA accelerator skips zeros, so its compute time tracks
        // useful MACs: a T-CONV-heavy GAN costs it proportionally less
        // than a dense model would predict.
        let fpga = FpgaGan::new();
        let gan = benchmarks::dcgan();
        let r = fpga.train_iteration(&gan);
        assert!(r.iteration_latency_ns > 0.0);
        let dense_macs: u128 = gan
            .workloads(lergan_gan::Phase::GForward)
            .iter()
            .map(|w| w.macs_dense)
            .sum();
        let useful_macs: u128 = gan
            .workloads(lergan_gan::Phase::GForward)
            .iter()
            .map(|w| w.macs_useful)
            .sum();
        assert!(useful_macs * 2 < dense_macs);
    }
}
