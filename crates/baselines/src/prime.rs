//! PRIME: the ReRAM NN accelerator baseline.
//!
//! PRIME shares LerGAN's substrate — the same crossbars, tiles, Table IV
//! timings and energies — but it predates GANs: it maps convolutions with
//! **normal reshaping** (the zero-inserted operands of Fig. 4–6 are stored
//! and scanned) and moves data over a plain **H-tree** with the shared
//! bus between banks. That is exactly the configuration the paper
//! evaluates as "GANs running on modified ReRAM-based NN accelerator".
//!
//! The *NS* (normalized-space) variant grants PRIME the same CArray space
//! LerGAN occupies, spent on duplicating the zero-inserted weights for
//! parallelism — the fair-space comparison of Fig. 19/20 that still leaves
//! LerGAN 2.1× ahead (Sec. VI-E).

use crate::BaselineReport;
use lergan_core::{Connection, LerGan, ReplicaDegree, ReshapeScheme};
use lergan_gan::GanSpec;

/// The PRIME baseline model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Prime {
    /// Whether to equalise CArray space with LerGAN (the NS variants).
    pub normalized_space: bool,
}

impl Prime {
    /// Plain PRIME.
    pub fn new() -> Self {
        Self::default()
    }

    /// Space-equalised PRIME (`NS`).
    pub fn normalized_space() -> Self {
        Prime {
            normalized_space: true,
        }
    }

    /// Estimates one training iteration by running the shared accelerator
    /// model with PRIME's mapping (normal reshape, H-tree interconnect).
    ///
    /// # Panics
    ///
    /// Panics if the GAN cannot be mapped (all Table V benchmarks can).
    pub fn train_iteration(&self, gan: &GanSpec) -> BaselineReport {
        let scheme = if self.normalized_space {
            ReshapeScheme::NormalSpaceEqualized
        } else {
            ReshapeScheme::Normal
        };
        let accel = LerGan::builder(gan)
            .reshape_scheme(scheme)
            .connection(Connection::HTree)
            .replica_degree(ReplicaDegree::Low)
            .build()
            .expect("Table V benchmarks map onto PRIME");
        let report = accel.train_iterations(1);
        BaselineReport {
            name: if self.normalized_space {
                "PRIME-NS".to_string()
            } else {
                "PRIME".to_string()
            },
            iteration_latency_ns: report.iteration_latency_ns,
            iteration_energy_pj: report.total_energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lergan_gan::benchmarks;

    #[test]
    fn lergan_beats_prime() {
        let gan = benchmarks::dcgan();
        let prime = Prime::new().train_iteration(&gan);
        let lergan = LerGan::builder(&gan).build().unwrap().train_iterations(1);
        assert!(
            prime.iteration_latency_ns > 2.0 * lergan.iteration_latency_ns,
            "PRIME {} vs LerGAN {}",
            prime.iteration_latency_ns,
            lergan.iteration_latency_ns
        );
        assert!(prime.iteration_energy_pj > lergan.total_energy_pj);
    }

    #[test]
    fn ns_variant_stays_close_to_plain_prime() {
        // Fig. 17's observation: "duplication achieves little speedup with
        // H-tree connection" — extra copies win compute cycles but pay the
        // tree's unicast distribution, so NS lands near plain PRIME.
        let gan = benchmarks::dcgan();
        let plain = Prime::new().train_iteration(&gan);
        let ns = Prime::normalized_space().train_iteration(&gan);
        let ratio = ns.iteration_latency_ns / plain.iteration_latency_ns;
        assert!(
            (0.4..=2.0).contains(&ratio),
            "PRIME-NS/PRIME latency ratio {ratio:.2} out of the near-parity band"
        );
    }

    #[test]
    fn all_benchmarks_run_on_prime() {
        for gan in benchmarks::all() {
            let r = Prime::new().train_iteration(&gan);
            assert!(r.iteration_latency_ns > 0.0, "{}", gan.name);
        }
    }
}
