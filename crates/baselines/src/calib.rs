//! Device constants for the baseline models.
//!
//! These are **fleet-level** constants: one set for all eight benchmarks,
//! so per-benchmark orderings in Fig. 19–22 emerge from workload structure
//! rather than tuning. Published device characteristics anchor each value;
//! the two efficiency factors were calibrated once so the *fleet-average*
//! ratios land near the paper's headline factors (47.2× / 21.42× / 7.46×
//! speedups; 9.75× / 1.04× / 7.68× energy) — the calibration run is
//! recorded in `EXPERIMENTS.md`.

/// NVIDIA Titan X (Pascal) class GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCalib {
    /// Peak fp32 throughput (FLOP/s).
    pub peak_flops: f64,
    /// Off-chip memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Achieved fraction of peak on GAN layers (cuDNN efficiency).
    pub efficiency: f64,
    /// Kernel launch + framework overhead per layer per phase (ns).
    pub layer_overhead_ns: f64,
    /// Board power while training (W).
    pub power_w: f64,
}

impl Default for GpuCalib {
    fn default() -> Self {
        GpuCalib {
            peak_flops: 11.0e12,
            mem_bw: 480.0e9,
            efficiency: 0.145,
            layer_overhead_ns: 8_000.0,
            power_w: 168.0,
        }
    }
}

/// Xilinx VCU118-class FPGA GAN accelerator \[47\].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaCalib {
    /// 16-bit MAC throughput (MAC/s): DSP count × clock.
    pub peak_macs: f64,
    /// DDR4 bandwidth for streamed weights/activations (bytes/s).
    pub mem_bw: f64,
    /// Achieved fraction of peak (the accelerator's dataflow efficiency).
    pub efficiency: f64,
    /// Per-layer control overhead (ns).
    pub layer_overhead_ns: f64,
    /// Board power while training (W).
    pub power_w: f64,
}

impl Default for FpgaCalib {
    fn default() -> Self {
        FpgaCalib {
            // 6840 DSPs at 500 MHz.
            peak_macs: 6840.0 * 500.0e6,
            mem_bw: 19.2e9,
            efficiency: 0.04,
            layer_overhead_ns: 2_000.0,
            power_w: 8.8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physical() {
        let g = GpuCalib::default();
        assert!(g.peak_flops > 1e12 && g.efficiency < 1.0);
        let f = FpgaCalib::default();
        assert!(f.peak_macs < g.peak_flops);
        assert!(f.power_w < g.power_w);
    }
}
