//! Roofline model of GAN training on a Titan X-class GPU.
//!
//! The model charges what the paper's comparison hinges on:
//!
//! 1. **dense arithmetic** — cuDNN materialises the zero-inserted T-CONV
//!    inputs (or algebraically equivalent dense work), so layers cost
//!    their *dense* MAC counts;
//! 2. **off-chip traffic** — weights, activations and gradients stream
//!    through GDDR5X, and the generator↔discriminator intermediates make
//!    an extra round trip through device memory;
//! 3. **per-layer overhead** — kernel launches and framework glue.
//!
//! Each layer takes `max(compute, memory)` time (roofline), summed over
//! the nine phase runs of an iteration.

use crate::calib::GpuCalib;
use crate::{iteration_phases, BaselineReport};
use lergan_gan::GanSpec;

/// The GPU platform model.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuPlatform {
    calib: GpuCalib,
}

impl GpuPlatform {
    /// Creates the model with default (Titan X) calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the model with explicit calibration.
    pub fn with_calib(calib: GpuCalib) -> Self {
        GpuPlatform { calib }
    }

    /// Estimates one training iteration.
    pub fn train_iteration(&self, gan: &GanSpec) -> BaselineReport {
        let c = &self.calib;
        let batch = gan.batch_size as f64;
        let mut latency = 0.0f64;
        for phases in iteration_phases() {
            for phase in phases {
                for w in gan.workloads(phase) {
                    // Dense FLOPs: every MAC is two flops; zeros included.
                    let flops = 2.0 * w.macs_dense as f64 * batch;
                    let compute_ns = flops / (c.peak_flops * c.efficiency) * 1e9;
                    // fp32 traffic: moving operand + weights + outputs.
                    let bytes = 4.0
                        * (w.moved_values_dense as f64 * batch
                            + w.weight_values as f64
                            + w.output_values as f64 * batch);
                    let mem_ns = bytes / c.mem_bw * 1e9;
                    latency += compute_ns.max(mem_ns) + c.layer_overhead_ns;
                }
            }
            // The generator output crosses device memory to feed the
            // discriminator (write + read).
            let inter = gan
                .generator
                .layers
                .last()
                .map(|l| l.output_count(gan.generator.dims))
                .unwrap_or(1) as f64
                * batch
                * 4.0
                * 2.0;
            latency += inter / c.mem_bw * 1e9;
        }
        let energy_pj = latency * c.power_w; // W × ns = pJ
        BaselineReport {
            name: "GPU".to_string(),
            iteration_latency_ns: latency,
            iteration_energy_pj: energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lergan_gan::benchmarks;

    #[test]
    fn bigger_gans_take_longer() {
        let gpu = GpuPlatform::new();
        let small = gpu.train_iteration(&benchmarks::magan_mnist());
        let big = gpu.train_iteration(&benchmarks::dcgan());
        assert!(big.iteration_latency_ns > small.iteration_latency_ns);
        let volumetric = gpu.train_iteration(&benchmarks::threed_gan());
        assert!(volumetric.iteration_latency_ns > big.iteration_latency_ns);
    }

    #[test]
    fn energy_tracks_latency_linearly() {
        let gpu = GpuPlatform::new();
        let power = crate::calib::GpuCalib::default().power_w;
        let r = gpu.train_iteration(&benchmarks::cgan());
        assert!((r.iteration_energy_pj / r.iteration_latency_ns - power).abs() < 1e-9);
    }

    #[test]
    fn iteration_time_is_plausible() {
        // A DCGAN iteration at batch 64 on a Titan X takes on the order of
        // tens of milliseconds.
        let gpu = GpuPlatform::new();
        let r = gpu.train_iteration(&benchmarks::dcgan());
        let ms = r.iteration_latency_ns / 1e6;
        assert!(
            (10.0..=3_000.0).contains(&ms),
            "DCGAN iteration {ms:.2} ms out of plausible range"
        );
    }
}
