//! Switch states of the 3DCU routing nodes (Sec. IV-B, Fig. 12b).
//!
//! Every routing node carries a state set
//! `s_set ⊆ {parent, horizontal, upper, down}` describing which wire its
//! switch currently connects (the two child wires are fixed). Outer banks
//! hold **one** switch per node; only middle-bank nodes hold **two**,
//! letting them face the upper and lower banks simultaneously. Each node
//! also hosts a bypassable adder for merging partial sums in flight.
//!
//! [`SwitchConfig`] validates and tracks a whole 3DCU's switch programme —
//! the state the memory controller's FSM writes before running a phase —
//! and can derive the programme a [`Route`] requires.

use crate::dcu::{EdgeKind, Route};
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// One connection a switch can make.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SwitchState {
    /// Connect the wire toward the parent node (the original H-tree path).
    Parent,
    /// Connect the added horizontal wire to the sibling-adjacent node.
    Horizontal,
    /// Connect the added vertical wire to the bank above.
    Upper,
    /// Connect the added vertical wire to the bank below.
    Down,
}

impl SwitchState {
    /// All states.
    pub const ALL: [SwitchState; 4] = [
        SwitchState::Parent,
        SwitchState::Horizontal,
        SwitchState::Upper,
        SwitchState::Down,
    ];

    /// Whether a node in `bank` (0 = top, 1 = middle, 2 = bottom) can
    /// take this state at all: the top bank has no bank above it and the
    /// bottom bank none below.
    pub fn available_in_bank(self, bank: usize) -> bool {
        match self {
            SwitchState::Upper => bank > 0,
            SwitchState::Down => bank < 2,
            _ => true,
        }
    }
}

impl fmt::Display for SwitchState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SwitchState::Parent => "parent",
            SwitchState::Horizontal => "horizontal",
            SwitchState::Upper => "upper",
            SwitchState::Down => "down",
        };
        f.write_str(s)
    }
}

/// Error raised when a switch programme is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The addressed bank does not exist (3DCUs stack exactly three).
    NoSuchBank {
        /// The offending bank index.
        bank: usize,
    },
    /// The state is physically impossible in that bank (e.g. `Upper` on
    /// the top bank).
    Unavailable {
        /// The requested state.
        state: SwitchState,
        /// The bank it was requested in.
        bank: usize,
    },
    /// The node already engages this exact state.
    AlreadyEngaged {
        /// Bank of the node.
        bank: usize,
        /// Node id.
        node: usize,
        /// The duplicated state.
        state: SwitchState,
    },
    /// The node's switches are all in use by other added wires.
    Exhausted {
        /// Bank of the node.
        bank: usize,
        /// Node id.
        node: usize,
        /// Switch capacity of the node (1 or 2).
        capacity: usize,
    },
    /// The node's switch is frozen in the parked position (hard fault):
    /// no added wire can engage, though parent traffic still flows.
    Stuck {
        /// Bank of the node.
        bank: usize,
        /// Node id.
        node: usize,
    },
    /// A route's switch-node list is shorter than its added-edge list
    /// requires — the route did not come from this fabric's router.
    MalformedRoute {
        /// Switch-node entries the route's edges require.
        expected: usize,
        /// Entries actually present.
        actual: usize,
    },
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid switch configuration: ")?;
        match self {
            SwitchError::NoSuchBank { bank } => write!(f, "bank {bank} does not exist"),
            SwitchError::Unavailable { state, bank } => {
                write!(f, "state `{state}` is impossible in bank {bank}")
            }
            SwitchError::AlreadyEngaged { bank, node, state } => {
                write!(f, "bank {bank} node {node} already engages `{state}`")
            }
            SwitchError::Exhausted {
                bank,
                node,
                capacity,
            } => write!(f, "bank {bank} node {node} has only {capacity} switch(es)"),
            SwitchError::Stuck { bank, node } => {
                write!(f, "bank {bank} node {node} switch is stuck in place")
            }
            SwitchError::MalformedRoute { expected, actual } => write!(
                f,
                "route needs {expected} switch node(s) but records {actual}"
            ),
        }
    }
}

impl Error for SwitchError {}

/// The switch programme of one 3DCU: the set of engaged states per
/// `(bank, node)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchConfig {
    engaged: HashMap<(usize, usize), Vec<SwitchState>>,
    stuck: BTreeSet<(usize, usize)>,
}

impl SwitchConfig {
    /// An empty programme (Smode: every switch parked on `Parent`).
    pub fn smode() -> Self {
        Self::default()
    }

    /// Switch capacity of a node: two on the middle bank, one elsewhere.
    pub fn capacity(bank: usize) -> usize {
        if bank == 1 {
            2
        } else {
            1
        }
    }

    /// Engages a state on a node's switch.
    ///
    /// # Errors
    ///
    /// Returns [`SwitchError`] if the state is impossible in that bank
    /// (e.g. `Upper` on the top bank), already engaged, or the node's
    /// switches are exhausted — the constraint that makes concurrent
    /// up+down traffic a middle-bank-only capability.
    pub fn engage(
        &mut self,
        bank: usize,
        node: usize,
        state: SwitchState,
    ) -> Result<(), SwitchError> {
        if bank >= 3 {
            return Err(SwitchError::NoSuchBank { bank });
        }
        if !state.available_in_bank(bank) {
            return Err(SwitchError::Unavailable { state, bank });
        }
        if state != SwitchState::Parent && self.stuck.contains(&(bank, node)) {
            return Err(SwitchError::Stuck { bank, node });
        }
        let states = self.engaged.entry((bank, node)).or_default();
        if states.contains(&state) {
            return Err(SwitchError::AlreadyEngaged { bank, node, state });
        }
        // `Parent` uses the default position, not an extra switch; the
        // added wires consume switch capacity.
        let used = states.iter().filter(|s| **s != SwitchState::Parent).count();
        if state != SwitchState::Parent && used >= Self::capacity(bank) {
            return Err(SwitchError::Exhausted {
                bank,
                node,
                capacity: Self::capacity(bank),
            });
        }
        states.push(state);
        Ok(())
    }

    /// Marks a node's switch as frozen in the parked position (a hard
    /// fault): subsequent [`Self::engage`] calls for its added wires
    /// return [`SwitchError::Stuck`]. `Parent` remains engageable — the
    /// parked position *is* the parent position.
    pub fn mark_stuck(&mut self, bank: usize, node: usize) -> &mut Self {
        self.stuck.insert((bank, node));
        self
    }

    /// Whether a node's switch is frozen.
    pub fn is_stuck(&self, bank: usize, node: usize) -> bool {
        self.stuck.contains(&(bank, node))
    }

    /// The engaged states of a node (empty = parked in the H-tree
    /// position).
    pub fn states(&self, bank: usize, node: usize) -> &[SwitchState] {
        self.engaged
            .get(&(bank, node))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of nodes with at least one engaged added wire.
    pub fn engaged_nodes(&self) -> usize {
        self.engaged
            .values()
            .filter(|v| v.iter().any(|s| *s != SwitchState::Parent))
            .count()
    }

    /// Derives and applies the programme a route needs on this 3DCU side.
    /// Walks the route's added edges and engages the matching states at
    /// their endpoint switches.
    ///
    /// # Errors
    ///
    /// Returns [`SwitchError`] when the route conflicts with states
    /// already engaged (two dataflows demanding the same switch).
    pub fn engage_route(&mut self, route: &Route) -> Result<(), SwitchError> {
        // The route records the endpoint nodes of every added edge in
        // order: (side, bank, node) pairs per Horizontal/Vertical edge.
        let expected = 2 * route
            .edges
            .iter()
            .filter(|k| matches!(k, EdgeKind::Horizontal | EdgeKind::Vertical))
            .count();
        if route.switch_nodes.len() < expected {
            return Err(SwitchError::MalformedRoute {
                expected,
                actual: route.switch_nodes.len(),
            });
        }
        let mut cursor = 0usize;
        for kind in &route.edges {
            match kind {
                EdgeKind::Horizontal => {
                    for _ in 0..2 {
                        let (_, bank, node) = route.switch_nodes[cursor];
                        cursor += 1;
                        self.engage(bank, node, SwitchState::Horizontal)?;
                    }
                }
                EdgeKind::Vertical => {
                    let (a, b) = (route.switch_nodes[cursor], route.switch_nodes[cursor + 1]);
                    cursor += 2;
                    let (lo, hi) = if a.1 < b.1 { (a, b) } else { (b, a) };
                    // The upper node faces down; the lower faces up.
                    self.engage(lo.1, lo.2, SwitchState::Down)?;
                    self.engage(hi.1, hi.2, SwitchState::Upper)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::dcu::{Endpoint, Mode, ThreeDcu};

    #[test]
    fn capacities_match_the_paper() {
        assert_eq!(SwitchConfig::capacity(0), 1);
        assert_eq!(SwitchConfig::capacity(1), 2);
        assert_eq!(SwitchConfig::capacity(2), 1);
    }

    #[test]
    fn bank_constraints() {
        assert!(!SwitchState::Upper.available_in_bank(0));
        assert!(SwitchState::Upper.available_in_bank(1));
        assert!(!SwitchState::Down.available_in_bank(2));
        assert!(SwitchState::Parent.available_in_bank(0));
    }

    #[test]
    fn outer_bank_switch_is_exclusive() {
        let mut cfg = SwitchConfig::smode();
        cfg.engage(0, 5, SwitchState::Horizontal).unwrap();
        // The single switch is taken: no second added wire.
        let err = cfg.engage(0, 5, SwitchState::Down).unwrap_err();
        assert!(err.to_string().contains("only 1 switch"));
        // Parent stays available (default position).
        cfg.engage(0, 5, SwitchState::Parent).unwrap();
    }

    #[test]
    fn middle_bank_faces_both_ways() {
        // "only nodes in Bank 2 have two switches, which enable the nodes
        // to connect both upper/down nodes at the same time."
        let mut cfg = SwitchConfig::smode();
        cfg.engage(1, 3, SwitchState::Upper).unwrap();
        cfg.engage(1, 3, SwitchState::Down).unwrap();
        assert_eq!(cfg.states(1, 3).len(), 2);
        // A third added wire is impossible.
        assert!(cfg.engage(1, 3, SwitchState::Horizontal).is_err());
    }

    #[test]
    fn impossible_states_are_rejected() {
        let mut cfg = SwitchConfig::smode();
        assert!(cfg.engage(0, 2, SwitchState::Upper).is_err());
        assert!(cfg.engage(2, 2, SwitchState::Down).is_err());
        assert!(cfg.engage(3, 2, SwitchState::Parent).is_err());
        // Double engagement of the same state is rejected too.
        cfg.engage(1, 2, SwitchState::Upper).unwrap();
        assert!(cfg.engage(1, 2, SwitchState::Upper).is_err());
    }

    #[test]
    fn errors_are_typed_and_inspectable() {
        let mut cfg = SwitchConfig::smode();
        assert_eq!(
            cfg.engage(3, 2, SwitchState::Parent),
            Err(SwitchError::NoSuchBank { bank: 3 })
        );
        assert_eq!(
            cfg.engage(0, 2, SwitchState::Upper),
            Err(SwitchError::Unavailable {
                state: SwitchState::Upper,
                bank: 0
            })
        );
        cfg.engage(0, 5, SwitchState::Horizontal).unwrap();
        assert_eq!(
            cfg.engage(0, 5, SwitchState::Horizontal),
            Err(SwitchError::AlreadyEngaged {
                bank: 0,
                node: 5,
                state: SwitchState::Horizontal
            })
        );
        assert_eq!(
            cfg.engage(0, 5, SwitchState::Down),
            Err(SwitchError::Exhausted {
                bank: 0,
                node: 5,
                capacity: 1
            })
        );
    }

    #[test]
    fn stuck_switches_refuse_added_wires() {
        let mut cfg = SwitchConfig::smode();
        cfg.mark_stuck(1, 4);
        assert!(cfg.is_stuck(1, 4));
        assert_eq!(
            cfg.engage(1, 4, SwitchState::Upper),
            Err(SwitchError::Stuck { bank: 1, node: 4 })
        );
        // Parked position is the parent position: still engageable.
        cfg.engage(1, 4, SwitchState::Parent).unwrap();
        // Other nodes unaffected.
        cfg.engage(1, 5, SwitchState::Upper).unwrap();
    }

    #[test]
    fn malformed_routes_are_rejected_not_panicked() {
        let mut cfg = SwitchConfig::smode();
        let bogus = Route {
            edges: vec![EdgeKind::Horizontal],
            latency_ns: 1.0,
            energy_pj_per_access: 1.0,
            min_width_bits: 128,
            switch_nodes: Vec::new(), // should hold two entries
        };
        assert_eq!(
            cfg.engage_route(&bogus),
            Err(SwitchError::MalformedRoute {
                expected: 2,
                actual: 0
            })
        );
    }

    #[test]
    fn routes_program_their_switches() {
        let noc = NocConfig::default();
        let dcu = ThreeDcu::new(&noc);
        let route = dcu
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Cmode,
            )
            .unwrap();
        let mut cfg = SwitchConfig::smode();
        cfg.engage_route(&route).unwrap();
        assert!(cfg.engaged_nodes() >= 1);
        // Programming the same vertical hop twice conflicts.
        assert!(cfg.engage_route(&route).is_err());
    }

    #[test]
    fn disjoint_routes_coexist() {
        let noc = NocConfig::default();
        let dcu = ThreeDcu::new(&noc);
        let mut cfg = SwitchConfig::smode();
        for tile in [0usize, 15] {
            let route = dcu
                .route(
                    Endpoint::tile(0, tile),
                    Endpoint::pair_tile(0, 1, tile),
                    Mode::Cmode,
                )
                .unwrap();
            cfg.engage_route(&route).unwrap();
        }
        assert!(cfg.engaged_nodes() >= 2);
    }
}
