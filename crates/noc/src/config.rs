//! Interconnect timing/energy configuration.
//!
//! The H-tree numbers derive from Table IV (29.9 ns / 386 pJ per full
//! 4-level traversal). The added 3D wires are short: horizontal wires span
//! one sibling gap (same cost class as a tree hop), and vertical wires are
//! through-silicon-via-class (a fraction of a planar hop). Bus transfers
//! leave the bank through the memory controller and are far slower — that
//! is precisely the bottleneck Fig. 9 illustrates and the 3DCU removes.

/// Interconnect configuration; `Default` matches the paper's setup.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Tiles per bank (16 ⇒ a 4-level H-tree).
    pub tiles_per_bank: usize,
    /// Latency of one H-tree hop (ns); Table IV's 29.9 ns over 4 levels.
    pub hop_latency_ns: f64,
    /// Energy of one H-tree hop per 64-byte access (pJ); 386 pJ over 4.
    pub hop_energy_pj: f64,
    /// Horizontal added-wire latency relative to a tree hop.
    pub horizontal_latency_factor: f64,
    /// Horizontal added-wire energy relative to a tree hop.
    pub horizontal_energy_factor: f64,
    /// Vertical (inter-die) added-wire latency relative to a tree hop.
    pub vertical_latency_factor: f64,
    /// Vertical added-wire energy relative to a tree hop.
    pub vertical_energy_factor: f64,
    /// Latency of the direct bypass link between paired 3DCUs (ns).
    pub bypass_latency_ns: f64,
    /// Energy of the bypass link per 64-byte access (pJ).
    pub bypass_energy_pj: f64,
    /// Latency of reaching another bank over the shared bus (ns),
    /// including memory-controller arbitration.
    pub bus_latency_ns: f64,
    /// Bus energy per 64-byte access (pJ).
    pub bus_energy_pj: f64,
    /// Root-level wire width in bits; merging nodes halve it per level.
    pub root_width_bits: u32,
    /// Wire clock period (ns) — 1.6 GHz I/O frequency.
    pub wire_cycle_ns: f64,
    /// 16-bit values covered by one `hop_energy_pj` access (64 B = 32).
    pub values_per_access: u32,
    /// Parallel distribution channels a Cmode-reconfigured 3DCU offers a
    /// streaming transfer (parent wire + vertical up/down + horizontal
    /// left/right paths; Fig. 14's vertically-aligned slices each ride
    /// their own short path).
    pub cmode_parallel_channels: u32,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            tiles_per_bank: 16,
            hop_latency_ns: 29.9 / 4.0,
            hop_energy_pj: 386.0,
            horizontal_latency_factor: 1.0,
            horizontal_energy_factor: 1.0,
            vertical_latency_factor: 0.4,
            vertical_energy_factor: 0.4,
            bypass_latency_ns: 12.0,
            bypass_energy_pj: 480.0,
            bus_latency_ns: 120.0,
            bus_energy_pj: 4800.0,
            root_width_bits: 1024,
            wire_cycle_ns: 1.0 / 1.6,
            values_per_access: 32,
            cmode_parallel_channels: 4,
        }
    }
}

impl NocConfig {
    /// Depth of the H-tree (4 levels for 16 tiles).
    ///
    /// # Panics
    ///
    /// Panics if `tiles_per_bank` is not a power of two.
    pub fn levels(&self) -> u32 {
        assert!(
            self.tiles_per_bank.is_power_of_two(),
            "tiles per bank must be a power of two"
        );
        self.tiles_per_bank.trailing_zeros()
    }

    /// Wire width (bits) of the edge between level `l` and `l+1`
    /// (level 0 = root). Width halves at each merging level, floored at
    /// 128 bits (the per-tile port width).
    pub fn width_bits_at(&self, level: u32) -> u32 {
        (self.root_width_bits >> level).max(128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_derive_from_table_iv() {
        let c = NocConfig::default();
        assert_eq!(c.levels(), 4);
        assert!((c.hop_latency_ns * 4.0 - 29.9).abs() < 1e-9);
        assert!((c.hop_energy_pj - 386.0).abs() < 1e-9);
    }

    #[test]
    fn widths_halve_and_floor() {
        let c = NocConfig::default();
        assert_eq!(c.width_bits_at(0), 1024);
        assert_eq!(c.width_bits_at(1), 512);
        assert_eq!(c.width_bits_at(3), 128);
        assert_eq!(c.width_bits_at(6), 128); // floored
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_tiles_rejected() {
        let c = NocConfig {
            tiles_per_bank: 12,
            ..NocConfig::default()
        };
        let _ = c.levels();
    }
}
