//! Partial-sum reduction through the 3DCU's bypassable adders.
//!
//! A weight matrix taller than one crossbar spans several row-tiles whose
//! partial sums must merge before the result is usable. Fig. 12b adds "an
//! adder into each node, which can also be bypassed": in Cmode the
//! partials combine *in the network*, log-depth up the tree. The H-tree
//! baseline has no in-network adders, so the partials serialise into one
//! tile and add there.

use crate::config::NocConfig;

/// Cost of one reduction over `k` partial vectors of `values` elements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReductionCost {
    /// End-to-end latency (ns).
    pub latency_ns: f64,
    /// Total energy (pJ).
    pub energy_pj: f64,
    /// Node adders engaged (0 when nothing merges).
    pub adders_used: usize,
}

/// Latency of one in-node vector add per value batch (ns) — pipelined
/// behind the wire, so charged once per tree level.
const ADD_LATENCY_NS: f64 = 0.8;
/// Energy of adding one pair of 16-bit values (pJ).
const ADD_ENERGY_PJ: f64 = 0.03;

fn transfer_cost(values: u64, hops: usize, cfg: &NocConfig) -> (f64, f64) {
    if values == 0 || hops == 0 {
        return (0.0, 0.0);
    }
    let bits = values * 16;
    let width = u64::from(cfg.width_bits_at(2)); // mid-tree wires
    let flits = bits.div_ceil(width).max(1);
    let latency =
        hops as f64 * cfg.hop_latency_ns + (flits - 1) as f64 * cfg.wire_cycle_ns * hops as f64;
    let accesses = values.div_ceil(u64::from(cfg.values_per_access)).max(1);
    (latency, accesses as f64 * cfg.hop_energy_pj * hops as f64)
}

/// In-network (Cmode) reduction: the `k` partials pair up at the adders
/// level by level — `⌈log₂ k⌉` levels, each one hop plus one add.
pub fn tree_reduction(k: usize, values: u64, cfg: &NocConfig) -> ReductionCost {
    if k <= 1 {
        return ReductionCost {
            latency_ns: 0.0,
            energy_pj: 0.0,
            adders_used: 0,
        };
    }
    let depth = (k as f64).log2().ceil() as usize;
    let (hop_lat, hop_en) = transfer_cost(values, 1, cfg);
    ReductionCost {
        latency_ns: depth as f64 * (hop_lat + ADD_LATENCY_NS),
        // k-1 merges move one operand each and add once.
        energy_pj: (k - 1) as f64 * (hop_en + values as f64 * ADD_ENERGY_PJ),
        adders_used: k - 1,
    }
}

/// H-tree (Smode) gather: the `k − 1` remote partials stream one after
/// another into the owning tile (each crossing the tree) and add locally.
pub fn gather_reduction(k: usize, values: u64, cfg: &NocConfig) -> ReductionCost {
    if k <= 1 {
        return ReductionCost {
            latency_ns: 0.0,
            energy_pj: 0.0,
            adders_used: 0,
        };
    }
    // Average tree distance between tiles of one bank: up and down half
    // the depth on average — charge the full depth to stay conservative.
    let hops = cfg.levels() as usize;
    let (lat, en) = transfer_cost(values, hops, cfg);
    ReductionCost {
        latency_ns: (k - 1) as f64 * (lat + ADD_LATENCY_NS),
        energy_pj: (k - 1) as f64 * (en + values as f64 * ADD_ENERGY_PJ),
        adders_used: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_partial_is_free() {
        let cfg = NocConfig::default();
        for f in [tree_reduction, gather_reduction] {
            let c = f(1, 4096, &cfg);
            assert_eq!(c.latency_ns, 0.0);
            assert_eq!(c.energy_pj, 0.0);
        }
    }

    #[test]
    fn tree_beats_gather_in_latency() {
        let cfg = NocConfig::default();
        for k in [2usize, 4, 8, 32] {
            let t = tree_reduction(k, 512, &cfg);
            let g = gather_reduction(k, 512, &cfg);
            assert!(
                t.latency_ns < g.latency_ns,
                "k={k}: tree {} vs gather {}",
                t.latency_ns,
                g.latency_ns
            );
        }
    }

    #[test]
    fn tree_latency_is_log_depth() {
        let cfg = NocConfig::default();
        let t2 = tree_reduction(2, 512, &cfg);
        let t16 = tree_reduction(16, 512, &cfg);
        assert!((t16.latency_ns / t2.latency_ns - 4.0).abs() < 1e-9);
        assert_eq!(t16.adders_used, 15);
    }

    #[test]
    fn gather_latency_is_linear() {
        let cfg = NocConfig::default();
        let g2 = gather_reduction(2, 512, &cfg);
        let g8 = gather_reduction(8, 512, &cfg);
        assert!((g8.latency_ns / g2.latency_ns - 7.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_merge_count() {
        let cfg = NocConfig::default();
        let a = tree_reduction(4, 1024, &cfg);
        let b = tree_reduction(8, 1024, &cfg);
        assert!((b.energy_pj / a.energy_pj - 7.0 / 3.0).abs() < 1e-9);
    }
}
