//! The baseline H-tree of one bank (Fig. 12a).
//!
//! Nodes use heap numbering: node 1 is the root, node `i` has children
//! `2i` and `2i+1`, and for a 16-tile bank the leaves are nodes 16–31
//! (tiles 0–15). Routing nodes alternate between *merging* (wire width
//! halves) and *multiplexing* (width preserved) — the red/yellow vs
//! green/blue nodes of Fig. 12.

use crate::config::NocConfig;

/// Kind of a routing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Connects data wires of the same width.
    Multiplexing,
    /// Divides the data wire width into two halves.
    Merging,
}

/// The H-tree of one bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HTree {
    tiles: usize,
    levels: u32,
}

impl HTree {
    /// Builds the tree for a configuration.
    pub fn new(config: &NocConfig) -> Self {
        HTree {
            tiles: config.tiles_per_bank,
            levels: config.levels(),
        }
    }

    /// Number of tiles (leaves).
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Tree depth in levels (root = level 0, leaves = level `levels()`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Heap id of a tile's leaf node.
    ///
    /// # Panics
    ///
    /// Panics if the tile index is out of range.
    pub fn leaf(&self, tile: usize) -> usize {
        assert!(tile < self.tiles, "tile index out of range");
        self.tiles + tile
    }

    /// Tile index of a leaf node, or `None` for internal nodes.
    pub fn tile_of(&self, node: usize) -> Option<usize> {
        (node >= self.tiles && node < 2 * self.tiles).then(|| node - self.tiles)
    }

    /// Level of a node (root = 0).
    ///
    /// # Panics
    ///
    /// Panics for node id 0 (unused in heap numbering).
    pub fn level(&self, node: usize) -> u32 {
        assert!(node >= 1, "heap node ids start at 1");
        node.ilog2()
    }

    /// Kind of an internal routing node: levels alternate starting with a
    /// merging root (Fig. 12's colour pattern).
    pub fn kind(&self, node: usize) -> NodeKind {
        if self.level(node).is_multiple_of(2) {
            NodeKind::Merging
        } else {
            NodeKind::Multiplexing
        }
    }

    /// All internal node ids (1 ..= tiles-1).
    pub fn internal_nodes(&self) -> impl Iterator<Item = usize> {
        1..self.tiles
    }

    /// Parent of a node, or `None` for the root.
    pub fn parent(&self, node: usize) -> Option<usize> {
        (node > 1).then_some(node / 2)
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, mut a: usize, mut b: usize) -> usize {
        while a != b {
            if a > b {
                a /= 2;
            } else {
                b /= 2;
            }
        }
        a
    }

    /// Hop count of the in-tree route between two nodes (up to the LCA and
    /// back down).
    pub fn tree_hops(&self, a: usize, b: usize) -> u32 {
        let l = self.lca(a, b);
        (self.level(a) - self.level(l)) + (self.level(b) - self.level(l))
    }

    /// Whether two same-level nodes are adjacent siblings *with different
    /// parents* — the pairs the 3D design joins with horizontal wires.
    pub fn horizontal_pair(&self, a: usize, b: usize) -> bool {
        if self.level(a) != self.level(b) {
            return false;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        hi == lo + 1 && lo / 2 != hi / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> HTree {
        HTree::new(&NocConfig::default())
    }

    #[test]
    fn leaves_and_levels() {
        let t = tree();
        assert_eq!(t.leaf(0), 16);
        assert_eq!(t.leaf(15), 31);
        assert_eq!(t.tile_of(16), Some(0));
        assert_eq!(t.tile_of(5), None);
        assert_eq!(t.level(1), 0);
        assert_eq!(t.level(16), 4);
    }

    #[test]
    fn lca_and_hops() {
        let t = tree();
        // Tiles 0 and 1 share a parent: 2 hops.
        assert_eq!(t.tree_hops(t.leaf(0), t.leaf(1)), 2);
        // Tiles 0 and 15 only meet at the root: 8 hops.
        assert_eq!(t.lca(t.leaf(0), t.leaf(15)), 1);
        assert_eq!(t.tree_hops(t.leaf(0), t.leaf(15)), 8);
        // Tiles 7 and 8 are physically adjacent but tree-distant — the
        // pathology of Fig. 9.
        assert_eq!(t.tree_hops(t.leaf(7), t.leaf(8)), 8);
    }

    #[test]
    fn horizontal_pairs_cross_parents() {
        let t = tree();
        // Nodes 5 and 6: same level, parents 2 and 3 — joined in 3D.
        assert!(t.horizontal_pair(5, 6));
        // Nodes 4 and 5 share parent 2 — already joined through it.
        assert!(!t.horizontal_pair(4, 5));
        // Different levels never pair.
        assert!(!t.horizontal_pair(2, 5));
    }

    #[test]
    fn kinds_alternate() {
        let t = tree();
        assert_eq!(t.kind(1), NodeKind::Merging);
        assert_eq!(t.kind(2), NodeKind::Multiplexing);
        assert_eq!(t.kind(4), NodeKind::Merging);
    }

    #[test]
    fn internal_nodes_count() {
        let t = tree();
        assert_eq!(t.internal_nodes().count(), 15);
    }
}
