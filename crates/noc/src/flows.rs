//! Concurrent-flow scheduling with switch-conflict serialisation.
//!
//! Cmode reconfigures physical switches, so two simultaneous dataflows that
//! need the *same* switch cannot proceed in parallel — the dataflow
//! controller serialises them (Sec. V "Memory controller"). The simulator
//! uses [`FlowSchedule`] to charge that serialisation: each flow's
//! effective latency is scaled by the worst over-subscription among the
//! switches its route occupies.

use crate::config::NocConfig;
use crate::dcu::{Route, ThreeDcu};
use std::collections::HashMap;

/// One data movement scheduled in a batch of concurrent transfers.
#[derive(Debug, Clone)]
pub struct Flow {
    /// The route the flow takes.
    pub route: Route,
    /// 16-bit values moved.
    pub values: u64,
}

impl Flow {
    /// Creates a flow.
    pub fn new(route: Route, values: u64) -> Self {
        Flow { route, values }
    }
}

/// A batch of flows that want to proceed simultaneously.
#[derive(Debug, Clone, Default)]
pub struct FlowSchedule {
    flows: Vec<Flow>,
}

/// Result of scheduling a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOutcome {
    /// Wall-clock latency of the batch: the slowest flow after
    /// serialisation (ns).
    pub makespan_ns: f64,
    /// Total energy of all flows (pJ).
    pub energy_pj: f64,
    /// The worst switch over-subscription factor observed (1 = conflict
    /// free).
    pub worst_contention: usize,
}

impl FlowSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a flow to the batch.
    pub fn push(&mut self, flow: Flow) -> &mut Self {
        self.flows.push(flow);
        self
    }

    /// Number of flows in the batch.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Resolves the batch: computes each flow's serialisation factor from
    /// switch demand (demand / capacity, rounded up) and returns the batch
    /// makespan and energy.
    pub fn resolve(&self, cfg: &NocConfig) -> ScheduleOutcome {
        // Count how many flows occupy each switch node.
        let mut demand: HashMap<(usize, usize, usize), usize> = HashMap::new();
        for f in &self.flows {
            for &node in &f.route.switch_nodes {
                *demand.entry(node).or_insert(0) += 1;
            }
        }
        let mut makespan = 0.0f64;
        let mut energy = 0.0f64;
        let mut worst = 1usize;
        for f in &self.flows {
            let factor = f
                .route
                .switch_nodes
                .iter()
                .map(|node| {
                    let cap = ThreeDcu::switches_at(node.1);
                    demand.get(node).copied().unwrap_or(1).div_ceil(cap)
                })
                .max()
                .unwrap_or(1)
                .max(1);
            let (lat, en) = f.route.transfer(f.values, cfg);
            makespan = makespan.max(lat * factor as f64);
            energy += en;
            worst = worst.max(factor);
        }
        ScheduleOutcome {
            makespan_ns: makespan,
            energy_pj: energy,
            worst_contention: worst,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcu::{Endpoint, Mode, ThreeDcu};

    fn vertical_route(dcu: &ThreeDcu, tile: usize) -> Route {
        dcu.route(
            Endpoint::tile(0, tile),
            Endpoint::pair_tile(0, 1, tile),
            Mode::Cmode,
        )
        .unwrap()
    }

    #[test]
    fn empty_schedule_is_free() {
        let out = FlowSchedule::new().resolve(&NocConfig::default());
        assert_eq!(out.makespan_ns, 0.0);
        assert_eq!(out.energy_pj, 0.0);
        assert_eq!(out.worst_contention, 1);
    }

    #[test]
    fn disjoint_flows_do_not_serialise() {
        let cfg = NocConfig::default();
        let dcu = ThreeDcu::new(&cfg);
        let mut s = FlowSchedule::new();
        s.push(Flow::new(vertical_route(&dcu, 0), 64));
        s.push(Flow::new(vertical_route(&dcu, 15), 64));
        let out = s.resolve(&cfg);
        assert_eq!(out.worst_contention, 1);
    }

    #[test]
    fn same_switch_flows_serialise() {
        let cfg = NocConfig::default();
        let dcu = ThreeDcu::new(&cfg);
        let route = vertical_route(&dcu, 0);
        let solo = {
            let mut s = FlowSchedule::new();
            s.push(Flow::new(route.clone(), 64));
            s.resolve(&cfg)
        };
        let mut s = FlowSchedule::new();
        for _ in 0..4 {
            s.push(Flow::new(route.clone(), 64));
        }
        let out = s.resolve(&cfg);
        assert!(out.worst_contention > 1);
        assert!(out.makespan_ns > solo.makespan_ns);
        // Energy adds linearly regardless of contention.
        assert!((out.energy_pj - 4.0 * solo.energy_pj).abs() < 1e-9);
    }

    #[test]
    fn schedule_length_tracks_pushes() {
        let cfg = NocConfig::default();
        let dcu = ThreeDcu::new(&cfg);
        let mut s = FlowSchedule::new();
        assert!(s.is_empty());
        s.push(Flow::new(vertical_route(&dcu, 3), 10));
        assert_eq!(s.len(), 1);
    }
}
