//! Interconnect hard faults: broken added wires and stuck switches.
//!
//! The 3DCU's horizontal/vertical wires and their gating switches are the
//! added hardware of Sec. IV — and the part a manufacturing defect or
//! electromigration failure takes out first (the base H-tree is plain
//! memory wiring, exercised and repairable by standard DRAM-style
//! redundancy). [`LinkFaults`] records which added wires are severed and
//! which switches are frozen in their parked position; a fabric built with
//! a fault set simply omits the corresponding Cmode edges, so Dijkstra
//! reroutes every affected flow through the H-tree parent path (the Smode
//! fallback) or the shared bus, and the detour's extra hops and energy
//! fall out of the ordinary cost model — no special-case accounting.
//!
//! Like every fault structure in this reproduction, the set is an explicit
//! value (no hidden RNG): callers build it by hand or derive it from a
//! seed, and the same set always produces the same routes.

use std::collections::BTreeSet;

/// A set of dead added wires and stuck switches, keyed by
/// `(side, bank, node)` coordinates matching [`crate::dcu::Endpoint`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFaults {
    /// Broken horizontal wires, keyed by the *lower-numbered* endpoint of
    /// the `(node, node + 1)` pair.
    horizontal: BTreeSet<(usize, usize, usize)>,
    /// Broken vertical wires, keyed by the *upper* bank of the
    /// `(bank, bank + 1)` pair.
    vertical: BTreeSet<(usize, usize, usize)>,
    /// Switches frozen in the parked (parent) position: every added wire
    /// at the node is unusable, though tree traffic still flows.
    stuck: BTreeSet<(usize, usize, usize)>,
    /// Severed H-tree parent links, keyed by the *child* node. Tree wiring
    /// is normally repaired by DRAM-style redundancy; this models the
    /// beyond-repair case, which can fully partition an endpoint (leaves
    /// carry no added wires), so routing returns a typed error instead of
    /// a detour.
    tree: BTreeSet<(usize, usize, usize)>,
}

impl LinkFaults {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the set holds no faults at all.
    pub fn is_empty(&self) -> bool {
        self.horizontal.is_empty()
            && self.vertical.is_empty()
            && self.stuck.is_empty()
            && self.tree.is_empty()
    }

    /// Severs the horizontal wire between `node` and `node + 1`.
    pub fn break_horizontal(&mut self, side: usize, bank: usize, node: usize) -> &mut Self {
        self.horizontal.insert((side, bank, node));
        self
    }

    /// Severs the vertical wire between `bank` and `bank + 1` at `node`.
    pub fn break_vertical(&mut self, side: usize, bank: usize, node: usize) -> &mut Self {
        self.vertical.insert((side, bank, node));
        self
    }

    /// Freezes the switch at a node in its parked position.
    pub fn stick_switch(&mut self, side: usize, bank: usize, node: usize) -> &mut Self {
        self.stuck.insert((side, bank, node));
        self
    }

    /// Severs the H-tree wire between `node` and its parent — a
    /// beyond-redundancy tree failure. Unlike added-wire faults this can
    /// *partition* the fabric (a leaf's only wire is its parent link);
    /// routing to a partitioned endpoint returns a typed error.
    pub fn sever_tree(&mut self, side: usize, bank: usize, node: usize) -> &mut Self {
        self.tree.insert((side, bank, node));
        self
    }

    /// Whether the tree wire from `node` up to its parent is severed.
    pub fn blocks_tree(&self, side: usize, bank: usize, node: usize) -> bool {
        self.tree.contains(&(side, bank, node))
    }

    /// Count of severed tree links.
    pub fn severed_tree_links(&self) -> usize {
        self.tree.len()
    }

    /// Whether the switch at a node is frozen.
    pub fn switch_is_stuck(&self, side: usize, bank: usize, node: usize) -> bool {
        self.stuck.contains(&(side, bank, node))
    }

    /// Whether the horizontal wire `node ↔ node + 1` is unusable — severed
    /// outright, or gated by a frozen switch at either endpoint.
    pub fn blocks_horizontal(&self, side: usize, bank: usize, node: usize) -> bool {
        self.horizontal.contains(&(side, bank, node))
            || self.switch_is_stuck(side, bank, node)
            || self.switch_is_stuck(side, bank, node + 1)
    }

    /// Whether the vertical wire `bank ↔ bank + 1` at `node` is unusable.
    pub fn blocks_vertical(&self, side: usize, bank: usize, node: usize) -> bool {
        self.vertical.contains(&(side, bank, node))
            || self.switch_is_stuck(side, bank, node)
            || self.switch_is_stuck(side, bank + 1, node)
    }

    /// The union of two fault sets: everything either set severs or
    /// freezes. The recovery layer overlays its *soft* quarantines (flaky
    /// links retired by the retransmit ladder) on the hard manufacturing
    /// faults this way before rebuilding a fabric.
    pub fn union(&self, other: &LinkFaults) -> LinkFaults {
        let mut merged = self.clone();
        merged.horizontal.extend(other.horizontal.iter().copied());
        merged.vertical.extend(other.vertical.iter().copied());
        merged.stuck.extend(other.stuck.iter().copied());
        merged.tree.extend(other.tree.iter().copied());
        merged
    }

    /// Count of broken wires (horizontal + vertical, excluding stuck
    /// switches).
    pub fn broken_wires(&self) -> usize {
        self.horizontal.len() + self.vertical.len()
    }

    /// Count of frozen switches.
    pub fn stuck_switches(&self) -> usize {
        self.stuck.len()
    }

    /// The frozen switch coordinates, ascending.
    pub fn stuck_nodes(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.stuck.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_blocks_nothing() {
        let f = LinkFaults::none();
        assert!(f.is_empty());
        assert!(!f.blocks_horizontal(0, 0, 4));
        assert!(!f.blocks_vertical(0, 1, 3));
        assert_eq!(f.broken_wires(), 0);
    }

    #[test]
    fn broken_wires_block_their_edge_only() {
        let mut f = LinkFaults::none();
        f.break_horizontal(0, 0, 4).break_vertical(0, 1, 3);
        assert!(f.blocks_horizontal(0, 0, 4));
        assert!(!f.blocks_horizontal(0, 0, 5));
        assert!(!f.blocks_horizontal(0, 1, 4));
        assert!(f.blocks_vertical(0, 1, 3));
        assert!(!f.blocks_vertical(0, 0, 3));
        assert_eq!(f.broken_wires(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn stuck_switch_blocks_every_added_wire_at_its_node() {
        let mut f = LinkFaults::none();
        f.stick_switch(0, 1, 5);
        // Horizontal wires on either side of node 5…
        assert!(f.blocks_horizontal(0, 1, 5));
        assert!(f.blocks_horizontal(0, 1, 4));
        // …and vertical wires above and below bank 1 at node 5.
        assert!(f.blocks_vertical(0, 1, 5));
        assert!(f.blocks_vertical(0, 0, 5));
        // Other nodes unaffected.
        assert!(!f.blocks_horizontal(0, 1, 6));
        assert_eq!(f.stuck_switches(), 1);
        assert_eq!(f.broken_wires(), 0);
    }
}
