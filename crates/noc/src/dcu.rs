//! The 3D data-wire connection unit (3DCU) and 3DCU pairs (Fig. 12–13).
//!
//! A 3DCU stacks three banks. On top of each bank's H-tree it adds:
//!
//! * **horizontal wires** between adjacent same-level routing nodes whose
//!   parents differ (the MAERI-style shortcut of Fig. 12b);
//! * **vertical wires** between corresponding routing nodes of adjacent
//!   banks, as wide as the wire to their parent node.
//!
//! Switches gate the added wires: outer-bank nodes carry one switch
//! (connect parent *or* horizontal *or* vertical), middle-bank nodes carry
//! two (may face up and down simultaneously). In *Smode* the added wires
//! are parked and the banks behave as plain H-tree memory reachable over
//! the shared bus; in *Cmode* routing may use every wire.
//!
//! A [`DcuPair`] joins two 3DCUs with direct bypass links between their
//! top banks (B1↔B4) and bottom banks (B3↔B6), letting generator outputs
//! reach the discriminator without touching the bus or CPU (Fig. 13).

use crate::config::NocConfig;
use crate::fault::LinkFaults;
use crate::htree::HTree;

/// Interconnect operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Static H-tree connections; added wires parked (normal memory).
    Smode,
    /// Dynamically reconfigured connections for a dataflow.
    Cmode,
}

/// Classification of a routing edge (used for statistics and switch
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Original H-tree parent-child wire.
    Tree,
    /// Added same-level horizontal wire.
    Horizontal,
    /// Added inter-bank vertical wire.
    Vertical,
    /// Direct bypass link between paired 3DCUs.
    Bypass,
    /// Shared bus through the memory controller.
    Bus,
}

/// A location in the fabric: a routing node or tile leaf of some bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// 3DCU side: 0 = generator-side unit, 1 = discriminator-side unit.
    /// Always 0 inside a single [`ThreeDcu`].
    pub side: usize,
    /// Bank within the 3DCU (0 = top, 1 = middle, 2 = bottom).
    pub bank: usize,
    /// Heap node id (leaves are `tiles .. 2*tiles`).
    pub node: usize,
}

impl Endpoint {
    /// Endpoint at a tile leaf of side 0.
    pub fn tile(bank: usize, tile: usize) -> Self {
        Endpoint {
            side: 0,
            bank,
            node: 16 + tile,
        }
    }

    /// Endpoint at a tile leaf of an explicit side (for [`DcuPair`]).
    pub fn pair_tile(side: usize, bank: usize, tile: usize) -> Self {
        Endpoint {
            side,
            bank,
            node: 16 + tile,
        }
    }
}

/// Typed routing failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteError {
    /// No path connects the endpoints: the fabric is partitioned (only
    /// possible when tree links are severed beyond redundancy — added-wire
    /// faults alone always leave the H-tree fallback).
    Unreachable {
        /// Source endpoint.
        from: Endpoint,
        /// Destination endpoint.
        to: Endpoint,
        /// Mode the route was attempted in.
        mode: Mode,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unreachable { from, to, mode } => write!(
                f,
                "no route from (s{},b{},n{}) to (s{},b{},n{}) in {mode:?}: fabric partitioned",
                from.side, from.bank, from.node, to.side, to.bank, to.node
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed path with its aggregate cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Edge kinds traversed, in order.
    pub edges: Vec<EdgeKind>,
    /// Base path latency (head flit), ns.
    pub latency_ns: f64,
    /// Energy per 64-byte access across the whole path, pJ.
    pub energy_pj_per_access: f64,
    /// Narrowest wire on the path, bits.
    pub min_width_bits: u32,
    /// Endpoint nodes whose switches the added edges occupy, as
    /// `(side, bank, node)` triples.
    pub switch_nodes: Vec<(usize, usize, usize)>,
}

impl Route {
    /// A zero-cost route (source equals destination).
    pub fn nil() -> Self {
        Route {
            edges: Vec::new(),
            latency_ns: 0.0,
            energy_pj_per_access: 0.0,
            min_width_bits: u32::MAX,
            switch_nodes: Vec::new(),
        }
    }

    /// Hop count.
    pub fn hops(&self) -> usize {
        self.edges.len()
    }

    /// Whether the route leaves the fabric through the shared bus.
    pub fn uses_bus(&self) -> bool {
        self.edges.contains(&EdgeKind::Bus)
    }

    /// Latency and energy to move `values` 16-bit values along this route.
    ///
    /// H-tree routers are store-and-forward (they are memory routing
    /// nodes, not a pipelined NoC), so the serialisation cost of the
    /// message is paid at *every* hop on the narrowest wire of the path —
    /// exactly why Fig. 9's long routings hurt and the 3DCU's one-hop
    /// vertical/horizontal wires help.
    pub fn transfer(&self, values: u64, cfg: &NocConfig) -> (f64, f64) {
        if self.edges.is_empty() || values == 0 {
            return (0.0, 0.0);
        }
        let bits = values * 16;
        let width = u64::from(self.min_width_bits.min(cfg.root_width_bits));
        let flits = bits.div_ceil(width).max(1);
        let serialization = (flits - 1) as f64 * cfg.wire_cycle_ns * self.edges.len() as f64;
        let latency = self.latency_ns + serialization;
        let accesses = values.div_ceil(u64::from(cfg.values_per_access)).max(1);
        let energy = accesses as f64 * self.energy_pj_per_access;
        (latency, energy)
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    kind: EdgeKind,
    latency_ns: f64,
    energy_pj: f64,
    width_bits: u32,
}

/// The routing fabric shared by [`ThreeDcu`] (one side) and [`DcuPair`]
/// (two sides plus bypass links).
#[derive(Debug, Clone)]
struct Fabric {
    cfg: NocConfig,
    tree: HTree,
    sides: usize,
    /// Adjacency for Cmode (includes all wires) and Smode (tree + bus).
    cmode: Vec<Vec<Edge>>,
    smode: Vec<Vec<Edge>>,
}

const BANKS: usize = 3;

impl Fabric {
    fn nodes_per_bank(&self) -> usize {
        2 * self.cfg.tiles_per_bank
    }

    /// Vertex id of an endpoint. The extra final vertex is the shared bus.
    fn vertex(&self, e: Endpoint) -> usize {
        debug_assert!(e.side < self.sides, "side out of range");
        debug_assert!(e.bank < BANKS, "bank out of range");
        debug_assert!(e.node >= 1 && e.node < self.nodes_per_bank());
        (e.side * BANKS + e.bank) * self.nodes_per_bank() + e.node
    }

    fn endpoint_of(&self, v: usize) -> Option<Endpoint> {
        let npb = self.nodes_per_bank();
        if v >= self.sides * BANKS * npb {
            return None; // the bus vertex
        }
        let node = v % npb;
        let sb = v / npb;
        Some(Endpoint {
            side: sb / BANKS,
            bank: sb % BANKS,
            node,
        })
    }

    fn bus_vertex(&self) -> usize {
        self.sides * BANKS * self.nodes_per_bank()
    }

    fn vertex_count(&self) -> usize {
        self.bus_vertex() + 1
    }

    /// Builds the adjacency, omitting every added wire `faults` severs or
    /// gates behind a frozen switch. With an empty fault set the graph is
    /// identical to the pristine fabric, edge for edge.
    fn new(cfg: &NocConfig, sides: usize, faults: &LinkFaults) -> Fabric {
        let tree = HTree::new(cfg);
        let mut fabric = Fabric {
            cfg: cfg.clone(),
            tree,
            sides,
            cmode: Vec::new(),
            smode: Vec::new(),
        };
        let n = fabric.vertex_count();
        let mut cmode = vec![Vec::new(); n];
        let mut smode = vec![Vec::new(); n];
        let cfg = &fabric.cfg;
        let tree = &fabric.tree;
        let tiles = cfg.tiles_per_bank;

        let push_both =
            |adj: &mut [Vec<Edge>], a: usize, b: usize, kind, lat: f64, en: f64, width| {
                adj[a].push(Edge {
                    to: b,
                    kind,
                    latency_ns: lat,
                    energy_pj: en,
                    width_bits: width,
                });
                adj[b].push(Edge {
                    to: a,
                    kind,
                    latency_ns: lat,
                    energy_pj: en,
                    width_bits: width,
                });
            };

        for side in 0..sides {
            for bank in 0..BANKS {
                // Tree edges (omitting severed parent links — the
                // beyond-redundancy failure that can partition a leaf).
                for node in 2..2 * tiles {
                    if faults.blocks_tree(side, bank, node) {
                        continue;
                    }
                    let parent = node / 2;
                    let level = tree.level(node);
                    let a = fabric.vertex(Endpoint { side, bank, node });
                    let b = fabric.vertex(Endpoint {
                        side,
                        bank,
                        node: parent,
                    });
                    let width = cfg.width_bits_at(level - 1);
                    push_both(
                        &mut cmode,
                        a,
                        b,
                        EdgeKind::Tree,
                        cfg.hop_latency_ns,
                        cfg.hop_energy_pj,
                        width,
                    );
                    push_both(
                        &mut smode,
                        a,
                        b,
                        EdgeKind::Tree,
                        cfg.hop_latency_ns,
                        cfg.hop_energy_pj,
                        width,
                    );
                }
                // Horizontal wires between internal same-level nodes with
                // different parents (Cmode only).
                for node in 2..tiles {
                    let next = node + 1;
                    if next < tiles
                        && tree.horizontal_pair(node, next)
                        && !faults.blocks_horizontal(side, bank, node)
                    {
                        let level = tree.level(node);
                        let a = fabric.vertex(Endpoint { side, bank, node });
                        let b = fabric.vertex(Endpoint {
                            side,
                            bank,
                            node: next,
                        });
                        push_both(
                            &mut cmode,
                            a,
                            b,
                            EdgeKind::Horizontal,
                            cfg.hop_latency_ns * cfg.horizontal_latency_factor,
                            cfg.hop_energy_pj * cfg.horizontal_energy_factor,
                            cfg.width_bits_at(level.saturating_sub(1)),
                        );
                    }
                }
            }
            // Vertical wires between corresponding internal nodes of
            // adjacent banks (Cmode only).
            for bank in 0..BANKS - 1 {
                for node in 1..tiles {
                    if faults.blocks_vertical(side, bank, node) {
                        continue;
                    }
                    let level = tree.level(node);
                    let a = fabric.vertex(Endpoint { side, bank, node });
                    let b = fabric.vertex(Endpoint {
                        side,
                        bank: bank + 1,
                        node,
                    });
                    push_both(
                        &mut cmode,
                        a,
                        b,
                        EdgeKind::Vertical,
                        cfg.hop_latency_ns * cfg.vertical_latency_factor,
                        cfg.hop_energy_pj * cfg.vertical_energy_factor,
                        cfg.width_bits_at(level.saturating_sub(1)),
                    );
                }
            }
            // Bus edges from every bank's root (both modes).
            for bank in 0..BANKS {
                let root = fabric.vertex(Endpoint {
                    side,
                    bank,
                    node: 1,
                });
                let bus = fabric.bus_vertex();
                for adj in [&mut cmode, &mut smode] {
                    push_both(
                        adj,
                        root,
                        bus,
                        EdgeKind::Bus,
                        cfg.bus_latency_ns / 2.0,
                        cfg.bus_energy_pj / 2.0,
                        cfg.root_width_bits,
                    );
                }
            }
        }
        // Bypass links between paired 3DCUs: B1<->B4 (top banks) and
        // B3<->B6 (bottom banks), joined at the roots (Cmode only).
        if sides == 2 {
            for bank in [0usize, 2] {
                let a = fabric.vertex(Endpoint {
                    side: 0,
                    bank,
                    node: 1,
                });
                let b = fabric.vertex(Endpoint {
                    side: 1,
                    bank,
                    node: 1,
                });
                push_both(
                    &mut cmode,
                    a,
                    b,
                    EdgeKind::Bypass,
                    cfg.bypass_latency_ns,
                    cfg.bypass_energy_pj,
                    cfg.root_width_bits,
                );
            }
        }
        fabric.cmode = cmode;
        fabric.smode = smode;
        fabric
    }

    /// Dijkstra by latency. Small graphs (≤ ~200 vertices), so the O(V²)
    /// scan is simplest and avoids float-ordering pitfalls.
    fn route(&self, from: Endpoint, to: Endpoint, mode: Mode) -> Result<Route, RouteError> {
        let adj = match mode {
            Mode::Cmode => &self.cmode,
            Mode::Smode => &self.smode,
        };
        let (src, dst) = (self.vertex(from), self.vertex(to));
        if src == dst {
            return Ok(Route::nil());
        }
        let n = self.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(usize, Edge)>> = vec![None; n];
        let mut done = vec![false; n];
        dist[src] = 0.0;
        for _ in 0..n {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for v in 0..n {
                if !done[v] && dist[v] < best {
                    best = dist[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                break;
            }
            if u == dst {
                break;
            }
            done[u] = true;
            for e in &adj[u] {
                let nd = dist[u] + e.latency_ns;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = Some((u, *e));
                }
            }
        }
        if !dist[dst].is_finite() {
            // Dijkstra exhausted the reachable set without touching the
            // destination: the fabric is partitioned. Terminate with a
            // typed error rather than retrying or spinning.
            return Err(RouteError::Unreachable { from, to, mode });
        }
        // Reconstruct.
        let mut edges = Vec::new();
        let mut energy = 0.0;
        let mut min_width = u32::MAX;
        let mut switch_nodes = Vec::new();
        let mut v = dst;
        while v != src {
            let (u, e) = prev[v].expect("path reconstruction");
            edges.push(e.kind);
            energy += e.energy_pj;
            min_width = min_width.min(e.width_bits);
            if matches!(e.kind, EdgeKind::Horizontal | EdgeKind::Vertical) {
                for vert in [u, v] {
                    if let Some(ep) = self.endpoint_of(vert) {
                        switch_nodes.push((ep.side, ep.bank, ep.node));
                    }
                }
            }
            v = u;
        }
        edges.reverse();
        Ok(Route {
            edges,
            latency_ns: dist[dst],
            energy_pj_per_access: energy,
            min_width_bits: min_width,
            switch_nodes,
        })
    }
}

/// One 3D data-wire connection unit: three stacked banks.
#[derive(Debug, Clone)]
pub struct ThreeDcu {
    fabric: Fabric,
}

impl ThreeDcu {
    /// Builds a 3DCU for a configuration.
    pub fn new(cfg: &NocConfig) -> Self {
        Self::with_faults(cfg, &LinkFaults::none())
    }

    /// Builds a 3DCU whose added wires are degraded by `faults`: flows
    /// that would have used a severed wire reroute over the H-tree parent
    /// path (the Smode fallback) with the detour's full hop/energy cost.
    pub fn with_faults(cfg: &NocConfig, faults: &LinkFaults) -> Self {
        ThreeDcu {
            fabric: Fabric::new(cfg, 1, faults),
        }
    }

    /// The interconnect configuration.
    pub fn config(&self) -> &NocConfig {
        &self.fabric.cfg
    }

    /// Routes between two endpoints (side must be 0).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Unreachable`] when severed tree links have
    /// partitioned an endpoint off the fabric (added-wire faults alone
    /// never do — the H-tree fallback always remains).
    pub fn route(&self, from: Endpoint, to: Endpoint, mode: Mode) -> Result<Route, RouteError> {
        self.fabric.route(from, to, mode)
    }

    /// Number of switches at a node: two on the middle bank, one
    /// elsewhere ("only nodes in Bank 2 have two switches").
    pub fn switches_at(bank: usize) -> usize {
        if bank == 1 {
            2
        } else {
            1
        }
    }
}

/// Two 3DCUs joined by bypass links — the mapping unit for one GAN.
#[derive(Debug, Clone)]
pub struct DcuPair {
    fabric: Fabric,
}

impl DcuPair {
    /// Builds the pair.
    pub fn new(cfg: &NocConfig) -> Self {
        Self::with_faults(cfg, &LinkFaults::none())
    }

    /// Builds the pair over a degraded fabric (see
    /// [`ThreeDcu::with_faults`]). Bypass and bus wires are never
    /// faultable, and tree wires only through the explicit
    /// [`LinkFaults::sever_tree`] beyond-redundancy escape hatch — so
    /// added-wire faults only lengthen routes, never break reachability.
    pub fn with_faults(cfg: &NocConfig, faults: &LinkFaults) -> Self {
        DcuPair {
            fabric: Fabric::new(cfg, 2, faults),
        }
    }

    /// The interconnect configuration.
    pub fn config(&self) -> &NocConfig {
        &self.fabric.cfg
    }

    /// Routes between two endpoints of the pair.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Unreachable`] when severed tree links have
    /// partitioned an endpoint off the fabric.
    pub fn route(&self, from: Endpoint, to: Endpoint, mode: Mode) -> Result<Route, RouteError> {
        self.fabric.route(from, to, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dcu() -> ThreeDcu {
        ThreeDcu::new(&NocConfig::default())
    }

    #[test]
    fn same_tile_is_free() {
        let d = dcu();
        let r = d
            .route(Endpoint::tile(0, 3), Endpoint::tile(0, 3), Mode::Smode)
            .unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.latency_ns, 0.0);
    }

    #[test]
    fn smode_follows_the_tree() {
        let d = dcu();
        let r = d
            .route(Endpoint::tile(0, 0), Endpoint::tile(0, 15), Mode::Smode)
            .unwrap();
        assert_eq!(r.hops(), 8);
        assert!(r.edges.iter().all(|e| *e == EdgeKind::Tree));
        let cfg = NocConfig::default();
        assert!((r.latency_ns - 8.0 * cfg.hop_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn cmode_shortcuts_beat_the_tree() {
        let d = dcu();
        // Tiles 7 and 8: 8 tree hops, but horizontal wires cut across.
        let s = d
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Smode)
            .unwrap();
        let c = d
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        assert!(c.latency_ns < s.latency_ns);
        assert!(c.edges.contains(&EdgeKind::Horizontal));
    }

    #[test]
    fn vertical_hop_reaches_the_bank_below() {
        let d = dcu();
        let r = d
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Cmode,
            )
            .unwrap();
        assert!(r.edges.contains(&EdgeKind::Vertical));
        assert!(!r.uses_bus());
        // Smode must pay the bus instead.
        let s = d
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Smode,
            )
            .unwrap();
        assert!(s.uses_bus());
        assert!(s.latency_ns > r.latency_ns);
    }

    #[test]
    fn vertical_routes_record_switch_nodes() {
        let d = dcu();
        let r = d
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Cmode,
            )
            .unwrap();
        assert!(!r.switch_nodes.is_empty());
    }

    #[test]
    fn pair_bypass_avoids_the_bus() {
        let p = DcuPair::new(&NocConfig::default());
        let r = p
            .route(
                Endpoint::pair_tile(0, 0, 0),
                Endpoint::pair_tile(1, 0, 0),
                Mode::Cmode,
            )
            .unwrap();
        assert!(r.edges.contains(&EdgeKind::Bypass));
        assert!(!r.uses_bus());
        // In Smode the pair's transfer crosses the bus.
        let s = p
            .route(
                Endpoint::pair_tile(0, 0, 0),
                Endpoint::pair_tile(1, 0, 0),
                Mode::Smode,
            )
            .unwrap();
        assert!(s.uses_bus());
    }

    #[test]
    fn transfer_serialises_by_width() {
        let d = dcu();
        let r = d
            .route(Endpoint::tile(0, 0), Endpoint::tile(0, 1), Mode::Smode)
            .unwrap();
        let cfg = NocConfig::default();
        let (t_small, e_small) = r.transfer(4, &cfg);
        let (t_big, e_big) = r.transfer(4096, &cfg);
        assert!(t_big > t_small);
        assert!(e_big > e_small);
        // 4096 values * 16b over a 128-bit leaf wire = 512 flits, paid at
        // both hops of the route.
        assert!(t_big > 1000.0 * cfg.wire_cycle_ns);
    }

    #[test]
    fn zero_values_cost_nothing() {
        let d = dcu();
        let r = d
            .route(Endpoint::tile(0, 0), Endpoint::tile(0, 1), Mode::Smode)
            .unwrap();
        assert_eq!(r.transfer(0, &NocConfig::default()), (0.0, 0.0));
    }

    #[test]
    fn empty_fault_set_routes_identically() {
        let cfg = NocConfig::default();
        let clean = ThreeDcu::new(&cfg);
        let faulted = ThreeDcu::with_faults(&cfg, &LinkFaults::none());
        for (a, b) in [(0usize, 15usize), (7, 8), (3, 12)] {
            for mode in [Mode::Smode, Mode::Cmode] {
                assert_eq!(
                    clean.route(Endpoint::tile(0, a), Endpoint::tile(0, b), mode),
                    faulted.route(Endpoint::tile(0, a), Endpoint::tile(0, b), mode),
                );
            }
        }
    }

    #[test]
    fn broken_horizontal_wire_falls_back_to_the_tree() {
        let cfg = NocConfig::default();
        let clean = ThreeDcu::new(&cfg);
        let good = clean
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        assert!(good.edges.contains(&EdgeKind::Horizontal));
        // Sever one bank's horizontal wires: the router detours through a
        // *neighbouring bank's* horizontal wire via vertical hops.
        let mut partial = LinkFaults::none();
        for node in 2..cfg.tiles_per_bank {
            partial.break_horizontal(0, 0, node);
        }
        let sidestep = ThreeDcu::with_faults(&cfg, &partial)
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        assert!(sidestep.edges.contains(&EdgeKind::Vertical));
        // Sever every bank's horizontal wires: the Cmode route must fall
        // back to the H-tree parent path (Smode fallback).
        let mut faults = LinkFaults::none();
        for bank in 0..3 {
            for node in 2..cfg.tiles_per_bank {
                faults.break_horizontal(0, bank, node);
            }
        }
        let degraded = ThreeDcu::with_faults(&cfg, &faults);
        let detour = degraded
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        assert!(!detour.edges.contains(&EdgeKind::Horizontal));
        assert!(detour.latency_ns > good.latency_ns);
        assert!(detour.hops() > good.hops());
        // The detour equals the plain Smode tree route.
        let smode = degraded
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Smode)
            .unwrap();
        assert_eq!(detour.latency_ns, smode.latency_ns);
    }

    #[test]
    fn broken_vertical_wire_pays_a_longer_crossing() {
        let cfg = NocConfig::default();
        let clean = ThreeDcu::new(&cfg);
        let good = clean
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Cmode,
            )
            .unwrap();
        // Break every vertical wire between banks 0 and 1; the crossing
        // survives (bus always works) but costs more.
        let mut faults = LinkFaults::none();
        for node in 1..cfg.tiles_per_bank {
            faults.break_vertical(0, 0, node);
        }
        let degraded = ThreeDcu::with_faults(&cfg, &faults);
        let detour = degraded
            .route(
                Endpoint::tile(0, 0),
                Endpoint::pair_tile(0, 1, 0),
                Mode::Cmode,
            )
            .unwrap();
        assert!(detour.latency_ns > good.latency_ns);
        assert!(detour.energy_pj_per_access > good.energy_pj_per_access);
    }

    #[test]
    fn stuck_switch_disables_its_nodes_added_wires() {
        let cfg = NocConfig::default();
        let clean = ThreeDcu::new(&cfg);
        let good = clean
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        // Find which nodes the shortcut's switches sit on and freeze one.
        let (_, bank, node) = good.switch_nodes[0];
        let mut faults = LinkFaults::none();
        faults.stick_switch(0, bank, node);
        let degraded = ThreeDcu::with_faults(&cfg, &faults);
        let detour = degraded
            .route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode)
            .unwrap();
        assert!(detour
            .switch_nodes
            .iter()
            .all(|&(_, b, n)| (b, n) != (bank, node)));
        assert!(detour.latency_ns >= good.latency_ns);
    }

    #[test]
    fn faulted_routes_are_deterministic() {
        let cfg = NocConfig::default();
        let mut faults = LinkFaults::none();
        faults.break_horizontal(0, 0, 4).break_vertical(0, 1, 2);
        let a = ThreeDcu::with_faults(&cfg, &faults);
        let b = ThreeDcu::with_faults(&cfg, &faults);
        for t in 0..16 {
            assert_eq!(
                a.route(Endpoint::tile(0, 0), Endpoint::tile(0, t), Mode::Cmode),
                b.route(Endpoint::tile(0, 0), Endpoint::tile(0, t), Mode::Cmode),
            );
        }
    }

    #[test]
    fn switch_counts_by_bank() {
        assert_eq!(ThreeDcu::switches_at(0), 1);
        assert_eq!(ThreeDcu::switches_at(1), 2);
        assert_eq!(ThreeDcu::switches_at(2), 1);
    }
}
