//! H-tree and reconfigurable 3D-connected PIM interconnect models.
//!
//! This crate implements the paper's Sec. IV-B contribution substrate:
//!
//! * [`htree`] — the baseline H-tree of a 16-tile bank (Fig. 12a): a binary
//!   tree of multiplexing and merging routing nodes, the connection PRIME
//!   and PipeLayer use;
//! * [`dcu`] — the **3D data-wire connection unit (3DCU)**: three stacked
//!   banks with added *horizontal* wires between same-level nodes of
//!   different parents and *vertical* wires between corresponding nodes of
//!   adjacent banks, guarded by switches (one per node on the outer banks,
//!   two on the middle bank) and bypassable adders (Fig. 12b). A 3DCU is
//!   either in *Smode* (static H-tree, plain memory) or *Cmode*
//!   (reconfigured for a dataflow);
//! * [`dcu::DcuPair`] — two 3DCUs joined by direct top/bottom bypass links
//!   (Fig. 13), the unit a GAN (generator + discriminator) maps onto;
//! * [`flows`] — concurrent-flow scheduling with switch-conflict
//!   serialisation, used by the simulator to charge contention.
//!
//! # Example
//!
//! ```
//! use lergan_noc::{NocConfig, dcu::{ThreeDcu, Mode, Endpoint}};
//!
//! let cfg = NocConfig::default();
//! let dcu = ThreeDcu::new(&cfg);
//! // Tiles 7 and 8 are physically adjacent but 8 tree hops apart in Smode…
//! let far = dcu.route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Smode).unwrap();
//! // …while Cmode's horizontal wires cut straight across (Fig. 12b).
//! let near = dcu.route(Endpoint::tile(0, 7), Endpoint::tile(0, 8), Mode::Cmode).unwrap();
//! assert!(near.latency_ns < far.latency_ns);
//! ```

pub mod config;
pub mod dcu;
pub mod fault;
pub mod flows;
pub mod htree;
pub mod reduction;
pub mod switch;
pub mod transient;

pub use config::NocConfig;
pub use dcu::{DcuPair, Endpoint, Mode, Route, RouteError, ThreeDcu};
pub use fault::LinkFaults;
pub use flows::{Flow, FlowSchedule};
pub use htree::HTree;
pub use switch::{SwitchConfig, SwitchError, SwitchState};
pub use transient::{
    checked_transfer, crc32, route_wires, timeout_ns, BurstEpisode, CheckedTransfer,
    TransientFaults, TransientOutcome, WireId,
};
