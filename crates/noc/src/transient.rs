//! Transient interconnect faults: in-flight bit-flips and dropped
//! transfers on the added wires.
//!
//! [`crate::fault::LinkFaults`] models *permanent* topology damage — a
//! severed wire stays severed, and routing simply never uses it. Real
//! added wires also fail *transiently*: crosstalk on the long horizontal
//! runs, marginal TSV contacts on the vertical wires, and switch
//! metastability corrupt or drop individual transfers while the wire
//! itself remains healthy. [`TransientFaults`] models exactly that class:
//! a seeded, **stateless** hazard on every added wire a route traverses,
//! evaluated per `(transfer, attempt)` so a retransmission of the same
//! payload can succeed where the first attempt was hit.
//!
//! Determinism is the whole design: an outcome is a pure hash of
//! `(seed, wire, sequence number, attempt)`, so the same fault model
//! replayed over the same transfer sequence produces bit-identical
//! corruption — across runs and across `LERGAN_THREADS` settings — and a
//! failing chaos schedule shrinks to a seed, not a heisenbug.
//!
//! Detection is real, not oracular: [`checked_transfer`] synthesises the
//! transfer's payload words from the same seed, applies the hazard's bit
//! flips, and compares CRC-32 checksums end to end. The retransmit
//! *policy* (backoff, soft-quarantine, re-route) lives above this crate in
//! `lergan-core`; this module provides the mechanism and the costs.

use crate::config::NocConfig;
use crate::dcu::Route;
use crate::fault::LinkFaults;

/// Identity of one added wire, in the same `(side, bank, node)`
/// coordinate system as [`crate::dcu::Endpoint`] and [`LinkFaults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireId {
    /// Horizontal wire between `node` and `node + 1` (keyed by the
    /// lower-numbered endpoint, matching [`LinkFaults::blocks_horizontal`]).
    Horizontal {
        /// 3DCU side within the pair.
        side: usize,
        /// Bank the wire runs in.
        bank: usize,
        /// Lower-numbered endpoint of the `(node, node + 1)` pair.
        node: usize,
    },
    /// Vertical wire between `bank` and `bank + 1` at `node` (keyed by
    /// the lower bank, matching [`LinkFaults::blocks_vertical`]).
    Vertical {
        /// 3DCU side within the pair.
        side: usize,
        /// Lower bank of the `(bank, bank + 1)` pair.
        bank: usize,
        /// Node the wire connects across banks.
        node: usize,
    },
}

impl WireId {
    /// The added wire between two switch endpoints, if they are in fact
    /// adjacent — `None` for a malformed pair.
    pub fn between(a: (usize, usize, usize), b: (usize, usize, usize)) -> Option<WireId> {
        let (s0, b0, n0) = a;
        let (s1, b1, n1) = b;
        if s0 != s1 {
            return None;
        }
        if b0 == b1 && n0.abs_diff(n1) == 1 {
            return Some(WireId::Horizontal {
                side: s0,
                bank: b0,
                node: n0.min(n1),
            });
        }
        if n0 == n1 && b0.abs_diff(b1) == 1 {
            return Some(WireId::Vertical {
                side: s0,
                bank: b0.min(b1),
                node: n0,
            });
        }
        None
    }

    /// Records this wire as *permanently* severed in a [`LinkFaults`] set
    /// — how the recovery layer soft-quarantines a flaky link so Dijkstra
    /// routes around it.
    pub fn sever_in(&self, faults: &mut LinkFaults) {
        match *self {
            WireId::Horizontal { side, bank, node } => {
                faults.break_horizontal(side, bank, node);
            }
            WireId::Vertical { side, bank, node } => {
                faults.break_vertical(side, bank, node);
            }
        }
    }

    /// Stable per-wire key folded into the hazard hash.
    fn key(&self) -> u64 {
        let (tag, side, bank, node) = match *self {
            WireId::Horizontal { side, bank, node } => (1u64, side, bank, node),
            WireId::Vertical { side, bank, node } => (2u64, side, bank, node),
        };
        tag | ((side as u64) << 8) | ((bank as u64) << 20) | ((node as u64) << 32)
    }
}

impl std::fmt::Display for WireId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireId::Horizontal { side, bank, node } => write!(f, "H({side},{bank},{node})"),
            WireId::Vertical { side, bank, node } => write!(f, "V({side},{bank},{node})"),
        }
    }
}

/// The added wires a route traverses, in traversal order, reconstructed
/// from [`Route::switch_nodes`] (one `(u, v)` endpoint pair per
/// horizontal/vertical edge, recorded during backward path
/// reconstruction).
pub fn route_wires(route: &Route) -> Vec<WireId> {
    let mut wires: Vec<WireId> = route
        .switch_nodes
        .chunks_exact(2)
        .filter_map(|pair| WireId::between(pair[0], pair[1]))
        .collect();
    // switch_nodes is recorded destination-to-source; present the wires
    // source-to-destination so "the first wire hit" reads naturally.
    wires.reverse();
    wires
}

/// A window of elevated hazard on one wire (or on every wire), modelling
/// a flaky-link episode: a marginal contact that misbehaves for a burst
/// of transfers and then settles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstEpisode {
    /// The wire the episode afflicts, or `None` for fabric-wide flakiness
    /// (e.g. a supply-noise event).
    pub wire: Option<WireId>,
    /// First transfer sequence number inside the episode.
    pub from_seq: u64,
    /// First sequence number *past* the episode (exclusive).
    pub until_seq: u64,
    /// Per-wire bit-flip probability while the episode is active.
    pub flip_rate: f64,
    /// Per-wire drop probability while the episode is active.
    pub drop_rate: f64,
}

impl BurstEpisode {
    fn covers(&self, wire: WireId, seq: u64) -> bool {
        seq >= self.from_seq && seq < self.until_seq && self.wire.is_none_or(|w| w == wire)
    }
}

/// What the hazard did to one `(transfer, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientOutcome {
    /// Every wire on the path behaved; the payload arrived intact.
    Delivered,
    /// A wire flipped bits in flight. The CRC check catches it; the
    /// receiver must request a retransmission.
    Corrupted {
        /// The wire that corrupted the transfer.
        wire: WireId,
        /// How many payload bits flipped (1–3: within CRC-32's guaranteed
        /// detection distance at our payload sizes).
        flipped_bits: u32,
    },
    /// A wire lost the transfer outright; the receiver sees a timeout.
    Dropped {
        /// The wire that dropped the transfer.
        wire: WireId,
    },
}

/// Seeded transient-fault model over the added wires.
///
/// Rates are per-wire, per-attempt hazards: a route crossing three added
/// wires rolls the hazard three times, and the first wire that misbehaves
/// determines the outcome (drop beats flip at the same wire — a dropped
/// transfer never arrives to be CRC-checked).
#[derive(Debug, Clone, PartialEq)]
pub struct TransientFaults {
    seed: u64,
    flip_rate: f64,
    drop_rate: f64,
    bursts: Vec<BurstEpisode>,
}

impl TransientFaults {
    /// No transient hazard at all: every transfer is delivered.
    pub fn quiet() -> Self {
        Self::seeded(0, 0.0, 0.0)
    }

    /// A baseline hazard on every added wire.
    pub fn seeded(seed: u64, flip_rate: f64, drop_rate: f64) -> Self {
        TransientFaults {
            seed,
            flip_rate,
            drop_rate,
            bursts: Vec::new(),
        }
    }

    /// Adds a flaky-link burst episode.
    pub fn with_burst(mut self, burst: BurstEpisode) -> Self {
        self.bursts.push(burst);
        self
    }

    /// The seed the model was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether no transfer can ever be corrupted or dropped.
    pub fn is_quiet(&self) -> bool {
        self.flip_rate == 0.0
            && self.drop_rate == 0.0
            && self
                .bursts
                .iter()
                .all(|b| b.flip_rate == 0.0 && b.drop_rate == 0.0)
    }

    /// Effective `(flip, drop)` rates for `wire` at sequence number `seq`:
    /// the baseline, raised by any burst episode covering the wire.
    pub fn rates_for(&self, wire: WireId, seq: u64) -> (f64, f64) {
        let mut flip = self.flip_rate;
        let mut drop = self.drop_rate;
        for b in &self.bursts {
            if b.covers(wire, seq) {
                flip = flip.max(b.flip_rate);
                drop = drop.max(b.drop_rate);
            }
        }
        (flip, drop)
    }

    /// A uniform draw in `[0, 1)`, pure in `(seed, wire, seq, attempt,
    /// salt)` — no RNG state anywhere, so outcomes are replayable and
    /// independent of evaluation order.
    fn unit(&self, wire: WireId, seq: u64, attempt: u32, salt: u64) -> f64 {
        let x = splitmix(
            self.seed
                .wrapping_add(wire.key().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(u64::from(attempt).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
                .wrapping_add(salt),
        );
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The hazard's verdict on attempt `attempt` of transfer `seq` along
    /// `route`. Walks the route's added wires in traversal order; the
    /// first misbehaving wire decides.
    pub fn outcome(&self, route: &Route, seq: u64, attempt: u32) -> TransientOutcome {
        if self.is_quiet() {
            return TransientOutcome::Delivered;
        }
        for wire in route_wires(route) {
            let (flip, drop) = self.rates_for(wire, seq);
            if drop > 0.0 && self.unit(wire, seq, attempt, 0x0D0D) < drop {
                return TransientOutcome::Dropped { wire };
            }
            if flip > 0.0 && self.unit(wire, seq, attempt, 0xF11F) < flip {
                let bits = 1 + (splitmix(
                    self.seed
                        .wrapping_add(wire.key())
                        .wrapping_add(seq)
                        .wrapping_add(u64::from(attempt) << 17)
                        .wrapping_add(0xB175),
                ) % 3) as u32;
                return TransientOutcome::Corrupted {
                    wire,
                    flipped_bits: bits,
                };
            }
        }
        TransientOutcome::Delivered
    }
}

/// SplitMix64 finalizer: the avalanche at the heart of every hazard draw.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// CRC-32 (reflected, polynomial `0xEDB88320` — the IEEE 802.3 CRC) over
/// a slice of 16-bit payload words, little-endian byte order.
///
/// At our capped payload sizes (≤ [`CRC_PAYLOAD_CAP`] words = 8 KiB) this
/// CRC has Hamming distance 4: every 1-, 2- and 3-bit corruption is
/// guaranteed detected, which covers the whole [`TransientOutcome::
/// Corrupted`] range by construction.
pub fn crc32(words: &[u16]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for w in words {
        for byte in w.to_le_bytes() {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= 0xEDB8_8320;
                }
            }
        }
    }
    !crc
}

/// Payload-size cap (16-bit words) for CRC modelling: large transfers are
/// checksummed per 8 KiB frame in hardware, and one frame is all the
/// model needs to decide detection.
pub const CRC_PAYLOAD_CAP: u64 = 4096;

/// The seeded payload words of transfer `seq` (capped at
/// [`CRC_PAYLOAD_CAP`]): real bytes for the CRC to checksum, derived from
/// the transfer identity so sender and receiver agree without shared
/// state.
pub fn payload_words(seed: u64, seq: u64, values: u64) -> Vec<u16> {
    let n = values.min(CRC_PAYLOAD_CAP) as usize;
    (0..n)
        .map(|i| {
            let x = splitmix(
                seed.wrapping_add(seq.wrapping_mul(0xA0761D6478BD642F))
                    .wrapping_add((i as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)),
            );
            (x >> 21) as u16
        })
        .collect()
}

/// One CRC-checked transfer attempt: what arrived, whether the CRC
/// accepted it, and what the attempt cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckedTransfer {
    /// What the hazard did to this attempt.
    pub outcome: TransientOutcome,
    /// Whether any payload arrived at all (false on a drop).
    pub delivered: bool,
    /// Whether the receiver's CRC matched the sender's. Only meaningful
    /// when `delivered`; a dropped transfer reports `false`.
    pub crc_ok: bool,
    /// Simulated latency of the attempt, ns. A delivered (or corrupted —
    /// the receiver still clocks the bits in) transfer pays the route's
    /// serialised transfer latency; a drop pays the receiver's timeout,
    /// [`timeout_ns`] of the same route.
    pub latency_ns: f64,
    /// Energy charged to the attempt, pJ. Corrupted and dropped attempts
    /// still drove the wires.
    pub energy_pj: f64,
}

/// The receiver's timeout for a transfer of `values` words along `route`:
/// twice the clean serialised transfer latency — one transfer time of
/// grace beyond the expected arrival before the receiver declares the
/// attempt lost.
pub fn timeout_ns(route: &Route, values: u64, cfg: &NocConfig) -> f64 {
    let (latency, _) = route.transfer(values, cfg);
    2.0 * latency
}

/// Performs one CRC-checked attempt of transfer `seq` along `route`.
///
/// The payload is synthesised from `(payload seed, seq)`, the hazard's
/// bit flips are applied to the received copy, and detection is an
/// honest CRC-32 comparison — not a flag smuggled out of the fault model.
pub fn checked_transfer(
    route: &Route,
    values: u64,
    cfg: &NocConfig,
    faults: &TransientFaults,
    seq: u64,
    attempt: u32,
) -> CheckedTransfer {
    let (latency, energy) = route.transfer(values, cfg);
    let outcome = faults.outcome(route, seq, attempt);
    match outcome {
        TransientOutcome::Delivered => CheckedTransfer {
            outcome,
            delivered: true,
            crc_ok: true,
            latency_ns: latency,
            energy_pj: energy,
        },
        TransientOutcome::Corrupted { wire, flipped_bits } => {
            let sent = payload_words(faults.seed, seq, values);
            let sent_crc = crc32(&sent);
            let mut received = sent;
            let total_bits = received.len() as u64 * 16;
            for k in 0..u64::from(flipped_bits) {
                // Distinct bit positions: stride by a unit offset per flip
                // so two flips never cancel.
                let h = splitmix(
                    faults
                        .seed
                        .wrapping_add(wire.key())
                        .wrapping_add(seq.wrapping_mul(0x2545_F491_4F6C_DD1D))
                        .wrapping_add(u64::from(attempt) << 13)
                        .wrapping_add(k << 40)
                        .wrapping_add(0xC0DE),
                );
                let bit = (h % total_bits.max(1) + k) % total_bits.max(1);
                let word = (bit / 16) as usize;
                received[word] ^= 1 << (bit % 16);
            }
            CheckedTransfer {
                outcome,
                delivered: true,
                crc_ok: crc32(&received) == sent_crc,
                latency_ns: latency,
                energy_pj: energy,
            }
        }
        TransientOutcome::Dropped { .. } => CheckedTransfer {
            outcome,
            delivered: false,
            crc_ok: false,
            latency_ns: timeout_ns(route, values, cfg),
            energy_pj: energy,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcu::{DcuPair, Endpoint, Mode};

    fn wired_route() -> Route {
        // Bank 0 → bank 2 on one side crosses two vertical added wires.
        DcuPair::new(&NocConfig::default())
            .route(Endpoint::tile(0, 0), Endpoint::pair_tile(0, 2, 0), Mode::Cmode)
            .unwrap()
    }

    #[test]
    fn route_wires_reconstructs_added_wires() {
        let route = wired_route();
        let wires = route_wires(&route);
        assert!(!wires.is_empty());
        assert!(wires
            .iter()
            .all(|w| matches!(w, WireId::Vertical { .. } | WireId::Horizontal { .. })));
        // A pure-tree route has no added wires to affect.
        let tree = DcuPair::new(&NocConfig::default())
            .route(Endpoint::tile(0, 0), Endpoint::tile(0, 15), Mode::Smode)
            .unwrap();
        assert!(route_wires(&tree).is_empty());
    }

    #[test]
    fn quiet_model_always_delivers() {
        let route = wired_route();
        let faults = TransientFaults::quiet();
        for seq in 0..64 {
            assert_eq!(faults.outcome(&route, seq, 1), TransientOutcome::Delivered);
        }
    }

    #[test]
    fn outcomes_are_deterministic_and_attempt_dependent() {
        let route = wired_route();
        let faults = TransientFaults::seeded(7, 0.4, 0.1);
        let a: Vec<_> = (0..200).map(|s| faults.outcome(&route, s, 1)).collect();
        let b: Vec<_> = (0..200).map(|s| faults.outcome(&route, s, 1)).collect();
        assert_eq!(a, b, "same (seed, seq, attempt) must replay identically");
        // Retransmissions re-roll the hazard: some first-attempt failure
        // must succeed on a later attempt.
        let healed = (0..200).any(|s| {
            faults.outcome(&route, s, 1) != TransientOutcome::Delivered
                && (2..6).any(|att| faults.outcome(&route, s, att) == TransientOutcome::Delivered)
        });
        assert!(healed, "no retransmission ever succeeded at 40% flip rate");
    }

    #[test]
    fn burst_episode_raises_the_hazard_only_inside_its_window() {
        let route = wired_route();
        let calm = TransientFaults::seeded(3, 0.0, 0.0);
        let bursty = calm.clone().with_burst(BurstEpisode {
            wire: None,
            from_seq: 50,
            until_seq: 60,
            flip_rate: 0.9,
            drop_rate: 0.0,
        });
        assert!(calm.is_quiet());
        assert!(!bursty.is_quiet());
        for seq in 0..50 {
            assert_eq!(bursty.outcome(&route, seq, 1), TransientOutcome::Delivered);
        }
        let hits = (50..60)
            .filter(|&s| bursty.outcome(&route, s, 1) != TransientOutcome::Delivered)
            .count();
        assert!(hits >= 5, "90% burst hazard barely fired: {hits}/10");
        for seq in 60..110 {
            assert_eq!(bursty.outcome(&route, seq, 1), TransientOutcome::Delivered);
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // "123456789" as bytes → 0xCBF43926 (the universal CRC-32 check
        // value). Our input is u16 words, so pack the bytes LE.
        let bytes = b"123456789";
        let words: Vec<u16> = bytes
            .chunks(2)
            .map(|c| u16::from_le_bytes([c[0], *c.get(1).unwrap_or(&0)]))
            .collect();
        // Packing appends a zero byte (odd input length), so compare
        // against a straight bitwise reference over the padded bytes.
        let mut crc: u32 = 0xFFFF_FFFF;
        for w in &words {
            for byte in w.to_le_bytes() {
                crc ^= u32::from(byte);
                for _ in 0..8 {
                    let lsb = crc & 1;
                    crc >>= 1;
                    if lsb != 0 {
                        crc ^= 0xEDB8_8320;
                    }
                }
            }
        }
        assert_eq!(crc32(&words), !crc);
        // And the exact check value on an even-length prefix.
        let even: Vec<u16> = b"12345678"
            .chunks(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(crc32(&even), 0x9AE0_DAAF);
    }

    #[test]
    fn crc_detects_every_injected_corruption() {
        let route = wired_route();
        let cfg = NocConfig::default();
        let faults = TransientFaults::seeded(11, 0.5, 0.0);
        let mut corrupted = 0;
        for seq in 0..300 {
            let t = checked_transfer(&route, 256, &cfg, &faults, seq, 1);
            match t.outcome {
                TransientOutcome::Corrupted { .. } => {
                    corrupted += 1;
                    assert!(t.delivered);
                    assert!(!t.crc_ok, "CRC-32 missed a 1–3 bit corruption at seq {seq}");
                }
                TransientOutcome::Delivered => assert!(t.crc_ok),
                TransientOutcome::Dropped { .. } => unreachable!("drop rate is zero"),
            }
        }
        assert!(corrupted > 50, "hazard barely fired: {corrupted}/300");
    }

    #[test]
    fn drops_cost_the_timeout_not_the_transfer() {
        let route = wired_route();
        let cfg = NocConfig::default();
        let faults = TransientFaults::seeded(5, 0.0, 1.0);
        let t = checked_transfer(&route, 256, &cfg, &faults, 0, 1);
        assert!(matches!(t.outcome, TransientOutcome::Dropped { .. }));
        assert!(!t.delivered && !t.crc_ok);
        let (clean_lat, _) = route.transfer(256, &cfg);
        assert!((t.latency_ns - 2.0 * clean_lat).abs() < 1e-9);
    }

    #[test]
    fn severing_a_wire_matches_link_fault_coordinates() {
        let mut faults = LinkFaults::none();
        WireId::Horizontal {
            side: 0,
            bank: 1,
            node: 4,
        }
        .sever_in(&mut faults);
        WireId::Vertical {
            side: 1,
            bank: 0,
            node: 8,
        }
        .sever_in(&mut faults);
        assert!(faults.blocks_horizontal(0, 1, 4));
        assert!(faults.blocks_vertical(1, 0, 8));
        assert_eq!(faults.broken_wires(), 2);
    }
}
