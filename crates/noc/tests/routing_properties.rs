//! Property tests for the interconnect: route existence, symmetry, mode
//! dominance and transfer-cost monotonicity.

use lergan_noc::{DcuPair, Endpoint, Mode, NocConfig, ThreeDcu};
use proptest::prelude::*;

fn endpoint() -> impl Strategy<Value = Endpoint> {
    (0usize..3, 0usize..16).prop_map(|(bank, tile)| Endpoint::pair_tile(0, bank, tile))
}

fn pair_endpoint() -> impl Strategy<Value = Endpoint> {
    (0usize..2, 0usize..3, 0usize..16)
        .prop_map(|(side, bank, tile)| Endpoint::pair_tile(side, bank, tile))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_tile_pairs_are_routable(a in endpoint(), b in endpoint()) {
        let dcu = ThreeDcu::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            let r = dcu.route(a, b, mode);
            prop_assert!(r.is_some(), "{a:?} -> {b:?} unroutable in {mode:?}");
        }
    }

    #[test]
    fn routes_are_symmetric_in_cost(a in endpoint(), b in endpoint()) {
        let dcu = ThreeDcu::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            let fwd = dcu.route(a, b, mode).unwrap();
            let bwd = dcu.route(b, a, mode).unwrap();
            prop_assert!((fwd.latency_ns - bwd.latency_ns).abs() < 1e-9);
            prop_assert_eq!(fwd.hops(), bwd.hops());
        }
    }

    #[test]
    fn cmode_never_loses_to_smode(a in endpoint(), b in endpoint()) {
        // Cmode's graph is a superset of Smode's, so the best route can
        // only improve.
        let dcu = ThreeDcu::new(&NocConfig::default());
        let s = dcu.route(a, b, Mode::Smode).unwrap();
        let c = dcu.route(a, b, Mode::Cmode).unwrap();
        prop_assert!(c.latency_ns <= s.latency_ns + 1e-9);
    }

    #[test]
    fn transfer_cost_is_monotone_in_values(a in endpoint(), b in endpoint(), v in 1u64..100_000) {
        let cfg = NocConfig::default();
        let dcu = ThreeDcu::new(&cfg);
        let r = dcu.route(a, b, Mode::Cmode).unwrap();
        let (t1, e1) = r.transfer(v, &cfg);
        let (t2, e2) = r.transfer(v * 2, &cfg);
        prop_assert!(t2 >= t1);
        prop_assert!(e2 >= e1);
        if a != b {
            prop_assert!(t1 >= r.latency_ns);
        }
    }

    #[test]
    fn pair_routes_exist_across_sides(a in pair_endpoint(), b in pair_endpoint()) {
        let pair = DcuPair::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            prop_assert!(pair.route(a, b, mode).is_some());
        }
        // Cross-side Cmode routes never pay the bus: the bypass links or
        // vertical fabric always beat it.
        if a.side != b.side {
            let c = pair.route(a, b, Mode::Cmode).unwrap();
            prop_assert!(!c.uses_bus(), "{a:?}->{b:?} used the bus in Cmode");
        }
    }

    #[test]
    fn smode_routes_use_only_tree_and_bus(a in pair_endpoint(), b in pair_endpoint()) {
        use lergan_noc::dcu::EdgeKind;
        let pair = DcuPair::new(&NocConfig::default());
        let r = pair.route(a, b, Mode::Smode).unwrap();
        prop_assert!(r
            .edges
            .iter()
            .all(|e| matches!(e, EdgeKind::Tree | EdgeKind::Bus)));
        prop_assert!(r.switch_nodes.is_empty());
    }
}
