//! Property tests for the interconnect: route existence, symmetry, mode
//! dominance, transfer-cost monotonicity, and fault rerouting under
//! *combined* link faults (broken horizontal + vertical wires + frozen
//! switches at once).

use lergan_noc::{DcuPair, Endpoint, LinkFaults, Mode, NocConfig, RouteError, ThreeDcu};
use proptest::prelude::*;

fn endpoint() -> impl Strategy<Value = Endpoint> {
    (0usize..3, 0usize..16).prop_map(|(bank, tile)| Endpoint::pair_tile(0, bank, tile))
}

fn pair_endpoint() -> impl Strategy<Value = Endpoint> {
    (0usize..2, 0usize..3, 0usize..16)
        .prop_map(|(side, bank, tile)| Endpoint::pair_tile(side, bank, tile))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_tile_pairs_are_routable(a in endpoint(), b in endpoint()) {
        let dcu = ThreeDcu::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            let r = dcu.route(a, b, mode);
            prop_assert!(r.is_ok(), "{a:?} -> {b:?} unroutable in {mode:?}");
        }
    }

    #[test]
    fn routes_are_symmetric_in_cost(a in endpoint(), b in endpoint()) {
        let dcu = ThreeDcu::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            let fwd = dcu.route(a, b, mode).unwrap();
            let bwd = dcu.route(b, a, mode).unwrap();
            prop_assert!((fwd.latency_ns - bwd.latency_ns).abs() < 1e-9);
            prop_assert_eq!(fwd.hops(), bwd.hops());
        }
    }

    #[test]
    fn cmode_never_loses_to_smode(a in endpoint(), b in endpoint()) {
        // Cmode's graph is a superset of Smode's, so the best route can
        // only improve.
        let dcu = ThreeDcu::new(&NocConfig::default());
        let s = dcu.route(a, b, Mode::Smode).unwrap();
        let c = dcu.route(a, b, Mode::Cmode).unwrap();
        prop_assert!(c.latency_ns <= s.latency_ns + 1e-9);
    }

    #[test]
    fn transfer_cost_is_monotone_in_values(a in endpoint(), b in endpoint(), v in 1u64..100_000) {
        let cfg = NocConfig::default();
        let dcu = ThreeDcu::new(&cfg);
        let r = dcu.route(a, b, Mode::Cmode).unwrap();
        let (t1, e1) = r.transfer(v, &cfg);
        let (t2, e2) = r.transfer(v * 2, &cfg);
        prop_assert!(t2 >= t1);
        prop_assert!(e2 >= e1);
        if a != b {
            prop_assert!(t1 >= r.latency_ns);
        }
    }

    #[test]
    fn pair_routes_exist_across_sides(a in pair_endpoint(), b in pair_endpoint()) {
        let pair = DcuPair::new(&NocConfig::default());
        for mode in [Mode::Smode, Mode::Cmode] {
            prop_assert!(pair.route(a, b, mode).is_ok());
        }
        // Cross-side Cmode routes never pay the bus: the bypass links or
        // vertical fabric always beat it.
        if a.side != b.side {
            let c = pair.route(a, b, Mode::Cmode).unwrap();
            prop_assert!(!c.uses_bus(), "{a:?}->{b:?} used the bus in Cmode");
        }
    }

    #[test]
    fn smode_routes_use_only_tree_and_bus(a in pair_endpoint(), b in pair_endpoint()) {
        use lergan_noc::dcu::EdgeKind;
        let pair = DcuPair::new(&NocConfig::default());
        let r = pair.route(a, b, Mode::Smode).unwrap();
        prop_assert!(r
            .edges
            .iter()
            .all(|e| matches!(e, EdgeKind::Tree | EdgeKind::Bus)));
        prop_assert!(r.switch_nodes.is_empty());
    }
}

/// A random *combined* fault set over both sides of a pair: horizontal
/// breaks (internal nodes 2..15), vertical breaks (nodes 1..15, bank
/// boundaries 0/1), and frozen switches, all at once.
fn combined_faults() -> impl Strategy<Value = LinkFaults> {
    let horizontal = proptest::collection::vec((0usize..2, 0usize..3, 2usize..15), 0..12);
    let vertical = proptest::collection::vec((0usize..2, 0usize..2, 1usize..15), 0..12);
    let stuck = proptest::collection::vec((0usize..2, 0usize..3, 1usize..15), 0..4);
    (horizontal, vertical, stuck).prop_map(|(h, v, s)| {
        let mut f = LinkFaults::none();
        for (side, bank, node) in h {
            f.break_horizontal(side, bank, node);
        }
        for (side, bank, node) in v {
            f.break_vertical(side, bank, node);
        }
        for (side, bank, node) in s {
            f.stick_switch(side, bank, node);
        }
        f
    })
}

/// Reconstructs the added wires a route used from its `switch_nodes` list
/// (pushed as one `(u, v)` endpoint pair per horizontal/vertical edge) and
/// asserts none of them is blocked by `faults`.
fn assert_no_blocked_wire(
    route: &lergan_noc::Route,
    faults: &LinkFaults,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(route.switch_nodes.len() % 2, 0);
    for pair in route.switch_nodes.chunks_exact(2) {
        let (s0, b0, n0) = pair[0];
        let (s1, b1, n1) = pair[1];
        prop_assert_eq!(s0, s1, "an added wire never crosses sides");
        if b0 == b1 {
            // Horizontal wire between (node, node + 1).
            let lo = n0.min(n1);
            prop_assert_eq!(n0.max(n1), lo + 1);
            prop_assert!(
                !faults.blocks_horizontal(s0, b0, lo),
                "route used broken horizontal wire ({s0},{b0},{lo})"
            );
        } else {
            // Vertical wire between (bank, bank + 1) at the same node.
            prop_assert_eq!(n0, n1);
            let lo = b0.min(b1);
            prop_assert_eq!(b0.max(b1), lo + 1);
            prop_assert!(
                !faults.blocks_vertical(s0, lo, n0),
                "route used broken vertical wire ({s0},{lo},{n0})"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn combined_faults_never_break_reachability(
        faults in combined_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
    ) {
        // Added-wire faults (in any combination) leave the H-tree + bus
        // fallback intact: every pair stays routable in both modes.
        let pair = DcuPair::with_faults(&NocConfig::default(), &faults);
        for mode in [Mode::Smode, Mode::Cmode] {
            prop_assert!(
                pair.route(a, b, mode).is_ok(),
                "{a:?} -> {b:?} unroutable in {mode:?} under {faults:?}"
            );
        }
    }

    #[test]
    fn detours_never_traverse_broken_wires(
        faults in combined_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
    ) {
        let pair = DcuPair::with_faults(&NocConfig::default(), &faults);
        let route = pair.route(a, b, Mode::Cmode).unwrap();
        assert_no_blocked_wire(&route, &faults)?;
    }

    #[test]
    fn faulted_detours_cost_at_least_the_clean_route(
        faults in combined_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
    ) {
        // Removing edges can only lengthen a shortest path.
        let cfg = NocConfig::default();
        let clean = DcuPair::new(&cfg).route(a, b, Mode::Cmode).unwrap();
        let detour = DcuPair::with_faults(&cfg, &faults)
            .route(a, b, Mode::Cmode)
            .unwrap();
        prop_assert!(detour.latency_ns >= clean.latency_ns - 1e-9);
    }

    #[test]
    fn partitioned_fabric_is_a_typed_error(
        faults in combined_faults(),
        bank in 0usize..3,
        tile in 0usize..16,
        other in 0usize..16,
    ) {
        // Severing a leaf's only wire (its tree parent link) partitions
        // that tile no matter which added-wire faults also apply; routing
        // must return the typed error, not loop or panic.
        prop_assume!(tile != other);
        let mut faults = faults;
        faults.sever_tree(0, bank, 16 + tile);
        let dcu = ThreeDcu::with_faults(&NocConfig::default(), &faults);
        let from = Endpoint::pair_tile(0, bank, other);
        let to = Endpoint::pair_tile(0, bank, tile);
        for mode in [Mode::Smode, Mode::Cmode] {
            let err = dcu.route(from, to, mode).unwrap_err();
            prop_assert_eq!(err, RouteError::Unreachable { from, to, mode });
        }
        // The rest of the fabric still routes around the lost leaf.
        prop_assert!(dcu
            .route(
                Endpoint::pair_tile(0, bank, other),
                Endpoint::pair_tile(0, (bank + 1) % 3, other),
                Mode::Cmode
            )
            .is_ok());
    }
}
