//! Property tests stacking the *transient* fault model on top of the
//! *permanent* link faults: a fabric can have broken wires and frozen
//! switches (Dijkstra must route around them) while the surviving wires
//! are simultaneously flaky (CRC-checked transfers may corrupt or drop).
//!
//! The standing contract: routing either succeeds — and then every
//! checked transfer over the route is bit-deterministic and names only
//! wires the route actually crossed — or fails with the typed
//! [`RouteError`]; never a panic, never an outcome that depends on
//! evaluation order.

use lergan_noc::{
    checked_transfer, route_wires, timeout_ns, BurstEpisode, DcuPair, Endpoint, LinkFaults, Mode,
    NocConfig, RouteError, ThreeDcu, TransientFaults, TransientOutcome,
};
use proptest::prelude::*;

fn pair_endpoint() -> impl Strategy<Value = Endpoint> {
    (0usize..2, 0usize..3, 0usize..16)
        .prop_map(|(side, bank, tile)| Endpoint::pair_tile(side, bank, tile))
}

/// A random combined *permanent* fault set (same shape as the PR 2
/// routing properties): horizontal breaks, vertical breaks and frozen
/// switches, all at once.
fn permanent_faults() -> impl Strategy<Value = LinkFaults> {
    let horizontal = proptest::collection::vec((0usize..2, 0usize..3, 2usize..15), 0..12);
    let vertical = proptest::collection::vec((0usize..2, 0usize..2, 1usize..15), 0..12);
    let stuck = proptest::collection::vec((0usize..2, 0usize..3, 1usize..15), 0..4);
    (horizontal, vertical, stuck).prop_map(|(h, v, s)| {
        let mut f = LinkFaults::none();
        for (side, bank, node) in h {
            f.break_horizontal(side, bank, node);
        }
        for (side, bank, node) in v {
            f.break_vertical(side, bank, node);
        }
        for (side, bank, node) in s {
            f.stick_switch(side, bank, node);
        }
        f
    })
}

/// A random *transient* fault model: seeded rates, optionally with a
/// fabric-wide burst window.
fn transient_faults() -> impl Strategy<Value = TransientFaults> {
    (
        0u64..u64::MAX,
        0.0f64..0.9,
        0.0f64..0.5,
        (0u64..2, 0u64..8, 1u64..12, 0.5f64..1.0),
    )
        .prop_map(|(seed, flip, drop, (bursty, from, len, rate))| {
            let base = TransientFaults::seeded(seed, flip, drop);
            if bursty == 0 {
                base
            } else {
                base.with_burst(BurstEpisode {
                    wire: None,
                    from_seq: from,
                    until_seq: from + len,
                    flip_rate: rate,
                    drop_rate: rate / 2.0,
                })
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stacked_faults_transfer_bit_deterministically(
        hard in permanent_faults(),
        flaky in transient_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
        seq in 0u64..16,
        attempt in 1u32..5,
        values in 1u64..5000,
    ) {
        // Broken wires and flaky wires at once: routing still succeeds
        // (added-wire faults never partition the tree+bus fallback), and
        // replaying the same (seq, attempt) yields the same outcome,
        // latency bits and energy bits — no hidden RNG state.
        let cfg = NocConfig::default();
        let pair = DcuPair::with_faults(&cfg, &hard);
        let route = pair.route(a, b, Mode::Cmode).unwrap();
        let first = checked_transfer(&route, values, &cfg, &flaky, seq, attempt);
        let replay = checked_transfer(&route, values, &cfg, &flaky, seq, attempt);
        prop_assert_eq!(first.outcome, replay.outcome);
        prop_assert_eq!(first.delivered, replay.delivered);
        prop_assert_eq!(first.crc_ok, replay.crc_ok);
        prop_assert_eq!(first.latency_ns.to_bits(), replay.latency_ns.to_bits());
        prop_assert_eq!(first.energy_pj.to_bits(), replay.energy_pj.to_bits());
    }

    #[test]
    fn transient_outcomes_name_only_wires_on_the_route(
        hard in permanent_faults(),
        flaky in transient_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
        seq in 0u64..16,
        attempt in 1u32..5,
    ) {
        // The hazard can only blame a wire the route actually crossed —
        // and a permanently broken wire is never on a route, so it can
        // never also be the one that "flaked".
        let cfg = NocConfig::default();
        let pair = DcuPair::with_faults(&cfg, &hard);
        let route = pair.route(a, b, Mode::Cmode).unwrap();
        let wires = route_wires(&route);
        let transfer = checked_transfer(&route, 256, &cfg, &flaky, seq, attempt);
        match transfer.outcome {
            TransientOutcome::Delivered => {
                prop_assert!(transfer.delivered && transfer.crc_ok);
            }
            TransientOutcome::Corrupted { wire, flipped_bits } => {
                prop_assert!(wires.contains(&wire), "{wire} not on route");
                prop_assert!((1..=3).contains(&flipped_bits));
                prop_assert!(transfer.delivered);
                prop_assert!(!transfer.crc_ok, "CRC must catch 1-3 flipped bits");
            }
            TransientOutcome::Dropped { wire } => {
                prop_assert!(wires.contains(&wire), "{wire} not on route");
                prop_assert!(!transfer.delivered && !transfer.crc_ok);
                let timeout = timeout_ns(&route, 256, &cfg);
                prop_assert_eq!(transfer.latency_ns.to_bits(), timeout.to_bits());
            }
        }
    }

    #[test]
    fn quiet_transients_cost_exactly_the_clean_transfer(
        hard in permanent_faults(),
        a in pair_endpoint(),
        b in pair_endpoint(),
        values in 1u64..5000,
    ) {
        // The quiet model over a (possibly detoured) route is a no-op:
        // same latency and energy bits as Route::transfer, always
        // delivered, CRC always clean.
        let cfg = NocConfig::default();
        let pair = DcuPair::with_faults(&cfg, &hard);
        let route = pair.route(a, b, Mode::Cmode).unwrap();
        let (latency, energy) = route.transfer(values, &cfg);
        let t = checked_transfer(&route, values, &cfg, &TransientFaults::quiet(), 0, 1);
        prop_assert_eq!(t.outcome, TransientOutcome::Delivered);
        prop_assert!(t.delivered && t.crc_ok);
        prop_assert_eq!(t.latency_ns.to_bits(), latency.to_bits());
        prop_assert_eq!(t.energy_pj.to_bits(), energy.to_bits());
    }

    #[test]
    fn partitioned_fabric_stays_a_typed_error_under_flakiness(
        hard in permanent_faults(),
        flaky in transient_faults(),
        bank in 0usize..3,
        tile in 0usize..16,
        other in 0usize..16,
    ) {
        // Transient flakiness never changes reachability: severing a
        // leaf's tree link partitions it exactly as it does on a calm
        // fabric, and the error is the same typed RouteError.
        prop_assume!(tile != other);
        let _ = &flaky; // the transient layer has no say in routing
        let mut hard = hard;
        hard.sever_tree(0, bank, 16 + tile);
        let dcu = ThreeDcu::with_faults(&NocConfig::default(), &hard);
        let from = Endpoint::pair_tile(0, bank, other);
        let to = Endpoint::pair_tile(0, bank, tile);
        let err = dcu.route(from, to, Mode::Cmode).unwrap_err();
        prop_assert_eq!(err, RouteError::Unreachable { from, to, mode: Mode::Cmode });
    }
}
