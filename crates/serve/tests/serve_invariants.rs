//! End-to-end robustness invariants of the serving runtime.
//!
//! These are the acceptance properties of the serving layer, each pinned
//! as a test:
//!
//! * **bit-identity** — a zero-fault serve reproduces every job's
//!   standalone trajectory exactly (the serving layer adds scheduling,
//!   never arithmetic);
//! * **graceful degradation** — shed rate and p99 sojourn latency are
//!   monotone non-decreasing in offered load;
//! * **zero drop** — pair quarantine re-admits queued work; every
//!   admitted job terminates, and with a healthy pair left, terminates
//!   *successfully*;
//! * **determinism** — the full report (counters, latencies, checkpoints)
//!   is identical across runs and across 1/8 worker threads.

use lergan_core::RecoveryPolicy;
use lergan_serve::job::{poisson_workload, run_standalone, run_standalone_batched, WorkloadSpec};
use lergan_serve::{PlanCache, ServeConfig, ServeReport, ServeRuntime};
use lergan_tensor::parallel::with_threads;

/// Offered-load helper: the arrival rate that keeps `rho` of the fleet
/// busy on average, derived from the fault-free iteration latency so the
/// tests stay correct if the latency model changes.
fn rate_for(rho: f64, pairs: usize, steps: u64, plans: &mut PlanCache, topology: usize) -> f64 {
    let iter_ns = plans.iteration_ns(topology).unwrap();
    let service_s = steps as f64 * iter_ns / 1e9;
    rho * pairs as f64 / service_s
}

fn workload(jobs: u64, steps: u64, rate: f64, slack: Option<f64>) -> Vec<lergan_serve::JobSpec> {
    poisson_workload(&WorkloadSpec {
        jobs,
        tenants: 3,
        topologies: vec![0],
        steps,
        seed: 0xA11CE,
        rate_jobs_per_s: rate,
        deadline_slack: slack,
    })
}

#[test]
fn zero_fault_serve_is_bit_identical_to_standalone() {
    let mut warm = PlanCache::table_v();
    let rate = rate_for(0.5, 2, 4, &mut warm, 0);
    let jobs = workload(8, 4, rate, None);
    // A fresh cache isolates this run's compile/hit accounting.
    let mut plans = PlanCache::table_v();
    let report = ServeRuntime::new(ServeConfig::pristine(2))
        .run(jobs.clone(), &mut plans)
        .unwrap();
    assert_eq!(report.completed, 8, "low-load pristine fleet finishes everything");
    assert_eq!(report.shed_total(), 0);
    assert_eq!(report.failed + report.stranded, 0);
    report.check_conservation().unwrap();
    for job in &jobs {
        let served = &report.outcomes[&job.id];
        assert_eq!(
            served,
            &run_standalone(job),
            "job {} diverged from its standalone trajectory",
            job.id
        );
    }
    // Same-topology jobs compiled once and shared the plan after that.
    assert_eq!(report.plan_misses, 1);
    assert!(report.plan_hits > 0, "plan reuse must be visible");
}

#[test]
fn batched_serve_matches_the_batched_reference_and_shares_plans() {
    let mut warm = PlanCache::table_v();
    let rate = rate_for(0.5, 2, 4, &mut warm, 0);
    let jobs = workload(8, 4, rate, None);
    let mut plans = PlanCache::table_v();
    let report = ServeRuntime::new(ServeConfig::pristine(2).with_batched_step())
        .run(jobs.clone(), &mut plans)
        .unwrap();
    assert_eq!(report.completed, 8);
    assert_eq!(report.shed_total(), 0);
    for job in &jobs {
        assert_eq!(
            &report.outcomes[&job.id],
            &run_standalone_batched(job),
            "batched job {} diverged from its batched standalone trajectory",
            job.id
        );
    }
    // Batched jobs compile nothing new: same topology key, same shared plan.
    assert_eq!(report.plan_misses, 1);
    assert!(report.plan_hits > 0, "batched plan reuse must be visible");
    // And the batched serve replays bit-identically across thread counts.
    let rerun = |threads| {
        with_threads(threads, || {
            let mut plans = PlanCache::table_v();
            ServeRuntime::new(ServeConfig::pristine(2).with_batched_step())
                .run(jobs.clone(), &mut plans)
                .unwrap()
        })
    };
    assert_eq!(report, rerun(1));
    assert_eq!(report, rerun(8));
}

#[test]
fn p99_latency_degrades_monotonically_with_load() {
    // Deep queue: nothing sheds, so rising load shows up entirely as
    // queueing delay — p99 must climb with every load step.
    let mut plans = PlanCache::table_v();
    let cfg = ServeConfig {
        admission: lergan_serve::AdmissionPolicy {
            max_queue_depth: 64,
            per_tenant_quota: 16,
        },
        ..ServeConfig::pristine(2)
    };
    let mut p99s = Vec::new();
    for rho in [0.4, 2.0, 8.0] {
        let rate = rate_for(rho, 2, 4, &mut plans, 0);
        let report = ServeRuntime::new(cfg.clone())
            .run(workload(16, 4, rate, None), &mut plans)
            .unwrap();
        report.check_conservation().unwrap();
        assert_eq!(report.shed_total(), 0, "a deep queue absorbs this burst");
        assert_eq!(report.completed, 16);
        p99s.push(report.p99_ns());
    }
    assert!(
        p99s.windows(2).all(|w| w[0] <= w[1]),
        "p99 must be monotone in load: {p99s:?}"
    );
    assert!(p99s[2] > p99s[0], "overload must actually hurt: {p99s:?}");
}

#[test]
fn shed_rate_degrades_monotonically_with_load() {
    // Bounded queue: overload converts into typed sheds. Once the queue
    // saturates, survivors' sojourn is *capped* — that is the point of
    // load shedding — so this test asserts the shed-rate half of
    // graceful degradation.
    let mut plans = PlanCache::table_v();
    let cfg = ServeConfig {
        admission: lergan_serve::AdmissionPolicy {
            max_queue_depth: 3,
            per_tenant_quota: 6,
        },
        local_queue_depth: 1,
        ..ServeConfig::pristine(2)
    };
    let mut sheds = Vec::new();
    for rho in [0.4, 2.0, 8.0] {
        let rate = rate_for(rho, 2, 4, &mut plans, 0);
        let report = ServeRuntime::new(cfg.clone())
            .run(workload(16, 4, rate, None), &mut plans)
            .unwrap();
        report.check_conservation().unwrap();
        assert_eq!(report.failed + report.stranded, 0);
        sheds.push(report.shed_rate());
    }
    assert_eq!(sheds[0], 0.0, "an underloaded fleet sheds nothing");
    assert!(
        sheds.windows(2).all(|w| w[0] <= w[1]),
        "shed rate must be monotone in load: {sheds:?}"
    );
    assert!(
        sheds[2] > 0.0,
        "an 8x-overloaded bounded queue must shed: {sheds:?}"
    );
}

#[test]
fn quarantine_readmits_queued_jobs_and_drops_nothing() {
    let mut plans = PlanCache::table_v();
    // Pair 0 keeps only 2 of 16 tiles: remap is impossible, so harsh wear
    // forces checkpoint rollbacks, and one rollback quarantines the pair.
    let cfg = ServeConfig {
        recovery: RecoveryPolicy {
            tile_kill_cells: 64,
            ..RecoveryPolicy::default()
        },
        quarantine_after_rollbacks: 1,
        dead_tiles: vec![(0, 14)],
        ..ServeConfig::pristine(3)
    }
    .with_wear(8, 1.2);
    let rate = rate_for(3.0, 3, 12, &mut plans, 0);
    let report = ServeRuntime::new(cfg)
        .run(workload(10, 12, rate, None), &mut plans)
        .unwrap();
    report.check_conservation().unwrap();
    assert!(report.quarantined_pairs >= 1, "the crippled pair must retire: {report:?}");
    assert!(
        report.requeued >= 1,
        "its queued jobs must be evacuated, not dropped: {report:?}"
    );
    assert_eq!(report.failed, 0, "healthy pairs absorb the evacuated work");
    assert_eq!(report.stranded, 0);
    assert_eq!(
        report.completed + report.shed_total(),
        report.submitted,
        "every admitted job finished: {report:?}"
    );
    assert!(report.healing.rolled_back >= 1, "quarantine was earned: {report:?}");
}

#[test]
fn dead_pair_triggers_the_retry_ladder_and_jobs_still_finish() {
    let mut plans = PlanCache::table_v();
    // Pair 0 is born with every tile dead: any job dispatched to it dies
    // instantly, retries after a capped backoff, and must complete on
    // pair 1 once pair 0 is quarantined.
    let cfg = ServeConfig {
        dead_tiles: vec![(0, 16)],
        ..ServeConfig::pristine(2)
    };
    let rate = rate_for(1.0, 2, 4, &mut plans, 0);
    let report = ServeRuntime::new(cfg)
        .run(workload(6, 4, rate, None), &mut plans)
        .unwrap();
    report.check_conservation().unwrap();
    assert!(report.job_retries >= 1, "the dead pair must kill at least one job: {report:?}");
    assert_eq!(report.quarantined_pairs, 1);
    assert_eq!(report.failed, 0, "retried jobs finish on the healthy pair");
    assert_eq!(report.stranded, 0);
    assert_eq!(report.completed, report.admitted);
    // The retried jobs' results are still bit-exact: a death restarts
    // from the seed, it never resumes corrupted state.
    for (id, ckpt) in &report.outcomes {
        let job = workload(6, 4, rate, None)
            .into_iter()
            .find(|j| j.id == *id)
            .unwrap();
        assert_eq!(ckpt, &run_standalone(&job), "job {id} corrupted by retry");
    }
}

#[test]
fn deadline_misses_are_counted_without_dropping_jobs() {
    let mut plans = PlanCache::table_v();
    // Feasible deadlines (slack > 1), but 6x overload: queue waits push
    // completions past them. Misses are counted, work still finishes.
    let rate = rate_for(6.0, 2, 4, &mut plans, 0);
    let report = ServeRuntime::new(ServeConfig::pristine(2))
        .run(workload(12, 4, rate, Some(1.5)), &mut plans)
        .unwrap();
    report.check_conservation().unwrap();
    assert!(report.deadline_misses > 0, "overload must miss deadlines: {report:?}");
    assert_eq!(report.completed + report.shed_total(), report.submitted);
}

#[test]
fn mixed_table_v_and_extended_workload_conserves_jobs() {
    // Jobs round-robin across DCGAN and both extended-grammar topologies
    // (dilated convs, skip edges): admission must treat the new rows as
    // first-class, the cache must key each topology separately, and the
    // conservation law must hold over the mixed stream.
    let mut warm = PlanCache::extended();
    let rate = rate_for(0.5, 2, 4, &mut warm, 8);
    let jobs = poisson_workload(&WorkloadSpec {
        jobs: 9,
        tenants: 3,
        topologies: vec![0, 8, 9],
        steps: 4,
        seed: 0xD11A7ED,
        rate_jobs_per_s: rate,
        deadline_slack: None,
    });
    let mut plans = PlanCache::extended();
    let report = ServeRuntime::new(ServeConfig::pristine(2))
        .run(jobs.clone(), &mut plans)
        .unwrap();
    report.check_conservation().unwrap();
    assert_eq!(report.completed, 9, "low-load pristine fleet finishes the mix");
    assert_eq!(report.shed_total(), 0);
    assert_eq!(report.failed + report.stranded, 0);
    assert_eq!(
        report.plan_misses, 3,
        "DCGAN and the two extended topologies each compile exactly once"
    );
    assert_eq!(plans.resident(), 3);
    // The serving layer still adds scheduling, never arithmetic.
    for job in &jobs {
        assert_eq!(
            &report.outcomes[&job.id],
            &run_standalone(job),
            "job {} (topology {}) diverged from standalone",
            job.id,
            job.topology
        );
    }
}

#[test]
fn serve_reports_are_bit_deterministic_across_runs_and_thread_counts() {
    let run = |threads: usize| -> ServeReport {
        with_threads(threads, || {
            let mut plans = PlanCache::table_v();
            let cfg = ServeConfig {
                dead_tiles: vec![(0, 14)],
                quarantine_after_rollbacks: 1,
                recovery: RecoveryPolicy {
                    tile_kill_cells: 64,
                    ..RecoveryPolicy::default()
                },
                ..ServeConfig::pristine(3)
            }
            .with_wear(8, 1.2)
            .with_fault_rate(0.0002);
            let rate = rate_for(2.0, 3, 10, &mut plans, 0);
            ServeRuntime::new(cfg)
                .run(workload(8, 10, rate, Some(30.0)), &mut plans)
                .unwrap()
        })
    };
    let a = run(1);
    let b = run(1);
    assert_eq!(a, b, "same-thread replay must be identical");
    let c = run(8);
    assert_eq!(a, c, "worker-thread count must not leak into the report");
    a.check_conservation().unwrap();
}
