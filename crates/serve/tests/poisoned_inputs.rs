//! Satellite regression: poisoned serving inputs must surface as typed
//! [`ServeError`]s from [`ServeRuntime::run`], never as a panic/abort.
//!
//! Before the panic audit the runtime `assert!`ed on an empty fleet and
//! indexed the plan table with whatever topology index a job carried, so
//! a malformed job could abort the whole serving process. These tests pin
//! the typed-error contract for each poisoned-input class.

use lergan_serve::job::JobSpec;
use lergan_serve::{PlanCache, ServeConfig, ServeError, ServeRuntime};

fn job(id: u64, topology: usize, arrival_ns: f64) -> JobSpec {
    JobSpec {
        id,
        tenant: 0,
        topology,
        steps: 1,
        seed: 7,
        arrival_ns,
        deadline_slack: None,
    }
}

#[test]
fn empty_fleet_is_a_typed_error_not_an_abort() {
    let mut plans = PlanCache::table_v();
    let err = ServeRuntime::new(ServeConfig::pristine(0))
        .run(vec![job(0, 0, 0.0)], &mut plans)
        .unwrap_err();
    assert!(matches!(err, ServeError::EmptyFleet), "got {err}");
}

#[test]
fn nan_arrival_is_rejected_with_the_job_id() {
    let mut plans = PlanCache::table_v();
    let err = ServeRuntime::new(ServeConfig::pristine(2))
        .run(
            vec![job(0, 0, 0.0), job(1, 0, f64::NAN)],
            &mut plans,
        )
        .unwrap_err();
    assert!(
        matches!(err, ServeError::InvalidArrival { job: 1 }),
        "got {err}"
    );
}

#[test]
fn infinite_arrival_is_rejected_like_nan() {
    let mut plans = PlanCache::table_v();
    let err = ServeRuntime::new(ServeConfig::pristine(2))
        .run(vec![job(3, 0, f64::INFINITY)], &mut plans)
        .unwrap_err();
    assert!(
        matches!(err, ServeError::InvalidArrival { job: 3 }),
        "got {err}"
    );
}

#[test]
fn out_of_table_topology_is_rejected_with_context() {
    let mut plans = PlanCache::table_v();
    let known = plans.specs().len();
    let err = ServeRuntime::new(ServeConfig::pristine(2))
        .run(vec![job(0, known + 5, 0.0)], &mut plans)
        .unwrap_err();
    match err {
        ServeError::UnknownTopology {
            job: 0,
            topology,
            known: k,
        } => {
            assert_eq!(topology, known + 5);
            assert_eq!(k, known);
        }
        other => panic!("expected UnknownTopology, got {other}"),
    }
}

#[test]
fn validation_rejects_before_any_work_is_done() {
    // A poisoned job anywhere in the batch fails the whole run up front:
    // no partial state, no admitted-then-lost work.
    let mut plans = PlanCache::table_v();
    let err = ServeRuntime::new(ServeConfig::pristine(2))
        .run(
            vec![job(0, 0, 0.0), job(1, usize::MAX, 10.0), job(2, 0, 20.0)],
            &mut plans,
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::UnknownTopology { job: 1, .. }));
    assert_eq!(plans.hits() + plans.misses(), 0, "no plan was compiled");
}
