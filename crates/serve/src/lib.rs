//! LerGAN serving: a deterministic multi-tenant serving runtime over a
//! fleet of simulated 3DCU pairs.
//!
//! Everything below this crate trains *one* GAN on *one* accelerator; the
//! ROADMAP's north star is a production-scale system serving heavy traffic.
//! This crate closes that gap with a discrete-event serving layer that is
//! robust by construction:
//!
//! * [`queue`] — **admission control and load shedding**: a bounded
//!   central queue with per-tenant in-flight quotas. Requests the fleet
//!   cannot absorb are rejected with a typed [`AdmissionError`]
//!   (`QueueFull`, `QuotaExceeded`, `DeadlineInfeasible`) instead of
//!   growing state without bound.
//! * [`job`] — job requests over the Table V benchmark topologies, each
//!   with its own seed, tenant, step budget and optional deadline; plus
//!   [`job::run_standalone`], the single-tenant reference a zero-fault
//!   serve must match **bit-exactly**.
//! * [`plan`] — [`PlanCache`]: same-topology jobs share one compiled
//!   accelerator plan (one [`lergan_core::CompiledGan`], and with it one
//!   op graph) instead of recompiling per job; hit/miss counters make the
//!   reuse observable.
//! * [`fleet`] — the simulated 3DCU pairs. Faults are **per-pair state**:
//!   each faulted pair wraps its jobs in a [`lergan_core::SelfHealingRuntime`]
//!   that heals in place, and the accumulated wear and tile kills survive
//!   from job to job via [`lergan_core::DrainedRuntime`] — one tenant's
//!   dying hardware never leaks into another pair.
//! * [`runtime`] — the deterministic event loop: Poisson arrivals, FIFO
//!   dispatch, a seeded capped-exponential retry ladder (reusing
//!   [`lergan_core::RecoveryPolicy::backoff_ns`]) for jobs killed by
//!   hardware faults, and **pair quarantine**: a pair that exhausts its
//!   recovery ladder is drained, its queued jobs re-admitted to healthy
//!   pairs — admitted work is never silently dropped.
//! * [`metrics`] — the [`ServeReport`]: throughput, p50/p99 sojourn
//!   latency, utilisation, shed/retry/requeue/quarantine counters and the
//!   per-job final checkpoints for bit-identity audits.
//!
//! Every decision in the loop is seeded and every tie deterministically
//! broken, so a sweep replays byte-identically at any worker thread count
//! — the same guarantee the training-side benches already make.
//!
//! # Example
//!
//! ```
//! use lergan_serve::{PlanCache, ServeConfig, ServeRuntime};
//! use lergan_serve::job::{poisson_workload, WorkloadSpec};
//!
//! let mut plans = PlanCache::table_v();
//! let jobs = poisson_workload(&WorkloadSpec {
//!     jobs: 4,
//!     tenants: 2,
//!     topologies: vec![0],
//!     steps: 2,
//!     seed: 7,
//!     rate_jobs_per_s: 50.0,
//!     deadline_slack: None,
//! });
//! let report = ServeRuntime::new(ServeConfig::pristine(2))
//!     .run(jobs, &mut plans)
//!     .expect("fault-free topologies compile");
//! assert_eq!(report.completed, 4);
//! assert_eq!(report.shed_total(), 0);
//! ```

pub mod fleet;
pub mod job;
pub mod metrics;
pub mod plan;
pub mod queue;
pub mod runtime;

pub use fleet::{HealingTotals, Pair};
pub use job::JobSpec;
pub use metrics::ServeReport;
pub use plan::PlanCache;
pub use queue::{AdmissionError, AdmissionPolicy, JobQueue};
pub use runtime::{ServeConfig, ServeError, ServeRuntime};
