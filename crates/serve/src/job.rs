//! Job requests and the standalone reference run.
//!
//! A job is a seeded fine-tuning request: train the shared functional
//! trainer for `steps` optimiser steps on batches derived from the job's
//! seed, on an accelerator compiled for the job's Table V topology. The
//! functional trainer is the same cheap 16-pixel DCGAN-class model the
//! recovery sweep uses — small enough that a serving sweep over dozens of
//! jobs finishes in seconds — while the *topology* still selects the
//! compiled plan and therefore the simulated per-iteration latency, so
//! mixed-topology traffic exercises real heterogeneity in service times.
//!
//! [`run_standalone`] is the robustness yardstick: the exact trajectory a
//! job produces with the whole serving layer removed. A zero-fault serve
//! must reproduce it bit-for-bit for every job ([`crate::ServeReport`]
//! keeps the final checkpoints so tests and the sweep can check).

use lergan_gan::topology::parse_network;
use lergan_gan::train::{build_trainable_with, pack_batch, Gan, GanCheckpoint, UpdateRule};
use lergan_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One training job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique, monotone id (also the deterministic tie-breaker).
    pub id: u64,
    /// Owning tenant (quota accounting unit).
    pub tenant: u32,
    /// Index into the serving plan table ([`crate::PlanCache`]).
    pub topology: usize,
    /// Optimiser steps the job trains for.
    pub steps: u64,
    /// Seed of the job's weight init, noise stream and batches.
    pub seed: u64,
    /// Arrival time on the simulated clock (ns).
    pub arrival_ns: f64,
    /// Deadline as a multiple of the best-case service time: the deadline
    /// is `arrival + slack · steps · iteration_ns`. `None` = no deadline.
    pub deadline_slack: Option<f64>,
}

/// The functional trainer of a job, fully determined by the job seed.
pub fn job_trainer(seed: u64) -> Gan {
    let g_spec = parse_network("g", "8f-(8t-4t)(3k2s)-t1", 2, 16).unwrap();
    let d_spec = parse_network("d", "(1c-8c)(3k2s)-f1", 2, 16).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let g = build_trainable_with(&g_spec, true, false, &mut rng);
    let d = build_trainable_with(&d_spec, false, false, &mut rng);
    Gan::new(g, d, 8, 0.0, seed.wrapping_add(1)).with_optimizer(UpdateRule::dcgan_adam(0.01))
}

/// Seed of the job's real-batch stream (distinct from the init stream so
/// the two never alias draws).
pub fn batch_seed(seed: u64) -> u64 {
    seed ^ 0xB47C_85EE_D5EE_D000
}

/// One real batch drawn from the stream. Retried jobs restart from step 0
/// with a fresh stream, so replays see identical data.
pub fn batch(rng: &mut StdRng) -> Vec<Tensor> {
    (0..2)
        .map(|_| {
            let v = 0.5 + (rng.gen::<f32>() - 0.5) * 0.2;
            Tensor::filled(&[1, 16, 16], v)
        })
        .collect()
}

/// One real batch packed into a single `[B, 1, 16, 16]` tensor — exactly
/// the draws of [`batch`], laid out for
/// [`lergan_gan::train::Gan::train_step_batched`]. Batched and sequential
/// jobs therefore consume the *same* data stream; only the step's internal
/// accumulation order differs.
pub fn batch_packed(rng: &mut StdRng) -> Tensor {
    pack_batch(&batch(rng))
}

/// The job's trajectory with no serving layer and no hardware at all:
/// the bit-exactness reference for fault isolation.
pub fn run_standalone(job: &JobSpec) -> GanCheckpoint {
    let mut trainer = job_trainer(job.seed);
    let mut rng = StdRng::seed_from_u64(batch_seed(job.seed));
    for _ in 0..job.steps {
        trainer.train_step(&batch(&mut rng));
    }
    trainer.checkpoint()
}

/// [`run_standalone`] through the batched train step: the bit-exactness
/// reference a batched serve ([`crate::ServeConfig`] with the batched
/// knob set) must reproduce. Deterministic across runs and worker thread
/// counts, but *not* bit-identical to [`run_standalone`] — the batched
/// step accumulates gradients through the fixed reduction tree instead of
/// sample-by-sample, a documented, deterministic difference.
///
/// # Panics
///
/// Panics if the batched step rejects its input — impossible for the
/// well-formed batches this module draws.
pub fn run_standalone_batched(job: &JobSpec) -> GanCheckpoint {
    let mut trainer = job_trainer(job.seed);
    let mut rng = StdRng::seed_from_u64(batch_seed(job.seed));
    for _ in 0..job.steps {
        trainer
            .train_step_batched(&batch_packed(&mut rng))
            .expect("module-drawn batches are well-formed");
    }
    trainer.checkpoint()
}

/// Parameters of a Poisson arrival workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Jobs submitted.
    pub jobs: u64,
    /// Tenants the jobs round-robin across.
    pub tenants: u32,
    /// Topology indices the jobs round-robin across.
    pub topologies: Vec<usize>,
    /// Steps per job.
    pub steps: u64,
    /// Seed of the arrival process and of every per-job seed.
    pub seed: u64,
    /// Mean arrival rate (jobs per second of simulated time).
    pub rate_jobs_per_s: f64,
    /// Deadline slack applied to every job (`None` = no deadlines).
    pub deadline_slack: Option<f64>,
}

/// Draws a seeded Poisson arrival stream.
///
/// The exponential inter-arrival draws depend only on `seed`, not on the
/// rate: changing `rate_jobs_per_s` rescales the *same* draw sequence.
/// Two workloads differing only in rate therefore see the same jobs in
/// the same order, just compressed in time — exactly the controlled
/// experiment the graceful-degradation sweep needs (shed rate and p99
/// move because of *load*, not because of resampled randomness).
pub fn poisson_workload(w: &WorkloadSpec) -> Vec<JobSpec> {
    assert!(w.rate_jobs_per_s > 0.0, "arrival rate must be positive");
    assert!(!w.topologies.is_empty(), "workload needs at least one topology");
    assert!(w.tenants > 0, "workload needs at least one tenant");
    let rate_per_ns = w.rate_jobs_per_s / 1e9;
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut t = 0.0f64;
    (0..w.jobs)
        .map(|id| {
            let u: f64 = rng.gen();
            // u ∈ [0, 1) ⇒ 1 - u ∈ (0, 1] ⇒ the draw is finite and ≥ 0.
            t += -(1.0 - u).ln() / rate_per_ns;
            JobSpec {
                id,
                tenant: (id % u64::from(w.tenants)) as u32,
                topology: w.topologies[(id as usize) % w.topologies.len()],
                steps: w.steps,
                seed: job_seed(w.seed, id),
                arrival_ns: t,
                deadline_slack: w.deadline_slack,
            }
        })
        .collect()
}

/// Per-job seed: a SplitMix64-style mix of the workload seed and the job
/// id, so neighbouring jobs get decorrelated init/noise/batch streams.
pub fn job_seed(workload_seed: u64, id: u64) -> u64 {
    let mut z = workload_seed
        .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            jobs: 16,
            tenants: 3,
            topologies: vec![0, 1],
            steps: 4,
            seed,
            rate_jobs_per_s: rate,
            deadline_slack: None,
        }
    }

    #[test]
    fn workload_is_deterministic_and_time_ordered() {
        let a = poisson_workload(&spec(100.0, 9));
        let b = poisson_workload(&spec(100.0, 9));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(a.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn raising_the_rate_only_compresses_the_same_arrival_pattern() {
        let slow = poisson_workload(&spec(50.0, 9));
        let fast = poisson_workload(&spec(200.0, 9));
        for (s, f) in slow.iter().zip(&fast) {
            // Same job identity, seeds and order — only the clock differs.
            assert_eq!(s.seed, f.seed);
            assert_eq!(s.tenant, f.tenant);
            assert_eq!(s.topology, f.topology);
            // Exactly 4x compression: the draws are rate-independent.
            let ratio = s.arrival_ns / f.arrival_ns;
            assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn standalone_runs_are_reproducible_and_seed_sensitive() {
        let job = |seed| JobSpec {
            id: 0,
            tenant: 0,
            topology: 0,
            steps: 3,
            seed,
            arrival_ns: 0.0,
            deadline_slack: None,
        };
        assert_eq!(run_standalone(&job(5)), run_standalone(&job(5)));
        assert_ne!(run_standalone(&job(5)), run_standalone(&job(6)));
    }
}
