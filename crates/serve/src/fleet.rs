//! The fleet: simulated 3DCU pairs with per-pair fault state.
//!
//! Fault isolation in this runtime is *structural*: every pair owns its
//! own [`SystemFaults`] and [`WearModel`], so one tenant's dying hardware
//! is invisible to jobs on other pairs. A pristine pair (no seeded
//! faults, wear disabled) runs jobs on the fast path — the raw functional
//! trainer, whose trajectory is bit-identical to
//! [`crate::job::run_standalone`] by construction — while a faulted pair
//! wraps every job in a [`SelfHealingRuntime`] that detects, quarantines,
//! remaps and rolls back in place. When the job leaves (finished or
//! killed), [`SelfHealingRuntime::drain`] hands the pair its fault map
//! back, wear damage and tile kills included: hardware history outlives
//! any single job, which is exactly what makes later jobs on a worn pair
//! slower and eventually forces the serving layer to quarantine it.

use crate::job::{batch, batch_packed, batch_seed, job_trainer, JobSpec};
use crate::plan::PlanCache;
use lergan_core::{LinkChaos, RecoveryPolicy, SelfHealingRuntime, SystemFaults};
use lergan_gan::train::GanCheckpoint;
use lergan_reram::WearModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Healing-ladder activity aggregated over jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealingTotals {
    /// ABFT residual detections.
    pub detected: u64,
    /// Faults resolved by relocate-and-replay.
    pub corrected: u64,
    /// Tile-kill remaps committed.
    pub remapped: u64,
    /// Checkpoint rollbacks.
    pub rolled_back: u64,
    /// Relocation attempts across the ladder.
    pub retries: u64,
    /// NoC transfers delivered only after link-level retransmission.
    pub retransmitted: u64,
    /// Flaky wires soft-quarantined and routed around.
    pub link_quarantined: u64,
}

impl HealingTotals {
    /// Accumulates another tally.
    pub fn add(&mut self, other: &HealingTotals) {
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.remapped += other.remapped;
        self.rolled_back += other.rolled_back;
        self.retries += other.retries;
        self.retransmitted += other.retransmitted;
        self.link_quarantined += other.link_quarantined;
    }
}

/// How a dispatched job ended on the pair.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRunResult {
    /// All steps ran; the final trainer state is attached for the
    /// bit-identity audit.
    Finished {
        /// Final trainer checkpoint.
        checkpoint: GanCheckpoint,
    },
    /// The pair's hardware killed the job mid-run (recovery ladder
    /// exhausted or the degraded build no longer maps). The job restarts
    /// from its seed on re-admission, so a death loses time, never
    /// correctness.
    Died {
        /// Steps completed before the death.
        at_step: u64,
        /// Human-readable cause (the underlying `RecoveryError`).
        cause: String,
    },
}

/// A job in service on a pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RunningJob {
    /// The dispatched request.
    pub job: JobSpec,
    /// Dispatch time (ns).
    pub started_ns: f64,
    /// Completion-event time (ns).
    pub finish_ns: f64,
    /// Outcome, decided when the completion event fires.
    pub result: JobRunResult,
    /// Healing activity this job's run charged on the pair.
    pub healing: HealingTotals,
}

/// One simulated 3DCU pair of the fleet.
#[derive(Debug)]
pub struct Pair {
    /// Fleet-unique id (the deterministic dispatch tie-breaker).
    pub id: usize,
    /// The pair's live fault state; persists across jobs.
    pub faults: SystemFaults,
    /// The pair's write-endurance model.
    pub wear: WearModel,
    /// True when the pair can never fault (no seeded faults, wear
    /// disabled): such jobs run the raw-trainer fast path.
    pub pristine: bool,
    /// Transient hazard on the pair's NoC, reseeded per pair; `None`
    /// skips the link model.
    pub link: Option<LinkChaos>,
    /// Run pristine jobs through the batched train step
    /// ([`lergan_gan::train::Gan::train_step_batched`]): the same data
    /// stream and the same shared compiled plan, with the per-step GEMMs
    /// fused over the batch. The bit-identity reference becomes
    /// [`crate::job::run_standalone_batched`].
    pub batched: bool,
    /// Quarantined pairs accept no further work.
    pub quarantined: bool,
    /// The job in service, if any.
    pub running: Option<RunningJob>,
    /// Jobs pre-assigned to this pair, waiting behind the running one.
    pub assigned: VecDeque<JobSpec>,
    /// Checkpoint rollbacks accumulated over the pair's lifetime — the
    /// quarantine trigger.
    pub rollbacks_total: u64,
    /// Busy time accumulated (ns), for utilisation.
    pub busy_ns: f64,
    /// Jobs finished on this pair.
    pub jobs_completed: u64,
}

impl Pair {
    /// A pair with explicit hardware state. `pristine` must only be set
    /// when `faults` is empty and `wear` is disabled.
    pub fn new(id: usize, faults: SystemFaults, wear: WearModel, pristine: bool) -> Self {
        Pair {
            id,
            faults,
            wear,
            pristine,
            link: None,
            batched: false,
            quarantined: false,
            running: None,
            assigned: VecDeque::new(),
            rollbacks_total: 0,
            busy_ns: 0.0,
            jobs_completed: 0,
        }
    }

    /// Idle and accepting work.
    pub fn is_available(&self) -> bool {
        !self.quarantined && self.running.is_none()
    }

    /// Starts `job` at `now`, computing its whole trajectory eagerly (the
    /// simulation is deterministic, so the outcome is known at dispatch;
    /// the completion event merely publishes it at `finish_ns`).
    ///
    /// Returns the recovery-policy error only through [`JobRunResult`]:
    /// hardware trouble is a scheduling event, not a caller error.
    pub fn start(
        &mut self,
        job: JobSpec,
        now: f64,
        plans: &mut PlanCache,
        policy: &RecoveryPolicy,
    ) -> Result<(), lergan_core::BuildError> {
        let (duration, result, healing) = if self.pristine {
            self.run_pristine(&job, plans)?
        } else {
            self.run_healing(&job, plans, policy)
        };
        self.rollbacks_total += healing.rolled_back;
        self.running = Some(RunningJob {
            job,
            started_ns: now,
            finish_ns: now + duration,
            result,
            healing,
        });
        Ok(())
    }

    /// Fast path: no hardware faults are possible, so the job is the raw
    /// functional trainer and the service time is the plan's fault-free
    /// iteration latency. Bit-identical to the standalone run.
    fn run_pristine(
        &mut self,
        job: &JobSpec,
        plans: &mut PlanCache,
    ) -> Result<(f64, JobRunResult, HealingTotals), lergan_core::BuildError> {
        let iter_ns = plans.iteration_ns(job.topology)?;
        let mut trainer = job_trainer(job.seed);
        let mut rng = StdRng::seed_from_u64(batch_seed(job.seed));
        for s in 0..job.steps {
            if self.batched {
                // Batched mode: same draws, one packed step. A rejected
                // batch is impossible for module-drawn data, but abort-free
                // style reports it as a death rather than panicking.
                if let Err(e) = trainer.train_step_batched(&batch_packed(&mut rng)) {
                    return Ok((
                        s as f64 * iter_ns,
                        JobRunResult::Died {
                            at_step: s,
                            cause: e.to_string(),
                        },
                        HealingTotals::default(),
                    ));
                }
            } else {
                trainer.train_step(&batch(&mut rng));
            }
        }
        Ok((
            job.steps as f64 * iter_ns,
            JobRunResult::Finished {
                checkpoint: trainer.checkpoint(),
            },
            HealingTotals::default(),
        ))
    }

    /// Healing path: the job runs under a [`SelfHealingRuntime`] seeded
    /// with the pair's live fault state; on exit the drained fault map —
    /// wear damage and tile kills included — becomes the pair's state for
    /// the next job.
    fn run_healing(
        &mut self,
        job: &JobSpec,
        plans: &mut PlanCache,
        policy: &RecoveryPolicy,
    ) -> (f64, JobRunResult, HealingTotals) {
        let spec = plans.spec(job.topology).clone();
        let trainer = job_trainer(job.seed);
        let rt = match SelfHealingRuntime::new(
            &spec,
            trainer,
            self.faults.clone(),
            *policy,
            self.wear,
        ) {
            Ok(rt) => rt,
            // The pair is too damaged to even place the job: an instant
            // death, hardware state unchanged.
            Err(e) => {
                return (
                    0.0,
                    JobRunResult::Died {
                        at_step: 0,
                        cause: e.to_string(),
                    },
                    HealingTotals::default(),
                )
            }
        };
        // Layer the transient-link hazard on, reseeded per pair so each
        // pair's flakiness develops independently from one fleet spec.
        let mut rt = match self.link {
            Some(chaos) if !chaos.is_quiet() => rt.with_link(
                chaos.transients((self.id as u64).wrapping_mul(0xA5A5_5A5A_D00D_F00D)),
            ),
            _ => rt,
        };
        let mut rng = StdRng::seed_from_u64(batch_seed(job.seed));
        let mut death: Option<(u64, String)> = None;
        for s in 0..job.steps {
            let reals = batch(&mut rng);
            if let Err(e) = rt.step(&reals) {
                death = Some((s, e.to_string()));
                break;
            }
        }
        let drained = rt.drain();
        // Hardware history survives the job, dead or alive.
        self.faults = drained.faults;
        let healing = HealingTotals {
            detected: drained.report.detected,
            corrected: drained.report.corrected,
            remapped: drained.report.remapped,
            rolled_back: drained.report.rolled_back,
            retries: drained.report.retries,
            retransmitted: drained.report.retransmitted,
            link_quarantined: drained.report.link_quarantined,
        };
        let duration = drained.report.total_latency_ns();
        let result = match death {
            None => JobRunResult::Finished {
                checkpoint: drained.trainer.checkpoint(),
            },
            Some((at_step, cause)) => JobRunResult::Died { at_step, cause },
        };
        (duration, result, healing)
    }

    /// Quarantines the pair and evacuates its local queue: the caller
    /// must re-admit every returned job. The pair keeps its damaged
    /// fault map — quarantine retires hardware, it does not erase its
    /// history.
    pub fn quarantine(&mut self) -> Vec<JobSpec> {
        self.quarantined = true;
        self.assigned.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::run_standalone;
    use lergan_gan::Phase;

    fn job(id: u64, steps: u64) -> JobSpec {
        JobSpec {
            id,
            tenant: 0,
            topology: 0,
            steps,
            seed: 40 + id,
            arrival_ns: 0.0,
            deadline_slack: None,
        }
    }

    #[test]
    fn pristine_pairs_reproduce_the_standalone_trajectory() {
        let mut plans = PlanCache::table_v();
        let mut pair = Pair::new(0, SystemFaults::none(), WearModel::disabled(), true);
        let j = job(0, 3);
        pair.start(j.clone(), 0.0, &mut plans, &RecoveryPolicy::default())
            .unwrap();
        let run = pair.running.take().unwrap();
        assert!(run.finish_ns > 0.0);
        match run.result {
            JobRunResult::Finished { checkpoint } => {
                assert_eq!(checkpoint, run_standalone(&j));
            }
            other => panic!("pristine job must finish: {other:?}"),
        }
    }

    #[test]
    fn batched_pairs_reproduce_the_batched_reference_and_reuse_plans() {
        use crate::job::run_standalone_batched;
        let mut plans = PlanCache::table_v();
        let mut pair = Pair::new(0, SystemFaults::none(), WearModel::disabled(), true);
        pair.batched = true;
        for id in 0..2 {
            let j = job(id, 3);
            pair.start(j.clone(), 0.0, &mut plans, &RecoveryPolicy::default())
                .unwrap();
            let run = pair.running.take().unwrap();
            match run.result {
                JobRunResult::Finished { checkpoint } => {
                    assert_eq!(checkpoint, run_standalone_batched(&j));
                }
                other => panic!("batched pristine job must finish: {other:?}"),
            }
        }
        // Both batched jobs ran on the single compiled plan of topology 0.
        assert_eq!(plans.misses(), 1, "batched jobs must reuse the same plan");
        assert!(plans.hits() > 0);
    }

    #[test]
    fn healing_pairs_keep_their_wear_damage_between_jobs() {
        let mut plans = PlanCache::table_v();
        // Aggressive wear: cells die within a job's steps.
        let wear = WearModel::new(6, 1.2, 0xD00D);
        let mut pair = Pair::new(0, SystemFaults::none(), wear, false);
        pair.start(job(0, 10), 0.0, &mut plans, &RecoveryPolicy::default())
            .unwrap();
        let first = pair.running.take().unwrap();
        assert!(first.healing.detected > 0, "wear must fault the first job");
        let broken_after_first = pair
            .faults
            .bank_mut(Phase::GForward)
            .stuck_cells_in(0..1_000_000)
            .count();
        assert!(broken_after_first > 0, "drained faults persist on the pair");

        pair.start(job(1, 10), first.finish_ns, &mut plans, &RecoveryPolicy::default())
            .unwrap();
        let second = pair.running.take().unwrap();
        let broken_after_second = pair
            .faults
            .bank_mut(Phase::GForward)
            .stuck_cells_in(0..1_000_000)
            .count();
        assert!(
            broken_after_second >= broken_after_first,
            "hardware history is monotone"
        );
        // Both jobs still trained correctly despite the faults.
        for (run, j) in [(&first, job(0, 10)), (&second, job(1, 10))] {
            match &run.result {
                JobRunResult::Finished { checkpoint } => {
                    assert_eq!(checkpoint, &run_standalone(&j), "healing preserves bits");
                }
                JobRunResult::Died { .. } => {} // acceptable on worn hardware
            }
        }
    }

    #[test]
    fn a_hopeless_pair_reports_death_not_panic() {
        let mut plans = PlanCache::table_v();
        let mut faults = SystemFaults::none();
        // Kill every tile of the monitored bank: no placement exists.
        for t in 0..16 {
            faults.bank_mut(Phase::GForward).kill_tile(t);
        }
        let mut pair = Pair::new(0, faults, WearModel::disabled(), false);
        pair.start(job(0, 2), 0.0, &mut plans, &RecoveryPolicy::default())
            .unwrap();
        let run = pair.running.take().unwrap();
        assert!(
            matches!(run.result, JobRunResult::Died { at_step: 0, .. }),
            "{:?}",
            run.result
        );
        assert_eq!(run.finish_ns, 0.0, "an instant death charges no service time");
    }

    #[test]
    fn quarantine_evacuates_the_local_queue() {
        let mut pair = Pair::new(3, SystemFaults::none(), WearModel::disabled(), true);
        pair.assigned.push_back(job(5, 2));
        pair.assigned.push_back(job(6, 2));
        let evacuated = pair.quarantine();
        assert_eq!(evacuated.len(), 2);
        assert!(pair.quarantined);
        assert!(!pair.is_available());
        assert!(pair.assigned.is_empty());
    }
}
