//! Compiled-plan reuse across same-topology jobs.
//!
//! Compiling a GAN onto the accelerator ([`LerGan::builder`]) costs real
//! work — ZFDR pattern enumeration, replica selection, tile allocation,
//! and a discrete-event dry run for the iteration latency. A serving
//! fleet sees the same handful of Table V topologies over and over, so
//! the cache compiles each fault-free plan **once** and hands every
//! subsequent job of that topology the same [`Arc`]'d accelerator: one
//! [`CompiledGan`] (and with it one op graph) shared by all of them.
//! Sharing is safe precisely because the multi-tenant trainer state lives
//! *outside* the plan — each job carries its own [`lergan_gan::train::Gan`]
//! and checkpoints — which the interleaved checkpoint/restore tests in
//! `lergan-gan` guard.
//!
//! Hit/miss counters make the reuse observable in the serve report, and
//! the per-topology iteration latency is memoised beside the plan so
//! admission-time feasibility checks are O(1).

use lergan_core::{BuildError, CompiledGan, LerGan};
use lergan_gan::{benchmarks, GanSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cache of fault-free compiled plans, keyed by topology index.
pub struct PlanCache {
    specs: Vec<GanSpec>,
    built: BTreeMap<usize, Arc<LerGan>>,
    iteration_ns: BTreeMap<usize, f64>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// A cache over an explicit topology table.
    pub fn new(specs: Vec<GanSpec>) -> Self {
        PlanCache {
            specs,
            built: BTreeMap::new(),
            iteration_ns: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A cache over the full Table V benchmark suite, in
    /// [`benchmarks::all`] order.
    pub fn table_v() -> Self {
        Self::new(benchmarks::all())
    }

    /// A cache over Table V *plus* the extended-grammar benchmarks
    /// ([`benchmarks::extended`]: dilated convs, skip edges, norm
    /// variants), appended after the eight Table V rows so existing
    /// topology indices stay valid and every new topology gets its own
    /// cache key.
    pub fn extended() -> Self {
        let mut specs = benchmarks::all();
        specs.extend(benchmarks::extended());
        Self::new(specs)
    }

    /// The topology table.
    pub fn specs(&self) -> &[GanSpec] {
        &self.specs
    }

    /// The spec at `topology`. Panics on an out-of-table index — job
    /// construction is the caller's code, not tenant input.
    pub fn spec(&self, topology: usize) -> &GanSpec {
        &self.specs[topology]
    }

    /// The shared fault-free plan of `topology`, compiling it on first
    /// use. Same-topology callers get clones of one [`Arc`]: the plan,
    /// its [`CompiledGan`] and the op graph inside are all shared.
    pub fn plan(&mut self, topology: usize) -> Result<Arc<LerGan>, BuildError> {
        if let Some(p) = self.built.get(&topology) {
            self.hits += 1;
            return Ok(Arc::clone(p));
        }
        self.misses += 1;
        let accel = Arc::new(LerGan::builder(&self.specs[topology]).build()?);
        let iter_ns = accel.train_iterations(1).iteration_latency_ns;
        self.iteration_ns.insert(topology, iter_ns);
        self.built.insert(topology, Arc::clone(&accel));
        Ok(accel)
    }

    /// The compiled artifact all same-topology jobs share.
    pub fn compiled(&mut self, topology: usize) -> Result<Arc<LerGan>, BuildError> {
        self.plan(topology)
    }

    /// Fault-free per-iteration latency of `topology` (ns), memoised with
    /// the plan.
    pub fn iteration_ns(&mut self, topology: usize) -> Result<f64, BuildError> {
        if let Some(ns) = self.iteration_ns.get(&topology) {
            self.hits += 1;
            return Ok(*ns);
        }
        self.plan(topology)?;
        Ok(self.iteration_ns[&topology])
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= compilations) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct plans resident.
    pub fn resident(&self) -> usize {
        self.built.len()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("topologies", &self.specs.len())
            .field("resident", &self.built.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// The op graph a plan was lowered from (convenience for callers that
/// only need the shared graph, not the whole accelerator).
pub fn shared_graph(plan: &Arc<LerGan>) -> &CompiledGan {
    plan.compiled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_topology_jobs_share_one_compiled_plan() {
        let mut cache = PlanCache::table_v();
        let a = cache.plan(0).unwrap();
        let b = cache.plan(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second job must reuse the first plan");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // The shared artifact really is one CompiledGan / one op graph.
        assert!(std::ptr::eq(shared_graph(&a), shared_graph(&b)));
    }

    #[test]
    fn distinct_topologies_compile_independently() {
        let mut cache = PlanCache::table_v();
        let dcgan = cache.plan(0).unwrap();
        let cgan = cache.plan(1).unwrap();
        assert!(!Arc::ptr_eq(&dcgan, &cgan));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.resident(), 2);
    }

    #[test]
    fn extended_topologies_get_distinct_cache_keys() {
        let mut cache = PlanCache::extended();
        assert_eq!(cache.specs().len(), 10);
        assert_eq!(cache.spec(8).name, "ResDilatedGAN");
        assert_eq!(cache.spec(9).name, "AtrousPixelGAN");
        // Each extended topology compiles its own plan; re-requests hit.
        let res = cache.plan(8).unwrap();
        let atrous = cache.plan(9).unwrap();
        assert!(!Arc::ptr_eq(&res, &atrous));
        assert!(Arc::ptr_eq(&res, &cache.plan(8).unwrap()));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.resident(), 2);
        // And their latencies are memoised independently.
        let a = cache.iteration_ns(8).unwrap();
        let b = cache.iteration_ns(9).unwrap();
        assert!(a > 0.0 && b > 0.0);
        assert_ne!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn iteration_latency_is_memoised_with_the_plan() {
        let mut cache = PlanCache::table_v();
        let first = cache.iteration_ns(0).unwrap();
        let again = cache.iteration_ns(0).unwrap();
        assert!(first > 0.0);
        assert_eq!(first.to_bits(), again.to_bits());
        assert_eq!(cache.misses(), 1, "latency queries must not recompile");
    }
}
