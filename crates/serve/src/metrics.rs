//! The serve report: what a serving run did, in deterministic numbers.
//!
//! Counters follow the job lifecycle — submitted → admitted (or shed with
//! a typed reason) → completed/failed — plus the robustness machinery's
//! activity: hardware retries, quarantine evacuations, deadline misses
//! and the healing ladder's totals. The conservation law
//!
//! ```text
//! submitted = completed + failed + stranded + shed_total
//! ```
//!
//! is checked by [`ServeReport::check_conservation`] and asserted by the
//! sweep: a serving layer may *refuse* work loudly, but an admitted job
//! must end in exactly one terminal state — never vanish.
//!
//! Latency percentiles use the nearest-rank definition over completed
//! jobs' sojourn times (completion − arrival), so they are exact,
//! deterministic and stable across thread counts. The report derives
//! `PartialEq`; two runs of the same configuration must compare equal —
//! the determinism tests rely on it.

use crate::fleet::HealingTotals;
use lergan_gan::train::GanCheckpoint;
use std::collections::BTreeMap;

/// Everything a serving run is accountable for.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Jobs offered to the front door.
    pub submitted: u64,
    /// Jobs past admission control.
    pub admitted: u64,
    /// Shed: central queue at depth bound.
    pub shed_queue_full: u64,
    /// Shed: tenant at quota.
    pub shed_quota: u64,
    /// Shed: deadline infeasible at arrival.
    pub shed_deadline: u64,
    /// Jobs that finished training.
    pub completed: u64,
    /// Jobs that exhausted the hardware retry ladder (terminal).
    pub failed: u64,
    /// Admitted jobs left unservable because every pair quarantined.
    /// Non-zero only in pathological configurations; the sweep asserts 0.
    pub stranded: u64,
    /// Hardware-death retries taken (capped-backoff ladder).
    pub job_retries: u64,
    /// Jobs evacuated from quarantined pairs and re-admitted.
    pub requeued: u64,
    /// Completed jobs that overran their deadline.
    pub deadline_misses: u64,
    /// Pairs quarantined during the run.
    pub quarantined_pairs: u64,
    /// Pairs in the fleet.
    pub pairs: u64,
    /// Simulated makespan: the last event's clock (ns).
    pub wall_ns: f64,
    /// Σ pair busy time (ns).
    pub busy_ns: f64,
    /// Sojourn latency (completion − arrival) of every completed job,
    /// sorted ascending (ns).
    pub latencies_ns: Vec<f64>,
    /// Healing-ladder totals across the fleet.
    pub healing: HealingTotals,
    /// Plan-cache compilations this run caused.
    pub plan_misses: u64,
    /// Plan-cache hits this run caused (same-topology reuse).
    pub plan_hits: u64,
    /// Final trainer checkpoint per completed job id — the bit-identity
    /// audit trail against [`crate::job::run_standalone`].
    pub outcomes: BTreeMap<u64, GanCheckpoint>,
}

impl ServeReport {
    /// Jobs shed at admission, all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_quota + self.shed_deadline
    }

    /// Shed fraction of submitted work.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted > 0 {
            self.shed_total() as f64 / self.submitted as f64
        } else {
            0.0
        }
    }

    /// Completed jobs per second of simulated time.
    pub fn throughput_jobs_per_s(&self) -> f64 {
        if self.wall_ns > 0.0 {
            self.completed as f64 / (self.wall_ns / 1e9)
        } else {
            0.0
        }
    }

    /// Fleet utilisation: busy time over pairs × makespan.
    pub fn utilisation(&self) -> f64 {
        let capacity = self.pairs as f64 * self.wall_ns;
        if capacity > 0.0 {
            self.busy_ns / capacity
        } else {
            0.0
        }
    }

    /// Nearest-rank percentile of the sojourn latencies (q in (0, 1]);
    /// 0 when nothing completed.
    pub fn percentile_ns(&self, q: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let n = self.latencies_ns.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ns[rank - 1]
    }

    /// Median sojourn latency (ns).
    pub fn p50_ns(&self) -> f64 {
        self.percentile_ns(0.50)
    }

    /// Tail sojourn latency (ns).
    pub fn p99_ns(&self) -> f64 {
        self.percentile_ns(0.99)
    }

    /// The lifecycle conservation law: every submitted job is accounted
    /// for by exactly one terminal counter.
    pub fn check_conservation(&self) -> Result<(), String> {
        let accounted = self.completed + self.failed + self.stranded + self.shed_total();
        if accounted == self.submitted {
            Ok(())
        } else {
            Err(format!(
                "job leak: submitted {} ≠ completed {} + failed {} + stranded {} + shed {}",
                self.submitted,
                self.completed,
                self.failed,
                self.stranded,
                self.shed_total()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_exactly() {
        let r = ServeReport {
            latencies_ns: vec![10.0, 20.0, 30.0, 40.0],
            ..ServeReport::default()
        };
        assert_eq!(r.percentile_ns(0.50), 20.0);
        assert_eq!(r.percentile_ns(0.99), 40.0);
        assert_eq!(r.percentile_ns(0.25), 10.0);
        assert_eq!(r.percentile_ns(1.0), 40.0);
        assert_eq!(ServeReport::default().p99_ns(), 0.0);
    }

    #[test]
    fn conservation_catches_a_leaked_job() {
        let mut r = ServeReport {
            submitted: 3,
            completed: 1,
            shed_quota: 1,
            ..ServeReport::default()
        };
        assert!(r.check_conservation().is_err());
        r.failed = 1;
        assert!(r.check_conservation().is_ok());
    }

    #[test]
    fn rates_are_zero_on_an_empty_run() {
        let r = ServeReport::default();
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.throughput_jobs_per_s(), 0.0);
        assert_eq!(r.utilisation(), 0.0);
    }
}
