//! Admission control: the bounded central queue and per-tenant quotas.
//!
//! Robust serving starts at the front door. The queue refuses work it
//! cannot absorb with a *typed* rejection instead of queueing unboundedly:
//!
//! * [`AdmissionError::QueueFull`] — the central queue is at its depth
//!   bound (load shedding under overload);
//! * [`AdmissionError::QuotaExceeded`] — the tenant already has its full
//!   quota of jobs in flight (one noisy tenant cannot starve the rest);
//! * [`AdmissionError::DeadlineInfeasible`] — even the best-case service
//!   time overruns the job's deadline, so admitting it would only burn a
//!   pair on work that is already lost.
//!
//! Checks run in that order, so an overloaded queue sheds before quota
//! accounting is consulted.
//!
//! Re-admission ([`JobQueue::readmit`]) is the one unguarded path: a job
//! evacuated from a quarantined pair or retried after a hardware death
//! was *already* admitted, and the zero-drop guarantee ("every admitted
//! job either finishes or is re-admitted and finishes") requires it to
//! re-enter even through a full queue. Tenant accounting is unchanged by
//! re-admission — the job never stopped being in flight.

use crate::job::JobSpec;
use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Knobs of the admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Central queue depth past which new work is shed.
    pub max_queue_depth: usize,
    /// Jobs one tenant may have in flight (queued + assigned + running +
    /// awaiting retry).
    pub per_tenant_quota: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_queue_depth: 16,
            per_tenant_quota: 8,
        }
    }
}

/// Why a job was refused at the door.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The central queue is at its bound.
    QueueFull {
        /// The configured depth the queue already holds.
        depth: usize,
    },
    /// The tenant is at its in-flight quota.
    QuotaExceeded {
        /// The offending tenant.
        tenant: u32,
        /// Jobs it already has in flight.
        in_flight: usize,
    },
    /// Best-case service time already overruns the deadline.
    DeadlineInfeasible {
        /// Minimum service time of the job (ns).
        best_case_ns: f64,
        /// Time left until the deadline at arrival (ns).
        budget_ns: f64,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { depth } => {
                write!(f, "queue full at depth {depth}")
            }
            AdmissionError::QuotaExceeded { tenant, in_flight } => {
                write!(f, "tenant {tenant} already has {in_flight} jobs in flight")
            }
            AdmissionError::DeadlineInfeasible {
                best_case_ns,
                budget_ns,
            } => write!(
                f,
                "best-case service {best_case_ns} ns exceeds deadline budget {budget_ns} ns"
            ),
        }
    }
}

impl Error for AdmissionError {}

/// The bounded central FIFO plus tenant in-flight accounting.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    policy: AdmissionPolicy,
    queue: VecDeque<JobSpec>,
    in_flight: BTreeMap<u32, usize>,
}

impl JobQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        JobQueue {
            policy,
            queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
        }
    }

    /// Admits a freshly arrived job or sheds it with a typed error.
    /// `best_case_ns` is the job's minimum service time (used for the
    /// deadline-feasibility check when the job carries a deadline).
    pub fn admit(&mut self, job: JobSpec, best_case_ns: f64) -> Result<(), AdmissionError> {
        if self.queue.len() >= self.policy.max_queue_depth {
            return Err(AdmissionError::QueueFull {
                depth: self.queue.len(),
            });
        }
        let used = self.in_flight.get(&job.tenant).copied().unwrap_or(0);
        if used >= self.policy.per_tenant_quota {
            return Err(AdmissionError::QuotaExceeded {
                tenant: job.tenant,
                in_flight: used,
            });
        }
        if let Some(slack) = job.deadline_slack {
            let budget_ns = slack * best_case_ns;
            if best_case_ns > budget_ns {
                return Err(AdmissionError::DeadlineInfeasible {
                    best_case_ns,
                    budget_ns,
                });
            }
        }
        *self.in_flight.entry(job.tenant).or_insert(0) += 1;
        self.queue.push_back(job);
        Ok(())
    }

    /// Re-admits an already-admitted job at the queue *front*, bypassing
    /// every admission check: evacuated and retried work outranks new
    /// arrivals and must never be shed.
    pub fn readmit(&mut self, job: JobSpec) {
        self.queue.push_front(job);
    }

    /// Pops the next job to dispatch (FIFO). Tenant accounting is not
    /// touched: a dispatched job is still in flight.
    pub fn pop(&mut self) -> Option<JobSpec> {
        self.queue.pop_front()
    }

    /// Releases one in-flight slot of `tenant` — call exactly once when a
    /// job reaches a terminal state (finished or permanently failed).
    pub fn release(&mut self, tenant: u32) {
        if let Some(n) = self.in_flight.get_mut(&tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.in_flight.remove(&tenant);
            }
        }
    }

    /// Jobs waiting in the central queue.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no job waits centrally.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Jobs tenant `t` currently has in flight.
    pub fn in_flight(&self, tenant: u32) -> usize {
        self.in_flight.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: u32, slack: Option<f64>) -> JobSpec {
        JobSpec {
            id,
            tenant,
            topology: 0,
            steps: 4,
            seed: id,
            arrival_ns: 0.0,
            deadline_slack: slack,
        }
    }

    #[test]
    fn depth_bound_sheds_with_queue_full() {
        let mut q = JobQueue::new(AdmissionPolicy {
            max_queue_depth: 2,
            per_tenant_quota: 8,
        });
        q.admit(job(0, 0, None), 1.0).unwrap();
        q.admit(job(1, 1, None), 1.0).unwrap();
        assert_eq!(
            q.admit(job(2, 2, None), 1.0),
            Err(AdmissionError::QueueFull { depth: 2 })
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn tenant_quota_sheds_and_releases() {
        let mut q = JobQueue::new(AdmissionPolicy {
            max_queue_depth: 16,
            per_tenant_quota: 1,
        });
        q.admit(job(0, 7, None), 1.0).unwrap();
        assert_eq!(
            q.admit(job(1, 7, None), 1.0),
            Err(AdmissionError::QuotaExceeded {
                tenant: 7,
                in_flight: 1
            })
        );
        // Another tenant is unaffected — isolation at the front door.
        q.admit(job(2, 8, None), 1.0).unwrap();
        // Dispatch does not release the slot; terminal completion does.
        let j = q.pop().unwrap();
        assert_eq!(j.id, 0);
        assert_eq!(
            q.admit(job(3, 7, None), 1.0),
            Err(AdmissionError::QuotaExceeded {
                tenant: 7,
                in_flight: 1
            })
        );
        q.release(7);
        q.admit(job(3, 7, None), 1.0).unwrap();
    }

    #[test]
    fn infeasible_deadline_is_refused_at_the_door() {
        let mut q = JobQueue::new(AdmissionPolicy::default());
        // Slack < 1 means even a best-case run overruns the deadline.
        let err = q.admit(job(0, 0, Some(0.5)), 1_000.0).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::DeadlineInfeasible {
                best_case_ns: 1_000.0,
                budget_ns: 500.0
            }
        );
        // A feasible deadline with the same service time is admitted.
        q.admit(job(1, 0, Some(2.0)), 1_000.0).unwrap();
    }

    #[test]
    fn readmit_bypasses_every_check_and_goes_to_the_front() {
        let mut q = JobQueue::new(AdmissionPolicy {
            max_queue_depth: 1,
            per_tenant_quota: 1,
        });
        q.admit(job(0, 0, None), 1.0).unwrap();
        // Full queue, exhausted quota, infeasible deadline — none of it
        // applies to evacuated work.
        q.readmit(job(9, 0, Some(0.1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().id, 9);
    }
}
